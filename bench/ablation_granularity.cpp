// ablation_granularity — A3: the paper explains h264dec's OmpSs loss at
// high core counts by task granularity: "increasing the task granularity is
// necessary to improve the overall performance of OmpSs.  Grouping the
// tasks, however, reduces the parallelism."  This bench sweeps the
// macroblock tile-group edge of the OmpSs decoder's nested reconstruction
// tasks at several thread counts, against the Pthreads line decoder.
//
// Shape expected from the paper: tiny groups drown in per-task overhead;
// huge groups serialize; the sweet spot moves with thread count.
//
// Usage: ablation_granularity [--threads=1,2,4] [--groups=1,2,4,8]
//                             [--reps=3] [--scale=tiny]
#include <cstdio>
#include <exception>

#include "apps/apps.hpp"
#include "bench_core/bench_core.hpp"

int main(int argc, char** argv) {
  try {
    const benchcore::Args args(argc, argv);
    const auto scale = benchcore::parse_scale(args.get("scale", "tiny"));
    const auto threads = args.get_sizes("threads", {1, 2, 4});
    const auto groups = args.get_sizes("groups", {1, 2, 4, 8});
    const auto reps = static_cast<std::size_t>(args.get_long("reps", 3));

    const auto w = apps::H264Workload::make(scale);
    std::printf("A3: OmpSs task granularity on h264dec (%zu frames of %dx%d, "
                "scale=%s, median of %zu)\n",
                w.video.frames.size(), w.video.width, w.video.height,
                benchcore::to_string(scale), reps);
    std::printf("cell = decode wall time in ms; group G = GxG macroblock "
                "tiles per nested task\n\n");

    benchcore::TextTable t;
    std::vector<std::string> header{"threads", "pthreads"};
    for (std::size_t g : groups) header.push_back("ompss G=" + std::to_string(g));
    t.set_header(std::move(header));

    for (std::size_t n : threads) {
      std::vector<std::string> cells{std::to_string(n)};
      const double tp = benchcore::measure_median_seconds(
          [&] { apps::h264dec_pthreads(w, n); }, reps);
      cells.push_back(benchcore::TextTable::fmt(tp * 1e3));
      for (std::size_t g : groups) {
        const double to = benchcore::measure_median_seconds(
            [&] { apps::h264dec_ompss_grouped(w, n, static_cast<int>(g)); },
            reps);
        cells.push_back(benchcore::TextTable::fmt(to * 1e3));
      }
      t.add_row(std::move(cells));
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\npaper reference: h264dec OmpSs/Pthreads speedups "
                "0.94/1.07/0.87/0.57/0.42 at 1/8/16/24/32 cores — the "
                "grouping needed to amortize task overhead caps parallelism "
                "at high core counts.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_granularity: %s\n", e.what());
    return 1;
  }
}
