// bm_kernels — google-benchmark microbenchmarks for the four kernel
// benchmarks (Table 1 rows c-ray, rotate, rgbcmy, md5): sequential /
// Pthreads / OmpSs variants at several thread counts.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"

namespace {

using benchcore::Scale;

const apps::CRayWorkload& cray_w() {
  static const auto w = apps::CRayWorkload::make(Scale::Tiny);
  return w;
}
const apps::RotateWorkload& rotate_w() {
  static const auto w = apps::RotateWorkload::make(Scale::Tiny);
  return w;
}
const apps::RgbcmyWorkload& rgbcmy_w() {
  static const auto w = apps::RgbcmyWorkload::make(Scale::Tiny);
  return w;
}
const apps::Md5Workload& md5_w() {
  static const auto w = apps::Md5Workload::make(Scale::Tiny);
  return w;
}

// Force workload construction before main() so input generation
// (scene/bitstream synthesis) never lands inside a timed region.
const auto& warm_cray_w = cray_w();
const auto& warm_rotate_w = rotate_w();
const auto& warm_rgbcmy_w = rgbcmy_w();
const auto& warm_md5_w = md5_w();

void BM_cray_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::c_ray_seq(cray_w()));
}
void BM_cray_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apps::c_ray_pthreads(cray_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_cray_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apps::c_ray_ompss(cray_w(), static_cast<std::size_t>(state.range(0))));
}

void BM_rotate_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::rotate_seq(rotate_w()));
}
void BM_rotate_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::rotate_pthreads(
        rotate_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_rotate_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apps::rotate_ompss(rotate_w(), static_cast<std::size_t>(state.range(0))));
}

void BM_rgbcmy_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::rgbcmy_seq(rgbcmy_w()));
}
void BM_rgbcmy_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::rgbcmy_pthreads(
        rgbcmy_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_rgbcmy_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apps::rgbcmy_ompss(rgbcmy_w(), static_cast<std::size_t>(state.range(0))));
}

void BM_md5_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::md5_seq(md5_w()));
}
void BM_md5_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apps::md5_pthreads(md5_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_md5_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apps::md5_ompss(md5_w(), static_cast<std::size_t>(state.range(0))));
}

constexpr int kIters = 3; // fixed iterations: bounded runtime on small hosts

#define THREAD_ARGS Arg(1)->Arg(2)->Arg(4)->Iterations(kIters)

BENCHMARK(BM_cray_seq)->Iterations(kIters);
BENCHMARK(BM_cray_pthreads)->THREAD_ARGS;
BENCHMARK(BM_cray_ompss)->THREAD_ARGS;
BENCHMARK(BM_rotate_seq)->Iterations(kIters);
BENCHMARK(BM_rotate_pthreads)->THREAD_ARGS;
BENCHMARK(BM_rotate_ompss)->THREAD_ARGS;
BENCHMARK(BM_rgbcmy_seq)->Iterations(kIters);
BENCHMARK(BM_rgbcmy_pthreads)->THREAD_ARGS;
BENCHMARK(BM_rgbcmy_ompss)->THREAD_ARGS;
BENCHMARK(BM_md5_seq)->Iterations(kIters);
BENCHMARK(BM_md5_pthreads)->THREAD_ARGS;
BENCHMARK(BM_md5_ompss)->THREAD_ARGS;

} // namespace

BENCHMARK_MAIN();
