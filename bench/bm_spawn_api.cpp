// bm_spawn_api — spawn-path overhead of the fluent TaskBuilder vs. the
// legacy positional `spawn()` shim.  Both land in the same
// `Runtime::spawn_task` core; the builder adds only the TaskSpec it
// accumulates, so the two columns should be indistinguishable — this bench
// exists to keep it that way.
//
// Shapes mirror bm_runtime_overhead: empty independent tasks (pure spawn
// cost), an inout dependency chain (spawn + edge + wakeup), and a
// four-access task (registration cost).
#include <benchmark/benchmark.h>

#include <vector>

#include "ompss/ompss.hpp"

namespace {

constexpr int kTasks = 2000;
constexpr int kChain = 1000;

void BM_spawn_empty_legacy(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    for (int i = 0; i < kTasks; ++i) rt.spawn({}, [] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}

void BM_spawn_empty_builder(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    for (int i = 0; i < kTasks; ++i) rt.task().spawn([] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}

void BM_spawn_chain_legacy(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    int token = 0;
    for (int i = 0; i < kChain; ++i) rt.spawn({oss::inout(token)}, [] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kChain);
}

void BM_spawn_chain_builder(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    int token = 0;
    for (int i = 0; i < kChain; ++i) rt.task().inout(token).spawn([] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kChain);
}

void BM_spawn_four_accesses_legacy(benchmark::State& state) {
  std::vector<int> vars(4);
  for (auto _ : state) {
    oss::Runtime rt(1);
    for (int t = 0; t < 500; ++t) {
      rt.spawn({oss::in(vars[0]), oss::in(vars[1]), oss::inout(vars[2]),
                oss::out(vars[3])},
               [] {});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_spawn_four_accesses_builder(benchmark::State& state) {
  std::vector<int> vars(4);
  for (auto _ : state) {
    oss::Runtime rt(1);
    for (int t = 0; t < 500; ++t) {
      rt.task()
          .in(vars[0])
          .in(vars[1])
          .inout(vars[2])
          .out(vars[3])
          .spawn([] {});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

constexpr int kIters = 3;

BENCHMARK(BM_spawn_empty_legacy)->Arg(1)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_spawn_empty_builder)->Arg(1)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_spawn_chain_legacy)->Arg(1)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_spawn_chain_builder)->Arg(1)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_spawn_four_accesses_legacy)->Iterations(kIters);
BENCHMARK(BM_spawn_four_accesses_builder)->Iterations(kIters);

} // namespace

BENCHMARK_MAIN();
