// ablation_renaming — A5: the paper's second observation (§3) is that
// circular-buffer renaming is what exposes pipeline parallelism: with a
// single buffer per stage, WAR/WAW hazards serialize all iterations.  This
// bench sweeps the renaming depth N of the h264dec OmpSs pipeline
// (pipeline_depth) — N=2 barely overlaps, deeper buffers let more
// iterations be in flight (bounded by DPB pressure and stage count).
//
// Usage: ablation_renaming [--threads=1,2,4] [--depths=2,3,4,6,8]
//                          [--reps=3] [--scale=tiny]
#include <cstdio>
#include <exception>

#include "apps/apps.hpp"
#include "bench_core/bench_core.hpp"

int main(int argc, char** argv) {
  try {
    const benchcore::Args args(argc, argv);
    const auto scale = benchcore::parse_scale(args.get("scale", "tiny"));
    const auto threads = args.get_sizes("threads", {1, 2, 4});
    const auto depths = args.get_sizes("depths", {2, 3, 4, 6, 8});
    const auto reps = static_cast<std::size_t>(args.get_long("reps", 3));

    auto w = apps::H264Workload::make(scale);
    std::printf("A5: circular-buffer renaming depth on the h264dec OmpSs "
                "pipeline (%zu frames of %dx%d, scale=%s, median of %zu)\n",
                w.video.frames.size(), w.video.width, w.video.height,
                benchcore::to_string(scale), reps);
    std::printf("cell = decode wall time in ms; N = circular buffer slots "
                "per stage\n\n");

    benchcore::TextTable t;
    std::vector<std::string> header{"threads"};
    for (std::size_t d : depths) header.push_back("N=" + std::to_string(d));
    t.set_header(std::move(header));

    for (std::size_t n : threads) {
      std::vector<std::string> cells{std::to_string(n)};
      for (std::size_t d : depths) {
        w.pipeline_depth = static_cast<int>(d);
        const double sec = benchcore::measure_median_seconds(
            [&] { apps::h264dec_ompss(w, n); }, reps);
        cells.push_back(benchcore::TextTable::fmt(sec * 1e3));
      }
      t.add_row(std::move(cells));
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper reference (§3): \"This eliminates the WAR and WAW "
                "hazards that would have occurred if the same entry is used "
                "in each iteration, which would eliminate all the "
                "parallelism.\"\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_renaming: %s\n", e.what());
    return 1;
  }
}
