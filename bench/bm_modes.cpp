// bm_modes — reduction-pattern microbenchmarks comparing the three ways to
// accumulate into shared state under the task model:
//
//   inout        — a serial dependency chain (one task at a time, ordered)
//   commutative  — order-free but mutually exclusive (runtime lock)
//   concurrent   — order-free and parallel (task-side atomics)
//
// The OmpSs/StarSs family added commutative/concurrent precisely because
// inout chains serialize reductions; this shows the throughput ladder.
#include <benchmark/benchmark.h>

#include <atomic>

#include "ompss/ompss.hpp"

namespace {

constexpr int kTasks = 500;
constexpr int kWorkPerTask = 4000;

void work() {
  for (int j = 0; j < kWorkPerTask; ++j) { volatile int sink = j; (void)sink; }
}

void BM_reduce_inout_chain(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    long sum = 0;
    for (int i = 0; i < kTasks; ++i) {
      rt.task("inout_add").inout(sum).spawn([&sum] {
        work();
        sum += 1;
      });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}

void BM_reduce_commutative(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    long sum = 0;
    for (int i = 0; i < kTasks; ++i) {
      rt.task("comm_add").commutative(sum).spawn([&sum] {
        work();
        sum += 1;
      });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}

void BM_reduce_concurrent(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    std::atomic<long> sum{0};
    for (int i = 0; i < kTasks; ++i) {
      rt.task("conc_add").concurrent(sum).spawn([&sum] {
        work();
        sum.fetch_add(1, std::memory_order_relaxed);
      });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}

constexpr int kIters = 3;

BENCHMARK(BM_reduce_inout_chain)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_reduce_commutative)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_reduce_concurrent)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);

} // namespace

BENCHMARK_MAIN();
