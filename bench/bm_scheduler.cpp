// bm_scheduler — spawn/steal throughput of the scheduler core.
//
// Two tiers:
//
//   DequeChurn/<impl>/<threads>   — raw deque throughput under steal-heavy
//     churn: one owner pushes/takes, the remaining threads steal.  Compares
//     the lock-free Chase–Lev deque against the mutex baseline directly
//     (both classes always exist; -DOSS_MUTEX_QUEUES only selects which one
//     the *scheduler* uses).  The lock-free core must beat the mutex deque
//     at 8 threads — that is the acceptance gate for the scheduler rework.
//
//   PolicyChurn/<policy>/<threads> — end-to-end Runtime spawn→drain
//     throughput for fifo/locality/wsteal, tasks/second reported as the
//     items_per_second counter.
//
// Run a quick smoke pass with --benchmark_min_time=0.01s (the CI job does);
// full runs emit the table recorded by the next BENCH_*.json snapshot via
// --benchmark_format=json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "ompss/ompss.hpp"

namespace {

oss::TaskPtr make_task(std::uint64_t id) {
  static auto ctx = std::make_shared<oss::TaskContext>();
  return oss::make_task(id, [] {}, oss::AccessList{}, ctx, "");
}

// --- tier 1: raw deque churn ----------------------------------------------

constexpr std::size_t kChurnTasks = 8192;

/// One owner pushes kChurnTasks (pre-created outside the timed region, so
/// the measurement is queue operations, not task allocation) and takes from
/// the hot end; `threads - 1` thieves hammer the cold end until everything
/// is drained.  Thieves yield on every miss so the harness stays honest on
/// oversubscribed machines.
template <class Deque>
void deque_churn(int threads, const std::vector<oss::TaskPtr>& pool) {
  Deque dq;
  std::atomic<std::size_t> drained{0};

  std::vector<std::thread> thieves;
  for (int i = 1; i < threads; ++i) {
    thieves.emplace_back([&] {
      while (drained.load(std::memory_order_relaxed) < kChurnTasks) {
        if (oss::TaskPtr t = dq.steal()) {
          drained.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  for (std::size_t i = 0; i < kChurnTasks; ++i) {
    dq.push(pool[i]);
    if ((i & 1) == 0) {
      if (oss::TaskPtr t = dq.take()) {
        drained.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (drained.load(std::memory_order_relaxed) < kChurnTasks) {
    if (oss::TaskPtr t = dq.take()) {
      drained.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& th : thieves) th.join();
}

template <class Deque>
void BM_DequeChurn(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<oss::TaskPtr> pool;
  pool.reserve(kChurnTasks);
  for (std::size_t i = 0; i < kChurnTasks; ++i) pool.push_back(make_task(i));
  for (auto _ : state) {
    deque_churn<Deque>(threads, pool);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChurnTasks));
}

// --- tier 2: end-to-end policy churn --------------------------------------

constexpr int kPolicyTasks = 10000;

void BM_PolicyChurn(benchmark::State& state) {
  const auto policy = static_cast<oss::SchedulerPolicy>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.scheduler = policy;
  oss::Runtime rt(cfg);

  for (auto _ : state) {
    std::atomic<int> hits{0};
    for (int i = 0; i < kPolicyTasks; ++i) {
      rt.spawn({}, [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
    if (hits.load() != kPolicyTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPolicyTasks);
  state.SetLabel(std::string(oss::to_string(policy)) + "/" +
                 std::to_string(threads) + "t");
}

} // namespace

BENCHMARK_TEMPLATE(BM_DequeChurn, oss::MutexTaskDeque)
    ->Name("DequeChurn/mutex")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_TEMPLATE(BM_DequeChurn, oss::ChaseLevTaskDeque)
    ->Name("DequeChurn/chase-lev")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_PolicyChurn)
    ->Name("PolicyChurn")
    ->ArgsProduct({{static_cast<long>(oss::SchedulerPolicy::Fifo),
                    static_cast<long>(oss::SchedulerPolicy::Locality),
                    static_cast<long>(oss::SchedulerPolicy::WorkStealing)},
                   {1, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
