// bm_replay — dependency-path cost of fresh resolution vs graph replay
// (oss::replay, docs/replay.md).  Iterative applications re-submit the
// same task graph every iteration; the replay path memoizes the resolved
// structure once and re-submits it as an array walk that never touches a
// dependency shard.  This bench measures exactly that delta on three
// structures, capture outside the timing loop, with near-empty bodies so
// the submission path dominates:
//
//   Replay/chain/{fresh,replay}/<threads>    — 256-link RAW chain
//   Replay/diamond/{fresh,replay}/<threads>  — 64 independent diamonds
//   Replay/opgraph/{fresh,replay}/<threads>  — 16×32 operator grid with
//                                              two reads per op (the
//                                              PopART-style shape of the
//                                              opgraph app)
//
// The CI bench-smoke job gates Replay/* against baseline_replay.json,
// normalized by Replay/opgraph/fresh/1 (bench/compare_bench.py): what is
// gated is the replay-vs-fresh *shape* — the recorded baseline has replay
// well over 2x fresh on opgraph, and a regression of that ratio beyond
// tolerance fails the gate (on like machines; see the script header).
#include <benchmark/benchmark.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ompss/ompss.hpp"

namespace {

// --- the three graph shapes ------------------------------------------------

/// 256-task RAW chain: the worst case for replay's batch wakeup (one root,
/// everything serial) and the best case for skipping interval-map lookups.
struct ChainGraph {
  static constexpr std::size_t kLen = 256;
  std::array<std::uint64_t, kLen> v{};

  [[nodiscard]] std::size_t size() const { return kLen; }

  void spawn(oss::Runtime& rt) {
    for (std::size_t i = 0; i < kLen; ++i) {
      if (i == 0) {
        rt.task("head").out(v[0]).spawn([this] { v[0] += 1; });
      } else {
        rt.task("link").in(v[i - 1]).out(v[i]).spawn(
            [this, i] { v[i] = v[i - 1] + 1; });
      }
    }
  }

  [[nodiscard]] oss::Task::Fn bind(std::size_t i) {
    if (i == 0) return [this] { v[0] += 1; };
    return [this, i] { v[i] = v[i - 1] + 1; };
  }
};

/// 64 independent 4-task diamonds (a → b,c → d): fan-out plus a 2-way
/// fan-in per group, lots of parallelism for the submitter threads.
struct DiamondGraph {
  static constexpr std::size_t kGroups = 64;
  std::array<std::uint64_t, kGroups> top{}, left{}, right{}, bottom{};

  [[nodiscard]] std::size_t size() const { return kGroups * 4; }

  void spawn(oss::Runtime& rt) {
    for (std::size_t g = 0; g < kGroups; ++g) {
      rt.task("a").out(top[g]).spawn([this, g] { top[g] += 1; });
      rt.task("b").in(top[g]).out(left[g]).spawn(
          [this, g] { left[g] = top[g] + 1; });
      rt.task("c").in(top[g]).out(right[g]).spawn(
          [this, g] { right[g] = top[g] + 2; });
      rt.task("d").in(left[g]).in(right[g]).out(bottom[g]).spawn(
          [this, g] { bottom[g] = left[g] + right[g]; });
    }
  }

  [[nodiscard]] oss::Task::Fn bind(std::size_t i) {
    const std::size_t g = i / 4;
    switch (i % 4) {
      case 0: return [this, g] { top[g] += 1; };
      case 1: return [this, g] { left[g] = top[g] + 1; };
      case 2: return [this, g] { right[g] = top[g] + 2; };
      default: return [this, g] { bottom[g] = left[g] + right[g]; };
    }
  }
};

/// The opgraph shape at bench size: `kLayers` layers of `kWidth` ops, each
/// reading its own column and a neighbor of the previous layer — two input
/// regions plus one output per task, the structure the replay subsystem
/// was built for.
struct OpGridGraph {
  static constexpr int kWidth = 32;
  static constexpr int kLayers = 16;
  static constexpr int kElems = 8;
  std::vector<std::uint64_t> input;
  std::vector<std::vector<std::uint64_t>> layer;

  OpGridGraph()
      : input(static_cast<std::size_t>(kWidth) * kElems, 1),
        layer(kLayers,
              std::vector<std::uint64_t>(
                  static_cast<std::size_t>(kWidth) * kElems, 0)) {}

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(kWidth) * kLayers;
  }

  [[nodiscard]] const std::uint64_t* src(int l) const {
    return l == 0 ? input.data()
                  : layer[static_cast<std::size_t>(l) - 1].data();
  }

  void run_op(int l, int j) {
    const std::uint64_t* a = src(l) + static_cast<std::size_t>(j) * kElems;
    const std::uint64_t* b =
        src(l) +
        static_cast<std::size_t>((j + 1 + (l % 3)) % kWidth) * kElems;
    std::uint64_t* out = layer[static_cast<std::size_t>(l)].data() +
                         static_cast<std::size_t>(j) * kElems;
    for (int e = 0; e < kElems; ++e) out[e] = a[e] ^ (b[e] + 1);
  }

  void spawn(oss::Runtime& rt) {
    constexpr std::size_t bytes = sizeof(std::uint64_t) * kElems;
    for (int l = 0; l < kLayers; ++l) {
      for (int j = 0; j < kWidth; ++j) {
        const std::uint64_t* a = src(l) + static_cast<std::size_t>(j) * kElems;
        const std::uint64_t* b =
            src(l) +
            static_cast<std::size_t>((j + 1 + (l % 3)) % kWidth) * kElems;
        std::uint64_t* out = layer[static_cast<std::size_t>(l)].data() +
                             static_cast<std::size_t>(j) * kElems;
        rt.task("op")
            .in(a, bytes)
            .in(b, bytes)
            .out(out, bytes)
            .spawn([this, l, j] { run_op(l, j); });
      }
    }
  }

  [[nodiscard]] oss::Task::Fn bind(std::size_t i) {
    const int l = static_cast<int>(i) / kWidth;
    const int j = static_cast<int>(i) % kWidth;
    return [this, l, j] { run_op(l, j); };
  }
};

// --- the harness -----------------------------------------------------------

template <class Graph>
void run_case(benchmark::State& state, bool replay) {
  oss::Runtime rt(static_cast<std::size_t>(state.range(0)));
  Graph g;
  oss::ReplayGraph graph;
  const auto binder = [&g](std::size_t i) { return g.bind(i); };
  if (replay) {
    // Capture iteration: runs once, outside the timing loop — the whole
    // point is that its resolution cost is paid once per structure.
    oss::GraphCapture cap(rt);
    g.spawn(rt);
    graph = cap.finish();
    rt.taskwait();
  }
  auto round = [&] {
    if (replay) {
      rt.replay(graph, binder);
    } else {
      g.spawn(rt);
    }
    rt.taskwait();
  };
  for (int r = 0; r < 8; ++r) round(); // warm pool, scratch, queues
  for (auto _ : state) round();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.size()));
}

void BM_chain_fresh(benchmark::State& s) { run_case<ChainGraph>(s, false); }
void BM_chain_replay(benchmark::State& s) { run_case<ChainGraph>(s, true); }
void BM_diamond_fresh(benchmark::State& s) { run_case<DiamondGraph>(s, false); }
void BM_diamond_replay(benchmark::State& s) { run_case<DiamondGraph>(s, true); }
void BM_opgraph_fresh(benchmark::State& s) { run_case<OpGridGraph>(s, false); }
void BM_opgraph_replay(benchmark::State& s) { run_case<OpGridGraph>(s, true); }

BENCHMARK(BM_chain_fresh)->Name("Replay/chain/fresh")->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_chain_replay)->Name("Replay/chain/replay")->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_diamond_fresh)
    ->Name("Replay/diamond/fresh")->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_diamond_replay)
    ->Name("Replay/diamond/replay")->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_opgraph_fresh)
    ->Name("Replay/opgraph/fresh")->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_opgraph_replay)
    ->Name("Replay/opgraph/replay")->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
