// bm_numa — NUMA placement on/off on kmeans-style partitioned churn.
//
// The workload models a partitioned iterative kernel (kmeans assignment
// passes over per-partition point blocks): P partitions, each a node-bound
// buffer (round-robin over the topology's nodes), and per iteration a chain
// of tasks per partition that stream over the partition's data.
//
//   PartitionChurn/place:off/<threads>  — tasks carry no affinity hint;
//     the scheduler is free to run a partition's task on any socket.
//   PartitionChurn/place:on/<threads>   — tasks derive their home node from
//     their buffer (.affinity_auto()); the scheduler routes them to workers
//     on the buffer's node and steals same-socket-first.
//
// Counters: tasks_local / tasks_remote (per-iteration averages) prove where
// the routing put the work.  On a single-node machine the two variants are
// exactly equivalent (hints dissolve at spawn; counters stay 0) — the
// acceptance gate is placement-on >= placement-off on multi-node boxes and
// equality on single-node ones.  Fake topologies (OSS_TOPOLOGY=2x4) exercise
// the routing but *not* the memory system, so only real-NUMA runs show a
// bandwidth win.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "ompss/ompss.hpp"

namespace {

constexpr std::size_t kPartitionFloats = 16 * 1024; // 64 KiB per partition
constexpr int kChainLinks = 8;                      // per-partition chain depth

void BM_PartitionChurn(benchmark::State& state) {
  const bool place = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));

  // from_env so OSS_TOPOLOGY / OSS_NUMA / OSS_SCHEDULER steer the run
  // (e.g. OSS_TOPOLOGY=2x4 exercises the routing on a single-node box).
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  oss::Runtime rt(cfg);
  const std::size_t nodes = rt.topology().num_nodes();

  // One partition per worker and then some, bound round-robin over nodes
  // and first-touched so the pages are committed before timing.
  const std::size_t partitions = threads * 2;
  std::vector<oss::NumaBuffer> bufs;
  bufs.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    bufs.emplace_back(kPartitionFloats * sizeof(float),
                      static_cast<int>(p % nodes));
    oss::numa_first_touch(bufs.back().data(), bufs.back().size());
  }

  const auto before = rt.stats();
  for (auto _ : state) {
    for (int link = 0; link < kChainLinks; ++link) {
      for (std::size_t p = 0; p < partitions; ++p) {
        float* data = bufs[p].as<float>();
        auto b = rt.task("churn");
        b.inout(data, kPartitionFloats);
        if (place) b.affinity_auto();
        b.spawn([data] {
          // Streaming pass over the partition: bandwidth-bound, the access
          // pattern whose cost doubles when it crosses the interconnect.
          float acc = 0.f;
          for (std::size_t i = 0; i < kPartitionFloats; ++i) {
            acc += data[i];
            data[i] = acc * 0.5f;
          }
          benchmark::DoNotOptimize(acc);
        });
      }
    }
    rt.taskwait();
  }
  const auto after = rt.stats();

  const auto iters = static_cast<double>(state.iterations());
  state.counters["tasks_local"] = benchmark::Counter(
      static_cast<double>(after.tasks_local - before.tasks_local) / iters);
  state.counters["tasks_remote"] = benchmark::Counter(
      static_cast<double>(after.tasks_remote - before.tasks_remote) / iters);
  state.counters["steals_remote"] = benchmark::Counter(
      static_cast<double>(after.steals_remote - before.steals_remote) / iters);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(partitions) * kChainLinks);
  state.SetLabel(std::string(place ? "place:on" : "place:off") + "/" +
                 std::to_string(threads) + "t/" + std::to_string(nodes) +
                 "node");
}

} // namespace

BENCHMARK(BM_PartitionChurn)
    ->Name("PartitionChurn")
    ->ArgsProduct({{0, 1}, {1, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
