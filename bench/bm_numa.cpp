// bm_numa — NUMA placement on/off on kmeans-style partitioned churn.
//
// The workload models a partitioned iterative kernel (kmeans assignment
// passes over per-partition point blocks): P partitions, each a node-bound
// buffer (round-robin over the topology's nodes), and per iteration a chain
// of tasks per partition that stream over the partition's data.
//
//   PartitionChurn/place:off/<threads>  — tasks carry no affinity hint;
//     the scheduler is free to run a partition's task on any socket.
//   PartitionChurn/place:on/<threads>   — tasks derive their home node from
//     their buffer (.affinity_auto()); the scheduler routes them to workers
//     on the buffer's node and steals same-socket-first.
//
// Counters: tasks_local / tasks_remote (per-iteration averages) prove where
// the routing put the work.  On a single-node machine the two variants are
// exactly equivalent (hints dissolve at spawn; counters stay 0) — the
// acceptance gate is placement-on >= placement-off on multi-node boxes and
// equality on single-node ones.  Fake topologies (OSS_TOPOLOGY=2x4) exercise
// the routing but *not* the memory system, so only real-NUMA runs show a
// bandwidth win.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "apps/kmeans/kmeans_app.hpp"
#include "apps/streamcluster/streamcluster_app.hpp"
#include "bench_core/workload.hpp"
#include "ompss/ompss.hpp"

namespace {

constexpr std::size_t kPartitionFloats = 16 * 1024; // 64 KiB per partition
constexpr int kChainLinks = 8;                      // per-partition chain depth

void BM_PartitionChurn(benchmark::State& state) {
  const bool place = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));

  // from_env so OSS_TOPOLOGY / OSS_NUMA / OSS_SCHEDULER steer the run
  // (e.g. OSS_TOPOLOGY=2x4 exercises the routing on a single-node box).
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  oss::Runtime rt(cfg);
  const std::size_t nodes = rt.topology().num_nodes();

  // One partition per worker and then some, bound round-robin over nodes
  // and first-touched so the pages are committed before timing.
  const std::size_t partitions = threads * 2;
  std::vector<oss::NumaBuffer> bufs;
  bufs.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    bufs.emplace_back(kPartitionFloats * sizeof(float),
                      static_cast<int>(p % nodes));
    oss::numa_first_touch(bufs.back().data(), bufs.back().size());
  }

  const auto before = rt.stats();
  for (auto _ : state) {
    for (int link = 0; link < kChainLinks; ++link) {
      for (std::size_t p = 0; p < partitions; ++p) {
        float* data = bufs[p].as<float>();
        auto b = rt.task("churn");
        b.inout(data, kPartitionFloats);
        if (place) b.affinity_auto();
        b.spawn([data] {
          // Streaming pass over the partition: bandwidth-bound, the access
          // pattern whose cost doubles when it crosses the interconnect.
          float acc = 0.f;
          for (std::size_t i = 0; i < kPartitionFloats; ++i) {
            acc += data[i];
            data[i] = acc * 0.5f;
          }
          benchmark::DoNotOptimize(acc);
        });
      }
    }
    rt.taskwait();
  }
  const auto after = rt.stats();

  const auto iters = static_cast<double>(state.iterations());
  state.counters["tasks_local"] = benchmark::Counter(
      static_cast<double>(after.tasks_local - before.tasks_local) / iters);
  state.counters["tasks_remote"] = benchmark::Counter(
      static_cast<double>(after.tasks_remote - before.tasks_remote) / iters);
  state.counters["steals_remote"] = benchmark::Counter(
      static_cast<double>(after.steals_remote - before.steals_remote) / iters);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(partitions) * kChainLinks);
  state.SetLabel(std::string(place ? "place:on" : "place:off") + "/" +
                 std::to_string(threads) + "t/" + std::to_string(nodes) +
                 "node");
}

// --- app-suite auto-affinity (registry-backed placement end to end) ---------
//
// The real PARSEC-style apps, with their partitioned data allocated through
// NumaBuffer and tasks spawned `.affinity_auto()` (kmeans_app_ompss /
// streamcluster_app_ompss).  place:on vs place:off contrasts the identical
// task graph with and without the hints; the reported tasks_local /
// tasks_remote counters are the acceptance signal — under a multi-node
// topology (real or OSS_TOPOLOGY=2x2) placement-on must show
// tasks_local > tasks_remote, and per-iteration stats come straight from the
// app's own runtime.

void report_app_stats(benchmark::State& state, const oss::StatsSnapshot& acc,
                      const char* label, bool place,
                      std::size_t threads) {
  const auto iters = static_cast<double>(state.iterations());
  state.counters["tasks_local"] =
      benchmark::Counter(static_cast<double>(acc.tasks_local) / iters);
  state.counters["tasks_remote"] =
      benchmark::Counter(static_cast<double>(acc.tasks_remote) / iters);
  state.counters["overflow"] =
      benchmark::Counter(static_cast<double>(acc.overflow_placements) / iters);
  state.SetLabel(std::string(label) + "/" +
                 (place ? "place:on" : "place:off") + "/" +
                 std::to_string(threads) + "t");
}

void BM_KmeansAuto(benchmark::State& state) {
  const bool place = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto w = apps::KmeansWorkload::make(benchcore::Scale::Tiny);
  oss::StatsSnapshot acc, s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::kmeans_app_ompss(w, threads, place, &s));
    acc.tasks_local += s.tasks_local;
    acc.tasks_remote += s.tasks_remote;
    acc.overflow_placements += s.overflow_placements;
  }
  report_app_stats(state, acc, "kmeans", place, threads);
}

void BM_StreamclusterAuto(benchmark::State& state) {
  const bool place = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto w = apps::StreamclusterWorkload::make(benchcore::Scale::Tiny);
  oss::StatsSnapshot acc, s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::streamcluster_app_ompss(w, threads, place, &s));
    acc.tasks_local += s.tasks_local;
    acc.tasks_remote += s.tasks_remote;
    acc.overflow_placements += s.overflow_placements;
  }
  report_app_stats(state, acc, "streamcluster", place, threads);
}

} // namespace

BENCHMARK(BM_PartitionChurn)
    ->Name("PartitionChurn")
    ->ArgsProduct({{0, 1}, {1, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_KmeansAuto)
    ->Name("KmeansAuto")
    ->ArgsProduct({{0, 1}, {4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_StreamclusterAuto)
    ->Name("StreamclusterAuto")
    ->ArgsProduct({{0, 1}, {4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
