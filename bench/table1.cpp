// table1 — regenerates the paper's Table 1: speedup of the OmpSs variant
// over the Pthreads variant for all 10 benchmarks across core counts, with
// per-benchmark geometric means (Mean column), per-core-count means (Mean
// row), and the overall geomean (bottom-right).
//
// Usage:
//   table1 [--cores=1,8,16,24,32] [--reps=3] [--scale=tiny|small|medium|large]
//          [--only=c-ray,md5,...] [--seconds]
//
// Defaults are sized for this container (1 physical core): cores 1,2,4 and
// the small scale.  Pass --cores=1,8,16,24,32 --scale=large on a 32-core
// machine to mirror the paper's setup exactly.  --seconds additionally
// prints the raw median times behind each speedup cell.
#include <cstdio>
#include <exception>
#include <string>

#include "apps/apps.hpp"
#include "bench_core/bench_core.hpp"
#include "ompss/ompss.hpp"

namespace {

using benchcore::Scale;
using benchcore::Table1Harness;
using benchcore::VariantSet;

/// Builds the 10 VariantSets at the given scale.  Workloads are constructed
/// once, outside the timed region.
struct Suite {
  apps::CRayWorkload cray;
  apps::RotateWorkload rotate;
  apps::RgbcmyWorkload rgbcmy;
  apps::Md5Workload md5;
  apps::KmeansWorkload kmeans;
  apps::RayRotWorkload rayrot;
  apps::RotCcWorkload rotcc;
  apps::StreamclusterWorkload streamcluster;
  apps::BodytrackWorkload bodytrack;
  apps::H264Workload h264;

  explicit Suite(Scale scale)
      : cray(apps::CRayWorkload::make(scale)),
        rotate(apps::RotateWorkload::make(scale)),
        rgbcmy(apps::RgbcmyWorkload::make(scale)),
        md5(apps::Md5Workload::make(scale)),
        kmeans(apps::KmeansWorkload::make(scale)),
        rayrot(apps::RayRotWorkload::make(scale)),
        rotcc(apps::RotCcWorkload::make(scale)),
        streamcluster(apps::StreamclusterWorkload::make(scale)),
        bodytrack(apps::BodytrackWorkload::make(scale)),
        h264(apps::H264Workload::make(scale)) {}

  void register_all(Table1Harness& h) const {
    h.add({"c-ray", [this] { apps::c_ray_seq(cray); },
           [this](std::size_t n) { apps::c_ray_pthreads(cray, n); },
           [this](std::size_t n) { apps::c_ray_ompss(cray, n); }});
    h.add({"rotate", [this] { apps::rotate_seq(rotate); },
           [this](std::size_t n) { apps::rotate_pthreads(rotate, n); },
           [this](std::size_t n) { apps::rotate_ompss(rotate, n); }});
    h.add({"rgbcmy", [this] { apps::rgbcmy_seq(rgbcmy); },
           [this](std::size_t n) { apps::rgbcmy_pthreads(rgbcmy, n); },
           [this](std::size_t n) { apps::rgbcmy_ompss(rgbcmy, n); }});
    h.add({"md5", [this] { apps::md5_seq(md5); },
           [this](std::size_t n) { apps::md5_pthreads(md5, n); },
           [this](std::size_t n) { apps::md5_ompss(md5, n); }});
    h.add({"kmeans", [this] { apps::kmeans_app_seq(kmeans); },
           [this](std::size_t n) { apps::kmeans_app_pthreads(kmeans, n); },
           [this](std::size_t n) { apps::kmeans_app_ompss(kmeans, n); }});
    h.add({"ray-rot", [this] { apps::ray_rot_seq(rayrot); },
           [this](std::size_t n) { apps::ray_rot_pthreads(rayrot, n); },
           [this](std::size_t n) { apps::ray_rot_ompss(rayrot, n); }});
    h.add({"rot-cc", [this] { apps::rot_cc_seq(rotcc); },
           [this](std::size_t n) { apps::rot_cc_pthreads(rotcc, n); },
           [this](std::size_t n) { apps::rot_cc_ompss(rotcc, n); }});
    h.add({"streamcluster", [this] { apps::streamcluster_app_seq(streamcluster); },
           [this](std::size_t n) { apps::streamcluster_app_pthreads(streamcluster, n); },
           [this](std::size_t n) { apps::streamcluster_app_ompss(streamcluster, n); }});
    h.add({"bodytrack", [this] { apps::bodytrack_seq(bodytrack); },
           [this](std::size_t n) { apps::bodytrack_pthreads(bodytrack, n); },
           [this](std::size_t n) { apps::bodytrack_ompss(bodytrack, n); }});
    h.add({"h264dec", [this] { apps::h264dec_seq(h264); },
           [this](std::size_t n) { apps::h264dec_pthreads(h264, n); },
           [this](std::size_t n) { apps::h264dec_ompss(h264, n); }});
  }
};

} // namespace

int main(int argc, char** argv) {
  try {
    const benchcore::Args args(argc, argv);
    const Scale scale = benchcore::parse_scale(args.get("scale", "tiny"));
    const auto cores = args.get_sizes("cores", {1, 2, 4});
    const auto reps = static_cast<std::size_t>(args.get_long("reps", 3));
    const auto only = args.get_list("only");

    std::printf("Table 1 reproduction — OmpSs-over-Pthreads speedup factors\n");
    std::printf("scale=%s reps=%zu (median); >1.00 means OmpSs is faster\n",
                benchcore::to_string(scale), reps);

    // NUMA context of the run: kmeans/streamcluster allocate their
    // partitions through NumaBuffer and spawn .affinity_auto(), so on a
    // multi-node topology (real or OSS_TOPOLOGY=...) their OmpSs columns
    // include the placement machinery end to end.
    {
      const oss::RuntimeConfig rcfg = oss::RuntimeConfig::from_env();
      const oss::Topology topo = rcfg.resolved_topology();
      std::printf("numa: %zu node(s), mode=%s, pin=%s — "
                  "kmeans/streamcluster run registry-backed auto-affinity\n",
                  topo.num_nodes(), oss::to_string(rcfg.numa),
                  oss::to_string(rcfg.resolved_pin_mode()));
      if (oss::stats_footer_enabled()) {
        std::printf("stats: OSS_STATS=1 — every OmpSs app run prints a "
                    "[oss-stats] footer to stderr, plus an [oss-span] "
                    "work/span/parallelism line where the app reports it\n");
      }
      std::printf("\n");
    }

    Suite suite(scale);
    Table1Harness harness(cores, reps);
    suite.register_all(harness);

    std::vector<benchcore::SpeedupRow> rows;
    const std::string table = harness.render_all(only, &rows);
    std::fputs(table.c_str(), stdout);

    if (args.has("seconds")) {
      std::printf("\nraw median seconds (pthreads | ompss):\n");
      benchcore::TextTable t;
      std::vector<std::string> header{"Benchmark"};
      for (std::size_t c : cores) header.push_back(std::to_string(c));
      t.set_header(std::move(header));
      for (const auto& r : rows) {
        std::vector<std::string> cells{r.name};
        for (std::size_t i = 0; i < r.pthreads_seconds.size(); ++i) {
          cells.push_back(benchcore::TextTable::fmt(r.pthreads_seconds[i] * 1e3, 1) +
                          "|" +
                          benchcore::TextTable::fmt(r.ompss_seconds[i] * 1e3, 1) +
                          "ms");
        }
        t.add_row(std::move(cells));
      }
      std::fputs(t.render().c_str(), stdout);
    }

    std::printf(
        "\npaper reference (32-core cc-NUMA): overall geomean 1.02; biggest\n"
        "wins rgbcmy/ray-rot/c-ray, biggest loss h264dec at high core counts.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table1: %s\n", e.what());
    return 1;
  }
}
