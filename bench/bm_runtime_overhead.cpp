// bm_runtime_overhead — single-thread spawn+join latency of the runtime
// itself, the acceptance bench for the allocation-free steady-state spawn
// path (docs/memory.md).  Per-task cost is what makes task granularity
// matter for h264dec (§4 of the paper): the cheaper a spawn, the finer the
// tasks an application can afford.
//
// The gated cases sweep OSS_POOL off(0)/on(1) on one worker thread, with
// the Runtime constructed outside the timing loop and the pool warmed
// first — what is measured is the steady-state spawn→execute→retire cycle,
// not startup or cold-cache allocation:
//
//   Overhead/empty/<pool>   — independent empty tasks (pure spawn+join)
//   Overhead/chain/<pool>   — 1-dep chain (spawn + RAW edge + wakeup/link)
//   Overhead/fanin8/<pool>  — 8 producers + 1 consumer with an 8-entry
//                             access list (fan-in edge insertion)
//
// The CI bench-smoke job gates Overhead/* against baseline_overhead.json,
// normalized by Overhead/empty/1 (see bench/compare_bench.py — the gate
// only arms between like machines).  The ungated extras below keep the old
// coverage of wide access lists and critical sections.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "ompss/ompss.hpp"

namespace {

oss::RuntimeConfig overhead_config(bool pool) {
  oss::RuntimeConfig cfg;
  cfg.num_threads = 1;
  cfg.pool = pool;
  return cfg;
}

constexpr int kBatch = 256;

void BM_overhead_empty(benchmark::State& state) {
  oss::Runtime rt(overhead_config(state.range(0) != 0));
  auto round = [&] {
    for (int i = 0; i < kBatch; ++i) rt.task().spawn([] {});
    rt.taskwait();
  };
  for (int r = 0; r < 8; ++r) round(); // warm the pool and the scheduler
  for (auto _ : state) round();
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_overhead_chain(benchmark::State& state) {
  oss::Runtime rt(overhead_config(state.range(0) != 0));
  int token = 0;
  auto round = [&] {
    for (int i = 0; i < kBatch; ++i) rt.task().inout(token).spawn([] {});
    rt.taskwait();
  };
  for (int r = 0; r < 8; ++r) round();
  for (auto _ : state) round();
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_overhead_fanin8(benchmark::State& state) {
  oss::Runtime rt(overhead_config(state.range(0) != 0));
  std::vector<int> v(8, 0);
  int sum = 0;
  constexpr int kGroups = kBatch / 9;
  auto round = [&] {
    for (int g = 0; g < kGroups; ++g) {
      for (std::size_t i = 0; i < 8; ++i)
        rt.task().out(v[i]).spawn([] {});
      rt.task()
          .in(v[0]).in(v[1]).in(v[2]).in(v[3])
          .in(v[4]).in(v[5]).in(v[6]).in(v[7])
          .inout(sum)
          .spawn([&] { ++sum; });
    }
    rt.taskwait();
  };
  for (int r = 0; r < 8; ++r) round();
  for (auto _ : state) round();
  state.SetItemsProcessed(state.iterations() * kGroups * 9);
}

BENCHMARK(BM_overhead_empty)->Name("Overhead/empty")->Arg(0)->Arg(1);
BENCHMARK(BM_overhead_chain)->Name("Overhead/chain")->Arg(0)->Arg(1);
BENCHMARK(BM_overhead_fanin8)->Name("Overhead/fanin8")->Arg(0)->Arg(1);

// --- ungated extras (coverage kept from the pre-pool bench) ----------------

void BM_wide_access_lists(benchmark::State& state) {
  const int naccesses = static_cast<int>(state.range(0));
  std::vector<int> vars(static_cast<std::size_t>(naccesses));
  oss::Runtime rt(overhead_config(true));
  for (auto _ : state) {
    for (int t = 0; t < 500; ++t) {
      oss::AccessList acc;
      acc.reserve(static_cast<std::size_t>(naccesses));
      for (int i = 0; i < naccesses; ++i)
        acc.push_back(oss::inout(vars[static_cast<std::size_t>(i)]));
      rt.task().accesses(std::move(acc)).spawn([] {});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_critical_throughput(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    long counter = 0;
    for (int i = 0; i < 500; ++i) {
      rt.task().spawn([&rt, &counter] { rt.critical("c", [&] { counter++; }); });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_taskwait_on_latency(benchmark::State& state) {
  for (auto _ : state) {
    oss::Runtime rt(2);
    int x = 0;
    for (int i = 0; i < 200; ++i) {
      rt.task().inout(x).spawn([] {});
      rt.taskwait_on(x);
    }
  }
  state.SetItemsProcessed(state.iterations() * 200);
}

constexpr int kIters = 3;

BENCHMARK(BM_wide_access_lists)->Arg(1)->Arg(4)->Arg(16)->Iterations(kIters);
BENCHMARK(BM_critical_throughput)->Arg(1)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_taskwait_on_latency)->Iterations(kIters);

} // namespace

BENCHMARK_MAIN();
