// bm_runtime_overhead — microbenchmarks of the `oss` runtime itself (A4 in
// DESIGN.md): the per-task costs that make task granularity matter for
// h264dec (§4 of the paper).
//
//   * spawn+drain of empty independent tasks (pure runtime overhead)
//   * dependency-chain latency (spawn + RAW edge + wakeup per link)
//   * access registration cost as a function of access-list length
//   * critical-section throughput
#include <benchmark/benchmark.h>

#include <vector>

#include "ompss/ompss.hpp"

namespace {

void BM_spawn_empty_tasks(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    for (int i = 0; i < 2000; ++i) rt.task().spawn([] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}

void BM_dependency_chain(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    int token = 0;
    for (int i = 0; i < 1000; ++i) rt.task().inout(token).spawn([] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_wide_access_lists(benchmark::State& state) {
  const int naccesses = static_cast<int>(state.range(0));
  std::vector<int> vars(static_cast<std::size_t>(naccesses));
  for (auto _ : state) {
    oss::Runtime rt(1);
    for (int t = 0; t < 500; ++t) {
      oss::AccessList acc;
      acc.reserve(static_cast<std::size_t>(naccesses));
      for (int i = 0; i < naccesses; ++i)
        acc.push_back(oss::inout(vars[static_cast<std::size_t>(i)]));
      rt.task().accesses(std::move(acc)).spawn([] {});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_critical_throughput(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    oss::Runtime rt(threads);
    long counter = 0;
    for (int i = 0; i < 500; ++i) {
      rt.task().spawn([&rt, &counter] { rt.critical("c", [&] { counter++; }); });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_taskwait_on_latency(benchmark::State& state) {
  for (auto _ : state) {
    oss::Runtime rt(2);
    int x = 0;
    for (int i = 0; i < 200; ++i) {
      rt.task().inout(x).spawn([] {});
      rt.taskwait_on(x);
    }
  }
  state.SetItemsProcessed(state.iterations() * 200);
}

constexpr int kIters = 3;

BENCHMARK(BM_spawn_empty_tasks)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_dependency_chain)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_wide_access_lists)->Arg(1)->Arg(4)->Arg(16)->Iterations(kIters);
BENCHMARK(BM_critical_throughput)->Arg(1)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_taskwait_on_latency)->Iterations(kIters);

} // namespace

BENCHMARK_MAIN();
