// bm_spawn_scaling — dependency-registration throughput under concurrent
// spawners: the acceptance bench for the sharded dependency domain
// (docs/dependencies.md).
//
// Two tiers, both swept over OSS_DEP_SHARDS ∈ {1, 16} × spawner threads:
//
//   DomainChurn/<shards>/<threads>  — raw DepDomain::register_task
//     throughput: each thread registers tasks with small inout regions
//     cycling through its own arena (disjoint address ranges → disjoint
//     shards when sharded; one serializing lock when shards=1).  This is
//     the pure tentpole contrast — no scheduler, no execution.
//
//   SpawnScaling/<shards>/<threads> — end-to-end Runtime::spawn_task from
//     N foreign threads (per-thread dependency chains over disjoint
//     arenas), drained by a barrier.  What applications actually feel.
//
// The sharded domain must beat the single-lock baseline at 4+ spawner
// threads on multi-core machines; on a single core the contrast collapses
// to lock-handoff overhead (the CI gate normalizes and only arms between
// like machines — see bench/compare_bench.py and baseline_spawn.json).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "ompss/ompss.hpp"

namespace {

constexpr std::size_t kArenaBytes = std::size_t{4} << 20; // 4 stripes' worth
constexpr std::size_t kRegionBytes = 256;
constexpr int kTasksPerThread = 2000;

/// One heap arena per spawner thread, far enough apart that their stripes
/// hash to different shards with overwhelming probability.
std::vector<std::unique_ptr<char[]>> make_arenas(int threads) {
  std::vector<std::unique_ptr<char[]>> arenas;
  arenas.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    arenas.push_back(std::make_unique<char[]>(kArenaBytes));
  }
  return arenas;
}

// --- tier 1: raw registration churn ---------------------------------------

void BM_DomainChurn(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto arenas = make_arenas(threads);
  auto ctx = std::make_shared<oss::TaskContext>(shards);

  for (auto _ : state) {
    oss::DepDomain domain(shards);
    std::atomic<std::uint64_t> ids{0};
    std::vector<std::thread> spawners;
    for (int t = 0; t < threads; ++t) {
      spawners.emplace_back([&, t] {
        char* arena = arenas[static_cast<std::size_t>(t)].get();
        oss::TaskPtr prev;
        for (int i = 0; i < kTasksPerThread; ++i) {
          // 256-byte windows sliding by half a window: task i overlaps
          // task i-1, so every registration inserts one real edge
          // (successor lock + preds increment included in the
          // measurement) — within a thread, never across threads.
          const std::size_t off =
              (static_cast<std::size_t>(i) * (kRegionBytes / 2)) %
              (kArenaBytes - kRegionBytes);
          auto task = oss::make_task(
              ids.fetch_add(1, std::memory_order_relaxed) + 1, [] {},
              oss::AccessList{oss::region(arena + off, kRegionBytes,
                                          oss::Mode::InOut)},
              ctx, "");
          domain.register_task(task, nullptr);
          // Retire the predecessor one step late: it was live while the
          // current task registered against it (the edge was real), and
          // successor lists still stay one entry short.
          if (prev) prev->mark_finished();
          prev = std::move(task);
        }
        if (prev) prev->mark_finished();
      });
    }
    for (auto& s : spawners) s.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          threads * kTasksPerThread);
  state.SetLabel(std::to_string(shards) + " shards/" +
                 std::to_string(threads) + "t");
}

// --- tier 2: end-to-end spawn scaling --------------------------------------

void BM_SpawnScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto arenas = make_arenas(threads);

  // Env-derived base so OSS_TRACE / OSS_PIN sweeps apply to this bench
  // (the tracing-overhead acceptance runs it with OSS_TRACE=full).
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = 2;
  cfg.dep_shards = shards;
  oss::Runtime rt(cfg);

  for (auto _ : state) {
    std::atomic<long> hits{0};
    std::vector<std::thread> spawners;
    for (int t = 0; t < threads; ++t) {
      spawners.emplace_back([&, t] {
        char* arena = arenas[static_cast<std::size_t>(t)].get();
        for (int i = 0; i < kTasksPerThread; ++i) {
          // Same sliding overlap as DomainChurn: dependency chains form
          // within a spawner whenever execution lags the spawn burst.
          const std::size_t off =
              (static_cast<std::size_t>(i) * (kRegionBytes / 2)) %
              (kArenaBytes - kRegionBytes);
          rt.task("churn")
              .access(oss::region(arena + off, kRegionBytes,
                                  oss::Mode::InOut))
              .spawn([&hits] {
                hits.fetch_add(1, std::memory_order_relaxed);
              });
        }
      });
    }
    for (auto& s : spawners) s.join();
    rt.barrier();
    if (hits.load() != static_cast<long>(threads) * kTasksPerThread) {
      state.SkipWithError("lost tasks");
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          threads * kTasksPerThread);
  state.SetLabel(std::to_string(shards) + " shards/" +
                 std::to_string(threads) + "t");
}

} // namespace

BENCHMARK(BM_DomainChurn)
    ->Name("DomainChurn")
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SpawnScaling)
    ->Name("SpawnScaling")
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
