// ablation_idle — A6: the paper's closing observation (§4): "because the
// runtime implements core communication/synchronization ... in a polling
// fashion for performance reasons, all used cores are always fully loaded
// even if there is insufficient work.  This reduces overall system
// responsiveness and power efficiency when too many cores are used."
//
// This bench quantifies that trade-off: for each idle policy (spin / yield
// / sleep), it measures (a) the CPU time consumed by an idle runtime over a
// fixed wall-clock window (the power/responsiveness cost) and (b) the
// latency of waking the workers up with a burst of tasks afterwards.
//
// Usage: ablation_idle [--threads=4] [--window-ms=200]
#include <cstdio>
#include <exception>
#include <thread>

#include <sys/resource.h>

#include "bench_core/bench_core.hpp"
#include "ompss/ompss.hpp"

namespace {

double process_cpu_seconds() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_utime.tv_sec + u.ru_stime.tv_sec) +
         1e-6 * static_cast<double>(u.ru_utime.tv_usec + u.ru_stime.tv_usec);
}

} // namespace

int main(int argc, char** argv) {
  try {
    const benchcore::Args args(argc, argv);
    const auto threads = static_cast<std::size_t>(args.get_long("threads", 4));
    const auto window_ms = args.get_long("window-ms", 200);

    std::printf("A6: idle-policy cost, %zu threads, %ld ms idle window\n\n",
                threads, window_ms);

    benchcore::TextTable t;
    t.set_header({"idle policy", "idle CPU (ms)", "CPU/window", "wakeup burst (ms)"});

    for (auto policy : {oss::IdlePolicy::Spin, oss::IdlePolicy::Yield,
                        oss::IdlePolicy::Sleep, oss::IdlePolicy::Park}) {
      oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
      cfg.idle = policy;
      oss::Runtime rt(cfg);

      // (a) CPU burned while completely idle.
      const double cpu0 = process_cpu_seconds();
      std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
      const double idle_cpu = process_cpu_seconds() - cpu0;

      // (b) wake-up latency: time to complete a burst after the idle spell.
      benchcore::WallTimer timer;
      for (int i = 0; i < 200; ++i) {
        rt.task("burst").spawn([] { for (int j = 0; j < 200; ++j) { volatile int sink = j; (void)sink; } });
      }
      rt.taskwait();
      const double burst_ms = timer.millis();

      t.add_row(oss::to_string(policy),
                {idle_cpu * 1e3,
                 idle_cpu / (static_cast<double>(window_ms) * 1e-3),
                 burst_ms});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nshape: spin burns ~#workers×window of CPU while idle but "
                "wakes instantly; sleep is near-zero idle cost with a "
                "latency penalty — the paper's responsiveness/power point. "
                "park (eventcount) combines near-zero idle cost with "
                "notification-latency wakeup.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_idle: %s\n", e.what());
    return 1;
  }
}
