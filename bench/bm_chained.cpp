// bm_chained — google-benchmark for the chained workloads (Table 1 rows
// ray-rot and rot-cc) whose OmpSs variants benefit from dependence-aware
// locality scheduling.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"

namespace {

using benchcore::Scale;

const apps::RayRotWorkload& rayrot_w() {
  static const auto w = apps::RayRotWorkload::make(Scale::Tiny);
  return w;
}
const apps::RotCcWorkload& rotcc_w() {
  static const auto w = apps::RotCcWorkload::make(Scale::Tiny);
  return w;
}

// Force workload construction before main() so input generation
// (scene/bitstream synthesis) never lands inside a timed region.
const auto& warm_rayrot_w = rayrot_w();
const auto& warm_rotcc_w = rotcc_w();

void BM_ray_rot_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::ray_rot_seq(rayrot_w()));
}
void BM_ray_rot_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::ray_rot_pthreads(
        rayrot_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_ray_rot_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::ray_rot_ompss(
        rayrot_w(), static_cast<std::size_t>(state.range(0))));
}

void BM_rot_cc_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::rot_cc_seq(rotcc_w()));
}
void BM_rot_cc_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::rot_cc_pthreads(
        rotcc_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_rot_cc_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::rot_cc_ompss(
        rotcc_w(), static_cast<std::size_t>(state.range(0))));
}

constexpr int kIters = 3;
#define THREAD_ARGS Arg(1)->Arg(2)->Arg(4)->Iterations(kIters)

BENCHMARK(BM_ray_rot_seq)->Iterations(kIters);
BENCHMARK(BM_ray_rot_pthreads)->THREAD_ARGS;
BENCHMARK(BM_ray_rot_ompss)->THREAD_ARGS;
BENCHMARK(BM_rot_cc_seq)->Iterations(kIters);
BENCHMARK(BM_rot_cc_pthreads)->THREAD_ARGS;
BENCHMARK(BM_rot_cc_ompss)->THREAD_ARGS;

} // namespace

BENCHMARK_MAIN();
