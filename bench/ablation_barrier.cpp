// ablation_barrier — A1: the paper attributes rgbcmy's OmpSs win at high
// core counts to the runtime's *polling* task barrier versus the Pthreads
// *blocking* thread barrier.  This bench runs the rgbcmy workload three
// ways at each thread count:
//
//   pthreads-blocking : pool + condvar barrier between iterations (baseline)
//   ompss-polling     : OmpSs variant, polling task barrier (default)
//   ompss-blocking    : OmpSs variant forced onto a blocking wait policy
//
// Shape expected from the paper: polling ≥ blocking, with the gap growing
// with thread count (barrier wake-up latency scales with waiters).
//
// Usage: ablation_barrier [--threads=1,2,4] [--reps=3] [--scale=tiny]
#include <cstdio>
#include <exception>

#include "apps/apps.hpp"
#include "bench_core/bench_core.hpp"

int main(int argc, char** argv) {
  try {
    const benchcore::Args args(argc, argv);
    const auto scale = benchcore::parse_scale(args.get("scale", "tiny"));
    const auto threads = args.get_sizes("threads", {1, 2, 4});
    const auto reps = static_cast<std::size_t>(args.get_long("reps", 3));

    const auto w = apps::RgbcmyWorkload::make(scale);
    std::printf("A1: polling vs blocking barriers on rgbcmy (%d iterations of "
                "%dx%d, scale=%s, median of %zu)\n\n",
                w.iters, w.src.width(), w.src.height(),
                benchcore::to_string(scale), reps);

    benchcore::TextTable t;
    t.set_header({"threads", "pthreads-blocking (ms)", "ompss-polling (ms)",
                  "ompss-blocking (ms)", "poll/block speedup"});
    for (std::size_t n : threads) {
      const double tp = benchcore::measure_median_seconds(
          [&] { apps::rgbcmy_pthreads(w, n); }, reps);
      const double tpoll = benchcore::measure_median_seconds(
          [&] { apps::rgbcmy_ompss_with_policy(w, n, true); }, reps);
      const double tblock = benchcore::measure_median_seconds(
          [&] { apps::rgbcmy_ompss_with_policy(w, n, false); }, reps);
      t.add_row(std::to_string(n),
                {tp * 1e3, tpoll * 1e3, tblock * 1e3, tblock / tpoll});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper reference: rgbcmy speedups 1.02/0.98/1.14/1.40/1.53 at "
                "1/8/16/24/32 cores — polling wins grow with core count.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_barrier: %s\n", e.what());
    return 1;
  }
}
