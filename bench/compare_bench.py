#!/usr/bin/env python3
"""Scheduler bench regression gate.

Compares a google-benchmark JSON run of bm_scheduler against the recorded
baseline (bench/baseline_scheduler.json) and fails on regressions of the
DequeChurn/PolicyChurn cases beyond a tolerance band.

Raw times are machine-dependent, so the comparison is *normalized*: within
each file, every benchmark's items_per_second is divided by the file's
reference benchmark (DequeChurn/mutex/1 by default — single-threaded
mutex-deque churn, a decent proxy for the machine's uncontended speed).
The gate then compares normalized scores baseline-vs-current, which makes a
baseline recorded on one machine meaningful on another: what is gated is the
*shape* of the scheduler's scaling (lock-free vs mutex ratio, per-policy
throughput relative to raw queue ops), not absolute nanoseconds.

Contention-sensitive multi-thread cases do NOT transfer across different
core counts (4 threads on 1 core serialize; on 4 cores they contend), so
when the two files report different context.num_cpus the script prints the
comparison for information but exits 0 — the gate is only armed between
like machines.  Refresh the baseline from a CI runner with --update (run
the job, download the bench_current.json artifact, commit it) to arm the
gate in CI.

Exit status: 0 when every matched benchmark is within tolerance (or the
machines differ), 1 on any regression or when the files share no
benchmarks.

Usage:
  bm_scheduler --benchmark_format=json --benchmark_out=current.json ...
  python3 bench/compare_bench.py bench/baseline_scheduler.json current.json
  python3 bench/compare_bench.py baseline.json current.json --tolerance 0.25
  python3 bench/compare_bench.py baseline.json current.json --update
      # rewrite the baseline with the current run (after a verified win)
"""

import argparse
import json
import re
import shutil
import sys


def load_num_cpus(path):
    with open(path) as f:
        return json.load(f).get("context", {}).get("num_cpus")


def load_scores(path, pattern, reference):
    """Returns {name: items_per_second} for matching benchmarks, normalized
    by the reference benchmark's items_per_second within the same file."""
    with open(path) as f:
        data = json.load(f)
    rx = re.compile(pattern)
    raw = {}
    ref_score = None
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        ips = b.get("items_per_second")
        if ips is None or ips <= 0:
            continue
        if name.startswith(reference):
            ref_score = ips
        if rx.search(name):
            raw[name] = ips
    if not raw:
        return {}
    if ref_score is None:
        # No reference in the file: fall back to un-normalized comparison
        # (both files must then come from the same machine).
        print(f"note: reference '{reference}' not found in {path}; "
              "comparing un-normalized items_per_second")
        ref_score = 1.0
    return {name: ips / ref_score for name, ips in raw.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed normalized-throughput drop (default 0.25)")
    ap.add_argument("--filter", default=r"^(DequeChurn|PolicyChurn)",
                    help="regex of benchmark names to gate")
    ap.add_argument("--reference", default="DequeChurn/mutex/1",
                    help="benchmark used to normalize each file")
    ap.add_argument("--update", action="store_true",
                    help="copy current over the baseline instead of comparing")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.current}")
        return 0

    base = load_scores(args.baseline, args.filter, args.reference)
    curr = load_scores(args.current, args.filter, args.reference)
    shared = sorted(set(base) & set(curr))
    if not shared:
        print("error: baseline and current share no gated benchmarks")
        return 1

    failures = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  baseline   current    ratio")
    for name in shared:
        ratio = curr[name] / base[name]
        flag = ""
        if ratio < 1.0 - args.tolerance:
            flag = "  REGRESSION"
            failures.append((name, ratio))
        print(f"{name:<{width}}  {base[name]:8.3f}  {curr[name]:8.3f}  "
              f"{ratio:6.2f}x{flag}")

    only = sorted((set(base) | set(curr)) - set(shared))
    for name in only:
        print(f"{name:<{width}}  (present in only one file; skipped)")

    base_cpus = load_num_cpus(args.baseline)
    curr_cpus = load_num_cpus(args.current)
    if base_cpus != curr_cpus:
        print(f"\nnote: baseline recorded on {base_cpus} cpus, current run "
              f"on {curr_cpus} — contention-sensitive cases do not transfer "
              "across core counts, gate NOT armed (informational only).\n"
              "Refresh the baseline on this machine class with --update to "
              "arm it.")
        return 0

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for name, ratio in failures:
            print(f"  {name}: {1 - ratio:.1%} below baseline")
        return 1
    print(f"\nOK: {len(shared)} benchmark(s) within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
