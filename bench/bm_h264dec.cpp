// bm_h264dec — google-benchmark for the h264dec row of Table 1: the
// sequential decoder, the Pthreads line-decoding (wavefront) decoder, and
// the OmpSs Listing-1 pipeline decoder.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"

namespace {

using benchcore::Scale;

const apps::H264Workload& h264_w() {
  static const auto w = apps::H264Workload::make(Scale::Tiny);
  return w;
}

// Force workload construction before main() so input generation
// (scene/bitstream synthesis) never lands inside a timed region.
const auto& warm_h264_w = h264_w();

void BM_h264dec_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::h264dec_seq(h264_w()));
}
void BM_h264dec_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::h264dec_pthreads(
        h264_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_h264dec_pthreads_pipeline(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::h264dec_pthreads_pipeline(
        h264_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_h264dec_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::h264dec_ompss(
        h264_w(), static_cast<std::size_t>(state.range(0))));
}

constexpr int kIters = 3;

BENCHMARK(BM_h264dec_seq)->Iterations(kIters);
BENCHMARK(BM_h264dec_pthreads)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_h264dec_pthreads_pipeline)->Arg(2)->Arg(4)->Iterations(kIters);
BENCHMARK(BM_h264dec_ompss)->Arg(1)->Arg(2)->Arg(4)->Iterations(kIters);

} // namespace

BENCHMARK_MAIN();
