// bm_trace — tracing-overhead acceptance bench for oss::trace v2
// (docs/observability.md).
//
//   TraceChurn/<mode>  — spawn-churn throughput with tracing off (0),
//     exec (1), and full (2).  2000 no-dep tasks per iteration drained by
//     a barrier: the pure per-task cost of the emission path (label
//     intern, spawn/place/run-span events, ring pushes).
//
//   TraceChurnDeps/<mode> — the same sweep over a dependency chain, adding
//     the dep layer's edge/ready events to the full-mode bill.
//
// The acceptance target: full-mode normalized throughput within 3% of off
// (the ratio IS the normalized score — compare_bench.py divides every case
// by TraceChurn/0, so baseline_trace.json gates the off/exec/full *shape*,
// not machine-dependent nanoseconds).  CI runs this in bench-smoke; refresh
// the baseline with compare_bench.py --update after a verified change.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>

#include "ompss/ompss.hpp"

namespace {

constexpr int kTasks = 2000;

oss::TraceMode mode_of(int idx) {
  switch (idx) {
    case 1: return oss::TraceMode::Exec;
    case 2: return oss::TraceMode::Full;
    default: return oss::TraceMode::Off;
  }
}

oss::Runtime make_runtime(int mode_idx) {
  // Env-derived base (scheduler/idle/NUMA knobs stay steerable) with the
  // trace mode forced per benchmark case; 2 threads like bm_spawn_scaling.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.trace_mode = mode_of(mode_idx);
  return oss::Runtime(cfg);
}

void BM_TraceChurn(benchmark::State& state) {
  const int mode_idx = static_cast<int>(state.range(0));
  oss::Runtime rt = make_runtime(mode_idx);

  std::atomic<long> hits{0};
  for (auto _ : state) {
    hits.store(0, std::memory_order_relaxed);
    for (int i = 0; i < kTasks; ++i) {
      rt.task("churn").spawn(
          [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.barrier();
    if (hits.load() != kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTasks);
  state.SetLabel(oss::to_string(mode_of(mode_idx)));
  if (mode_idx != 0) {
    state.counters["trace_dropped"] =
        static_cast<double>(rt.stats().trace_dropped);
  }
}

void BM_TraceChurnDeps(benchmark::State& state) {
  const int mode_idx = static_cast<int>(state.range(0));
  oss::Runtime rt = make_runtime(mode_idx);

  int cell = 0;
  std::atomic<long> hits{0};
  for (auto _ : state) {
    hits.store(0, std::memory_order_relaxed);
    for (int i = 0; i < kTasks; ++i) {
      // inout chain: every task after the first registers one WAW edge, so
      // full mode pays the Edge + Ready emission on top of the lifecycle.
      rt.task("chain").inout(cell).spawn(
          [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.barrier();
    if (hits.load() != kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTasks);
  state.SetLabel(oss::to_string(mode_of(mode_idx)));
}

} // namespace

BENCHMARK(BM_TraceChurn)
    ->Name("TraceChurn")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TraceChurnDeps)
    ->Name("TraceChurnDeps")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
