// bm_service — multi-stream decode-service load test (docs/service.md).
//
//   ServiceFrames/<streams>/<workers> — one long-lived Runtime serving
//     <streams> concurrent H.264 sessions, one submitter thread per stream
//     pumping the Tiny workload twice per iteration under Submit::Block.
//     The per-stream window (depth 3 < frames per rep) keeps backpressure
//     engaged the whole run: submitters are paced by decode completion, so
//     memory stays bounded — the bench asserts peak in-flight never exceeds
//     the window and that every stream's checksums match the sequential
//     decoder.
//
// Reported: frames/s (items_per_second, real time) and submit→output frame
// latency percentiles across all streams (p50_ms / p95_ms / p99_ms), plus
// blocked-acquire and peak-in-flight counters as the backpressure proof.
//
// compare_bench.py normalizes by ServiceFrames/1/2, so baseline_service.json
// gates the scaling *shape* (how throughput moves with streams × workers),
// not machine-dependent frame rates.  CI runs this in bench-smoke; refresh
// the baseline with compare_bench.py --update after a verified change.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/h264dec/h264dec_service.hpp"

namespace {

constexpr int kReps = 2; ///< workload passes per stream per iteration

double percentile(std::vector<std::uint64_t>& ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(ns.size() - 1) + 0.5);
  return static_cast<double>(ns[std::min(idx, ns.size() - 1)]);
}

void ServiceFrames(benchmark::State& state) {
  const auto streams = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const auto w = apps::H264Workload::make(benchcore::Scale::Tiny);
  const auto expected = apps::h264dec_seq(w);

  oss::RuntimeConfig rcfg = oss::RuntimeConfig::from_env();
  rcfg.num_threads = workers;
  oss::Runtime rt(rcfg);

  oss::service::Config scfg;
  scfg.max_streams = streams;
  scfg.window = 3; // < frames per rep: backpressure engaged throughout
  apps::H264DecService svc(rt, scfg);

  std::vector<std::uint64_t> latencies;
  std::uint64_t blocked = 0;
  std::size_t peak = 0;
  bool ok = true;

  for (auto _ : state) {
    std::vector<apps::H264DecSessionPtr> sessions;
    sessions.reserve(streams);
    for (std::size_t i = 0; i < streams; ++i) {
      auto s = svc.open("s" + std::to_string(i), w);
      if (!s) {
        state.SkipWithError("admission rejected below capacity");
        return;
      }
      sessions.push_back(std::move(s));
    }

    std::vector<std::thread> submitters;
    submitters.reserve(streams);
    for (auto& s : sessions) {
      submitters.emplace_back([&s, &w] {
        for (int rep = 0; rep < kReps; ++rep) {
          for (const auto& frame : w.video.frames) {
            if (!s->submit(frame, oss::service::Submit::Block)) return;
          }
        }
        s->finish();
      });
    }
    for (auto& t : submitters) t.join();

    for (auto& s : sessions) {
      const auto& sums = s->checksums();
      ok = ok && sums.size() == kReps * expected.size();
      for (std::size_t i = 0; ok && i < sums.size(); ++i) {
        ok = sums[i] == expected[i % expected.size()];
      }
      ok = ok && s->window().peak() <= s->window().depth();
      peak = std::max(peak, s->window().peak());
      blocked += s->window().blocked();
      latencies.insert(latencies.end(), s->latencies_ns().begin(),
                       s->latencies_ns().end());
      s->close();
    }
    if (!ok) {
      state.SkipWithError("stream checksum/backpressure mismatch");
      return;
    }
  }

  const auto frames_per_iter =
      static_cast<std::int64_t>(streams * kReps * w.video.frames.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          frames_per_iter);
  state.counters["p50_ms"] = percentile(latencies, 50.0) * 1e-6;
  state.counters["p95_ms"] = percentile(latencies, 95.0) * 1e-6;
  state.counters["p99_ms"] = percentile(latencies, 99.0) * 1e-6;
  state.counters["peak_in_flight"] = static_cast<double>(peak);
  state.counters["blocked_acquires"] = static_cast<double>(blocked);
  state.SetLabel(std::to_string(streams) + " streams / " +
                 std::to_string(workers) + " workers");
}

} // namespace

BENCHMARK(ServiceFrames)
    ->Args({1, 2})
    ->Args({4, 2})
    ->Args({4, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
