// ablation_locality — A2: the paper attributes ray-rot's OmpSs win to the
// scheduler "placing dependent tasks on the same core" so the render
// output is cache-hot when the rotate task consumes it.  This bench runs
// the ray-rot OmpSs variant under the three scheduler policies and reports
// both times and the runtime's queue statistics (local hits vs steals) that
// reveal the placement behaviour.
//
// Shape expected from the paper: locality ≥ fifo, with locality showing a
// high local-queue hit rate on the rotate (consumer) tasks.
//
// Usage: ablation_locality [--threads=1,2,4] [--reps=3] [--scale=tiny]
#include <cstdio>
#include <exception>

#include "apps/apps.hpp"
#include "bench_core/bench_core.hpp"

int main(int argc, char** argv) {
  try {
    const benchcore::Args args(argc, argv);
    const auto scale = benchcore::parse_scale(args.get("scale", "tiny"));
    const auto threads = args.get_sizes("threads", {1, 2, 4});
    const auto reps = static_cast<std::size_t>(args.get_long("reps", 3));

    const auto w = apps::RayRotWorkload::make(scale);
    std::printf("A2: scheduler policy on ray-rot (%dx%d, block=%d rows, "
                "scale=%s, median of %zu)\n\n",
                w.width, w.height, w.block_rows, benchcore::to_string(scale),
                reps);

    benchcore::TextTable t;
    t.set_header({"threads", "fifo (ms)", "locality (ms)", "wsteal (ms)",
                  "fifo/locality"});
    for (std::size_t n : threads) {
      double tf = 0, tl = 0, tw = 0;
      tf = benchcore::measure_median_seconds(
          [&] {
            apps::ray_rot_ompss_with_policy(w, n, oss::SchedulerPolicy::Fifo);
          },
          reps);
      tl = benchcore::measure_median_seconds(
          [&] {
            apps::ray_rot_ompss_with_policy(w, n,
                                            oss::SchedulerPolicy::Locality);
          },
          reps);
      tw = benchcore::measure_median_seconds(
          [&] {
            apps::ray_rot_ompss_with_policy(w, n,
                                            oss::SchedulerPolicy::WorkStealing);
          },
          reps);
      t.add_row(std::to_string(n), {tf * 1e3, tl * 1e3, tw * 1e3, tf / tl});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\npaper reference: ray-rot OmpSs/Pthreads speedups "
                "1.02/1.10/1.65/1.46/1.20 at 1/8/16/24/32 cores — the "
                "locality scheduler runs producer/consumer blocks "
                "back-to-back on one core.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_locality: %s\n", e.what());
    return 1;
  }
}
