// bm_complex — google-benchmark for the remaining Table 1 rows with
// barrier-phased structure: kmeans, streamcluster, bodytrack.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"

namespace {

using benchcore::Scale;

const apps::KmeansWorkload& kmeans_w() {
  static const auto w = apps::KmeansWorkload::make(Scale::Tiny);
  return w;
}
const apps::StreamclusterWorkload& sc_w() {
  static const auto w = apps::StreamclusterWorkload::make(Scale::Tiny);
  return w;
}
const apps::BodytrackWorkload& bt_w() {
  static const auto w = apps::BodytrackWorkload::make(Scale::Tiny);
  return w;
}

// Force workload construction before main() so input generation
// (scene/bitstream synthesis) never lands inside a timed region.
const auto& warm_kmeans_w = kmeans_w();
const auto& warm_sc_w = sc_w();
const auto& warm_bt_w = bt_w();

void BM_kmeans_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::kmeans_app_seq(kmeans_w()));
}
void BM_kmeans_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::kmeans_app_pthreads(
        kmeans_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_kmeans_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::kmeans_app_ompss(
        kmeans_w(), static_cast<std::size_t>(state.range(0))));
}

void BM_streamcluster_seq(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::streamcluster_app_seq(sc_w()));
}
void BM_streamcluster_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::streamcluster_app_pthreads(
        sc_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_streamcluster_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::streamcluster_app_ompss(
        sc_w(), static_cast<std::size_t>(state.range(0))));
}

void BM_bodytrack_seq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(apps::bodytrack_seq(bt_w()));
}
void BM_bodytrack_pthreads(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::bodytrack_pthreads(
        bt_w(), static_cast<std::size_t>(state.range(0))));
}
void BM_bodytrack_ompss(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(apps::bodytrack_ompss(
        bt_w(), static_cast<std::size_t>(state.range(0))));
}

constexpr int kIters = 3;
#define THREAD_ARGS Arg(1)->Arg(2)->Arg(4)->Iterations(kIters)

BENCHMARK(BM_kmeans_seq)->Iterations(kIters);
BENCHMARK(BM_kmeans_pthreads)->THREAD_ARGS;
BENCHMARK(BM_kmeans_ompss)->THREAD_ARGS;
BENCHMARK(BM_streamcluster_seq)->Iterations(kIters);
BENCHMARK(BM_streamcluster_pthreads)->THREAD_ARGS;
BENCHMARK(BM_streamcluster_ompss)->THREAD_ARGS;
BENCHMARK(BM_bodytrack_seq)->Iterations(kIters);
BENCHMARK(BM_bodytrack_pthreads)->THREAD_ARGS;
BENCHMARK(BM_bodytrack_ompss)->THREAD_ARGS;

} // namespace

BENCHMARK_MAIN();
