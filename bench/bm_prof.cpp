// bm_prof — profiling-overhead acceptance bench for oss::prof
// (docs/observability.md "Profiling and diagnosis").
//
//   ProfChurn/<mode> — spawn-churn throughput with profiling off (0) and
//     on (1).  2000 no-dep tasks per iteration drained by a barrier: the
//     per-task cost of the recording path (label intern, three clock
//     reads, sharded counter adds, path bookkeeping).
//
//   ProfChurnDeps/<mode> — the same sweep over a dependency chain, adding
//     the critical-path propagation (offer_pred_path under succ_mu_) to
//     the bill.
//
// The acceptance target: prof-off throughput unchanged (<3% vs the
// un-instrumented runtime — ProfChurn/0 doubles as the reference the other
// bench baselines gate against), prof-on bounded.  On *empty* tasks the
// recording path measures ~20-25% (three clock reads + a dozen relaxed
// RMWs against a sub-µs spawn cycle); at h264-app granularity the same
// cost is <1%.  compare_bench.py normalizes every case by ProfChurn/0, so
// baseline_prof.json gates the off/on *shape*, not machine-dependent
// nanoseconds.  CI runs this in bench-smoke; refresh the baseline with
// compare_bench.py --update after a verified change.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>

#include "ompss/ompss.hpp"

namespace {

constexpr int kTasks = 2000;

oss::Runtime make_runtime(bool prof) {
  // Env-derived base (scheduler/idle/NUMA knobs stay steerable) with the
  // profiler forced per benchmark case; 2 threads like bm_trace.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = 2;
  cfg.prof = prof;
  cfg.prof_every_ms = 0;
  cfg.watchdog_ms = 0;
  return oss::Runtime(cfg);
}

void BM_ProfChurn(benchmark::State& state) {
  const bool prof = state.range(0) != 0;
  oss::Runtime rt = make_runtime(prof);

  std::atomic<long> hits{0};
  for (auto _ : state) {
    hits.store(0, std::memory_order_relaxed);
    for (int i = 0; i < kTasks; ++i) {
      rt.task("churn").spawn(
          [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.barrier();
    if (hits.load() != kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTasks);
  state.SetLabel(prof ? "prof" : "off");
  if (prof) {
    state.counters["profiled_tasks"] =
        static_cast<double>(rt.profile().tasks);
  }
}

void BM_ProfChurnDeps(benchmark::State& state) {
  const bool prof = state.range(0) != 0;
  oss::Runtime rt = make_runtime(prof);

  int cell = 0;
  std::atomic<long> hits{0};
  for (auto _ : state) {
    hits.store(0, std::memory_order_relaxed);
    for (int i = 0; i < kTasks; ++i) {
      // inout chain: every finish releases one successor, so prof mode pays
      // the path offer + ready timestamp on the release edge too.
      rt.task("chain").inout(cell).spawn(
          [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.barrier();
    if (hits.load() != kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTasks);
  state.SetLabel(prof ? "prof" : "off");
}

} // namespace

BENCHMARK(BM_ProfChurn)
    ->Name("ProfChurn")
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ProfChurnDeps)
    ->Name("ProfChurnDeps")
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
