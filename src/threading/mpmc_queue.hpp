// mpmc_queue.hpp — blocking multi-producer multi-consumer queue.
//
// The workhorse channel for the Pthreads pipeline variants (h264dec's stage
// threads hand frames to each other through these).  Bounded or unbounded;
// `close()` wakes all consumers and makes further pops drain-then-fail, the
// standard way to terminate a pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pt {

template <class T>
class MpmcQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while the queue is full; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    cv_space_.wait(lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    q_.push_back(std::move(value));
    cv_items_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) {
    std::lock_guard lock(mu_);
    if (closed_ || full_locked()) return false;
    q_.push_back(std::move(value));
    cv_items_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_items_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt; // closed and drained
    T v = std::move(q_.front());
    q_.pop_front();
    cv_space_.notify_one();
    return v;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    cv_space_.notify_one();
    return v;
  }

  /// No further pushes succeed; consumers drain remaining items then get
  /// std::nullopt.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    cv_items_.notify_all();
    cv_space_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return q_.size();
  }

 private:
  bool full_locked() const { return capacity_ != 0 && q_.size() >= capacity_; }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_items_;
  std::condition_variable cv_space_;
  std::deque<T> q_;
  bool closed_ = false;
};

} // namespace pt
