// threading.hpp — umbrella header for the Pthreads-style substrate.
//
// Everything the hand-written "Pthreads variant" of each benchmark is built
// from: a fork-join thread pool, blocking and spinning barriers, blocking
// MPMC channels, a lock-free SPSC ring, a countdown latch, and parallel-for
// helpers.  See DESIGN.md §2 (system 2).
#pragma once

#include "threading/barrier.hpp"
#include "threading/latch.hpp"
#include "threading/mpmc_queue.hpp"
#include "threading/parallel_for.hpp"
#include "threading/spsc_ring.hpp"
#include "threading/thread_pool.hpp"
