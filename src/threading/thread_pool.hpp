// thread_pool.hpp — a classic fork-join worker pool.
//
// This is the substrate the paper's hand-written Pthreads benchmark variants
// are built on: N long-lived threads that repeatedly execute SPMD regions.
// `run(fn)` wakes all workers, runs `fn(tid)` on each (tid in [0, size())),
// and returns when every worker finished — i.e. one fork-join epoch, like
// pthread_create/pthread_join but without per-call thread creation cost.
//
// Exceptions thrown by `fn` are captured; the first one is rethrown from
// `run` after the epoch completes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pt {

class ThreadPool {
 public:
  /// Creates `n` worker threads (n >= 1).
  explicit ThreadPool(std::size_t n);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Executes `fn(tid)` on every worker; blocks until all return.
  /// Not reentrant: must not be called from inside a pool worker.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker(std::size_t tid);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t epoch_ = 0;      ///< incremented per run() to release workers
  std::size_t remaining_ = 0;  ///< workers still executing the current epoch
  bool stop_ = false;
  std::exception_ptr first_error_;
};

} // namespace pt
