// barrier.hpp — thread barriers: blocking (pthread-style) and spinning.
//
// The paper's rgbcmy analysis hinges on exactly this distinction: the
// Pthreads variant separates iterations with a *blocking* thread barrier
// (threads sleep on a condition variable — cheap on idle cores, expensive to
// wake), while the OmpSs runtime uses *polling* synchronization.  Both
// flavors live here so the ablation bench can swap them:
//
//   BlockingBarrier — mutex + condition variable, generation-counted;
//                     semantics of pthread_barrier_wait.
//   SpinBarrier     — sense-reversing atomic barrier; spinners yield after a
//                     bounded number of polls so oversubscribed runs still
//                     make progress.
//
// Both are reusable (safe to call `wait` in a loop) for a fixed set of
// `parties` threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

namespace pt {

class BlockingBarrier {
 public:
  explicit BlockingBarrier(std::size_t parties) : parties_(parties) {}

  BlockingBarrier(const BlockingBarrier&) = delete;
  BlockingBarrier& operator=(const BlockingBarrier&) = delete;

  /// Blocks until `parties` threads have called wait().  Returns true on
  /// exactly one thread per generation (the "serial thread", like
  /// PTHREAD_BARRIER_SERIAL_THREAD).
  bool wait() {
    std::unique_lock lock(mu_);
    const std::size_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return false;
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties, std::size_t spin_rounds = 1024)
      : parties_(parties), spin_rounds_(spin_rounds) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Spins until `parties` threads arrive.  Returns true on the last
  /// arriving thread of each generation.
  bool wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return true;
    }
    std::size_t polls = 0;
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (++polls >= spin_rounds_) {
        std::this_thread::yield();
        polls = 0;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  const std::size_t spin_rounds_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

} // namespace pt
