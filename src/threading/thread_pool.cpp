#include "threading/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace pt {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) throw std::invalid_argument("ThreadPool: n must be >= 1");
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  std::unique_lock lock(mu_);
  job_ = &fn;
  remaining_ = threads_.size();
  first_error_ = nullptr;
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

void ThreadPool::worker(std::size_t tid) {
  std::size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(tid);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

} // namespace pt
