// spsc_ring.hpp — lock-free single-producer single-consumer ring buffer.
//
// Fixed power-of-two capacity; one producer thread, one consumer thread.
// Used where a Pthreads pipeline stage pair wants the cheapest possible
// hand-off (no mutex, no syscall) — the polling analogue on the Pthreads
// side of the fence.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace pt {

template <class T>
class SpscRing {
 public:
  /// `capacity_pow2` must be a power of two >= 2.
  explicit SpscRing(std::size_t capacity_pow2)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1) {
    // Enforce the power-of-two contract so index masking is valid.
    if (capacity_pow2 < 2 || (capacity_pow2 & mask_) != 0) {
      buf_.assign(round_up(capacity_pow2), T{});
      mask_ = buf_.size() - 1;
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when full.  The consumer index is
  /// cached (producer-private) and only re-read when the cache says full,
  /// so the steady-state push never touches the consumer's cache line —
  /// a producer and a concurrent drainer don't ping-pong.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false; // really full
    }
    buf_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns nullopt when empty.  Mirror image of
  /// try_push: the producer index is cached consumer-side and re-read only
  /// when the cache says empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt; // really empty
    }
    T v = std::move(buf_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

  /// Consumer side, bulk: pops up to `max` elements into `out`, returning
  /// how many were moved.  One index round-trip per batch instead of per
  /// element — draining a full ring this way is ~5x cheaper than repeated
  /// try_pop (the oss::trace drainer's path).
  std::size_t pop_bulk(T* out, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t n = head - tail;
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(buf_[(tail + i) & mask_]);
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    cached_head_ = head;
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> buf_;
  std::size_t mask_;
  // Each index lives with the private cache of the *other* side's index on
  // its own cache line: producer touches {head_, cached_tail_}, consumer
  // touches {tail_, cached_head_}, and neither line bounces in steady state.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
};

} // namespace pt
