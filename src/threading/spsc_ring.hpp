// spsc_ring.hpp — lock-free single-producer single-consumer ring buffer.
//
// Fixed power-of-two capacity; one producer thread, one consumer thread.
// Used where a Pthreads pipeline stage pair wants the cheapest possible
// hand-off (no mutex, no syscall) — the polling analogue on the Pthreads
// side of the fence.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace pt {

template <class T>
class SpscRing {
 public:
  /// `capacity_pow2` must be a power of two >= 2.
  explicit SpscRing(std::size_t capacity_pow2)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1) {
    // Enforce the power-of-two contract so index masking is valid.
    if (capacity_pow2 < 2 || (capacity_pow2 & mask_) != 0) {
      buf_.assign(round_up(capacity_pow2), T{});
      mask_ = buf_.size() - 1;
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when full.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false; // full
    buf_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt; // empty
    T v = std::move(buf_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace pt
