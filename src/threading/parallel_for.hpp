// parallel_for.hpp — data-parallel loops over a ThreadPool.
//
// The two classic Pthreads work-distribution idioms the benchmark suite's
// baselines use:
//
//   parallel_for_static  — iteration space pre-split into one contiguous
//                          slice per thread (pthread-style manual slicing).
//   parallel_for_dynamic — threads grab fixed-size chunks from an atomic
//                          counter (self-scheduling), for irregular work
//                          like raytracing rows.
//
// Both call `fn(begin, end)` with half-open sub-ranges and block until the
// whole range is processed.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

#include "threading/thread_pool.hpp"

namespace pt {

/// Static (block) distribution of [begin, end) over all pool threads.
inline void parallel_for_static(ThreadPool& pool, std::size_t begin,
                                std::size_t end,
                                const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const std::size_t threads = pool.size();
  pool.run([&](std::size_t tid) {
    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t lo = begin + tid * chunk;
    if (lo >= end) return;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    fn(lo, hi);
  });
}

/// Dynamic (self-scheduled) distribution with the given chunk size.
inline void parallel_for_dynamic(ThreadPool& pool, std::size_t begin,
                                 std::size_t end, std::size_t chunk,
                                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (chunk == 0) chunk = 1;
  std::atomic<std::size_t> next{begin};
  pool.run([&](std::size_t) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      fn(lo, hi);
    }
  });
}

} // namespace pt
