// latch.hpp — single-use countdown latch.
//
// A thin, self-contained countdown synchronizer (like std::latch, kept local
// so the substrate has no dependence on library support levels).  Used by
// pipeline shutdown paths and tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace pt {

class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrements the counter; wakes waiters when it reaches zero.
  void count_down() {
    std::lock_guard lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  /// Blocks until the counter reaches zero.
  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  [[nodiscard]] bool ready() const {
    std::lock_guard lock(mu_);
    return count_ == 0;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_;
};

} // namespace pt
