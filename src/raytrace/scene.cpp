#include "raytrace/scene.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cray {

namespace {
std::uint32_t xorshift(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

double unit(std::uint32_t& s) {
  return static_cast<double>(xorshift(s) & 0xFFFFFF) / double(0x1000000);
}
} // namespace

Scene Scene::procedural(int num_spheres, std::uint32_t seed) {
  Scene scene;
  std::uint32_t rng = seed * 747796405u + 2891336453u;

  // Ground "sphere" (huge radius) like the classic c-ray scenes.
  Sphere ground;
  ground.center = {0, -1004, 0};
  ground.radius = 1000;
  ground.material.color = {0.4, 0.5, 0.4};
  ground.material.specular_power = 10;
  ground.material.reflectivity = 0.05;
  scene.spheres.push_back(ground);

  for (int i = 0; i < num_spheres; ++i) {
    Sphere s;
    const double angle = 2.0 * 3.14159265358979 * i / (num_spheres > 0 ? num_spheres : 1);
    const double dist = 2.0 + 4.0 * unit(rng);
    s.center = {dist * std::cos(angle), -3.0 + 4.0 * unit(rng),
                dist * std::sin(angle)};
    s.radius = 0.4 + 1.1 * unit(rng);
    s.material.color = {0.2 + 0.8 * unit(rng), 0.2 + 0.8 * unit(rng),
                        0.2 + 0.8 * unit(rng)};
    s.material.specular_power = 10 + 70 * unit(rng);
    s.material.reflectivity = unit(rng) < 0.4 ? 0.35 : 0.0;
    scene.spheres.push_back(s);
  }

  scene.lights.push_back(Light{{-8, 8, -6}});
  scene.lights.push_back(Light{{6, 10, -4}});

  scene.camera.position = {0, 2, -9};
  scene.camera.target = {0, -1, 0};
  scene.camera.fov_deg = 50;
  return scene;
}

Scene Scene::parse(const std::string& text) {
  Scene scene;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    auto fail = [&](const char* why) {
      throw std::runtime_error("scene parse error at line " +
                               std::to_string(lineno) + ": " + why);
    };
    if (kind == "s") {
      Sphere s;
      if (!(ls >> s.center.x >> s.center.y >> s.center.z >> s.radius >>
            s.material.color.x >> s.material.color.y >> s.material.color.z >>
            s.material.specular_power >> s.material.reflectivity)) {
        fail("sphere needs 9 numbers");
      }
      scene.spheres.push_back(s);
    } else if (kind == "l") {
      Light l;
      if (!(ls >> l.position.x >> l.position.y >> l.position.z)) {
        fail("light needs 3 numbers");
      }
      scene.lights.push_back(l);
    } else if (kind == "c") {
      Camera& c = scene.camera;
      if (!(ls >> c.position.x >> c.position.y >> c.position.z >> c.fov_deg >>
            c.target.x >> c.target.y >> c.target.z)) {
        fail("camera needs 7 numbers");
      }
    } else {
      fail("unknown record kind");
    }
  }
  return scene;
}

std::string Scene::serialize() const {
  std::ostringstream os;
  os << "# c-ray style scene\n";
  for (const Sphere& s : spheres) {
    os << "s " << s.center.x << ' ' << s.center.y << ' ' << s.center.z << ' '
       << s.radius << ' ' << s.material.color.x << ' ' << s.material.color.y
       << ' ' << s.material.color.z << ' ' << s.material.specular_power << ' '
       << s.material.reflectivity << '\n';
  }
  for (const Light& l : lights) {
    os << "l " << l.position.x << ' ' << l.position.y << ' ' << l.position.z
       << '\n';
  }
  os << "c " << camera.position.x << ' ' << camera.position.y << ' '
     << camera.position.z << ' ' << camera.fov_deg << ' ' << camera.target.x
     << ' ' << camera.target.y << ' ' << camera.target.z << '\n';
  return os.str();
}

} // namespace cray
