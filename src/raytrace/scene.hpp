// scene.hpp — c-ray scene model: spheres, planes, point lights, camera.
//
// Mirrors the structure of the original `c-ray` benchmark scenes (spheres
// with Phong materials + reflections, a handful of lights, a pinhole
// camera).  Scenes can be built procedurally (deterministic, used by the
// benchmark suite) or parsed from a c-ray-style text format:
//
//   # comment
//   s  x y z  radius  r g b  shininess  reflectivity
//   l  x y z
//   c  x y z  fov  tx ty tz
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raytrace/vec3.hpp"

namespace cray {

struct Material {
  Vec3 color{1, 1, 1};
  double specular_power = 40.0;
  double reflectivity = 0.0; ///< 0 = matte, 1 = mirror
};

struct Sphere {
  Vec3 center;
  double radius = 1.0;
  Material material;
};

struct Light {
  Vec3 position;
};

struct Camera {
  Vec3 position{0, 0, -10};
  Vec3 target{0, 0, 0};
  double fov_deg = 45.0;
};

struct Scene {
  std::vector<Sphere> spheres;
  std::vector<Light> lights;
  Camera camera;

  /// Deterministic procedural scene: `num_spheres` spheres in a disc layout
  /// with varied materials, 2-3 lights, camera looking at the origin.
  static Scene procedural(int num_spheres, std::uint32_t seed);

  /// Parses the c-ray-style text format above.
  /// Throws std::runtime_error on malformed input.
  static Scene parse(const std::string& text);

  /// Serializes to the same text format (round-trips with parse()).
  [[nodiscard]] std::string serialize() const;
};

} // namespace cray
