// raytrace.hpp — umbrella header for the c-ray substrate.
#pragma once

#include "raytrace/render.hpp"
#include "raytrace/scene.hpp"
#include "raytrace/vec3.hpp"
