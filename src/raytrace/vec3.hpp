// vec3.hpp — minimal 3-component vector math for the c-ray raytracer.
#pragma once

#include <cmath>

namespace cray {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  /// Component-wise product (color modulation).
  constexpr Vec3 operator*(const Vec3& o) const { return {x * o.x, y * o.y, z * o.z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }

  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  [[nodiscard]] double length() const { return std::sqrt(dot(*this)); }

  [[nodiscard]] Vec3 normalized() const {
    const double len = length();
    return len > 0 ? *this / len : Vec3{};
  }

  /// Reflects this direction about unit normal `n`.
  [[nodiscard]] constexpr Vec3 reflect(const Vec3& n) const {
    return *this - n * (2.0 * dot(n));
  }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

} // namespace cray
