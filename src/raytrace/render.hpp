// render.hpp — the c-ray rendering kernel.
//
// Recursive Whitted-style raytracing: sphere intersection, Phong shading,
// hard shadows, and specular reflection up to a bounded depth.  As with the
// other substrates, the kernel is a *row-range* function so the sequential,
// Pthreads, and OmpSs benchmark variants share the exact same math and
// differ only in work distribution (rows are the parallel unit, as in the
// original c-ray).
#pragma once

#include "img/image.hpp"
#include "raytrace/scene.hpp"

namespace cray {

struct RenderOptions {
  int max_depth = 3;       ///< reflection recursion bound
  double ambient = 0.08;   ///< ambient light floor
  int supersample = 1;     ///< rays per pixel edge (1 = one ray per pixel)
};

/// Renders rows [row_begin, row_end) of the image (3-channel RGB).
void render_rows(const Scene& scene, img::Image& out, const RenderOptions& opts,
                 int row_begin, int row_end);

/// Whole-image sequential rendering.
void render(const Scene& scene, img::Image& out, const RenderOptions& opts = {});

} // namespace cray
