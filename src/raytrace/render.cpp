#include "raytrace/render.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cray {

namespace {

struct Ray {
  Vec3 origin;
  Vec3 dir; // unit length
};

struct Hit {
  double t = std::numeric_limits<double>::infinity();
  const Sphere* sphere = nullptr;
};

/// Ray/sphere intersection; returns the nearest positive t, or infinity.
double intersect_sphere(const Ray& ray, const Sphere& s) {
  const Vec3 oc = ray.origin - s.center;
  const double b = 2.0 * oc.dot(ray.dir);
  const double c = oc.dot(oc) - s.radius * s.radius;
  const double disc = b * b - 4.0 * c;
  if (disc < 0) return std::numeric_limits<double>::infinity();
  const double sq = std::sqrt(disc);
  const double t1 = (-b - sq) * 0.5;
  if (t1 > 1e-6) return t1;
  const double t2 = (-b + sq) * 0.5;
  if (t2 > 1e-6) return t2;
  return std::numeric_limits<double>::infinity();
}

Hit closest_hit(const Scene& scene, const Ray& ray) {
  Hit hit;
  for (const Sphere& s : scene.spheres) {
    const double t = intersect_sphere(ray, s);
    if (t < hit.t) {
      hit.t = t;
      hit.sphere = &s;
    }
  }
  return hit;
}

bool in_shadow(const Scene& scene, const Vec3& point, const Vec3& to_light,
               double light_dist) {
  const Ray shadow{point, to_light};
  for (const Sphere& s : scene.spheres) {
    const double t = intersect_sphere(shadow, s);
    if (t < light_dist) return true;
  }
  return false;
}

Vec3 trace(const Scene& scene, const Ray& ray, const RenderOptions& opts,
           int depth) {
  const Hit hit = closest_hit(scene, ray);
  if (!hit.sphere) {
    // Sky: vertical gradient.
    const double f = 0.5 * (ray.dir.y + 1.0);
    return Vec3{0.10, 0.12, 0.18} * (1.0 - f) + Vec3{0.35, 0.45, 0.65} * f;
  }

  const Sphere& s = *hit.sphere;
  const Vec3 point = ray.origin + ray.dir * hit.t;
  const Vec3 normal = (point - s.center).normalized();

  Vec3 color = s.material.color * opts.ambient;
  for (const Light& light : scene.lights) {
    const Vec3 lv = light.position - point;
    const double dist = lv.length();
    const Vec3 ldir = lv / dist;
    if (in_shadow(scene, point + normal * 1e-6, ldir, dist)) continue;
    const double diffuse = std::max(0.0, normal.dot(ldir));
    color += s.material.color * diffuse;
    const Vec3 half = (ldir - ray.dir).normalized();
    const double spec =
        std::pow(std::max(0.0, normal.dot(half)), s.material.specular_power);
    color += Vec3{spec, spec, spec};
  }

  if (s.material.reflectivity > 0 && depth + 1 < opts.max_depth) {
    const Ray refl{point + normal * 1e-6, ray.dir.reflect(normal).normalized()};
    color += trace(scene, refl, opts, depth + 1) * s.material.reflectivity;
  }
  return color;
}

std::uint8_t to_byte(double v) {
  const int q = static_cast<int>(v * 255.0 + 0.5);
  return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
}

} // namespace

void render_rows(const Scene& scene, img::Image& out, const RenderOptions& opts,
                 int row_begin, int row_end) {
  if (out.channels() != 3) {
    throw std::invalid_argument("render_rows: output must be 3-channel RGB");
  }
  const int w = out.width();
  const int h = out.height();
  const double aspect = static_cast<double>(w) / static_cast<double>(h);
  const double fov_scale =
      std::tan(scene.camera.fov_deg * 0.5 * 3.14159265358979 / 180.0);

  // Camera basis.
  const Vec3 forward = (scene.camera.target - scene.camera.position).normalized();
  const Vec3 right = forward.cross(Vec3{0, 1, 0}).normalized();
  const Vec3 up = right.cross(forward);

  const int ss = opts.supersample < 1 ? 1 : opts.supersample;
  const double inv_ss2 = 1.0 / (ss * ss);

  for (int y = row_begin; y < row_end; ++y) {
    std::uint8_t* row = out.row(y);
    for (int x = 0; x < w; ++x) {
      Vec3 acc;
      for (int sy = 0; sy < ss; ++sy) {
        for (int sx = 0; sx < ss; ++sx) {
          const double px = (x + (sx + 0.5) / ss) / w * 2.0 - 1.0;
          const double py = 1.0 - (y + (sy + 0.5) / ss) / h * 2.0;
          const Vec3 dir = (forward + right * (px * aspect * fov_scale) +
                            up * (py * fov_scale))
                               .normalized();
          acc += trace(scene, Ray{scene.camera.position, dir}, opts, 0);
        }
      }
      acc = acc * inv_ss2;
      row[x * 3 + 0] = to_byte(acc.x);
      row[x * 3 + 1] = to_byte(acc.y);
      row[x * 3 + 2] = to_byte(acc.z);
    }
  }
}

void render(const Scene& scene, img::Image& out, const RenderOptions& opts) {
  render_rows(scene, out, opts, 0, out.height());
}

} // namespace cray
