// timer.hpp — wall-clock timing.
#pragma once

#include <chrono>

namespace benchcore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

} // namespace benchcore
