#include "bench_core/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace benchcore {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq == std::string::npos) {
        opts_[a.substr(2)] = "";
      } else {
        opts_[a.substr(2, eq - 2)] = a.substr(eq + 1);
      }
    } else {
      positional_.push_back(a);
    }
  }
}

bool Args::has(const std::string& name) const { return opts_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& fallback) const {
  auto it = opts_.find(name);
  return it == opts_.end() ? fallback : it->second;
}

long Args::get_long(const std::string& name, long fallback) const {
  auto it = opts_.find(name);
  if (it == opts_.end()) return fallback;
  char* endp = nullptr;
  const long v = std::strtol(it->second.c_str(), &endp, 10);
  if (endp == it->second.c_str() || *endp != '\0') {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                it->second + "'");
  }
  return v;
}

double Args::get_double(const std::string& name, double fallback) const {
  auto it = opts_.find(name);
  if (it == opts_.end()) return fallback;
  char* endp = nullptr;
  const double v = std::strtod(it->second.c_str(), &endp);
  if (endp == it->second.c_str() || *endp != '\0') {
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                it->second + "'");
  }
  return v;
}

std::vector<std::string> Args::get_list(const std::string& name,
                                        const std::vector<std::string>& fallback) const {
  auto it = opts_.find(name);
  if (it == opts_.end()) return fallback;
  std::vector<std::string> out;
  std::string cur;
  for (char c : it->second) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<std::size_t> Args::get_sizes(const std::string& name,
                                         const std::vector<std::size_t>& fallback) const {
  if (!has(name)) return fallback;
  std::vector<std::size_t> out;
  for (const std::string& s : get_list(name)) {
    char* endp = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &endp, 10);
    if (endp == s.c_str() || *endp != '\0') {
      throw std::invalid_argument("--" + name + ": expected integers, got '" + s + "'");
    }
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

} // namespace benchcore
