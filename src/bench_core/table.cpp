#include "bench_core/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace benchcore {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (!header_.empty() && cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& name,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(name);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render(std::size_t indent) const {
  std::vector<std::size_t> widths;
  auto absorb = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  const std::string pad(indent, ' ');
  auto emit = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i == 0) {
        os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      } else {
        os << "  " << std::right << std::setw(static_cast<int>(widths[i])) << row[i];
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    os << pad << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

} // namespace benchcore
