// args.hpp — minimal CLI option parsing for the benchmark binaries.
//
// Supports `--key=value` and `--flag` forms.  The Table 1 harness uses
//   table1 --cores=1,8,16,24,32 --reps=3 --scale=small --only=c-ray,md5
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace benchcore {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if `--name` or `--name=...` was passed.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name=value`, or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = {}) const;

  [[nodiscard]] long get_long(const std::string& name, long fallback) const;

  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Parses `--name=a,b,c` into a vector; returns `fallback` if absent.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& name, const std::vector<std::string>& fallback = {}) const;

  /// Parses `--name=1,2,4` into sizes; returns `fallback` if absent.
  [[nodiscard]] std::vector<std::size_t> get_sizes(
      const std::string& name, const std::vector<std::size_t>& fallback = {}) const;

  /// Positional (non `--`) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> opts_;
  std::vector<std::string> positional_;
};

} // namespace benchcore
