#include "bench_core/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "bench_core/statistics.hpp"
#include "bench_core/table.hpp"
#include "bench_core/timer.hpp"

namespace benchcore {

double measure_median_seconds(const std::function<void()>& fn, std::size_t reps) {
  if (reps == 0) reps = 1;
  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    times.push_back(t.seconds());
  }
  return median(std::move(times));
}

Table1Harness::Table1Harness(std::vector<std::size_t> core_counts, std::size_t reps)
    : core_counts_(std::move(core_counts)), reps_(reps == 0 ? 1 : reps) {
  if (core_counts_.empty()) {
    throw std::invalid_argument("Table1Harness: need at least one core count");
  }
}

void Table1Harness::add(VariantSet v) { variants_.push_back(std::move(v)); }

std::vector<std::string> Table1Harness::names() const {
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const auto& v : variants_) out.push_back(v.name);
  return out;
}

SpeedupRow Table1Harness::measure(const VariantSet& v) const {
  SpeedupRow row;
  row.name = v.name;
  for (std::size_t cores : core_counts_) {
    const double tp = measure_median_seconds([&] { v.pthreads(cores); }, reps_);
    const double to = measure_median_seconds([&] { v.ompss(cores); }, reps_);
    row.pthreads_seconds.push_back(tp);
    row.ompss_seconds.push_back(to);
    row.speedup.push_back(to > 0.0 ? tp / to : 0.0);
  }
  row.mean = geomean(row.speedup);
  return row;
}

std::string Table1Harness::render_all(const std::vector<std::string>& only,
                                      std::vector<SpeedupRow>* out_rows) const {
  auto selected = [&](const std::string& name) {
    return only.empty() ||
           std::find(only.begin(), only.end(), name) != only.end();
  };

  TextTable table;
  std::vector<std::string> header{"Benchmark"};
  for (std::size_t c : core_counts_) header.push_back(std::to_string(c));
  header.push_back("Mean");
  table.set_header(std::move(header));

  std::vector<SpeedupRow> rows;
  for (const auto& v : variants_) {
    if (!selected(v.name)) continue;
    rows.push_back(measure(v));
    const SpeedupRow& r = rows.back();
    std::vector<double> cells = r.speedup;
    cells.push_back(r.mean);
    table.add_row(r.name, cells);
  }

  if (rows.size() > 1) {
    // Mean row: geometric mean down each column, and overall geomean of all
    // cells (the paper's bottom-right 1.02).
    std::vector<double> col_means;
    std::vector<double> all_cells;
    for (std::size_t c = 0; c < core_counts_.size(); ++c) {
      std::vector<double> col;
      for (const auto& r : rows) {
        col.push_back(r.speedup[c]);
        all_cells.push_back(r.speedup[c]);
      }
      col_means.push_back(geomean(col));
    }
    col_means.push_back(geomean(all_cells));
    table.add_row("Mean", col_means);
  }

  if (out_rows) *out_rows = std::move(rows);
  return table.render();
}

} // namespace benchcore
