// runner.hpp — the Table 1 measurement harness.
//
// Reproduces the paper's headline experiment: for every benchmark and every
// core count, time the Pthreads variant and the OmpSs variant and report the
// speedup factor  t_pthreads / t_ompss  (">1" means OmpSs wins), plus the
// geometric means across core counts (per-benchmark "Mean" column), across
// benchmarks (the "Mean" row), and overall.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace benchcore {

/// One benchmark's runnable variants.  Each callable performs the complete
/// workload once; `threads` is the total worker count for that run.
struct VariantSet {
  std::string name;
  std::function<void()> seq;                      ///< optional (may be null)
  std::function<void(std::size_t)> pthreads;      ///< required
  std::function<void(std::size_t)> ompss;         ///< required
};

/// Result of measuring one VariantSet across core counts.
struct SpeedupRow {
  std::string name;
  std::vector<double> pthreads_seconds; ///< median per core count
  std::vector<double> ompss_seconds;    ///< median per core count
  std::vector<double> speedup;          ///< pthreads_seconds / ompss_seconds
  double mean = 0.0;                    ///< geomean of `speedup`
};

class Table1Harness {
 public:
  /// `core_counts` — the columns of the table (the paper uses 1,8,16,24,32).
  /// `reps` — repetitions per cell; the median time is used.
  Table1Harness(std::vector<std::size_t> core_counts, std::size_t reps);

  /// Times one benchmark over all core counts.
  SpeedupRow measure(const VariantSet& v) const;

  /// Registers a benchmark for `render_all`.
  void add(VariantSet v);

  /// Names of registered benchmarks, in order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Measures every registered benchmark (optionally restricted to `only`,
  /// empty = all) and renders the paper-style table including the Mean
  /// column and Mean row.  Also returns the rows via `out_rows` if non-null.
  std::string render_all(const std::vector<std::string>& only = {},
                         std::vector<SpeedupRow>* out_rows = nullptr) const;

  [[nodiscard]] const std::vector<std::size_t>& core_counts() const {
    return core_counts_;
  }

 private:
  std::vector<std::size_t> core_counts_;
  std::size_t reps_;
  std::vector<VariantSet> variants_;
};

/// Times `fn` `reps` times and returns the median seconds.
double measure_median_seconds(const std::function<void()>& fn, std::size_t reps);

} // namespace benchcore
