#include "bench_core/statistics.hpp"

#include <algorithm>
#include <cmath>

namespace benchcore {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double minimum(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

} // namespace benchcore
