// table.hpp — plain-text table rendering in the style of the paper's Table 1.
//
//   Benchmark        1     8    16    24    32  Mean
//   c-ray         1.03  1.11  1.12  1.11  1.14  1.10
//   ...
//
// Columns auto-size to their widest cell; the first column is left-aligned,
// the rest right-aligned.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace benchcore {

class TextTable {
 public:
  /// Sets the header row (defines the column count).
  void set_header(std::vector<std::string> cells);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a name, the rest are numbers rendered with
  /// `precision` decimal places.
  void add_row(const std::string& name, const std::vector<double>& values,
               int precision = 2);

  /// Renders the table with `indent` leading spaces per line.
  [[nodiscard]] std::string render(std::size_t indent = 0) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Formats a double with fixed precision.
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace benchcore
