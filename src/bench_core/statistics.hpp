// statistics.hpp — summary statistics for benchmark repetitions.
//
// The paper reports per-benchmark speedups and geometric means across the
// suite (Table 1's "Mean" column and row); `geomean` reproduces that
// aggregation.  Medians are used for run-to-run robustness.
#pragma once

#include <cstddef>
#include <vector>

namespace benchcore {

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& xs);

/// Median (average of middle two for even sizes); 0 for empty input.
double median(std::vector<double> xs);

/// Sample standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Geometric mean; 0 for empty input. All inputs must be > 0.
double geomean(const std::vector<double>& xs);

/// Smallest element; 0 for empty input.
double minimum(const std::vector<double>& xs);

} // namespace benchcore
