// bench_core.hpp — umbrella header for the measurement substrate.
#pragma once

#include "bench_core/args.hpp"
#include "bench_core/runner.hpp"
#include "bench_core/statistics.hpp"
#include "bench_core/table.hpp"
#include "bench_core/timer.hpp"
#include "bench_core/workload.hpp"
