// workload.hpp — standard workload scales.
//
// Every benchmark derives its problem size from one of these presets so the
// whole suite can be resized together: `tiny` for unit tests, `small` for
// CI-sized measurement runs (the default on this container), `medium`/
// `large` for real machines approaching the paper's inputs.
#pragma once

#include <stdexcept>
#include <string>

namespace benchcore {

enum class Scale {
  Tiny,   ///< seconds-long full-suite runs; used by tests
  Small,  ///< default measurement size on small machines
  Medium, ///< workstation-sized
  Large,  ///< approximates the paper's inputs
};

inline const char* to_string(Scale s) noexcept {
  switch (s) {
    case Scale::Tiny: return "tiny";
    case Scale::Small: return "small";
    case Scale::Medium: return "medium";
    case Scale::Large: return "large";
  }
  return "?";
}

inline Scale parse_scale(const std::string& name) {
  if (name == "tiny") return Scale::Tiny;
  if (name == "small") return Scale::Small;
  if (name == "medium") return Scale::Medium;
  if (name == "large") return Scale::Large;
  throw std::invalid_argument("unknown scale: " + name);
}

/// Picks one of four values by scale — the idiom every benchmark config uses.
template <class T>
T by_scale(Scale s, T tiny, T small, T medium, T large) {
  switch (s) {
    case Scale::Tiny: return tiny;
    case Scale::Small: return small;
    case Scale::Medium: return medium;
    case Scale::Large: return large;
  }
  return small;
}

} // namespace benchcore
