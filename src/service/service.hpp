// service.hpp — oss::service: a long-lived Runtime serving N concurrent
// streams (docs/service.md).
//
// The one-shot apps (h264dec_ompss & co.) construct a Runtime, decode, and
// tear it down.  A decode *service* inverts that: one Runtime stays up and
// independent streams come and go, each a pipelined task chain.  This layer
// provides the stream-management half, decode-agnostic:
//
//   * `Service` — admission control.  At most `Config::max_streams` streams
//     are open at once; `open()` past capacity (or after `close()`) rejects
//     with a reason instead of queueing, so callers can shed load.
//
//   * `Stream` — one client's private lane.  Tasks spawned through the
//     stream land in a private `oss::TaskGroup` domain (streams never
//     dependency-interfere with each other), and each stream carries a
//     `Window`: a bounded in-flight counter giving per-stream backpressure —
//     `acquire(Submit::Block)` waits for a slot, `Submit::FailFast` bounces.
//     `close()` wakes blocked submitters with failure, drains the already
//     admitted work, and frees the admission slot.
//
//   * Stream→node affinity.  Streams are assigned NUMA home nodes
//     round-robin; sessions place their per-stream state there with the
//     `NodeLocal`/`NodeArray` helpers so `.affinity_auto()` resolves every
//     stage task of a stream to the stream's node (the registered-region
//     derivation of docs/numa.md).  On single-node machines the node is -1
//     and everything degenerates to plain allocation, no affinity hint.
//
// Knobs: OSS_SERVICE_MAX_STREAMS, OSS_SERVICE_WINDOW (`Config::from_env`,
// parsed with the same strict integer rules as every other OSS_* knob).
//
// Threading contract: `Service::open`/`close` and `Window` are thread-safe;
// a single `Stream` is driven by one submitter at a time (concurrent
// *streams* are the concurrency model, like one decoder thread per client).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ompss/ompss.hpp"

namespace oss::service {

/// Backpressure policy for admitting one work unit into a stream's window.
enum class Submit {
  Block,    ///< wait until a window slot frees (or the stream closes)
  FailFast, ///< full window bounces immediately (caller sheds load)
};

/// Why `Service::open` refused a stream.
enum class Reject {
  None,     ///< not rejected
  Capacity, ///< max_streams streams already open
  Closed,   ///< the service was closed
};

[[nodiscard]] const char* reject_name(Reject r) noexcept;

/// Service-level knobs (OSS_SERVICE_*).
struct Config {
  /// Streams admitted concurrently (OSS_SERVICE_MAX_STREAMS, >= 1).
  std::size_t max_streams = 4;
  /// Per-stream in-flight work-unit bound (OSS_SERVICE_WINDOW, >= 1) — the
  /// pipeline depth of a stream: its circular renaming buffer holds this
  /// many units, and the window's backpressure is what keeps it that size.
  std::size_t window = 4;

  /// Reads the OSS_SERVICE_* knobs on top of the defaults; malformed values
  /// throw std::invalid_argument naming the knob (see parse_env_size).
  static Config from_env();
};

/// Bounded in-flight counter: the per-stream backpressure primitive.
/// `acquire` admits one unit (blocking or fail-fast while full), `release`
/// retires one (called from the unit's final task), `close` fails current
/// and future acquires so blocked submitters unwind.  All counters are
/// monotonic over the window's lifetime.
class Window {
 public:
  explicit Window(std::size_t depth) : depth_(depth == 0 ? 1 : depth) {}

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Admits one unit.  False = not admitted: the window is closed, or it is
  /// full under Submit::FailFast.  Under Submit::Block a full window waits;
  /// a close() during the wait also returns false.
  [[nodiscard]] bool acquire(Submit policy);

  /// Retires one admitted unit, waking one blocked acquirer.
  void release();

  /// Fails all current and future acquires.  Units already admitted are
  /// unaffected (they still release normally — close is drain, not cancel).
  void close();

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t in_flight() const;
  /// High-water mark of in_flight — never exceeds depth() (the bounded-
  /// memory proof a load test asserts).
  [[nodiscard]] std::size_t peak() const;
  /// Block-policy acquires that had to wait for a slot.
  [[nodiscard]] std::uint64_t blocked() const;
  /// FailFast acquires bounced on a full window.
  [[nodiscard]] std::uint64_t rejected() const;

 private:
  const std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t in_flight_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t rejected_ = 0;
  bool closed_ = false;
};

class Service;

/// One admitted stream: a private task domain plus its backpressure window.
/// Obtained from `Service::open`; `close()` (or destruction) drains it and
/// frees the admission slot.
class Stream {
 public:
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Starts a task declaration in this stream's private dependency domain.
  /// Only valid while the stream is open.
  [[nodiscard]] oss::TaskBuilder task(std::string label);

  /// Waits for every task spawned through the stream so far (rethrows the
  /// first task exception).  The stream stays open.
  void drain();

  /// Closes the stream: fails blocked/future window acquires, drains the
  /// admitted work, and frees the admission slot.  Idempotent.
  void close();

  [[nodiscard]] bool open() const;
  [[nodiscard]] Window& window() noexcept { return window_; }
  [[nodiscard]] oss::Runtime& runtime() const noexcept { return *rt_; }
  /// Home NUMA node assigned round-robin at open (-1 on single-node boxes).
  [[nodiscard]] int node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Stream tasks not yet finished.
  [[nodiscard]] std::size_t pending() const;

 private:
  friend class Service;

  Stream(Service& svc, oss::Runtime& rt, std::string name, std::uint64_t id,
         int node, std::size_t window_depth);

  Service* svc_;
  oss::Runtime* rt_;
  std::string name_;
  std::uint64_t id_;
  int node_;
  Window window_;
  /// Private dependency domain; reset on close so a Stream handle that
  /// outlives the drain never touches runtime state again.
  std::optional<oss::TaskGroup> group_;
  mutable std::mutex mu_; ///< guards group_ teardown / open flag
  bool open_ = true;
};

using StreamPtr = std::shared_ptr<Stream>;

/// Admission control over one shared Runtime.
class Service {
 public:
  struct Stats {
    std::uint64_t opened = 0;            ///< streams ever admitted
    std::uint64_t closed = 0;            ///< streams closed (drained)
    std::uint64_t rejected_capacity = 0; ///< opens bounced at max_streams
    std::uint64_t rejected_closed = 0;   ///< opens after close()
    std::size_t active = 0;              ///< currently open
  };

  Service(oss::Runtime& rt, Config cfg = Config::from_env());

  /// Closes every stream still open (drains them), then the service.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admits a new stream, or returns null with `*why` set (Capacity when
  /// max_streams are open, Closed after close()).  Thread-safe.
  [[nodiscard]] StreamPtr open(std::string name, Reject* why = nullptr);

  /// Rejects future opens, then closes (drains) every open stream.
  void close();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] oss::Runtime& runtime() const noexcept { return *rt_; }

 private:
  friend class Stream;
  void on_stream_closed();

  oss::Runtime* rt_;
  Config cfg_;
  std::size_t num_nodes_;

  mutable std::mutex mu_;
  bool closed_ = false;
  std::size_t active_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_streams_ = 0;
  std::uint64_t rejected_capacity_ = 0;
  std::uint64_t rejected_closed_ = 0;
  std::vector<std::weak_ptr<Stream>> streams_; ///< for close-all; pruned lazily
};

// --- node-local stream state -----------------------------------------------
//
// `.affinity_auto()` derives a task's home node from its largest *registered*
// declared region (numa_alloc.hpp).  These helpers place a stream's state in
// registered node-bound pages so every stage task that declares accesses on
// that state inherits the stream's node — no per-task affinity bookkeeping.
// With node < 0 they fall back to plain (unregistered) page storage, so the
// same session code runs on single-node machines with zero behavior change.

/// One T constructed in node-bound registered storage.
template <class T>
class NodeLocal {
 public:
  template <class... A>
  explicit NodeLocal(int node, A&&... args)
      : bytes_(sizeof(T)),
        p_(node >= 0 ? oss::numa_alloc_onnode(sizeof(T), node)
                     : oss::numa_raw_alloc(sizeof(T), -1)),
        node_(node) {
    try {
      new (p_) T(std::forward<A>(args)...);
    } catch (...) {
      free_storage();
      throw;
    }
  }

  NodeLocal(const NodeLocal&) = delete;
  NodeLocal& operator=(const NodeLocal&) = delete;

  ~NodeLocal() {
    get()->~T();
    free_storage();
  }

  [[nodiscard]] T* get() const noexcept { return static_cast<T*>(p_); }
  [[nodiscard]] T& operator*() const noexcept { return *get(); }
  [[nodiscard]] T* operator->() const noexcept { return get(); }
  [[nodiscard]] int node() const noexcept { return node_; }

 private:
  void free_storage() noexcept {
    if (node_ >= 0) {
      oss::numa_free(p_, bytes_);
    } else {
      oss::numa_raw_free(p_, bytes_);
    }
  }

  std::size_t bytes_;
  void* p_;
  int node_;
};

/// A fixed-size array of default-constructed T in node-bound registered
/// storage (the stream's circular slot buffer).
template <class T>
class NodeArray {
 public:
  NodeArray(std::size_t n, int node)
      : n_(n),
        bytes_(n * sizeof(T)),
        p_(node >= 0 ? oss::numa_alloc_onnode(bytes_, node)
                     : oss::numa_raw_alloc(bytes_, -1)),
        node_(node) {
    std::size_t built = 0;
    try {
      for (; built < n_; ++built) new (data() + built) T();
    } catch (...) {
      while (built > 0) data()[--built].~T();
      free_storage();
      throw;
    }
  }

  NodeArray(const NodeArray&) = delete;
  NodeArray& operator=(const NodeArray&) = delete;

  ~NodeArray() {
    for (std::size_t i = n_; i > 0; --i) data()[i - 1].~T();
    free_storage();
  }

  [[nodiscard]] T* data() const noexcept { return static_cast<T*>(p_); }
  [[nodiscard]] T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] int node() const noexcept { return node_; }

 private:
  void free_storage() noexcept {
    if (node_ >= 0) {
      oss::numa_free(p_, bytes_);
    } else {
      oss::numa_raw_free(p_, bytes_);
    }
  }

  std::size_t n_;
  std::size_t bytes_;
  void* p_;
  int node_;
};

} // namespace oss::service
