#include "service/service.hpp"

#include <algorithm>
#include <cstdlib>

namespace oss::service {

const char* reject_name(Reject r) noexcept {
  switch (r) {
    case Reject::None: return "none";
    case Reject::Capacity: return "capacity";
    case Reject::Closed: return "closed";
  }
  return "?";
}

Config Config::from_env() {
  Config c;
  if (const char* v = std::getenv("OSS_SERVICE_MAX_STREAMS")) {
    c.max_streams = parse_env_size("OSS_SERVICE_MAX_STREAMS", v);
  }
  if (const char* v = std::getenv("OSS_SERVICE_WINDOW")) {
    c.window = parse_env_size("OSS_SERVICE_WINDOW", v);
  }
  c.max_streams = std::max<std::size_t>(c.max_streams, 1);
  c.window = std::max<std::size_t>(c.window, 1);
  return c;
}

// --- Window -----------------------------------------------------------------

bool Window::acquire(Submit policy) {
  std::unique_lock lock(mu_);
  if (closed_) return false;
  if (in_flight_ >= depth_) {
    if (policy == Submit::FailFast) {
      ++rejected_;
      return false;
    }
    ++blocked_;
    cv_.wait(lock, [this] { return closed_ || in_flight_ < depth_; });
    if (closed_) return false;
  }
  ++in_flight_;
  peak_ = std::max(peak_, in_flight_);
  return true;
}

void Window::release() {
  {
    std::lock_guard lock(mu_);
    if (in_flight_ == 0) {
      // Release without acquire is a caller bug; tolerate it rather than
      // underflow (the counters are diagnostics, not ownership).
      return;
    }
    --in_flight_;
  }
  cv_.notify_one();
}

void Window::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Window::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t Window::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

std::size_t Window::peak() const {
  std::lock_guard lock(mu_);
  return peak_;
}

std::uint64_t Window::blocked() const {
  std::lock_guard lock(mu_);
  return blocked_;
}

std::uint64_t Window::rejected() const {
  std::lock_guard lock(mu_);
  return rejected_;
}

// --- Stream -----------------------------------------------------------------

Stream::Stream(Service& svc, oss::Runtime& rt, std::string name,
               std::uint64_t id, int node, std::size_t window_depth)
    : svc_(&svc),
      rt_(&rt),
      name_(std::move(name)),
      id_(id),
      node_(node),
      window_(window_depth) {
  group_.emplace(rt);
}

Stream::~Stream() {
  try {
    close();
  } catch (...) {
    // A child-task exception surfacing in the drain has nowhere to go from
    // a destructor; explicit close() is the path that propagates it.
  }
}

oss::TaskBuilder Stream::task(std::string label) {
  std::lock_guard lock(mu_);
  if (!open_) {
    throw std::logic_error("oss::service::Stream::task: stream '" + name_ +
                           "' is closed");
  }
  return group_->task(std::move(label));
}

void Stream::drain() {
  std::lock_guard lock(mu_);
  if (group_) group_->wait();
}

void Stream::close() {
  {
    std::lock_guard lock(mu_);
    if (!open_) return;
    open_ = false;
  }
  // Wake blocked submitters first — a submitter stuck in acquire() would
  // otherwise never free the window slot the drain below could need.
  window_.close();
  {
    std::lock_guard lock(mu_);
    if (group_) {
      group_->wait(); // drain: admitted work completes, nothing is cancelled
      group_.reset();
    }
  }
  svc_->on_stream_closed();
}

bool Stream::open() const {
  std::lock_guard lock(mu_);
  return open_;
}

std::size_t Stream::pending() const {
  std::lock_guard lock(mu_);
  return group_ ? group_->pending() : 0;
}

// --- Service ----------------------------------------------------------------

Service::Service(oss::Runtime& rt, Config cfg)
    : rt_(&rt), cfg_(cfg), num_nodes_(rt.topology().num_nodes()) {
  cfg_.max_streams = std::max<std::size_t>(cfg_.max_streams, 1);
  cfg_.window = std::max<std::size_t>(cfg_.window, 1);
}

Service::~Service() {
  try {
    close();
  } catch (...) {
    // see ~Stream
  }
}

StreamPtr Service::open(std::string name, Reject* why) {
  std::uint64_t id = 0;
  int node = -1;
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      ++rejected_closed_;
      if (why) *why = Reject::Closed;
      return nullptr;
    }
    if (active_ >= cfg_.max_streams) {
      ++rejected_capacity_;
      if (why) *why = Reject::Capacity;
      return nullptr;
    }
    ++active_;
    ++opened_;
    id = next_id_++;
    // Round-robin stream→node placement; single-node boxes get -1 (no
    // binding, no registration — plain allocation downstream).
    node = num_nodes_ > 1 ? static_cast<int>(id % num_nodes_) : -1;
  }
  StreamPtr s(new Stream(*this, *rt_, std::move(name), id, node, cfg_.window));
  {
    std::lock_guard lock(mu_);
    streams_.erase(std::remove_if(streams_.begin(), streams_.end(),
                                  [](const std::weak_ptr<Stream>& w) {
                                    return w.expired();
                                  }),
                   streams_.end());
    streams_.push_back(s);
  }
  if (why) *why = Reject::None;
  return s;
}

void Service::close() {
  std::vector<std::weak_ptr<Stream>> to_close;
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    to_close = streams_;
  }
  for (auto& w : to_close) {
    if (StreamPtr s = w.lock()) s->close();
  }
}

void Service::on_stream_closed() {
  std::lock_guard lock(mu_);
  if (active_ > 0) --active_;
  ++closed_streams_;
}

Service::Stats Service::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.opened = opened_;
  s.closed = closed_streams_;
  s.rejected_capacity = rejected_capacity_;
  s.rejected_closed = rejected_closed_;
  s.active = active_;
  return s;
}

} // namespace oss::service
