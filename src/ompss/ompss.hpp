// ompss.hpp — umbrella header for the OmpSs-style task-dataflow runtime.
//
// Quick start:
//
//   #include "ompss/ompss.hpp"
//
//   oss::Runtime rt(4);                       // 4 threads total
//   double a = 1, b = 0, c = 0;
//   rt.task("double").in(a).out(b).spawn([&] { b = a * 2; });
//   rt.task("inc").in(b).out(c).spawn([&] { c = b + 1; }); // runs after
//   rt.taskwait();                            // c == 3
//
// See task_builder.hpp for the fluent spawn API (TaskBuilder, TaskGroup),
// task_handle.hpp for first-class task references, runtime.hpp for the
// runtime itself, and docs/api.md for the pragma-clause → builder-method
// mapping.
#pragma once

#include "ompss/access.hpp"
#include "ompss/chase_lev.hpp"
#include "ompss/config.hpp"
#include "ompss/critical.hpp"
#include "ompss/dep_domain.hpp"
#include "ompss/eventcount.hpp"
#include "ompss/global.hpp"
#include "ompss/graph_recorder.hpp"
#include "ompss/mpmc_queue.hpp"
#include "ompss/numa_alloc.hpp"
#include "ompss/pinning.hpp"
#include "ompss/prof.hpp"
#include "ompss/queues.hpp"
#include "ompss/replay.hpp"
#include "ompss/runtime.hpp"
#include "ompss/scheduler.hpp"
#include "ompss/stats.hpp"
#include "ompss/task.hpp"
#include "ompss/task_builder.hpp"
#include "ompss/task_handle.hpp"
#include "ompss/taskloop.hpp"
#include "ompss/topology.hpp"
#include "ompss/trace.hpp"
#include "ompss/trace_analysis.hpp"
#include "ompss/wavefront.hpp"

namespace oss {

/// Library version (matches the CMake project version).
inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

} // namespace oss
