// ompss.hpp — umbrella header for the OmpSs-style task-dataflow runtime.
//
// Quick start:
//
//   #include "ompss/ompss.hpp"
//
//   oss::Runtime rt(4);                       // 4 threads total
//   double a = 1, b = 0, c = 0;
//   rt.spawn({oss::in(a), oss::out(b)}, [&]{ b = a * 2; });
//   rt.spawn({oss::in(b), oss::out(c)}, [&]{ c = b + 1; }); // runs after
//   rt.taskwait();                            // c == 3
//
// See runtime.hpp for the full API and DESIGN.md for how this maps onto the
// OmpSs programming model of the paper.
#pragma once

#include "ompss/access.hpp"
#include "ompss/config.hpp"
#include "ompss/critical.hpp"
#include "ompss/dep_domain.hpp"
#include "ompss/global.hpp"
#include "ompss/graph_recorder.hpp"
#include "ompss/queues.hpp"
#include "ompss/runtime.hpp"
#include "ompss/scheduler.hpp"
#include "ompss/stats.hpp"
#include "ompss/task.hpp"
#include "ompss/taskloop.hpp"
#include "ompss/trace.hpp"
#include "ompss/trace_analysis.hpp"
#include "ompss/wavefront.hpp"

namespace oss {

/// Library version (matches the CMake project version).
inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

} // namespace oss
