// scheduler_impl.hpp — shared machinery for the scheduler policies.
//
// `SchedulerBase` owns what every policy needs: the sharded global queues
// (normal + priority), one cache-line-padded state block per worker (local
// Chase–Lev deque + private steal RNG), and the common pick/steal skeleton.
// The concrete policies (scheduler_fifo.cpp, scheduler_locality.cpp,
// scheduler_wsteal.cpp) only decide *placement*; the drain side is shared.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "ompss/mpmc_queue.hpp"
#include "ompss/queues.hpp"
#include "ompss/scheduler.hpp"

namespace oss {

class SchedulerBase : public Scheduler {
 protected:
  SchedulerBase(SchedulerPolicy policy, std::size_t num_workers,
                std::size_t steal_tries);

 public:
  [[nodiscard]] std::size_t queued() const override;

 protected:
  /// Per-worker state, padded so neighbouring workers never share a line.
  /// The RNG is private to the owning worker (only the owner steals with
  /// it), so steal attempts no longer contend on a shared seed.
  struct alignas(64) WorkerState {
    WorkerDeque deque;
    std::uint64_t rng = 0;
  };

  /// Routes to the priority queue when applicable; returns true if consumed.
  bool place_priority(TaskPtr& t) {
    if (t->priority() <= 0) return false;
    global_hi_.push(std::move(t));
    return true;
  }

  /// Priority queue, then the caller's local deque, then the global queue.
  /// `use_local` lets Fifo skip the local tier entirely.
  TaskPtr pick_common(int worker, Stats& stats, bool use_local);

  /// Random-start sweeps over sibling deques; counts one failed-steal per
  /// pick that sweeps every victim `steal_tries` times and finds nothing.
  TaskPtr steal_from_siblings(int thief, Stats& stats);

  [[nodiscard]] bool is_worker(int w) const noexcept {
    return w >= 0 && static_cast<std::size_t>(w) < num_workers_;
  }

  WorkerState& worker_state(int w) {
    return workers_[static_cast<std::size_t>(w)];
  }

  /// xorshift64: cheap, decent-quality per-worker steal randomness.
  static std::uint64_t next_rand(std::uint64_t& s) noexcept {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }

  std::size_t num_workers_;
  std::size_t steal_tries_;
  ShardedTaskQueue global_hi_; ///< priority > 0, served before all else
  ShardedTaskQueue global_;
  std::unique_ptr<WorkerState[]> workers_;
  /// Sweep-start cursor for non-worker thieves (rare; workers use their
  /// private RNG instead).
  std::atomic<std::uint32_t> foreign_cursor_{0};
};

class FifoScheduler final : public SchedulerBase {
 public:
  FifoScheduler(std::size_t num_workers, std::size_t steal_tries)
      : SchedulerBase(SchedulerPolicy::Fifo, num_workers, steal_tries) {}
  void enqueue_spawned(TaskPtr t, int spawner_worker) override;
  void enqueue_unblocked(TaskPtr t, int finisher_worker) override;
  TaskPtr pick(int worker, Stats& stats) override;
};

class LocalityScheduler final : public SchedulerBase {
 public:
  LocalityScheduler(std::size_t num_workers, std::size_t steal_tries)
      : SchedulerBase(SchedulerPolicy::Locality, num_workers, steal_tries) {}
  void enqueue_spawned(TaskPtr t, int spawner_worker) override;
  void enqueue_unblocked(TaskPtr t, int finisher_worker) override;
  TaskPtr pick(int worker, Stats& stats) override;
};

class WorkStealingScheduler final : public SchedulerBase {
 public:
  WorkStealingScheduler(std::size_t num_workers, std::size_t steal_tries)
      : SchedulerBase(SchedulerPolicy::WorkStealing, num_workers, steal_tries) {
  }
  void enqueue_spawned(TaskPtr t, int spawner_worker) override;
  void enqueue_unblocked(TaskPtr t, int finisher_worker) override;
  TaskPtr pick(int worker, Stats& stats) override;
};

} // namespace oss
