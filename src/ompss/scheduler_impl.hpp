// scheduler_impl.hpp — shared machinery for the scheduler policies.
//
// `SchedulerBase` owns what every policy needs: the sharded global queues
// (normal + priority), one cache-line-padded state block per worker (local
// Chase–Lev deque + private steal RNG + adaptive steal budget), the
// per-NUMA-node ready queues and worker↔node maps on multi-node topologies,
// and the common pick/steal skeleton.  The concrete policies
// (scheduler_fifo.cpp, scheduler_locality.cpp, scheduler_wsteal.cpp) only
// decide *placement*; the drain side is shared.
//
// NUMA layout: on a multi-node topology each worker's state block (and its
// deque ring buffers) is placement-new'ed into pages bound to the worker's
// node (NumaMode::Bind), and one extra ShardedTaskQueue per node holds the
// tasks whose home-node hint points there.  Single-node topologies build
// none of this and behave exactly like the topology-blind scheduler.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ompss/mpmc_queue.hpp"
#include "ompss/queues.hpp"
#include "ompss/scheduler.hpp"
#include "ompss/trace.hpp"

namespace oss {

class SchedulerBase : public Scheduler {
 protected:
  SchedulerBase(SchedulerPolicy policy, std::size_t num_workers,
                std::size_t steal_tries, const Topology& topo, NumaMode numa,
                std::size_t pressure);

 public:
  ~SchedulerBase() override;

  [[nodiscard]] std::size_t queued() const override;
  [[nodiscard]] QueueDepths queue_depths() const override;
  [[nodiscard]] int worker_node(int worker) const noexcept override;
  [[nodiscard]] std::size_t steal_budget(int worker) const noexcept override;

  void on_worker_park(int worker) noexcept override;
  void on_worker_unpark(int worker) noexcept override;
  [[nodiscard]] std::uint64_t overflow_placements() const noexcept override {
    return overflow_placements_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t parked_on_node(int node) const noexcept override;

 protected:
  /// Per-worker state, padded so neighbouring workers never share a line
  /// and node-bound so the hot deque words live on the owner's socket.
  /// The RNG is private to the owning worker (only the owner steals with
  /// it), so steal attempts no longer contend on a shared seed.
  struct alignas(64) WorkerState {
    explicit WorkerState(int numa_node) : deque(numa_node) {}
    WorkerDeque deque;
    std::uint64_t rng = 0;
    /// Patience budget for foreign-node-queue drains: consecutive picks
    /// this worker has skipped a foreign queue whose home node had parked
    /// workers.  At kForeignPatience the raid proceeds unconditionally, so
    /// nothing strands.  Owner-only, like rng.
    std::uint32_t foreign_deferrals = 0;
    /// Set by pick_common when this pick skipped a foreign queue; if the
    /// whole pick (steal tier included) then comes up empty, common_pick
    /// yields the OS quantum to the skipped node's waking workers.
    bool deferred_this_pick = false;
    /// Adaptive sweep count: halves after a fully-failed steal sweep,
    /// creeps back up on success, always within [1, steal_tries ceiling].
    /// Written only by the owning worker; atomic (relaxed) because the
    /// public steal_budget() accessor may read it from any thread.
    std::atomic<std::size_t> steal_budget{1};
  };

  /// Routes to the priority queue when applicable; returns true if consumed.
  /// Priority outranks affinity: a priority task goes to the global
  /// priority tier even when it carries a home-node hint.
  bool place_priority(TaskPtr& t) {
    if (t->priority() <= 0) return false;
    const std::uint64_t id = t->id();
    global_hi_.push(std::move(t));
    trace_place(id, PlaceTier::Priority);
    return true;
  }

  /// Full-mode trace hook for placement decisions (ts-free structural
  /// event: one ring push, nothing else).
  void trace_place(std::uint64_t task_id, PlaceTier tier) {
    if (trace_ != nullptr) trace_->emit_place(task_id, tier);
  }

  /// Routes a task carrying a valid home-node hint to that node's queue;
  /// returns true if consumed.  Always false on single-node topologies.
  ///
  /// Pressure feedback (work-first fallback): a *soft* hint — derived by
  /// affinity_auto or chain inheritance, never an explicit `.affinity()` —
  /// is diverted to the caller's fallthrough (the global tier) when the
  /// home queue is already `pressure_threshold_` deep while another node
  /// has parked workers.  Locality-first placement is only worth queueing
  /// delay while the home node keeps up; once it backs up and other
  /// sockets idle, running remotely now beats running locally later.
  bool place_home(TaskPtr& t) {
    const int home = t->home_node();
    if (home < 0 || static_cast<std::size_t>(home) >= node_queues_.size()) {
      return false;
    }
    if (t->home_soft() && pressure_threshold_ > 0 &&
        node_queues_[static_cast<std::size_t>(home)]->size() >=
            pressure_threshold_ &&
        parked_elsewhere(home)) {
      overflow_placements_.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr) trace_->emit_overflow(t->id());
      return false;
    }
    const std::uint64_t id = t->id();
    node_queues_[static_cast<std::size_t>(home)]->push(std::move(t));
    trace_place(id, PlaceTier::Home);
    return true;
  }

  /// True when a node other than `home` currently has parked workers —
  /// the "someone idles across the interconnect" half of the pressure
  /// condition.  Relaxed reads: the feedback is a heuristic, a stale count
  /// costs at most one mis-widened (or mis-kept) placement.
  [[nodiscard]] bool parked_elsewhere(int home) const noexcept {
    for (std::size_t n = 0; n < node_workers_.size(); ++n) {
      if (static_cast<int>(n) == home) continue;
      if (node_parked_[n].load(std::memory_order_relaxed) > 0) return true;
    }
    return false;
  }

  /// True when `w` is a worker whose node matches the task's home hint, or
  /// the task has no (valid) hint — i.e. placing on `w`'s deque respects
  /// affinity.
  [[nodiscard]] bool node_matches(int w, const TaskPtr& t) const noexcept {
    const int home = t->home_node();
    if (home < 0 || static_cast<std::size_t>(home) >= node_queues_.size()) {
      return true;
    }
    return is_worker(w) && worker_node_[static_cast<std::size_t>(w)] == home;
  }

  /// Priority queue, the caller's local deque, the caller's node queue,
  /// the global queue, then foreign node queues.  `use_local` lets Fifo
  /// skip the local-deque tier entirely.
  TaskPtr pick_common(int worker, Stats& stats, bool use_local);

  /// The full pick skeleton every policy shares: queue tiers, then (for
  /// stealing policies) the victim sweep, then — only if the entire pick
  /// came up empty after a foreign-raid deferral — one OS yield so the
  /// skipped node's waking workers can claim their queue; finally the
  /// local/remote accounting.
  TaskPtr common_pick(int worker, Stats& stats, bool use_local, bool steal);

  /// Victim sweeps over sibling deques, same-socket victims first; the
  /// per-worker sweep count adapts to the failed-steal rate (capped by
  /// steal_tries).  Counts one failed-steal per pick that finds nothing.
  TaskPtr steal_from_siblings(int thief, Stats& stats);

  /// Attributes an affinity task to tasks_local/tasks_remote at pick time
  /// (the counters that prove the routing).  No-op for tasks without a
  /// hint, on single-node topologies, and for non-worker pickers.
  void account_pick(int worker, const TaskPtr& t, Stats& stats) const {
    if (!t || node_queues_.empty() || !is_worker(worker)) return;
    const int home = t->home_node();
    if (home < 0) return;
    if (worker_node_[static_cast<std::size_t>(worker)] == home) {
      stats.on_task_local();
    } else {
      stats.on_task_remote();
    }
  }

  [[nodiscard]] bool is_worker(int w) const noexcept {
    return w >= 0 && static_cast<std::size_t>(w) < num_workers_;
  }

  WorkerState& worker_state(int w) {
    return *workers_[static_cast<std::size_t>(w)];
  }

  /// xorshift64: cheap, decent-quality per-worker steal randomness.
  static std::uint64_t next_rand(std::uint64_t& s) noexcept {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }

  /// Consecutive picks a worker defers a foreign-node-queue raid while the
  /// home node has parked workers (see pick_common).  Small and fixed: the
  /// patience must stay invisible next to any real task's runtime.
  static constexpr std::uint32_t kForeignPatience = 4;

  std::size_t num_workers_;
  std::size_t steal_tries_; ///< adaptive-budget ceiling (OSS_STEAL_TRIES)
  std::size_t pressure_threshold_; ///< OSS_PRESSURE (0 = feedback off)
  Topology topo_;
  NumaMode numa_mode_;
  std::vector<int> worker_node_;               ///< worker id → dense node
  std::vector<std::vector<int>> node_workers_; ///< dense node → worker ids
  /// Parked workers per node (runtime park/unpark hooks); sized like
  /// node_workers_.
  std::unique_ptr<std::atomic<int>[]> node_parked_;
  std::atomic<std::uint64_t> overflow_placements_{0};
  ShardedTaskQueue global_hi_; ///< priority > 0, served before all else
  ShardedTaskQueue global_;
  /// One ready queue per node for home-node tasks; empty on single-node
  /// topologies (the whole NUMA path compiles down to two empty checks).
  std::vector<std::unique_ptr<ShardedTaskQueue>> node_queues_;
  /// State blocks, placement-new'ed into node-bound pages (see ctor).
  std::vector<WorkerState*> workers_;
  /// Sweep-start cursor for non-worker thieves (rare; workers use their
  /// private RNG instead).
  std::atomic<std::uint32_t> foreign_cursor_{0};

 private:
  TaskPtr try_steal(std::size_t victim, int thief, Stats& stats);

  /// Budget updates: owner-only writes, relaxed (see WorkerState).
  void grow_budget(WorkerState* st) const noexcept {
    if (st == nullptr) return;
    const std::size_t b = st->steal_budget.load(std::memory_order_relaxed);
    if (b < steal_tries_) {
      st->steal_budget.store(b + 1, std::memory_order_relaxed);
    }
  }
  static void decay_budget(WorkerState* st) noexcept {
    if (st == nullptr) return;
    const std::size_t b = st->steal_budget.load(std::memory_order_relaxed);
    if (b > 1) st->steal_budget.store(b / 2, std::memory_order_relaxed);
  }
};

class FifoScheduler final : public SchedulerBase {
 public:
  FifoScheduler(std::size_t num_workers, std::size_t steal_tries,
                const Topology& topo, NumaMode numa, std::size_t pressure)
      : SchedulerBase(SchedulerPolicy::Fifo, num_workers, steal_tries, topo,
                      numa, pressure) {}
  void enqueue_spawned(TaskPtr t, int spawner_worker) override;
  void enqueue_unblocked(TaskPtr t, int finisher_worker) override;
  TaskPtr pick(int worker, Stats& stats) override;
};

class LocalityScheduler final : public SchedulerBase {
 public:
  LocalityScheduler(std::size_t num_workers, std::size_t steal_tries,
                    const Topology& topo, NumaMode numa, std::size_t pressure)
      : SchedulerBase(SchedulerPolicy::Locality, num_workers, steal_tries,
                      topo, numa, pressure) {}
  void enqueue_spawned(TaskPtr t, int spawner_worker) override;
  void enqueue_unblocked(TaskPtr t, int finisher_worker) override;
  TaskPtr pick(int worker, Stats& stats) override;
};

class WorkStealingScheduler final : public SchedulerBase {
 public:
  WorkStealingScheduler(std::size_t num_workers, std::size_t steal_tries,
                        const Topology& topo, NumaMode numa,
                        std::size_t pressure)
      : SchedulerBase(SchedulerPolicy::WorkStealing, num_workers, steal_tries,
                      topo, numa, pressure) {}
  void enqueue_spawned(TaskPtr t, int spawner_worker) override;
  void enqueue_unblocked(TaskPtr t, int finisher_worker) override;
  TaskPtr pick(int worker, Stats& stats) override;
};

} // namespace oss
