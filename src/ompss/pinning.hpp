// pinning.hpp — worker→CPU pinning with a capability probe.
//
// The topology (topology.hpp) knows which CPUs belong to which memory node,
// but without pinning the kernel is free to migrate a worker off its "home"
// node mid-run, silently breaking first-touch placement and the scheduler's
// locality assumptions.  `OSS_PIN=1` closes that loop: each worker thread is
// bound (pthread_setaffinity_np) to the CPU *set* of its home node — node-set
// pinning rather than one-CPU pinning, so the kernel can still balance
// workers within a socket and oversubscribed runs never stack two workers on
// one forced CPU.
//
// The capability probe makes this safe everywhere: containers, cpusets and
// taskset-restricted shells expose only a subset of the machine's CPUs, and a
// setaffinity call naming a forbidden CPU fails with EINVAL.  `allowed_cpus`
// reads the caller's current mask; pin targets are intersected with it before
// any syscall, and a worker whose node has no allowed CPU simply stays
// unpinned (the runtime prints one warning line and carries on — pinning is
// an optimization, never a startup requirement).
//
// `OSS_PIN=compact|scatter` instead bind every worker to a *single* CPU
// (`pin_layout`): `compact` fills nodes in order (workers 0..k-1 on node 0's
// CPUs, then node 1's, ...) for cache sharing between neighbours; `scatter`
// round-robins workers across nodes (worker i on node i % nnodes) for
// maximum aggregate memory bandwidth — the classic OpenMP PROC_BIND pair.
//
// Non-Linux platforms compile to stubs (`pinning_supported() == false`).
#pragma once

#include <thread>
#include <vector>

#include "ompss/config.hpp"
#include "ompss/topology.hpp"

namespace oss {

/// True when the platform has thread affinity syscalls at all.
bool pinning_supported() noexcept;

/// CPU ids the calling thread is currently allowed to run on, ascending.
/// Empty when the mask cannot be read (treat as "unknown": skip pinning).
std::vector<int> allowed_cpus();

/// Binds `handle` (a std::thread native handle) to `cpus`.  Returns false —
/// never throws, never aborts — on empty cpu lists, syscall failure, or
/// unsupported platforms.
bool pin_thread(std::thread::native_handle_type handle,
                const std::vector<int>& cpus) noexcept;

/// Binds the calling thread to `cpus` (same contract as pin_thread).
bool pin_current_thread(const std::vector<int>& cpus) noexcept;

/// Intersection of `cpus` with `allowed`, both ascending (the pin target a
/// capability-restricted process may legally request).
std::vector<int> intersect_cpus(const std::vector<int>& cpus,
                                const std::vector<int>& allowed);

/// Single-CPU pin targets for `workers` workers under `compact` or `scatter`
/// (PinMode::Node is node-*set* pinning and is resolved by the runtime,
/// which owns the worker→node mapping; passing it here returns empty lists).
/// Compact walks the topology's CPUs node-major and assigns worker i the
/// i-th CPU (mod total); scatter gives worker i a CPU on node i % nnodes,
/// cycling within the node for oversubscribed runs.  Pure function of the
/// topology — unit-testable without threads; targets are NOT yet intersected
/// with the process affinity mask.
std::vector<std::vector<int>> pin_layout(const Topology& topo, PinMode mode,
                                         std::size_t workers);

} // namespace oss
