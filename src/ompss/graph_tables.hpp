// graph_tables.hpp — the one node/edge table shared by every graph capture.
//
// Two subsystems record the task graph at spawn time: the GraphRecorder
// (DOT export + critical-path coloring, docs/observability.md) and the
// GraphCapture/ReplayGraph pair (docs/replay.md).  They used to carry
// private copies of the same node/edge vectors; this struct is the single
// definition both sit on, so the label escaping, the edge styling, and the
// critical-path walk cannot drift between them.
//
// GraphTables itself is *not* synchronized — owners layer their own locking
// (GraphRecorder: a mutex, tables mutated from every spawning thread;
// GraphCapture: none, a capture scope is single-threaded by contract).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ompss/dep_domain.hpp"

namespace oss {

struct GraphTables {
  struct Node {
    std::uint64_t id;
    std::string label;
    std::uint64_t path_weight = 0; ///< critical-path length ending here
                                   ///< (raw ticks; 0 = not recorded)
    std::uint64_t crit_pred = 0;   ///< predecessor on that path (0 = none)
  };
  struct Edge {
    std::uint64_t from;
    std::uint64_t to;
    DepKind kind;
    friend bool operator==(const Edge&, const Edge&) = default;
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;
  std::unordered_map<std::uint64_t, std::size_t> index; ///< id → nodes slot

  void add_node(std::uint64_t id, std::string label) {
    index.emplace(id, nodes.size());
    nodes.push_back(Node{id, std::move(label)});
  }

  void add_edge(std::uint64_t from, std::uint64_t to, DepKind kind) {
    edges.push_back(Edge{from, to, kind});
  }

  void set_node_path(std::uint64_t id, std::uint64_t path_weight,
                     std::uint64_t crit_pred) {
    const auto it = index.find(id);
    if (it == index.end()) return;
    nodes[it->second].path_weight = path_weight;
    nodes[it->second].crit_pred = crit_pred;
  }

  [[nodiscard]] std::size_t edge_count(DepKind kind) const {
    std::size_t n = 0;
    for (const Edge& e : edges) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  /// Graphviz rendering: one box per node, edges colored by hazard kind,
  /// the critical-path chain (path_weight/crit_pred back-links) in crimson.
  [[nodiscard]] std::string to_dot() const;
};

} // namespace oss
