#include "ompss/dep_domain.hpp"

#include <unordered_set>

#include "ompss/trace.hpp"

namespace oss {

const char* to_string(DepKind k) noexcept {
  switch (k) {
    case DepKind::Raw: return "RAW";
    case DepKind::War: return "WAR";
    case DepKind::Waw: return "WAW";
    case DepKind::Explicit: return "EXPLICIT";
  }
  return "?";
}

bool add_explicit_edge(const TaskPtr& producer, const TaskPtr& consumer,
                       const EdgeSink& sink, TraceSystem* trace) {
  if (!producer || producer.get() == consumer.get()) return false;
  // Chain affinity inheritance: a handle edge donates its producer's home
  // only when the region edges donated nothing — the max-bytes vote
  // (register_task) weighs overlap bytes, which an explicit edge lacks.
  if (consumer->inherited_node() < 0 && producer->home_node() >= 0) {
    consumer->set_inherited_node(producer->home_node());
  }
  if (!producer->add_successor_edge(consumer)) {
    return false; // already retired: no edge needed
  }
  if (sink) sink(producer, consumer, DepKind::Explicit);
  if (trace) {
    trace->emit_edge(producer->id(), consumer->id(),
                     static_cast<std::uint8_t>(DepKind::Explicit));
  }
  return true;
}

namespace {

/// splitmix64 finalizer: spreads consecutive stripe indices across shards
/// so regularly-strided app partitions don't all collide on one lock.
std::uint64_t mix_stripe(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

} // namespace

/// Per-registration state shared across all shards a task touches: edge
/// dedup per (producer, consumer) pair, and the byte-weighted home-node
/// vote for chain affinity inheritance.
///
/// Both containers are inline-first: typical tasks see a handful of
/// producers and one or two home nodes, and RegCtx sits on the spawn fast
/// path — the spill containers only materialize for pathological fan-ins,
/// so a steady-state registration allocates nothing.  The dedup stays
/// *exact* in both regimes (the inline scan checks every recorded pointer,
/// the spill set is authoritative beyond that), which the OSS_POOL=off
/// parity guarantee depends on.
///
/// Producer pointers are compared, never dereferenced, after add_edge —
/// and no producer can retire *and be recycled into a new task visible to
/// this registration* while it runs: every shard the registration touches
/// stays locked for its whole duration, so no concurrent registration can
/// install a recycled task into an entry this one will visit.
struct DepDomain::RegCtx {
  RegCtx(const TaskPtr& t, const EdgeSink& s, TraceSystem* tr)
      : task(t), sink(s), trace(tr) {}

  const TaskPtr& task;
  const EdgeSink& sink;
  TraceSystem* trace;

  /// A new task may overlap many sub-intervals (possibly in different
  /// shards) with the same producer; only one edge is needed.
  static constexpr std::size_t kInlineSeen = 32;
  const Task* seen_inline[kInlineSeen];
  std::size_t seen_n = 0;
  std::unordered_set<const Task*> seen_spill;

  /// True when `p` was not recorded yet (and records it).
  bool seen_insert(const Task* p) {
    for (std::size_t i = 0; i < seen_n; ++i) {
      if (seen_inline[i] == p) return false;
    }
    if (seen_n < kInlineSeen) {
      seen_inline[seen_n++] = p;
      return true;
    }
    return seen_spill.insert(p).second;
  }

  /// Home-node votes: every discovered hazard whose producer has a
  /// resolved home donates that node, weighted by the overlap bytes of the
  /// entry the hazard was found on.  Finished producers vote too — the
  /// data the chain streams through still lives on their node.  The node
  /// with the largest byte total wins (first seen wins ties).
  static constexpr std::size_t kInlineVotes = 8;
  std::pair<int, std::uint64_t> votes_inline[kInlineVotes];
  std::size_t votes_n = 0;
  std::vector<std::pair<int, std::uint64_t>> votes_spill;

  void vote(int node, std::uint64_t bytes) {
    if (node < 0) return;
    for (std::size_t i = 0; i < votes_n; ++i) {
      if (votes_inline[i].first == node) {
        votes_inline[i].second += bytes;
        return;
      }
    }
    for (auto& [n, b] : votes_spill) {
      if (n == node) {
        b += bytes;
        return;
      }
    }
    if (votes_n < kInlineVotes) {
      votes_inline[votes_n++] = {node, bytes};
    } else {
      votes_spill.emplace_back(node, bytes);
    }
  }

  void add_edge(const TaskPtr& producer, DepKind kind, std::uint64_t bytes) {
    if (!producer || producer.get() == task.get()) return;
    vote(producer->home_node(), bytes);
    if (!seen_insert(producer.get())) return;
    if (!producer->add_successor_edge(task)) {
      return; // already retired: no edge needed
    }
    if (sink) sink(producer, task, kind);
    if (trace) {
      trace->emit_edge(producer->id(), task->id(),
                       static_cast<std::uint8_t>(kind));
    }
  }

  /// Applies the vote: the max-bytes node becomes the task's inherited
  /// home (consulted at spawn-time resolution when the task carries no
  /// hint of its own).  First seen wins ties — inline votes precede spill
  /// votes in recording order, so the scan preserves that.
  void finalize_inheritance() const {
    if (votes_n == 0) return;
    int best = votes_inline[0].first;
    std::uint64_t best_bytes = votes_inline[0].second;
    for (std::size_t i = 1; i < votes_n; ++i) {
      if (votes_inline[i].second > best_bytes) {
        best = votes_inline[i].first;
        best_bytes = votes_inline[i].second;
      }
    }
    for (const auto& [n, b] : votes_spill) {
      if (b > best_bytes) {
        best = n;
        best_bytes = b;
      }
    }
    task->set_inherited_node(best);
  }
};

DepDomain::DepDomain(std::size_t shards, bool pooled) {
  // Clamp BEFORE rounding: rounding first would loop forever for counts
  // above 2^63 (p doubles past the top bit and wraps to 0).
  std::size_t n = shards == 0 ? 1 : shards;
  if (n > 256) n = 256;
  n = round_up_pow2(n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(pooled));
  mask_ = n - 1;
}

DepDomain::~DepDomain() = default;

std::size_t DepDomain::shard_of(std::uintptr_t addr) const noexcept {
  if (mask_ == 0) return 0;
  return static_cast<std::size_t>(
             mix_stripe(static_cast<std::uint64_t>(addr >> kStripeShift))) &
         mask_;
}

DepDomain::Map::iterator DepDomain::split(Map& map, Map::iterator it,
                                          std::uintptr_t at) {
  // [s, end) with s < at < end  becomes  [s, at) + [at, end), both carrying
  // the same history (shared comm_lock keeps group exclusion intact).
  Entry right = it->second; // copy history
  it->second.end = at;
  auto [nit, inserted] = map.emplace(at, std::move(right));
  (void)inserted;
  return nit;
}

void DepDomain::register_range(Map& map, std::uintptr_t begin,
                               std::uintptr_t end, Mode mode, RegCtx& ctx) {
  const TaskPtr& task = ctx.task;

  // Edges from the entry's current writer set (last writer or group).
  auto writer_set_edges = [&](Entry& e, DepKind kind, std::uint64_t bytes) {
    ctx.add_edge(e.last_writer, kind, bytes);
    for (const TaskPtr& g : e.group) ctx.add_edge(g, kind, bytes);
  };

  // Applies the access mode to one fully-covered entry [entry_begin, e.end).
  auto apply = [&](Entry& e, std::uintptr_t entry_begin) {
    const std::uint64_t bytes = e.end - entry_begin;
    switch (mode) {
      case Mode::In:
        writer_set_edges(e, DepKind::Raw, bytes);
        e.readers.push_back(task);
        e.group_open = false; // readers close groups (group stays as writer)
        e.epoch_writers.clear(); // no more joiners: release the epoch refs
        e.epoch_readers.clear();
        break;

      case Mode::Out:
      case Mode::InOut:
        writer_set_edges(e, DepKind::Waw, bytes);
        for (const TaskPtr& r : e.readers) ctx.add_edge(r, DepKind::War, bytes);
        e.last_writer = task;
        e.group.clear();
        e.group_open = false;
        e.comm_lock.reset();
        e.readers.clear();
        e.epoch_writers.clear();
        e.epoch_readers.clear();
        break;

      case Mode::Commutative:
      case Mode::Concurrent:
        if (e.group_open && e.group_mode == mode) {
          // Join the open group: unordered among members, but ordered after
          // the epoch that preceded the group — replay the starter's edges.
          for (const TaskPtr& w : e.epoch_writers)
            ctx.add_edge(w, DepKind::Waw, bytes);
          for (const TaskPtr& r : e.epoch_readers)
            ctx.add_edge(r, DepKind::War, bytes);
          e.group.push_back(task);
        } else {
          // Start a new group ordered after the previous epoch; snapshot
          // that epoch so later joiners take the same edges.  The epoch
          // vectors are rebuilt in place (clear + swap, not move-assign)
          // so the entry's buffers keep their capacity across epochs —
          // steady-state group churn stays allocation-free.
          e.epoch_writers.clear();
          if (e.last_writer) e.epoch_writers.push_back(e.last_writer);
          for (const TaskPtr& g : e.group) e.epoch_writers.push_back(g);
          writer_set_edges(e, DepKind::Waw, bytes);
          for (const TaskPtr& r : e.readers) ctx.add_edge(r, DepKind::War, bytes);
          e.epoch_readers.swap(e.readers);
          e.last_writer.reset();
          e.group.clear();
          e.group.push_back(task);
          e.group_mode = mode;
          e.group_open = true;
          e.readers.clear();
          e.comm_lock.reset();
        }
        if (mode == Mode::Commutative) {
          if (!e.comm_lock) e.comm_lock = std::make_shared<std::mutex>();
          task->add_exclusion_lock(e.comm_lock);
        }
        break;
    }
  };

  std::uintptr_t cursor = begin;

  // Locate the first entry that could overlap [begin, end).
  auto it = map.lower_bound(begin);
  if (it != map.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > begin) it = prev;
  }

  while (cursor < end) {
    if (it == map.end() || it->first >= end) {
      // Tail gap [cursor, end): no history — first touch.
      Entry fresh;
      fresh.end = end;
      it = map.emplace_hint(it, cursor, std::move(fresh));
      apply(it->second, cursor);
      cursor = end;
      break;
    }

    if (it->first > cursor) {
      // Gap [cursor, it->first): first touch for this sub-range.
      Entry fresh;
      fresh.end = it->first;
      auto git = map.emplace_hint(it, cursor, std::move(fresh));
      apply(git->second, cursor);
      cursor = it->first;
      continue;
    }

    // Here it->first <= cursor and the entry overlaps the access.
    if (it->first < cursor) it = split(map, it, cursor);
    if (it->second.end > end) split(map, it, end);
    // Now [it->first, it->second.end) lies fully inside the access.
    apply(it->second, it->first);
    cursor = it->second.end;
    ++it;
  }
}

RegisterReceipt DepDomain::register_task(const TaskPtr& task,
                                         const EdgeSink& sink,
                                         TraceSystem* trace) {
  RegCtx ctx{task, sink, trace};
  RegisterReceipt receipt;

  // Access-free tasks (pure .after() chains, fire-and-forget bodies) have
  // nothing to register: take no lock at all — on either path — so
  // dependency-free spawn spam never serializes on shard 0 and the
  // receipt (shards_touched = 0) reads the same under every shard count.
  bool any_access = false;
  for (const Access& acc : task->accesses()) {
    if (!acc.empty()) {
      any_access = true;
      break;
    }
  }
  if (!any_access) return receipt;

  if (shards_.size() == 1) {
    // Classic single-lock domain: no stripe splitting, one lock, the exact
    // entry layout (and edge discovery order) of the pre-sharding runtime.
    Shard& sh = *shards_.front();
    if (!sh.mu.try_lock()) {
      receipt.contended = true;
      sh.mu.lock();
    }
    receipt.shards_touched = 1;
    try {
      for (const Access& acc : task->accesses()) {
        if (acc.empty()) continue;
        register_range(sh.map, acc.begin, acc.end, acc.mode, ctx);
      }
      ctx.finalize_inheritance();
    } catch (...) {
      // bad_alloc in the map or a throwing sink must not leak the shard
      // lock — that would wedge every later spawn touching it.
      sh.mu.unlock();
      throw;
    }
    sh.mu.unlock();
    if (trace && receipt.contended) trace->emit_dep_contended(task->id());
    return receipt;
  }

  // Sharded path.  Split each access at stripe boundaries into per-shard
  // pieces (coalescing runs of consecutive stripes that hash alike), then
  // lock the touched shard set in ascending shard-id order so concurrent
  // registrations cannot deadlock and the whole registration is atomic —
  // two tasks racing over two shards can never observe opposite orders
  // (which would put a cycle in the graph and hang both).
  //
  // The piece list lives on the stack for typical tasks (a handful of
  // sub-stripe regions) and the touched-shard set is a 256-bit bitmap —
  // ascending-bit iteration doubles as the sorted lock order — so the
  // common case adds no allocation to the spawn path.
  struct Piece {
    std::uint16_t shard;
    Mode mode;
    std::uintptr_t begin;
    std::uintptr_t end;
  };
  constexpr std::size_t kInlinePieces = 24;
  Piece inline_pieces[kInlinePieces];
  std::vector<Piece> spill; // only for pathologically fragmented accesses
  std::size_t n_pieces = 0;
  auto append_piece = [&](std::uint16_t sh, std::uintptr_t b, std::uintptr_t e,
                          Mode m) {
    if (n_pieces < kInlinePieces) {
      inline_pieces[n_pieces] = Piece{sh, m, b, e};
    } else {
      if (spill.empty()) spill.assign(inline_pieces, inline_pieces + n_pieces);
      spill.push_back(Piece{sh, m, b, e});
    }
    ++n_pieces;
  };
  std::uint64_t shard_bits[4] = {0, 0, 0, 0};

  for (const Access& acc : task->accesses()) {
    if (acc.empty()) continue;
    std::uintptr_t cursor = acc.begin;
    while (cursor < acc.end) {
      const std::size_t sh = shard_of(cursor);
      // Advance to the end of the run of stripes mapping to this shard.
      std::uintptr_t piece_end = acc.end;
      std::uintptr_t stripe_end =
          ((cursor >> kStripeShift) + 1) << kStripeShift;
      while (stripe_end < acc.end && stripe_end > cursor) {
        if (shard_of(stripe_end) != sh) {
          piece_end = stripe_end;
          break;
        }
        stripe_end += (std::uintptr_t{1} << kStripeShift);
      }
      append_piece(static_cast<std::uint16_t>(sh), cursor, piece_end,
                   acc.mode);
      shard_bits[sh >> 6] |= std::uint64_t{1} << (sh & 63);
      cursor = piece_end;
    }
  }

  // Lock in ascending shard-id order (bitmap scan), counting contention.
  for (std::size_t word = 0; word < 4; ++word) {
    std::uint64_t bits = shard_bits[word];
    while (bits != 0) {
      const auto bit = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      Shard& sh = *shards_[(word << 6) | bit];
      if (!sh.mu.try_lock()) {
        receipt.contended = true;
        sh.mu.lock();
      }
      ++receipt.shards_touched;
    }
  }

  // Unlock in descending order (reverse bitmap scan); also the exception
  // path — bad_alloc in a map or a throwing sink must not leak the locks.
  auto unlock_all = [&] {
    for (std::size_t word = 4; word-- > 0;) {
      std::uint64_t bits = shard_bits[word];
      while (bits != 0) {
        const auto top = static_cast<unsigned>(63 - __builtin_clzll(bits));
        bits &= ~(std::uint64_t{1} << top);
        shards_[(word << 6) | top]->mu.unlock();
      }
    }
  };

  // Pieces run in declaration order (mode sequences against the same
  // region must replay exactly as the unsharded domain would).
  try {
    const Piece* pieces = spill.empty() ? inline_pieces : spill.data();
    for (std::size_t i = 0; i < n_pieces; ++i) {
      const Piece& p = pieces[i];
      register_range(shards_[p.shard]->map, p.begin, p.end, p.mode, ctx);
    }
    ctx.finalize_inheritance();
  } catch (...) {
    unlock_all();
    throw;
  }

  unlock_all();
  if (trace && receipt.contended) trace->emit_dep_contended(task->id());
  return receipt;
}

void DepDomain::collect_overlapping(std::uintptr_t begin, std::uintptr_t end,
                                    std::vector<TaskPtr>& out) const {
  if (begin >= end) return;
  // Entries for any byte of [begin, end) can only live in the shards its
  // stripes hash to, but scanning every shard for the range is simpler and
  // the wait set is not a hot path.  Shards are locked one at a time: the
  // wait-set contract only covers previously spawned siblings, so no
  // cross-shard atomicity is needed.
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    const Map& map = shard->map;
    auto it = map.lower_bound(begin);
    if (it != map.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > begin) it = prev;
    }
    for (; it != map.end() && it->first < end; ++it) {
      const Entry& e = it->second;
      if (e.last_writer && !e.last_writer->finished())
        out.push_back(e.last_writer);
      for (const TaskPtr& g : e.group) {
        if (g && !g->finished()) out.push_back(g);
      }
      for (const TaskPtr& r : e.readers) {
        if (r && !r->finished()) out.push_back(r);
      }
    }
  }
}

std::size_t DepDomain::entry_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

} // namespace oss
