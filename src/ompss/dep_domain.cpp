#include "ompss/dep_domain.hpp"

#include <unordered_set>

namespace oss {

const char* to_string(DepKind k) noexcept {
  switch (k) {
    case DepKind::Raw: return "RAW";
    case DepKind::War: return "WAR";
    case DepKind::Waw: return "WAW";
    case DepKind::Explicit: return "EXPLICIT";
  }
  return "?";
}

namespace {

/// Chain affinity inheritance (docs/numa.md): the first dependency
/// predecessor with a resolved home node donates it to the consumer's
/// `inherited_node` slot.  Runs for *every* discovered hazard, even when the
/// producer already finished (no scheduling edge needed, but the data the
/// chain streams through still lives on the producer's node) — that keeps
/// the resolution deterministic when producers retire while their
/// successors are still being spawned.  Caller holds the graph mutex.
void inherit_home(const TaskPtr& producer, const TaskPtr& consumer) {
  if (!producer || producer.get() == consumer.get()) return;
  if (consumer->inherited_node() >= 0) return; // first predecessor wins
  if (producer->home_node() >= 0) {
    consumer->set_inherited_node(producer->home_node());
  }
}

} // namespace

bool add_explicit_edge(const TaskPtr& producer, const TaskPtr& consumer,
                       const EdgeSink& sink) {
  if (!producer || producer.get() == consumer.get()) return false;
  inherit_home(producer, consumer);
  if (producer->finished()) return false; // already retired: no edge needed
  producer->successors.push_back(consumer);
  consumer->preds += 1;
  if (sink) sink(producer, consumer, DepKind::Explicit);
  return true;
}

DepDomain::DepDomain() = default;
DepDomain::~DepDomain() = default;

DepDomain::Map::iterator DepDomain::split(Map::iterator it, std::uintptr_t at) {
  // [s, end) with s < at < end  becomes  [s, at) + [at, end), both carrying
  // the same history (shared comm_lock keeps group exclusion intact).
  Entry right = it->second; // copy history
  it->second.end = at;
  auto [nit, inserted] = map_.emplace(at, std::move(right));
  (void)inserted;
  return nit;
}

namespace {

/// Per-registration edge deduplication: a new task may overlap many
/// sub-intervals with the same producer; only one edge is needed.
struct EdgeDedup {
  std::unordered_set<const Task*> seen;
  bool insert(const Task* producer) { return seen.insert(producer).second; }
};

void add_edge(const TaskPtr& producer, const TaskPtr& consumer, DepKind kind,
              EdgeDedup& dedup, const EdgeSink& sink) {
  if (!producer || producer.get() == consumer.get()) return;
  inherit_home(producer, consumer);
  if (producer->finished()) return; // already retired: no edge needed
  if (!dedup.insert(producer.get())) return;
  producer->successors.push_back(consumer);
  consumer->preds += 1;
  if (sink) sink(producer, consumer, kind);
}

} // namespace

void DepDomain::register_task(const TaskPtr& task, const EdgeSink& sink) {
  EdgeDedup dedup;

  // Edges from the entry's current writer set (last writer or group).
  auto writer_set_edges = [&](Entry& e, DepKind kind) {
    add_edge(e.last_writer, task, kind, dedup, sink);
    for (const TaskPtr& g : e.group) add_edge(g, task, kind, dedup, sink);
  };

  // Applies one access mode to one fully-covered entry.
  auto apply = [&](Entry& e, Mode m) {
    switch (m) {
      case Mode::In:
        writer_set_edges(e, DepKind::Raw);
        e.readers.push_back(task);
        e.group_open = false; // readers close groups (group stays as writer)
        e.epoch_writers.clear(); // no more joiners: release the epoch refs
        e.epoch_readers.clear();
        break;

      case Mode::Out:
      case Mode::InOut:
        writer_set_edges(e, DepKind::Waw);
        for (const TaskPtr& r : e.readers) add_edge(r, task, DepKind::War, dedup, sink);
        e.last_writer = task;
        e.group.clear();
        e.group_open = false;
        e.comm_lock.reset();
        e.readers.clear();
        e.epoch_writers.clear();
        e.epoch_readers.clear();
        break;

      case Mode::Commutative:
      case Mode::Concurrent:
        if (e.group_open && e.group_mode == m) {
          // Join the open group: unordered among members, but ordered after
          // the epoch that preceded the group — replay the starter's edges.
          for (const TaskPtr& w : e.epoch_writers)
            add_edge(w, task, DepKind::Waw, dedup, sink);
          for (const TaskPtr& r : e.epoch_readers)
            add_edge(r, task, DepKind::War, dedup, sink);
          e.group.push_back(task);
        } else {
          // Start a new group ordered after the previous epoch; snapshot
          // that epoch so later joiners take the same edges.
          std::vector<TaskPtr> writers;
          if (e.last_writer) writers.push_back(e.last_writer);
          for (const TaskPtr& g : e.group) writers.push_back(g);
          writer_set_edges(e, DepKind::Waw);
          for (const TaskPtr& r : e.readers) add_edge(r, task, DepKind::War, dedup, sink);
          e.epoch_writers = std::move(writers);
          e.epoch_readers = std::move(e.readers);
          e.last_writer.reset();
          e.group.clear();
          e.group.push_back(task);
          e.group_mode = m;
          e.group_open = true;
          e.readers.clear();
          e.comm_lock.reset();
        }
        if (m == Mode::Commutative) {
          if (!e.comm_lock) e.comm_lock = std::make_shared<std::mutex>();
          task->add_exclusion_lock(e.comm_lock);
        }
        break;
    }
  };

  for (const Access& acc : task->accesses()) {
    if (acc.empty()) continue;
    std::uintptr_t cursor = acc.begin;

    // Locate the first entry that could overlap [begin, end).
    auto it = map_.lower_bound(acc.begin);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > acc.begin) it = prev;
    }

    while (cursor < acc.end) {
      if (it == map_.end() || it->first >= acc.end) {
        // Tail gap [cursor, acc.end): no history — first touch.
        Entry fresh;
        fresh.end = acc.end;
        it = map_.emplace_hint(it, cursor, std::move(fresh));
        apply(it->second, acc.mode);
        cursor = acc.end;
        break;
      }

      if (it->first > cursor) {
        // Gap [cursor, it->first): first touch for this sub-range.
        Entry fresh;
        fresh.end = it->first;
        auto git = map_.emplace_hint(it, cursor, std::move(fresh));
        apply(git->second, acc.mode);
        cursor = it->first;
        continue;
      }

      // Here it->first <= cursor and the entry overlaps the access.
      if (it->first < cursor) it = split(it, cursor);
      if (it->second.end > acc.end) split(it, acc.end);
      // Now [it->first, it->second.end) lies fully inside the access.
      apply(it->second, acc.mode);
      cursor = it->second.end;
      ++it;
    }
  }
}

void DepDomain::collect_overlapping(std::uintptr_t begin, std::uintptr_t end,
                                    std::vector<TaskPtr>& out) const {
  if (begin >= end) return;
  auto it = map_.lower_bound(begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > begin) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const Entry& e = it->second;
    if (e.last_writer && !e.last_writer->finished()) out.push_back(e.last_writer);
    for (const TaskPtr& g : e.group) {
      if (g && !g->finished()) out.push_back(g);
    }
    for (const TaskPtr& r : e.readers) {
      if (r && !r->finished()) out.push_back(r);
    }
  }
}

} // namespace oss
