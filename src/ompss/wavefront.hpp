// wavefront.hpp — generic 2-D wavefront task spawner.
//
// The dependency pattern behind H.264 intra reconstruction (and stencils,
// dynamic programming, LU-style factorizations): cell (r, c) may start once
// (r-1, c) and (r, c-1) finished.  `spawn_wavefront` expresses that with
// one task per cell whose dependencies flow through an internal token
// matrix — the library form of what `apps/h264dec`'s nested reconstruction
// builds by hand with macroblock tiles.
//
//   oss::spawn_wavefront(rt, rows, cols, [&](std::size_t r, std::size_t c) {
//     grid[r][c] = f(grid[r-1][c], grid[r][c-1]);
//   });
//   rt.taskwait();
//
// Tile with a coarser grid yourself when per-cell work is tiny (see the
// granularity ablation for why).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ompss/runtime.hpp"
#include "ompss/task_builder.hpp"

namespace oss {

/// Spawns rows×cols tasks with left/top wavefront dependencies.
/// The token storage is kept alive by the task closures; pair with
/// `taskwait()`/`barrier()`.
inline void spawn_wavefront(Runtime& rt, std::size_t rows, std::size_t cols,
                            std::function<void(std::size_t, std::size_t)> body,
                            std::string label = "wavefront") {
  if (rows == 0 || cols == 0) return;
  auto tokens = std::make_shared<std::vector<char>>(rows * cols, 0);
  auto shared_body =
      std::make_shared<std::function<void(std::size_t, std::size_t)>>(
          std::move(body));

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      TaskBuilder b = rt.task(label);
      b.out((*tokens)[r * cols + c]);
      if (c > 0) b.in((*tokens)[r * cols + c - 1]);
      if (r > 0) b.in((*tokens)[(r - 1) * cols + c]);
      b.spawn([tokens, shared_body, r, c] { (*shared_body)(r, c); });
    }
  }
}

} // namespace oss
