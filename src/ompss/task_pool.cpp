// task_pool.cpp — the process-wide Task recycler.
//
// Structure: a lock-free-by-locality thread cache (plain thread_local
// singly-linked list, touched only by its owner) in front of one
// mutex-protected global list.  Crossings are batched (kFlushBatch) so
// a producer-consumer imbalance between workers costs one lock per 64
// tasks, not one per task.
//
// The pool is process-wide, not per-Runtime: TaskHandles may outlive
// the Runtime that spawned them, and their final release must still
// have somewhere to put the task.  The global list is an intentionally
// leaked singleton so thread_local cache destructors (which flush into
// it at thread exit, in unspecified order vs static destruction) can
// never touch a destroyed object; the singleton stays reachable, so
// leak checkers do not flag it.

#include "ompss/task_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "ompss/task.hpp"

namespace oss::pool {

namespace {

std::atomic<std::uint64_t> g_recycled{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_overflow{0};

struct GlobalPool {
  std::mutex mu;
  Task* head = nullptr;
  std::size_t n = 0;
};

GlobalPool& global_pool() {
  static GlobalPool* g = new GlobalPool(); // leaked on purpose (see header)
  return *g;
}

// Splices `chain` (length `count`) into the global list and sheds tasks
// beyond kGlobalCap.  Deletion happens outside the lock.
void push_global(Task* chain, Task* chain_tail, std::size_t count) {
  Task* shed = nullptr;
  {
    GlobalPool& g = global_pool();
    std::lock_guard lock(g.mu);
    chain_tail->pool_next = g.head;
    g.head = chain;
    g.n += count;
    while (g.n > kGlobalCap) {
      Task* t = g.head;
      g.head = t->pool_next;
      --g.n;
      t->pool_next = shed;
      shed = t;
    }
  }
  while (shed) {
    Task* next = shed->pool_next;
    delete shed;
    shed = next;
  }
}

struct ThreadCache {
  Task* head = nullptr;
  std::size_t n = 0;

  // Detaches up to `want` tasks as a chain (returns head; sets tail).
  Task* detach(std::size_t want, Task*& tail, std::size_t& got) {
    Task* chain = nullptr;
    tail = nullptr;
    got = 0;
    while (got < want && head) {
      Task* t = head;
      head = t->pool_next;
      --n;
      t->pool_next = chain;
      if (!chain) tail = t;
      chain = t;
      ++got;
    }
    return chain;
  }

  ~ThreadCache() {
    // Thread exit: hand everything back so a short-lived worker cannot
    // strand its cache.
    Task* tail = nullptr;
    std::size_t got = 0;
    if (Task* chain = detach(n, tail, got)) push_global(chain, tail, got);
  }
};

thread_local ThreadCache t_cache;

} // namespace

AcquireResult acquire() {
  ThreadCache& c = t_cache;
  if (c.head) {
    Task* t = c.head;
    c.head = t->pool_next;
    --c.n;
    g_recycled.fetch_add(1, std::memory_order_relaxed);
    return {t, true};
  }
  // Refill from the global list: take one for the caller plus a batch
  // for the cache under a single lock acquisition.
  {
    GlobalPool& g = global_pool();
    std::lock_guard lock(g.mu);
    if (g.head) {
      Task* t = g.head;
      g.head = t->pool_next;
      --g.n;
      while (g.head && c.n < kFlushBatch) {
        Task* u = g.head;
        g.head = u->pool_next;
        --g.n;
        u->pool_next = c.head;
        c.head = u;
        ++c.n;
      }
      g_recycled.fetch_add(1, std::memory_order_relaxed);
      return {t, true};
    }
  }
  // True miss: allocate a fresh batch, return one, cache the rest.
  g_misses.fetch_add(1, std::memory_order_relaxed);
  Task* first = new Task();
  first->mark_pooled();
  for (std::size_t i = 1; i < kSlabTasks; ++i) {
    Task* t = new Task();
    t->mark_pooled();
    t->pool_next = c.head;
    c.head = t;
    ++c.n;
  }
  return {first, false};
}

void recycle(Task* t) noexcept {
  t->recycle_clear();
  ThreadCache& c = t_cache;
  t->pool_next = c.head;
  c.head = t;
  ++c.n;
  if (c.n > kThreadCacheCap) {
    Task* tail = nullptr;
    std::size_t got = 0;
    Task* chain = c.detach(kFlushBatch, tail, got);
    g_overflow.fetch_add(got, std::memory_order_relaxed);
    push_global(chain, tail, got);
  }
}

std::uint64_t recycled_total() noexcept {
  return g_recycled.load(std::memory_order_relaxed);
}
std::uint64_t miss_total() noexcept {
  return g_misses.load(std::memory_order_relaxed);
}
std::uint64_t overflow_total() noexcept {
  return g_overflow.load(std::memory_order_relaxed);
}

std::size_t thread_cache_size() noexcept { return t_cache.n; }

std::size_t global_pool_size() noexcept {
  GlobalPool& g = global_pool();
  std::lock_guard lock(g.mu);
  return g.n;
}

bool enabled_by_default() noexcept {
  static const bool enabled = [] {
    const char* v = std::getenv("OSS_POOL");
    if (!v) return true;
    return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
             std::strcmp(v, "false") == 0 || std::strcmp(v, "no") == 0);
  }();
  return enabled;
}

} // namespace oss::pool
