#pragma once
// small_fn.hpp — move-only type-erased `void()` callable with a large
// inline buffer.
//
// The task body is the one closure every spawn must store.  libstdc++'s
// std::function only keeps 16 bytes inline, so any capture beyond two
// pointers heap-allocates — on the spawn fast path, that is one
// guaranteed operator new per task.  SmallFn keeps 64 bytes inline
// (every capture list in src/apps and bench fits) and only falls back
// to the heap for outsized callables.
//
// Contract:
//   - move-only (tasks are not copied; copyability would force every
//     callable to be copy-constructible for nothing)
//   - a callable is stored inline iff
//       sizeof(D)  <= kInlineBytes
//       alignof(D) <= alignof(std::max_align_t)
//       std::is_nothrow_move_constructible_v<D>
//     otherwise it is boxed on the heap (tracked by the ops vtable, so
//     moves stay pointer swaps either way)
//   - invoking an empty SmallFn is a no-op (the runtime clears the body
//     after execution; a defensive re-run must not crash)

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace oss {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {
    emplace<D>(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace<D>(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() {
    if (ops_) ops_->invoke(buf_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  bool is_inline() const noexcept { return ops_ != nullptr && !ops_->heap; }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <class D>
  static constexpr bool fits_inline_v =
      sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  static void invoke_inline(void* p) {
    (*static_cast<D*>(p))();
  }
  template <class D>
  static void relocate_inline(void* dst, void* src) noexcept {
    ::new (dst) D(std::move(*static_cast<D*>(src)));
    static_cast<D*>(src)->~D();
  }
  template <class D>
  static void destroy_inline(void* p) noexcept {
    static_cast<D*>(p)->~D();
  }

  template <class D>
  static void invoke_heap(void* p) {
    (**static_cast<D**>(p))();
  }
  static void relocate_ptr(void* dst, void* src) noexcept {
    *static_cast<void**>(dst) = *static_cast<void**>(src);
  }
  template <class D>
  static void destroy_heap(void* p) noexcept {
    delete *static_cast<D**>(p);
  }

  template <class D>
  static constexpr Ops inline_ops_v = {&invoke_inline<D>, &relocate_inline<D>,
                                       &destroy_inline<D>, false};
  template <class D>
  static constexpr Ops heap_ops_v = {&invoke_heap<D>, &relocate_ptr,
                                     &destroy_heap<D>, true};

  template <class D, class F>
  void emplace(F&& f) {
    if constexpr (fits_inline_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops_v<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &heap_ops_v<D>;
    }
  }

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace oss
