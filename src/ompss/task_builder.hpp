// task_builder.hpp — the fluent task-declaration API.
//
// This is the library spelling of an OmpSs `#pragma omp task` annotation.
// Each pragma clause maps onto one chainable method:
//
//   pragma clause            builder method
//   ----------------------   -------------------------------------------
//   input(x) / input(p[n])   .in(x)          / .in(p, n)
//   output(x)                .out(x)         / .out(p, n)
//   inout(x)                 .inout(x)       / .inout(p, n)
//   commutative(x)           .commutative(x) / .commutative(p, n)
//   concurrent(x)            .concurrent(x)  / .concurrent(p, n)
//   priority(n)              .priority(n)
//   if(0)                    .undeferred()
//   (no pragma equivalent)   .after(handle...)   explicit graph edge
//
// and `.spawn(fn)` finalizes the declaration, returning a `TaskHandle`:
//
//   oss::TaskHandle h = rt.task("stage")
//                         .in(src).out(dst)
//                         .spawn([&] { dst = f(src); });
//   h.wait();
//
// A builder describes exactly one task: `spawn` consumes it.  Builders are
// cheap (one pointer + the accumulated TaskSpec) and may be held as lvalues
// to add accesses conditionally before spawning.
//
// `TaskGroup` scopes tasks the way a nested task scopes its children:
// tasks spawned through the group land in a private child context, and the
// group's destructor taskwaits on exactly those tasks, rethrowing the first
// exception a child threw.  Use it to bound a parallel phase without a
// runtime-wide barrier:
//
//   {
//     oss::TaskGroup g(rt);
//     for (auto& b : blocks) g.task("block").inout(b).spawn([&] { ... });
//   } // joins here; child exceptions propagate
//
// CAUTION — a group is a private dependency domain: like the children of a
// nested task, group tasks match their declared accesses only against each
// other, never against ambient tasks spawned outside the group.  An
// `.in(x)` on a group task will NOT order it after an ambient task that
// writes `x`.  To order across the boundary, pass the ambient task's
// handle via `.after(handle)`, or taskwait before opening the group.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "ompss/access.hpp"
#include "ompss/runtime.hpp"
#include "ompss/task_handle.hpp"

namespace oss {

class TaskBuilder {
 public:
  TaskBuilder(TaskBuilder&&) = default;
  TaskBuilder& operator=(TaskBuilder&&) = default;
  TaskBuilder(const TaskBuilder&) = delete;
  TaskBuilder& operator=(const TaskBuilder&) = delete;

  /// Declares a read access (OmpSs `input`).  Accepts the same forms as
  /// `oss::in`: an object, (pointer, count), or a span.
  template <class... A>
  TaskBuilder& in(A&&... a) {
    check_access_args<A...>();
    spec_.accesses.push_back(oss::in(std::forward<A>(a)...));
    return *this;
  }

  /// Declares a write access (OmpSs `output`).
  template <class... A>
  TaskBuilder& out(A&&... a) {
    check_access_args<A...>();
    spec_.accesses.push_back(oss::out(std::forward<A>(a)...));
    return *this;
  }

  /// Declares a read-modify-write access (OmpSs `inout`).
  template <class... A>
  TaskBuilder& inout(A&&... a) {
    check_access_args<A...>();
    spec_.accesses.push_back(oss::inout(std::forward<A>(a)...));
    return *this;
  }

  /// Declares a commutative access: any order, never concurrently.
  template <class... A>
  TaskBuilder& commutative(A&&... a) {
    check_access_args<A...>();
    spec_.accesses.push_back(oss::commutative(std::forward<A>(a)...));
    return *this;
  }

  /// Declares a concurrent access: any order, simultaneously; the task
  /// body synchronizes its own updates.
  template <class... A>
  TaskBuilder& concurrent(A&&... a) {
    check_access_args<A...>();
    spec_.accesses.push_back(oss::concurrent(std::forward<A>(a)...));
    return *this;
  }

  /// Appends a pre-built access descriptor (for computed regions).
  TaskBuilder& access(Access a) {
    spec_.accesses.push_back(a);
    return *this;
  }

  /// Appends a whole pre-built access list.
  TaskBuilder& accesses(const AccessList& list) {
    for (const Access& a : list) spec_.accesses.push_back(a);
    return *this;
  }

  /// Move form: adopts the list wholesale when nothing was declared yet.
  TaskBuilder& accesses(AccessList&& list) {
    spec_.accesses.adopt(std::move(list));
    return *this;
  }

  /// OmpSs `priority` clause: tasks with higher priority run before normal
  /// ready tasks.
  TaskBuilder& priority(int p) {
    spec_.priority = p;
    return *this;
  }

  /// OmpSs `if(0)`: the spawning thread waits for the task's dependencies
  /// (helping with other work meanwhile) and runs the body inline.
  TaskBuilder& undeferred() {
    spec_.deferred = false;
    return *this;
  }

  /// NUMA affinity hint: prefer running the task on a worker of memory node
  /// `node` (dense topology index, see docs/numa.md).  A node the current
  /// topology does not have is ignored at spawn time — code written for a
  /// multi-socket box runs unchanged on a laptop.  Negative nodes throw.
  TaskBuilder& affinity(int node) {
    if (node < 0) {
      throw std::invalid_argument(
          "oss::TaskBuilder::affinity: node must be >= 0");
    }
    spec_.affinity = node;
    spec_.affinity_auto = false;
    return *this;
  }

  /// Derives the affinity hint from the task's data: the home node is the
  /// node of the largest declared access region that was allocated through
  /// oss::numa_alloc_onnode / NumaBuffer (unregistered regions contribute
  /// nothing; no registered region means no affinity).
  TaskBuilder& affinity_auto() {
    spec_.affinity = -1;
    spec_.affinity_auto = true;
    return *this;
  }

  /// Adds an explicit dependency edge: this task will not start before the
  /// task referenced by `h` finished, regardless of declared regions.
  /// Empty and already-finished handles are no-ops; an unfinished handle of
  /// a different runtime throws std::invalid_argument.
  TaskBuilder& after(const TaskHandle& h) {
    if (!h.valid() || h.done()) return *this;
    if (h.runtime() != rt_) {
      throw std::invalid_argument(
          "oss::TaskBuilder::after: handle belongs to a different runtime");
    }
    spec_.after.push_back(h.task());
    return *this;
  }

  /// Variadic form: `.after(h1, h2, h3)`.
  template <class... H>
    requires(sizeof...(H) > 1)
  TaskBuilder& after(const H&... hs) {
    (after(static_cast<const TaskHandle&>(hs)), ...);
    return *this;
  }

  /// Finalizes the declaration and spawns the task.  Consumes the builder;
  /// a builder spawns exactly once — a second call throws std::logic_error
  /// (the spec was moved out, so silently spawning again would produce a
  /// dependency-free task).
  TaskHandle spawn(Task::Fn fn) {
    if (spawned_) {
      throw std::logic_error(
          "oss::TaskBuilder::spawn: builder already consumed; declare a "
          "new task with rt.task(...)");
    }
    spawned_ = true;
    return rt_->spawn_task(std::move(spec_), std::move(fn));
  }

 private:
  friend class Runtime;
  friend class TaskGroup;

  TaskBuilder(Runtime& rt, std::string label) : rt_(&rt) {
    spec_.label = std::move(label);
  }

  /// The single-object forms take the argument by reference and track its
  /// object representation — passing a pointer would track the pointer
  /// variable itself, which is almost always a bug.
  template <class... A>
  static constexpr void check_access_args() {
    static_assert(
        !(sizeof...(A) == 1 &&
          (std::is_pointer_v<std::remove_cvref_t<A>> && ...)),
        "single-argument access forms track the object itself; a pointer "
        "argument would track the pointer variable, not the pointee — use "
        "(pointer, count) for arrays or dereference for a single object");
    static_assert(
        !(sizeof...(A) == 1 &&
          (std::is_same_v<std::remove_cvref_t<A>, Access> && ...)),
        "pass pre-built oss::Access descriptors via .access(...) — the "
        "in/out/... methods would track the descriptor object itself");
  }

  Runtime* rt_;
  TaskSpec spec_;
  bool spawned_ = false;
};

inline TaskBuilder Runtime::task(std::string label) {
  return TaskBuilder(*this, std::move(label));
}

/// RAII scope for a set of tasks.  Tasks spawned via `group.task(...)` join
/// a private child context; the destructor (or an explicit `wait()`) blocks
/// until all of them — but no unrelated tasks — finished, then rethrows the
/// first exception any of them threw.  The waiting thread helps execute
/// tasks under the polling policy.
///
/// If the destructor runs during stack unwinding a pending child exception
/// cannot propagate (that would terminate); the group still drains its
/// tasks and the child exception is dropped.
class TaskGroup {
 public:
  explicit TaskGroup(Runtime& rt)
      : rt_(&rt),
        // The group's private domain shards (and pools) like the runtime's
        // contexts do.
        ctx_(std::make_shared<TaskContext>(rt.config().dep_shards,
                                           rt.config().pool)),
        uncaught_on_entry_(std::uncaught_exceptions()) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() noexcept(false) {
    if (std::uncaught_exceptions() > uncaught_on_entry_) {
      try {
        rt_->taskwait_scope(ctx_);
      } catch (...) {
        // Already unwinding: drain, drop the child exception.
      }
    } else {
      rt_->taskwait_scope(ctx_);
    }
  }

  /// Starts a task declaration scoped to this group.
  TaskBuilder task(std::string label = {}) {
    TaskBuilder b(*rt_, std::move(label));
    b.spec_.context = ctx_;
    return b;
  }

  /// Waits for every task spawned through the group so far and rethrows
  /// the first child exception.  The group remains usable afterwards.
  void wait() { rt_->taskwait_scope(ctx_); }

  /// Tasks spawned through the group that have not finished yet.
  [[nodiscard]] std::size_t pending() const noexcept {
    return ctx_->live_children.load(std::memory_order_acquire);
  }

  [[nodiscard]] Runtime& runtime() const noexcept { return *rt_; }

 private:
  Runtime* rt_;
  ContextPtr ctx_;
  int uncaught_on_entry_;
};

} // namespace oss
