// queues.hpp — ready-task queues used by the scheduler.
//
// A `TaskDeque` is a mutex-protected double-ended queue of ready tasks.
// The double ends matter for policy: locality/work-stealing pop their own
// queue from the front (LIFO — the task most recently made ready is the one
// whose data is hot) and thieves steal from the back (FIFO — the coldest
// task, minimizing interference with the victim).
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

#include "ompss/task.hpp"

namespace oss {

class TaskDeque {
 public:
  void push_front(TaskPtr t) {
    std::lock_guard lock(mu_);
    q_.push_front(std::move(t));
  }

  void push_back(TaskPtr t) {
    std::lock_guard lock(mu_);
    q_.push_back(std::move(t));
  }

  /// Pops from the front; returns null if empty.
  TaskPtr pop_front() {
    std::lock_guard lock(mu_);
    if (q_.empty()) return nullptr;
    TaskPtr t = std::move(q_.front());
    q_.pop_front();
    return t;
  }

  /// Pops from the back (steal end); returns null if empty.
  TaskPtr pop_back() {
    std::lock_guard lock(mu_);
    if (q_.empty()) return nullptr;
    TaskPtr t = std::move(q_.back());
    q_.pop_back();
    return t;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<TaskPtr> q_;
};

} // namespace oss
