// queues.hpp — per-worker ready-task deques used by the scheduler.
//
// The double ends matter for policy: a worker pops its own queue at the hot
// end (LIFO — the task most recently made ready is the one whose data is
// still in cache) and thieves steal at the cold end (FIFO — the oldest
// task, minimizing interference with the victim).
//
// Two implementations share the owner-push/owner-take/steal interface:
//
//   ChaseLevTaskDeque  — lock-free Chase–Lev deque (chase_lev.hpp) storing
//                        raw `Task*`, with the owning reference anchored
//                        inside the task (Task::anchor_queue_ref).  Default.
//   MutexTaskDeque     — the original mutex-protected std::deque, kept as a
//                        compile-time baseline (-DOSS_MUTEX_QUEUES=ON) so
//                        bench/bm_scheduler can quantify the lock-free win.
//
// Owner discipline: push() and take() may only be called by the worker that
// owns the deque (the runtime guarantees this: unblocked tasks are enqueued
// on the finishing worker's own thread, spawn-local tasks on the spawner's).
// steal() is safe from any thread.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

#include "ompss/chase_lev.hpp"
#include "ompss/task.hpp"

namespace oss {

/// Lock-free worker deque: Chase–Lev over raw Task*, references anchored in
/// the tasks themselves (no allocation per push).
class ChaseLevTaskDeque {
 public:
  /// `numa_node >= 0` binds the ring buffers to that memory node
  /// (allocation-only; see chase_lev.hpp).
  explicit ChaseLevTaskDeque(int numa_node = -1)
      : dq_(/*initial_capacity=*/256, numa_node) {}

  /// Owner only: push at the hot end.
  void push(TaskPtr t) {
    Task* raw = t.get();
    raw->anchor_queue_ref(std::move(t));
    dq_.push(raw);
  }

  /// Owner only: pop at the hot end (LIFO); null when empty.
  TaskPtr take() {
    Task* raw = dq_.take();
    return raw != nullptr ? raw->take_queue_ref() : nullptr;
  }

  /// Any thread: steal at the cold end (FIFO); null when empty or lost race.
  TaskPtr steal() {
    Task* raw = dq_.steal();
    return raw != nullptr ? raw->take_queue_ref() : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return dq_.size(); }
  [[nodiscard]] bool empty() const { return dq_.empty(); }

  ~ChaseLevTaskDeque() {
    // Release anchored references for anything still queued (the runtime
    // drains before destruction; this is belt-and-braces against leaks).
    while (Task* raw = dq_.take()) {
      TaskPtr dropped = raw->take_queue_ref();
    }
  }

 private:
  ChaseLevDeque<Task*> dq_;
};

/// Mutex baseline with the same owner/thief interface.
class MutexTaskDeque {
 public:
  /// Accepts (and ignores) the numa node so both deques construct alike.
  explicit MutexTaskDeque(int /*numa_node*/ = -1) {}

  void push(TaskPtr t) {
    std::lock_guard lock(mu_);
    q_.push_back(std::move(t));
  }

  TaskPtr take() {
    std::lock_guard lock(mu_);
    if (q_.empty()) return nullptr;
    TaskPtr t = std::move(q_.back());
    q_.pop_back();
    return t;
  }

  TaskPtr steal() {
    std::lock_guard lock(mu_);
    if (q_.empty()) return nullptr;
    TaskPtr t = std::move(q_.front());
    q_.pop_front();
    return t;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return q_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<TaskPtr> q_;
};

/// The deque the scheduler actually uses for per-worker queues.
#if defined(OSS_MUTEX_QUEUES)
using WorkerDeque = MutexTaskDeque;
#else
using WorkerDeque = ChaseLevTaskDeque;
#endif

} // namespace oss
