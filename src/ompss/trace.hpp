// trace.hpp — optional execution tracing (Chrome trace-event JSON).
//
// When `RuntimeConfig::record_trace` is set, the runtime records one event
// per executed task: which worker ran it, when, and for how long.  The
// export loads directly into chrome://tracing / Perfetto, giving the same
// per-core timeline view the Paraver traces of the original OmpSs toolchain
// provide.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace oss {

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// One executed task.
  struct Event {
    int worker;
    std::uint64_t task_id;
    std::string label;
    std::uint64_t start_us;
    std::uint64_t end_us;
  };

  TraceRecorder() : origin_(Clock::now()) {}

  /// Timestamp in microseconds since the recorder was created.
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - origin_)
            .count());
  }

  void record(int worker, std::uint64_t task_id, const std::string& label,
              std::uint64_t start_us, std::uint64_t end_us);

  /// Chrome trace-event JSON ("traceEvents" array format).  Thread-safe.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t event_count() const;

  /// Snapshot of all recorded events.  Thread-safe.
  [[nodiscard]] std::vector<Event> events() const;

 private:
  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

} // namespace oss
