// trace.hpp — lock-free execution tracing (oss::trace v2).
//
// The original OmpSs toolchain shipped with Extrae/Paraver tracing; this is
// our equivalent.  Every runtime thread (workers and foreign spawners) owns
// a single-producer/single-consumer ring buffer (`pt::SpscRing`) into which
// the runtime, the scheduler, and the dependency layer emit fixed-size
// 32-byte binary events: the full task lifecycle (spawn, deps-resolved,
// run-span) plus steals, park/unpark, overflow placements, and dependency
// edges.  Emission is wait-free — one raw TSC read and one ring push; when
// a ring is full between drains the event is dropped and counted
// (`trace_dropped`), the hot path never blocks and never allocates.
//
// A drainer — invoked at quiescent points (barrier, shutdown, export) and
// by the optional OSS_STATS_EVERY_MS collector thread — merges the rings
// into a time-ordered store and exports it as Chrome trace-event JSON
// (worker-per-row, flow arrows spawn→run) or a Paraver .prv/.row/.pcf
// trio.  `OSS_TRACE=off|exec|full` selects the mode; `exec` reproduces the
// classic one-event-per-executed-task view so `analyze_trace` and the
// TraceRecorder accessor keep working over the new event stream.
//
// See docs/observability.md for the event schema, knobs, and workflow.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "ompss/config.hpp"
#include "threading/spsc_ring.hpp"

namespace oss {

// ---------------------------------------------------------------------------
// Legacy recorder — the stable analysis surface.
//
// TraceRecorder used to *be* the tracing implementation (mutex + vector on
// the execution path).  It survives as the materialized run-span view the
// TraceSystem drains into: `analyze_trace`, the examples, and the tests
// consume this; nothing in the runtime hot path touches it anymore.
// ---------------------------------------------------------------------------
class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// One executed task.
  struct Event {
    int worker;
    std::uint64_t task_id;
    std::string label;
    std::uint64_t start_us;
    std::uint64_t end_us;
  };

  TraceRecorder() : origin_(Clock::now()) {}

  /// Timestamp in microseconds since the recorder was created.
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - origin_)
            .count());
  }

  void record(int worker, std::uint64_t task_id, const std::string& label,
              std::uint64_t start_us, std::uint64_t end_us);

  /// Chrome trace-event JSON ("traceEvents" array format).  Thread-safe.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t event_count() const;

  /// Snapshot of all recorded events.  Thread-safe.
  [[nodiscard]] std::vector<Event> events() const;

 private:
  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// The binary event stream.
// ---------------------------------------------------------------------------

/// What a TraceEvent records.  Timestamped kinds carry raw clock ticks in
/// `ts` (converted to nanoseconds at drain); structural kinds (Edge, Place)
/// carry ts == 0 and cost only the ring push.
enum class TraceEventKind : std::uint8_t {
  Spawn = 0,    ///< task created; arg bit 0 = ready at spawn (no open deps)
  Ready,        ///< last dependency resolved (emitted by the finishing thread)
  RunSpan,      ///< task executed: begin ticks in arg, end ticks in ts
  Steal,        ///< emitting worker stole `task` from worker `arg`
  Park,         ///< emitting worker parked
  Unpark,       ///< emitting worker woke up
  Overflow,     ///< pressure feedback widened `task` to the global tier
  Place,        ///< scheduler placed `task`; arg = PlaceTier
  Edge,         ///< dependency edge: producer `arg` → consumer `task`;
                ///< label holds the DepKind ordinal
  DepContended, ///< registration of `task` contended on a dep shard
};

/// Which queue tier a Place event landed in (TraceEventKind::Place arg).
enum class PlaceTier : std::uint8_t {
  Priority = 0, ///< global high-priority queue
  Local,        ///< the placing worker's own deque
  Home,         ///< the task's home-node queue
  Global,       ///< the global overflow FIFO
};

const char* to_string(PlaceTier t) noexcept;

/// Fixed-size binary trace record; 32 bytes, trivially copyable.
struct TraceEvent {
  std::uint64_t ts;    ///< raw clock ticks (0 for structural events)
  std::uint64_t task;  ///< task id (0 = none)
  std::uint64_t arg;   ///< kind-specific payload (see TraceEventKind)
  std::uint32_t label; ///< interned label hash (0 = unlabeled)
  TraceEventKind kind;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(TraceEvent) == 32,
              "TraceEvent must stay half a cache line; rings are sized in events");

// ---------------------------------------------------------------------------
// TraceSystem — per-thread rings, drainer, exporters.
// ---------------------------------------------------------------------------
class TraceSystem {
 public:
  /// Foreign (non-worker) threads get row ids starting here.
  static constexpr int kForeignBase = 1000;

  explicit TraceSystem(TraceMode mode, std::size_t ring_capacity = 32768);
  ~TraceSystem();

  TraceSystem(const TraceSystem&) = delete;
  TraceSystem& operator=(const TraceSystem&) = delete;

  [[nodiscard]] TraceMode mode() const noexcept { return mode_; }
  [[nodiscard]] bool full() const noexcept { return mode_ == TraceMode::Full; }

  /// Raw monotonic ticks — the cheapest timestamp the platform has (TSC on
  /// x86).  Converted to nanoseconds at drain via a steady_clock
  /// calibration pair, so the emission path never pays for the conversion.
  static std::uint64_t clock() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  /// Declares the calling thread to be worker `wid` — its ring becomes the
  /// worker's timeline row.  Unbound threads that emit (foreign spawners)
  /// self-register as "spawner k" rows (tid >= kForeignBase).
  void bind_worker(int wid);

  // --- hot emitters -------------------------------------------------------
  // All of them: a mode check, one clock() where the event is timestamped,
  // one SPSC push.  Full-only kinds compile down to a load+branch in exec
  // mode.

  void emit_spawn(std::uint64_t task, std::uint32_t label, bool ready) {
    if (mode_ != TraceMode::Full) return;
    push({clock(), task, ready ? 1u : 0u, label, TraceEventKind::Spawn, {}});
  }
  void emit_ready(std::uint64_t task) {
    if (mode_ != TraceMode::Full) return;
    push({clock(), task, 0, 0, TraceEventKind::Ready, {}});
  }
  /// The one event exec mode records: begin ticks captured by the caller
  /// around the task body, end ticks stamped here.
  void emit_run(std::uint64_t task, std::uint32_t label,
                std::uint64_t begin_ticks) {
    push({clock(), task, begin_ticks, label, TraceEventKind::RunSpan, {}});
  }
  void emit_steal(std::uint64_t task, int victim) {
    if (mode_ != TraceMode::Full) return;
    push({clock(), task, static_cast<std::uint64_t>(victim), 0,
          TraceEventKind::Steal, {}});
  }
  void emit_park() {
    if (mode_ != TraceMode::Full) return;
    push({clock(), 0, 0, 0, TraceEventKind::Park, {}});
  }
  void emit_unpark() {
    if (mode_ != TraceMode::Full) return;
    push({clock(), 0, 0, 0, TraceEventKind::Unpark, {}});
  }
  void emit_overflow(std::uint64_t task) {
    if (mode_ != TraceMode::Full) return;
    push({clock(), task, 0, 0, TraceEventKind::Overflow, {}});
  }
  void emit_place(std::uint64_t task, PlaceTier tier) {
    if (mode_ != TraceMode::Full) return;
    push({0, task, static_cast<std::uint64_t>(tier), 0,
          TraceEventKind::Place, {}});
  }
  void emit_edge(std::uint64_t producer, std::uint64_t consumer,
                 std::uint8_t dep_kind) {
    if (mode_ != TraceMode::Full) return;
    push({0, consumer, producer, dep_kind, TraceEventKind::Edge, {}});
  }
  void emit_dep_contended(std::uint64_t task) {
    if (mode_ != TraceMode::Full) return;
    push({clock(), task, 0, 0, TraceEventKind::DepContended, {}});
  }

  /// Interns a task label, returning its 32-bit hash (0 for the empty
  /// label).  Called once per spawn; a small thread-local cache makes the
  /// repeated-label case (the normal one) lock-free.
  std::uint32_t intern(const std::string& label);

  /// Total intern() invocations (including empty-label and cache-hit
  /// calls).  Replayed tasks reuse the hash interned at capture, so a
  /// warmed replay loop leaves this counter flat — the zero-interning
  /// proof in test_replay.cpp.
  [[nodiscard]] std::uint64_t intern_calls() const noexcept {
    return intern_calls_.load(std::memory_order_relaxed);
  }

  // --- cold side ----------------------------------------------------------

  /// A drained event: ring row id plus the raw record with tick fields
  /// already converted to nanoseconds since the system was created
  /// (structural events keep ts == 0).
  struct Merged {
    int tid;
    TraceEvent ev;
  };

  /// Drains every ring into the merged store.  Safe to call concurrently
  /// with emission (SPSC: producers keep pushing); drainers serialize on an
  /// internal mutex.
  void drain();

  /// Drains only rings at least half full — the barrier-time hook: keeps
  /// long runs from dropping events without putting a full drain inside
  /// measured loops.
  void drain_if_pressed();

  /// Events lost so far: ring overflows plus merged-store clamping.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Drained events so far (drains first).
  std::size_t event_count();

  /// Snapshot of the merged, time-ordered event store (drains first).
  std::vector<Merged> merged_events();

  /// Resolves an interned label hash ("" if unknown).
  [[nodiscard]] std::string label_name(std::uint32_t hash) const;

  /// Chrome trace-event JSON.  Exec mode reproduces the classic
  /// TraceRecorder format byte for byte (one "X" event per executed task);
  /// full mode adds worker-name metadata, spawn→run flow arrows, and
  /// instant events for steals/parks/overflows.  Drains first.
  std::string to_chrome_json();

  /// Writes Paraver `<base>.prv` / `<base>.row` / `<base>.pcf` (base is the
  /// path with any ".prv" suffix stripped).  Run spans become state
  /// records, everything else event records.  Returns false on I/O error.
  bool write_paraver(const std::string& path);

  /// Writes Chrome JSON to `path`.  Returns false on I/O error.
  bool write_chrome_json(const std::string& path);

  /// The legacy run-span view, rebuilt from the current event store: one
  /// TraceRecorder event per RunSpan.  Reference stays valid until the next
  /// call.  Drains first.
  TraceRecorder& legacy_recorder();

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : buf(cap) {}
    pt::SpscRing<TraceEvent> buf;
    int tid = -1;
    std::thread::id owner;
    std::atomic<std::uint64_t> dropped{0};
  };

  struct TlsSlot {
    const TraceSystem* sys = nullptr;
    std::uint64_t epoch = 0;
    Ring* ring = nullptr;
  };

  Ring* ring() {
    TlsSlot& slot = tls_slot_;
    if (slot.sys == this && slot.epoch == epoch_) return slot.ring;
    return ring_slow();
  }
  Ring* ring_slow();

  void push(const TraceEvent& ev) {
    Ring* r = ring();
    if (!r->buf.try_push(ev)) r->dropped.fetch_add(1, std::memory_order_relaxed);
  }

  void drain_locked();
  double ns_per_tick_locked();

  static thread_local TlsSlot tls_slot_;

  const TraceMode mode_;
  const std::size_t ring_capacity_;
  const std::uint64_t epoch_; ///< globally unique per instance; guards TLS
                              ///< slots against address reuse

  // Calibration origin: (ticks, wall) sampled at construction.
  std::uint64_t t0_ticks_;
  std::chrono::steady_clock::time_point t0_wall_;

  std::atomic<std::uint64_t> intern_calls_{0};

  mutable std::mutex mu_; ///< guards ring registration, labels_, the store,
                          ///< and the consumer side of every ring
  std::vector<std::unique_ptr<Ring>> rings_;
  int foreign_rows_ = 0;
  std::unordered_map<std::uint32_t, std::string> labels_;

  std::vector<Merged> store_; ///< drained events, ts in ns since t0
  std::uint64_t store_clamped_ = 0;
  std::unique_ptr<TraceRecorder> legacy_;

  /// Merged-store ceiling: long benchmark loops would otherwise grow the
  /// store without bound.  Past it, drained events are counted as dropped.
  static constexpr std::size_t kMaxStoredEvents = std::size_t{1} << 21;
};

} // namespace oss
