// replay.cpp — graph capture/replay (oss::replay) plus the Runtime halves
// of the protocol (capture_release, publish_ready_batch, replay).  See
// replay.hpp for the capture/replay model and docs/replay.md for the user
// contract.
#include "ompss/replay.hpp"

#include <stdexcept>
#include <utility>

#include "ompss/runtime.hpp"
#include "ompss/task_pool.hpp"

namespace oss {

// ---------------------------------------------------------------------------
// GraphCapture
// ---------------------------------------------------------------------------

GraphCapture::GraphCapture(Runtime& rt) : rt_(rt) {
  GraphCapture* expected = nullptr;
  if (!rt.capture_.compare_exchange_strong(expected, this,
                                           std::memory_order_acq_rel)) {
    throw std::logic_error(
        "oss::GraphCapture: another capture scope is already open on this "
        "runtime");
  }
}

GraphCapture::~GraphCapture() {
  if (finished_) return;
  // Abandoned scope (early return / exception unwinding): the captured
  // structure is discarded, but the held iteration must still run — a task
  // parked on its hold predecessor forever would deadlock every later
  // taskwait/barrier.
  rt_.capture_.store(nullptr, std::memory_order_release);
  rt_.capture_release(held_);
}

void GraphCapture::on_spawn(const TaskPtr& t) {
  const auto idx = static_cast<std::uint32_t>(held_.size());
  index_.emplace(t->id(), idx);
  tables_.add_node(t->id(), t->label());
  // The hold predecessor: keeps the task (and therefore the whole captured
  // iteration) parked until finish(), so every producer is still live when
  // its consumers register — the discovered edge multiset is the full
  // structural graph, independent of machine speed or thread count.
  // Relaxed suffices: the spawn guard is still held (preds >= 1), so no
  // finisher can observe or race this increment into readiness.
  t->preds.fetch_add(1, std::memory_order_relaxed);
  held_.push_back(t);
}

void GraphCapture::on_edge(const TaskPtr& from, const TaskPtr& to,
                           DepKind kind) {
  const auto fi = index_.find(from->id());
  const auto ti = index_.find(to->id());
  if (fi == index_.end() || ti == index_.end()) {
    // A dependency on an unfinished task spawned *before* the scope opened:
    // replay could never reproduce that edge (the outside producer will not
    // exist next iteration), so the capture is rejected at the exact spawn
    // that introduced the foreign edge.
    throw std::logic_error(
        "oss::GraphCapture: dependency on a task outside the capture scope "
        "(taskwait() before opening the scope so pre-existing producers are "
        "finished)");
  }
  tables_.add_edge(from->id(), to->id(), kind);
  edges_.push_back({fi->second, ti->second, static_cast<std::uint8_t>(kind)});
  ++kind_counts_[static_cast<std::size_t>(kind)];
}

ReplayGraph GraphCapture::finish() {
  if (finished_) {
    throw std::logic_error("oss::GraphCapture::finish: already finished");
  }
  finished_ = true;

  ReplayGraph g;
  const std::size_t n = held_.size();
  g.tasks_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskPtr& t = held_[i];
    ReplayGraph::TaskRec& rec = g.tasks_[i];
    rec.label = t->label();
    rec.trace_label = t->trace_label();
    rec.priority = t->priority();
    rec.home_node = t->home_node();
    rec.home_soft = t->home_soft();
    rec.lock_begin = static_cast<std::uint32_t>(g.locks_.size());
    for (const auto& m : t->exclusion_locks()) g.locks_.push_back(m);
    rec.lock_end = static_cast<std::uint32_t>(g.locks_.size());
  }

  // Predecessor counts are the in-degree over the *captured* edges — not a
  // read of the live atomics, so the frozen structure is internally
  // consistent by construction.  Successor lists are a counting sort of the
  // same edges into one CSR array.
  for (const ReplayGraph::EdgeRec& e : edges_) ++g.tasks_[e.to].preds;
  std::vector<std::uint32_t> deg(n, 0);
  for (const ReplayGraph::EdgeRec& e : edges_) ++deg[e.from];
  std::uint32_t off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    g.tasks_[i].succ_begin = off;
    g.tasks_[i].succ_end = off; // fill cursor, bumped below
    off += deg[i];
  }
  g.succ_idx_.resize(edges_.size());
  for (const ReplayGraph::EdgeRec& e : edges_) {
    g.succ_idx_[g.tasks_[e.from].succ_end++] = e.to;
  }

  g.edges_ = std::move(edges_);
  for (std::size_t k = 0; k < 4; ++k) g.kind_counts_[k] = kind_counts_[k];
  g.tables_ = std::move(tables_);
  g.owner_ = &rt_;
  g.owner_serial_ = rt_.serial_;

  // Close the scope *before* releasing: tasks spawned from the released
  // bodies (nested spawns are legal once execution starts) must not be
  // recorded into the now-frozen capture.
  rt_.capture_.store(nullptr, std::memory_order_release);
  rt_.capture_release(held_);
  held_.clear();
  index_.clear();
  return g;
}

// ---------------------------------------------------------------------------
// ReplayGraph
// ---------------------------------------------------------------------------

std::vector<ReplayGraph::Edge> ReplayGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const EdgeRec& e : edges_) {
    out.push_back(Edge{e.from, e.to, static_cast<DepKind>(e.kind)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Runtime halves
// ---------------------------------------------------------------------------

void Runtime::capture_release(const std::vector<TaskPtr>& held) {
  if (held.empty()) return;
  const int worker = (Runtime::current() == this) ? Runtime::current_worker()
                                                  : -1;
  std::vector<TaskPtr> ready;
  ready.reserve(held.size());
  std::uint64_t ready_now = 0; // one clock read shared by the release burst
  for (const TaskPtr& t : held) {
    // Same protocol as the spawn-guard release: acq_rel pairs with the
    // producers' decrements, and whoever zeroes preds owns the Ready
    // transition — here that is always this thread (nothing has executed
    // yet), but the ordering contract is identical.
    if (t->preds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (prof_) {
        if (ready_now == 0) ready_now = ProfSystem::clock();
        t->set_ready_ts(ready_now);
      }
      t->set_state(TaskState::Ready);
      if (trace_) trace_->emit_ready(t->id());
      ready.push_back(t);
    }
  }
  publish_ready_batch(ready, worker);
}

void Runtime::publish_ready_batch(std::vector<TaskPtr>& ready, int worker) {
  if (ready.empty()) return;
  const std::size_t gates = idle_gates_.size();
  if (gates == 1) {
    const std::size_t count = ready.size();
    for (TaskPtr& s : ready) {
      scheduler_->enqueue_spawned(std::move(s), worker);
    }
    wake_workers(count, 0);
  } else {
    // Node-gate bucketing, same shape as the on_finished burst: each
    // bucket's wakeup starts at the gate whose workers own the data.
    constexpr std::size_t kInlineGates = 16;
    std::size_t inline_counts[kInlineGates] = {};
    std::vector<std::size_t> spill;
    if (gates > kInlineGates) spill.resize(gates, 0);
    std::size_t* per_gate = gates > kInlineGates ? spill.data() : inline_counts;
    const std::size_t fallback_gate = gate_index(worker);
    for (TaskPtr& s : ready) {
      const int home = s->home_node();
      const std::size_t g =
          (home >= 0 && static_cast<std::size_t>(home) < gates)
              ? static_cast<std::size_t>(home)
              : fallback_gate;
      ++per_gate[g];
      scheduler_->enqueue_spawned(std::move(s), worker);
    }
    for (std::size_t g = 0; g < gates; ++g) {
      if (per_gate[g] > 0) wake_workers(per_gate[g], static_cast<int>(g));
    }
  }
  if (blocked_waiters_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(cv_mu_);
    cv_.notify_all();
  }
}

void Runtime::replay(const ReplayGraph& graph,
                     const std::function<Task::Fn(std::size_t)>& binder) {
  if (!graph.valid() || graph.owner_ != this ||
      graph.owner_serial_ != serial_) {
    throw std::invalid_argument(
        "oss::Runtime::replay: graph was not captured by this runtime "
        "instance (a graph does not survive a runtime restart — re-capture)");
  }
  if (!binder) {
    throw std::invalid_argument("oss::Runtime::replay: empty binder");
  }
  if (capture_.load(std::memory_order_relaxed) != nullptr) {
    throw std::logic_error(
        "oss::Runtime::replay: cannot replay inside a capture scope");
  }
  const std::size_t n = graph.tasks_.size();
  if (n == 0) return;

  // Thread-local scratch (capacity survives across replays, and two threads
  // replaying disjoint graphs concurrently never share a buffer): the
  // warmed steady state allocates nothing here.
  static thread_local std::vector<TaskPtr> tl_created;
  static thread_local std::vector<TaskPtr> tl_ready;
  std::vector<TaskPtr>& created = tl_created;
  std::vector<TaskPtr>& ready = tl_ready;
  created.clear();
  ready.clear();
  created.reserve(n);

  // Phase 1: create every task, pre-wired from the frozen structure — no
  // DepDomain shard is ever visited (no interval-map lookup, no shard lock,
  // no register_task): predecessor counts are stored directly and successor
  // lists are array-copied below.  Nothing is published yet, so plain
  // writes to `successors` (no succ_mu_, no per-edge preds increments) are
  // legal: the queue handshake (roots) or the preds release sequence
  // (interior tasks) orders them for the executing worker.
  for (std::size_t i = 0; i < n; ++i) {
    const ReplayGraph::TaskRec& rec = graph.tasks_[i];
    const std::uint64_t id =
        next_task_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    Task::Fn fn = binder(i);
    TaskPtr task;
    if (cfg_.pool) {
      const pool::AcquireResult a = pool::acquire();
      stats_.on_pool_acquire(a.recycled);
      a.task->prepare(id, std::move(fn), root_ctx_, rec.label);
      task = TaskPtr::adopt(a.task);
    } else {
      task = TaskPtr::adopt(
          new Task(id, std::move(fn), AccessList{}, root_ctx_, rec.label));
    }
    task->set_priority(rec.priority);
    root_ctx_->live_children.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    if (graph_) graph_->add_node(id, task->label());
    // The interned label hash travels with the graph: a warmed replay loop
    // performs zero TraceSystem/ProfSystem::intern calls (test_replay.cpp
    // asserts this through the intern_calls counters).
    task->set_trace_label(rec.trace_label);
    if (prof_) task->set_spawn_ts(ProfSystem::clock());
    for (std::uint32_t k = rec.lock_begin; k < rec.lock_end; ++k) {
      task->add_exclusion_lock(graph.locks_[k]);
    }
    if (rec.home_node >= 0 && !topo_.single_node()) {
      task->set_home_node(rec.home_node, rec.home_soft);
    }
    // Captured in-degree plus the usual spawn guard, held until phase 2 so
    // no task can become ready while its successor list is still being
    // wired.
    task->preds.store(1 + static_cast<int>(rec.preds),
                      std::memory_order_relaxed);
    created.push_back(std::move(task));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const ReplayGraph::TaskRec& rec = graph.tasks_[i];
    Task* const t = created[i].get();
    for (std::uint32_t k = rec.succ_begin; k < rec.succ_end; ++k) {
      t->successors.push_back(created[graph.succ_idx_[k]]);
    }
  }

  if (graph_) {
    for (const ReplayGraph::EdgeRec& e : graph.edges_) {
      graph_->add_edge(created[e.from]->id(), created[e.to]->id(),
                       static_cast<DepKind>(e.kind));
    }
  }
  // Edge totals were counted once at capture; a replay adds them in four
  // bulk adds instead of one sink callback per edge.
  stats_.add_edges(graph.kind_counts_[0], graph.kind_counts_[1],
                   graph.kind_counts_[2], graph.kind_counts_[3]);
  stats_.on_replay(n);

  // Phase 2: release the spawn guards in capture order and batch-publish
  // the roots.  No guard release can make an *unwired* task ready — every
  // successor list was completed above, and nothing executes before the
  // publish below enqueues the first root.
  const int worker = (Runtime::current() == this) ? Runtime::current_worker()
                                                  : -1;
  for (std::size_t i = 0; i < n; ++i) {
    TaskPtr& t = created[i];
    const bool is_ready =
        t->preds.fetch_sub(1, std::memory_order_acq_rel) == 1;
    if (is_ready) {
      t->set_state(TaskState::Ready);
      // Ready at submission: no dependency wait (ready_ts == spawn_ts).
      if (prof_) t->set_ready_ts(t->spawn_ts());
    }
    if (trace_) trace_->emit_spawn(t->id(), t->trace_label(), is_ready);
    if (is_ready) ready.push_back(std::move(t));
  }
  publish_ready_batch(ready, worker);
  created.clear();
  ready.clear();
}

} // namespace oss
