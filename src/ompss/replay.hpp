// replay.hpp — graph capture and replay (oss::replay, docs/replay.md).
//
// Iterative workloads (the paper's pipelines, PopART-style op graphs) run
// the *same* task graph every iteration, yet each iteration pays sharded
// interval-map dependency resolution from scratch.  This subsystem memoizes
// one iteration's resolved structure and re-submits it as an array walk:
//
//   oss::GraphCapture cap(rt);          // capture scope opens
//   submit_iteration(rt);               //   spawns are recorded AND held
//   oss::ReplayGraph g = cap.finish();  // scope closes; iteration runs
//   rt.taskwait();
//
//   for (int it = 1; it < n; ++it) {
//     rt.replay(g, binder);             // no DepDomain shard is touched
//     rt.taskwait();
//   }
//
// Capture semantics: every task spawned inside the scope receives an extra
// *hold* predecessor, so nothing executes until `finish()` — every producer
// is still live when its consumers register, which makes the discovered
// edge multiset the full structural graph, deterministic on any machine and
// thread count.  `finish()` freezes the structure into a ReplayGraph (flat
// task table + CSR successor lists) and releases the held iteration through
// the normal readiness path.
//
// Replay semantics: `Runtime::replay(g, binder)` re-submits the whole graph
// without touching any dependency shard — tasks come from the pool with
// their predecessor counts pre-stored and successor lists pre-wired from
// the CSR arrays, and ready roots are batch-enqueued through the node-aware
// wakeup path.  `binder(i)` supplies the body for task index `i` (capture
// order) on every replay, so buffers/frame data can change per iteration.
//
// A capture scope is single-threaded by contract: only the capturing thread
// may spawn between construction and finish().  Tasks spawned during
// capture must be deferred root-context tasks (no `if(0)`, no TaskGroup,
// no nested spawns — nothing executes inside the scope anyway), and every
// dependency must point at another captured task; a dependency on an
// unfinished *pre-capture* task throws at capture time, because replay
// could not reproduce that edge.  See docs/replay.md for the full binder
// contract and the list of things that invalidate a captured graph.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ompss/graph_tables.hpp"
#include "ompss/task.hpp"

namespace oss {

class Runtime;
class GraphCapture;

/// Immutable memoized iteration structure: a flat task table (label,
/// interned trace label, priority, resolved home node, predecessor count)
/// plus CSR successor lists and the captured edge multiset.  Produced by
/// GraphCapture::finish(), consumed by Runtime::replay().  Cheap to move,
/// expensive to copy (copying is allowed — e.g. to replay the same shape
/// against disjoint buffer sets from several threads).
class ReplayGraph {
 public:
  ReplayGraph() = default;

  /// True when this graph came out of a successful capture.
  [[nodiscard]] bool valid() const noexcept { return owner_ != nullptr; }

  /// Number of captured tasks.
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }

  /// Number of captured dependency edges (all hazard kinds).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Label of task `i` in capture (= replay) order.
  [[nodiscard]] const std::string& label(std::size_t i) const {
    return tasks_[i].label;
  }

  /// Captured predecessor count of task `i` (its in-degree; 0 = root).
  [[nodiscard]] std::size_t pred_count(std::size_t i) const noexcept {
    return tasks_[i].preds;
  }

  /// The captured edges as (producer index, consumer index, kind) in
  /// discovery order — parity tests compare this multiset against a fresh
  /// resolution of the same program.
  struct Edge {
    std::uint32_t from;
    std::uint32_t to;
    DepKind kind;
    friend bool operator==(const Edge&, const Edge&) = default;
  };
  [[nodiscard]] std::vector<Edge> edges() const;

  /// The capture-run node/edge tables (capture-run task ids), the same
  /// GraphTables structure the GraphRecorder renders — to_dot() is the
  /// byte-identical DOT rendering of the captured iteration.
  [[nodiscard]] const GraphTables& tables() const noexcept { return tables_; }
  [[nodiscard]] std::string to_dot() const { return tables_.to_dot(); }

 private:
  friend class GraphCapture;
  friend class Runtime;

  struct TaskRec {
    std::string label;
    std::uint32_t trace_label = 0; ///< interned at capture; replay never
                                   ///< re-interns (docs/replay.md)
    int priority = 0;
    int home_node = -1;            ///< resolved NUMA home (-1 = none)
    bool home_soft = false;
    std::uint32_t preds = 0;       ///< in-degree over captured edges
    std::uint32_t succ_begin = 0;  ///< CSR range into succ_idx_
    std::uint32_t succ_end = 0;
    std::uint32_t lock_begin = 0;  ///< CSR range into locks_
    std::uint32_t lock_end = 0;
  };
  struct EdgeRec {
    std::uint32_t from;
    std::uint32_t to;
    std::uint8_t kind;
  };

  std::vector<TaskRec> tasks_;          ///< capture order
  std::vector<std::uint32_t> succ_idx_; ///< CSR successor task indices
  std::vector<EdgeRec> edges_;          ///< discovery order
  /// Commutative-region exclusion locks carried over from capture, so a
  /// replayed commutative group keeps its mutual exclusion without any
  /// shard visit.  The shared_ptrs keep the region mutexes alive across
  /// runtime-internal pruning.
  std::vector<std::shared_ptr<std::mutex>> locks_;
  std::uint64_t kind_counts_[4] = {0, 0, 0, 0}; ///< edges per DepKind
  GraphTables tables_;                  ///< capture-run ids (DOT/diagnostics)
  Runtime* owner_ = nullptr;            ///< runtime that captured the graph
  std::uint64_t owner_serial_ = 0;      ///< its construction serial — a
                                        ///< restarted runtime at the same
                                        ///< address is still rejected
};

/// RAII capture scope.  Opens on construction (at most one per runtime at a
/// time), records and holds every task spawned from the capturing thread,
/// and releases the held iteration at finish() — or at destruction, so an
/// abandoned scope (exception unwinding) still runs the submitted work
/// instead of deadlocking the runtime.
class GraphCapture {
 public:
  /// Throws std::logic_error if another capture is already open on `rt`.
  explicit GraphCapture(Runtime& rt);

  /// Closes the scope if finish() was never called and releases the held
  /// tasks (the captured structure is discarded in that case).
  ~GraphCapture();

  GraphCapture(const GraphCapture&) = delete;
  GraphCapture& operator=(const GraphCapture&) = delete;

  /// Closes the scope, releases the held iteration through the normal
  /// readiness path (the capture run executes now), and returns the frozen
  /// graph.  Callable once; throws std::logic_error on a second call.
  /// The caller still owns the usual taskwait()/barrier() for the capture
  /// run itself.
  ReplayGraph finish();

  /// Tasks recorded so far.
  [[nodiscard]] std::size_t captured() const noexcept { return held_.size(); }

 private:
  friend class Runtime;

  // Spawn-path hooks, called by Runtime::spawn_task on the capturing
  // thread: on_spawn adds the hold predecessor and assigns the capture
  // index (before registration, so on_edge can resolve both endpoints);
  // on_edge records one discovered edge, throwing if the producer is not
  // part of the capture.
  void on_spawn(const TaskPtr& t);
  void on_edge(const TaskPtr& from, const TaskPtr& to, DepKind kind);

  Runtime& rt_;
  bool finished_ = false;
  std::vector<TaskPtr> held_;  ///< capture order; each holds one hold-pred
  std::unordered_map<std::uint64_t, std::uint32_t> index_; ///< id → index
  std::vector<ReplayGraph::EdgeRec> edges_;
  std::uint64_t kind_counts_[4] = {0, 0, 0, 0};
  GraphTables tables_;
};

/// Binder contract (docs/replay.md): called once per task per replay, in
/// capture order, from the replaying thread; returns the body to run for
/// task index `i` this iteration.  Bodies must not assume dependency
/// coverage beyond the captured structure (replayed tasks declare no
/// accesses — taskwait_on regions does not see them; taskwait()/barrier()
/// and handle waits do).
using ReplayBinder = std::function<Task::Fn(std::size_t)>;

} // namespace oss
