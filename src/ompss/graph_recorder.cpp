#include "ompss/graph_recorder.hpp"

#include <sstream>

namespace oss {

void GraphRecorder::add_node(std::uint64_t id, std::string label) {
  std::lock_guard lock(mu_);
  nodes_.push_back(Node{id, std::move(label)});
}

void GraphRecorder::add_edge(std::uint64_t from, std::uint64_t to, DepKind kind) {
  std::lock_guard lock(mu_);
  edges_.push_back(Edge{from, to, kind});
}

std::size_t GraphRecorder::node_count() const {
  std::lock_guard lock(mu_);
  return nodes_.size();
}

std::size_t GraphRecorder::edge_count() const {
  std::lock_guard lock(mu_);
  return edges_.size();
}

std::size_t GraphRecorder::edge_count(DepKind kind) const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Edge& e : edges_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<GraphRecorder::Edge> GraphRecorder::edges() const {
  std::lock_guard lock(mu_);
  return edges_;
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* edge_style(DepKind k) {
  switch (k) {
    case DepKind::Raw: return "color=black";
    case DepKind::War: return "color=red,style=dashed";
    case DepKind::Waw: return "color=blue,style=dashed";
    case DepKind::Explicit: return "color=darkgreen,style=dotted";
  }
  return "";
}

} // namespace

std::string GraphRecorder::to_dot() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n";
  for (const Node& n : nodes_) {
    os << "  t" << n.id << " [label=\"#" << n.id;
    if (!n.label.empty()) os << "\\n" << escape(n.label);
    os << "\"];\n";
  }
  for (const Edge& e : edges_) {
    os << "  t" << e.from << " -> t" << e.to << " [" << edge_style(e.kind)
       << ",label=\"" << to_string(e.kind) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

} // namespace oss
