#include "ompss/graph_recorder.hpp"

namespace oss {

void GraphRecorder::add_node(std::uint64_t id, std::string label) {
  std::lock_guard lock(mu_);
  tables_.add_node(id, std::move(label));
}

void GraphRecorder::set_node_path(std::uint64_t id, std::uint64_t path_weight,
                                  std::uint64_t crit_pred) {
  std::lock_guard lock(mu_);
  tables_.set_node_path(id, path_weight, crit_pred);
}

void GraphRecorder::add_edge(std::uint64_t from, std::uint64_t to, DepKind kind) {
  std::lock_guard lock(mu_);
  tables_.add_edge(from, to, kind);
}

std::size_t GraphRecorder::node_count() const {
  std::lock_guard lock(mu_);
  return tables_.nodes.size();
}

std::size_t GraphRecorder::edge_count() const {
  std::lock_guard lock(mu_);
  return tables_.edges.size();
}

std::size_t GraphRecorder::edge_count(DepKind kind) const {
  std::lock_guard lock(mu_);
  return tables_.edge_count(kind);
}

std::vector<GraphRecorder::Edge> GraphRecorder::edges() const {
  std::lock_guard lock(mu_);
  return tables_.edges;
}

std::vector<GraphRecorder::Node> GraphRecorder::nodes() const {
  std::lock_guard lock(mu_);
  return tables_.nodes;
}

std::string GraphRecorder::to_dot() const {
  std::lock_guard lock(mu_);
  return tables_.to_dot();
}

} // namespace oss
