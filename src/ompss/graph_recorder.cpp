#include "ompss/graph_recorder.hpp"

#include <sstream>
#include <unordered_set>

namespace oss {

void GraphRecorder::add_node(std::uint64_t id, std::string label) {
  std::lock_guard lock(mu_);
  index_.emplace(id, nodes_.size());
  nodes_.push_back(Node{id, std::move(label)});
}

void GraphRecorder::set_node_path(std::uint64_t id, std::uint64_t path_weight,
                                  std::uint64_t crit_pred) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  nodes_[it->second].path_weight = path_weight;
  nodes_[it->second].crit_pred = crit_pred;
}

void GraphRecorder::add_edge(std::uint64_t from, std::uint64_t to, DepKind kind) {
  std::lock_guard lock(mu_);
  edges_.push_back(Edge{from, to, kind});
}

std::size_t GraphRecorder::node_count() const {
  std::lock_guard lock(mu_);
  return nodes_.size();
}

std::size_t GraphRecorder::edge_count() const {
  std::lock_guard lock(mu_);
  return edges_.size();
}

std::size_t GraphRecorder::edge_count(DepKind kind) const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Edge& e : edges_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<GraphRecorder::Edge> GraphRecorder::edges() const {
  std::lock_guard lock(mu_);
  return edges_;
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* edge_style(DepKind k) {
  switch (k) {
    case DepKind::Raw: return "color=black";
    case DepKind::War: return "color=red,style=dashed";
    case DepKind::Waw: return "color=blue,style=dashed";
    case DepKind::Explicit: return "color=darkgreen,style=dotted";
  }
  return "";
}

} // namespace

std::string GraphRecorder::to_dot() const {
  std::lock_guard lock(mu_);

  // Critical-path chain: start at the node carrying the largest recorded
  // path weight (the span's endpoint) and walk the crit_pred links back to
  // a root.  Weights come from the runtime's on_finished (oss::prof);
  // graphs recorded without profiling have no weights and no highlight.
  std::unordered_set<std::uint64_t> on_path;
  {
    const Node* tip = nullptr;
    for (const Node& n : nodes_) {
      if (n.path_weight > 0 && (tip == nullptr || n.path_weight > tip->path_weight)) {
        tip = &n;
      }
    }
    std::uint64_t cursor = tip != nullptr ? tip->id : 0;
    while (cursor != 0 && on_path.insert(cursor).second) {
      const auto it = index_.find(cursor);
      cursor = it != index_.end() ? nodes_[it->second].crit_pred : 0;
    }
  }

  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n";
  for (const Node& n : nodes_) {
    os << "  t" << n.id << " [label=\"#" << n.id;
    if (!n.label.empty()) os << "\\n" << escape(n.label);
    os << "\"";
    if (on_path.count(n.id) != 0) {
      os << ",style=filled,fillcolor=\"#ffd0d0\",color=crimson,penwidth=2";
    }
    os << "];\n";
  }
  for (const Edge& e : edges_) {
    // An edge lies on the critical path when both ends do and the target
    // names the source as the predecessor its longest path arrived through.
    bool crit = false;
    if (on_path.count(e.from) != 0 && on_path.count(e.to) != 0) {
      const auto it = index_.find(e.to);
      crit = it != index_.end() && nodes_[it->second].crit_pred == e.from;
    }
    os << "  t" << e.from << " -> t" << e.to << " [" << edge_style(e.kind);
    if (crit) os << ",color=crimson,penwidth=2";
    os << ",label=\"" << to_string(e.kind) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

} // namespace oss
