#include "ompss/global.hpp"

#include <memory>
#include <mutex>

namespace oss {

namespace {
std::mutex g_mu;
std::unique_ptr<Runtime> g_runtime;
} // namespace

Runtime& global_runtime() {
  std::lock_guard lock(g_mu);
  if (!g_runtime) g_runtime = std::make_unique<Runtime>(RuntimeConfig::from_env());
  return *g_runtime;
}

void shutdown() {
  std::lock_guard lock(g_mu);
  g_runtime.reset();
}

bool global_runtime_exists() {
  std::lock_guard lock(g_mu);
  return static_cast<bool>(g_runtime);
}

} // namespace oss
