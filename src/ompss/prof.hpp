// prof.hpp — work/span profiling and per-label task latency profiles
// (oss::prof, docs/observability.md "Profiling and diagnosis").
//
// Where oss::trace answers "what happened, event by event", oss::prof
// answers "where did the time go" without a 2M-event trace: per-label
// accumulators (count, exec sum/min/max + log2 histogram, spawn→ready wait,
// ready→run queue delay) updated lock-free on the execution path, plus a
// critical-path length (span) propagated along the successor-release path so
// at any barrier the runtime can report
//
//   work        = Σ task execution time
//   span        = longest dependency chain (critical path)
//   parallelism = work / span   (the graph's inherent speedup ceiling)
//
// together with the top-k labels *on* the critical path (PathAttr).  The
// recording side is sharded per worker — a `record()` is a handful of
// relaxed atomic adds into the worker's own shard, no locks, no allocation —
// and `snapshot()` merges the shards cold.
//
// Enabled by OSS_PROF=1 (footer table at shutdown), OSS_PROF_EVERY_MS
// (periodic deltas on the collector thread), or OSS_WATCHDOG (the health
// watchdog needs the same timestamps).  All off = the runtime never reads
// the clock for it.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ompss/task.hpp"  // PathAttr
#include "ompss/trace.hpp" // TraceSystem::clock()

namespace oss {

/// Plain-value profiling snapshot (Runtime::profile()): per-label profiles
/// sorted by total execution time, plus the work/span summary.  All times in
/// nanoseconds; histograms stay in raw log2(tick) buckets (convert bucket
/// bounds with `ns_per_tick`).
struct ProfileSnapshot {
  static constexpr std::size_t kHistBuckets = 32;

  struct Label {
    std::string name;          ///< "(unlabeled)" for label-less tasks
    std::uint32_t hash = 0;    ///< interned label hash (Task::trace_label)
    std::uint64_t count = 0;
    std::uint64_t exec_ns = 0; ///< Σ execution time
    std::uint64_t exec_min_ns = 0;
    std::uint64_t exec_max_ns = 0;
    std::uint64_t wait_ns = 0;  ///< Σ spawn→ready dependency wait
    std::uint64_t queue_ns = 0; ///< Σ ready→run queue delay
    std::array<std::uint64_t, kHistBuckets> hist{}; ///< count per log2(ticks)

    [[nodiscard]] double mean_ns() const {
      return count ? static_cast<double>(exec_ns) / static_cast<double>(count)
                   : 0.0;
    }
  };

  std::vector<Label> labels; ///< sorted by exec_ns, descending
  std::uint64_t tasks = 0;   ///< Σ label counts
  std::uint64_t work_ns = 0; ///< Σ label exec_ns
  std::uint64_t span_ns = 0; ///< critical-path length
  /// Top labels on the critical path (name, ns), descending — at most
  /// PathAttr::kTop entries, approximate beyond that many distinct labels.
  std::vector<std::pair<std::string, std::uint64_t>> critical_ns;
  std::uint64_t overflowed = 0; ///< records dropped (per-shard table full)
  double ns_per_tick = 1.0;     ///< tick→ns rate used for the conversion

  /// work / span; 0 when no task carried timing.
  [[nodiscard]] double parallelism() const {
    return span_ns ? static_cast<double>(work_ns) /
                         static_cast<double>(span_ns)
                   : 0.0;
  }

  /// Multi-line footer table (the OSS_PROF=1 shutdown print): one row per
  /// label plus the work/span summary line.  `tag` names the run.
  [[nodiscard]] std::string to_table(const std::string& tag) const;

  /// One-line work/span/parallelism summary (the OSS_STATS=1 app footer).
  [[nodiscard]] std::string span_line(const std::string& tag) const;
};

/// True when OSS_PROF is set to a truthy value — the runtime prints the
/// profile footer table at destruction (mirrors stats_footer_enabled()).
bool prof_footer_enabled();

/// The recording side.  One shard per worker plus one shared "foreign"
/// shard; each shard is a small open-addressing table of per-label counter
/// rows (relaxed atomics).  Workers only ever touch their own shard, so the
/// common case is contention-free; the foreign shard serves wid -1 spawner
/// threads and is merely lock-free.
class ProfSystem {
 public:
  static constexpr std::size_t kSlots = 128; ///< per-shard labels (power of 2)
  static constexpr std::size_t kHistBuckets = ProfileSnapshot::kHistBuckets;

  explicit ProfSystem(std::size_t num_workers);

  ProfSystem(const ProfSystem&) = delete;
  ProfSystem& operator=(const ProfSystem&) = delete;

  /// Same raw tick source as the trace layer — one calibration suffices.
  static std::uint64_t clock() noexcept { return TraceSystem::clock(); }

  /// Interns a label (FNV-1a, identical hash to TraceSystem::intern so
  /// Task::trace_label can serve both).  Called once per spawn.
  std::uint32_t intern(const std::string& label);

  /// Total intern() invocations (same contract as
  /// TraceSystem::intern_calls — flat across a warmed replay loop).
  [[nodiscard]] std::uint64_t intern_calls() const noexcept {
    return intern_calls_.load(std::memory_order_relaxed);
  }

  /// Resolves an interned hash ("(unlabeled)" for 0, "#hex" if unknown).
  [[nodiscard]] std::string label_name(std::uint32_t hash) const;

  /// Records one executed task: all durations in raw ticks.  Lock-free,
  /// allocation-free; called once per retirement from the hot path.
  void record(int wid, std::uint32_t label, std::uint64_t exec_ticks,
              std::uint64_t wait_ticks, std::uint64_t queue_ticks) noexcept;

  /// Offers a completed path as a span candidate.  The fast path is one
  /// relaxed load (losing candidates pay nothing); a new maximum takes a
  /// mutex to update the attribution atomically with the length.
  void note_path(std::uint64_t path_ticks, const PathAttr& attr) noexcept;

  /// Merges every shard into a ProfileSnapshot (ticks → ns).  Cold path.
  [[nodiscard]] ProfileSnapshot snapshot() const;

  /// Current tick→ns conversion rate (diagnostics: task ages in dumps).
  [[nodiscard]] double ns_per_tick() const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> key{0}; ///< label hash; 0 = empty
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> exec_sum{0};
    std::atomic<std::uint64_t> exec_min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> exec_max{0};
    std::atomic<std::uint64_t> wait_sum{0};
    std::atomic<std::uint64_t> queue_sum{0};
    std::atomic<std::uint64_t> hist[kHistBuckets] = {};
  };
  struct alignas(64) Shard {
    Slot slots[kSlots];
    std::atomic<std::uint64_t> overflow{0}; ///< records with no free slot
  };

  [[nodiscard]] std::size_t shard_index(int wid) const noexcept {
    return (wid >= 0 && static_cast<std::size_t>(wid) < num_workers_)
               ? static_cast<std::size_t>(wid)
               : num_workers_; // the shared foreign shard
  }

  std::size_t num_workers_;
  std::unique_ptr<Shard[]> shards_; ///< num_workers_ + 1 entries

  /// Globally unique per instance (same scheme as TraceSystem::epoch_):
  /// intern()'s thread-local cache must not survive into a *new* ProfSystem
  /// allocated at a reused address, or a long-lived foreign spawner thread
  /// would skip registering its labels in the new instance's table and the
  /// snapshot would report them as opaque "#hex" hashes.
  const std::uint64_t epoch_;

  // Calibration origin, same scheme as TraceSystem: (ticks, wall) at
  // construction, rate measured against steady_clock at snapshot.
  std::uint64_t t0_ticks_;
  std::chrono::steady_clock::time_point t0_wall_;

  /// Running span maximum.  Relaxed loads screen candidates; mu_ orders the
  /// (length, attribution) pair for winners and guards the label map.
  std::atomic<std::uint64_t> span_ticks_{0};
  std::atomic<std::uint64_t> intern_calls_{0};
  mutable std::mutex mu_;
  PathAttr span_attr_; ///< attribution of the current span holder (mu_)
  std::unordered_map<std::uint32_t, std::string> labels_; ///< hash → name
};

} // namespace oss
