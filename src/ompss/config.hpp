// config.hpp — runtime configuration.
//
// OmpSs programs are configured through environment variables (the paper
// notes that "OmpSs programs use a static number of cores controlled by an
// environmental variable").  We mirror that: `RuntimeConfig::from_env()`
// reads the `OSS_*` variables below; every knob can also be set
// programmatically before constructing a `Runtime`.
//
//   OSS_NUM_THREADS   total threads (main + workers).  Default: hardware
//                     concurrency.
//   OSS_SCHEDULER     "locality" (default) | "fifo" | "wsteal".
//   OSS_BARRIER       "poll" (default) | "block" — how taskwait/barrier wait.
//   OSS_IDLE          "park" (default) | "spin" | "yield" | "sleep" — idle
//                     workers.
//   OSS_SPIN_ROUNDS   busy-poll iterations before an idle worker
//                     parks/yields/sleeps.
//   OSS_STEAL_TRIES   *ceiling* of victim sweeps per steal attempt
//                     (default 2); the scheduler adapts the actual sweep
//                     count to the observed failed-steal rate.
//   OSS_NUMA          "bind" (default) | "interleave" | "off" — NUMA
//                     placement mode (see docs/numa.md).
//   OSS_TOPOLOGY      "flat" | "numa" | fake spec ("2x4", "0:0-3;1:4-7") —
//                     override hardware-topology discovery.
//   OSS_PIN           "1" to pin each worker thread to its home node's CPU
//                     set (pthread_setaffinity_np), making first-touch
//                     placement reliable.  Degrades to unpinned — one
//                     warning line, never an abort — when the process cpu
//                     mask does not cover the topology (cpuset-restricted
//                     containers).
//   OSS_PRESSURE      home-queue depth at which `.affinity_auto()` /
//                     inherited placements widen to the global tier while
//                     another node has parked workers (default 8; 0
//                     disables the feedback).
//   OSS_DEP_SHARDS    power-of-two number of dependency-domain shards
//                     (default 8).  Concurrent spawners registering
//                     disjoint regions lock different shards; 1 restores
//                     the single-lock domain of earlier releases
//                     (bit-exact edge sets, see docs/dependencies.md).
//   OSS_RECORD_GRAPH  "1" to record the task graph for DOT export.
//   OSS_TRACE         "1" to record an execution trace (Chrome JSON).
//
// Unknown policy names fail fast with a message listing the valid options.
#pragma once

#include <cstddef>
#include <string>

namespace oss {

class Topology;

/// Scheduling policy for ready tasks (Section 4 of the paper credits the
/// locality-aware policy for the `ray-rot` result).
enum class SchedulerPolicy {
  Fifo,     ///< single global FIFO queue; no locality, no stealing
  Locality, ///< tasks unblocked by a completion run next on the same worker
  WorkStealing, ///< per-worker LIFO deques with randomized stealing
};

/// How waiting threads (taskwait / barriers) behave while work is pending.
enum class WaitPolicy {
  Polling,  ///< spin and execute ready tasks (paper's default; fast, cores
            ///< stay fully loaded)
  Blocking, ///< sleep on a condition variable (paper's Pthreads-style barrier)
};

/// How idle *workers* behave between tasks.  The paper (§4) observes that
/// because the OmpSs runtime polls, "all used cores are always fully loaded
/// even if there is insufficient work", hurting system responsiveness and
/// power efficiency — these policies span that trade-off space:
enum class IdlePolicy {
  Spin,  ///< busy-poll continuously (the paper's observed behaviour)
  Yield, ///< poll but yield the CPU between rounds (oversubscribe-safe)
  Sleep, ///< back off to short sleeps when idle (power-friendly, adds latency)
  Park,  ///< park on an eventcount after a short spin; enqueues wake exactly
         ///< one parked worker, stop wakes all (default: precise wakeup, no
         ///< idle CPU burn, no sleep-loop latency)
};

/// NUMA placement mode (docs/numa.md).  On single-node machines every mode
/// behaves identically (placement is a no-op).
enum class NumaMode {
  Bind,       ///< bind per-worker scheduler state to the owning worker's
              ///< node and honor task affinity hints (default)
  Interleave, ///< honor affinity hints but leave runtime state interleaved
              ///< (first-touch); app helpers allocate interleaved by default
  Off,        ///< ignore topology entirely: flat scheduling, no binding
};

const char* to_string(SchedulerPolicy p) noexcept;
const char* to_string(WaitPolicy p) noexcept;
const char* to_string(IdlePolicy p) noexcept;
const char* to_string(NumaMode m) noexcept;

/// Parses a policy name; throws std::invalid_argument on unknown names.
SchedulerPolicy parse_scheduler_policy(const std::string& name);
WaitPolicy parse_wait_policy(const std::string& name);
IdlePolicy parse_idle_policy(const std::string& name);
NumaMode parse_numa_mode(const std::string& name);

/// Complete configuration of a `Runtime`.
struct RuntimeConfig {
  /// Total number of threads executing tasks, including the thread that
  /// constructs the runtime (which executes tasks while it waits).  Must be
  /// >= 1; `num_threads == 1` degenerates to lazy sequential execution at
  /// wait points.
  std::size_t num_threads = 0; // 0 = use hardware concurrency

  SchedulerPolicy scheduler = SchedulerPolicy::Locality;
  WaitPolicy wait_policy = WaitPolicy::Polling;
  IdlePolicy idle = IdlePolicy::Park;

  /// Busy-poll iterations before an idle worker parks/yields/sleeps.
  std::size_t spin_rounds = 64;

  /// Ceiling of full sweeps over sibling deques a pick() makes before
  /// reporting a failed steal (OSS_STEAL_TRIES; must be >= 1).  The actual
  /// per-worker sweep count adapts downward with the observed failed-steal
  /// rate and recovers on successful steals.
  std::size_t steal_tries = 2;

  /// NUMA placement mode (OSS_NUMA).
  NumaMode numa = NumaMode::Bind;

  /// Topology override (OSS_TOPOLOGY): "" = sysfs discovery with a flat
  /// fallback, "flat", "numa", or a fake spec like "2x4" / "0:0-3;1:4-7"
  /// (validated by Topology::detect at runtime construction).
  std::string topology;

  /// Pin each worker thread to the CPU set of its home node (OSS_PIN).
  /// Only takes effect on multi-node topologies; workers whose node CPUs
  /// fall outside the process affinity mask stay unpinned (one warning
  /// line, never an abort).
  bool pin = false;

  /// Home-queue pressure feedback threshold (OSS_PRESSURE): when a node's
  /// ready queue holds at least this many tasks while another node has
  /// parked workers, soft (auto/inherited) placements temporarily widen to
  /// the global tier.  0 disables the feedback.
  std::size_t pressure = 8;

  /// Dependency-domain shard count (OSS_DEP_SHARDS): declared address
  /// ranges hash to this many independently-locked interval maps, so
  /// concurrent spawners touching disjoint regions register without
  /// contending.  Must be a power of two in [1, 256]; 1 collapses to the
  /// classic single-lock domain (bit-exact edge sets — the escape hatch).
  /// See docs/dependencies.md for the hashing and lock-ordering protocol.
  std::size_t dep_shards = 8;

  /// Record task-graph nodes/edges for `Runtime::export_graph_dot()`.
  bool record_graph = false;

  /// Record per-task execution events for `Runtime::export_trace_json()`.
  bool record_trace = false;

  /// Resolves `num_threads == 0` to the hardware concurrency (min 1).
  [[nodiscard]] std::size_t resolved_threads() const noexcept;

  /// The topology a Runtime built from this config schedules against:
  /// flat when `numa == Off` (placement structurally dissolved), otherwise
  /// `Topology::detect(topology)`.  The single source of the rule — the
  /// Runtime constructor and diagnostics (table1's NUMA header) share it.
  [[nodiscard]] Topology resolved_topology() const;

  /// Reads OSS_* environment variables; unset variables keep defaults.
  /// Malformed values throw std::invalid_argument.
  static RuntimeConfig from_env();

  /// Convenience: default config with an explicit thread count.
  static RuntimeConfig with_threads(std::size_t n) {
    RuntimeConfig c;
    c.num_threads = n;
    return c;
  }
};

} // namespace oss
