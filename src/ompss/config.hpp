// config.hpp — runtime configuration.
//
// OmpSs programs are configured through environment variables (the paper
// notes that "OmpSs programs use a static number of cores controlled by an
// environmental variable").  We mirror that: `RuntimeConfig::from_env()`
// reads the `OSS_*` variables below; every knob can also be set
// programmatically before constructing a `Runtime`.
//
//   OSS_NUM_THREADS   total threads (main + workers).  Default: hardware
//                     concurrency.
//   OSS_SCHEDULER     "locality" (default) | "fifo" | "wsteal".
//   OSS_BARRIER       "poll" (default) | "block" — how taskwait/barrier wait.
//   OSS_IDLE          "park" (default) | "spin" | "yield" | "sleep" — idle
//                     workers.
//   OSS_SPIN_ROUNDS   busy-poll iterations before an idle worker
//                     parks/yields/sleeps.
//   OSS_STEAL_TRIES   *ceiling* of victim sweeps per steal attempt
//                     (default 2); the scheduler adapts the actual sweep
//                     count to the observed failed-steal rate.
//   OSS_NUMA          "bind" (default) | "interleave" | "off" — NUMA
//                     placement mode (see docs/numa.md).
//   OSS_TOPOLOGY      "flat" | "numa" | fake spec ("2x4", "0:0-3;1:4-7") —
//                     override hardware-topology discovery.
//   OSS_PIN           "node" (or "1") to pin each worker thread to its home
//                     node's CPU set, "compact" / "scatter" for per-worker
//                     single-CPU layouts (pthread_setaffinity_np), making
//                     first-touch placement reliable.  Degrades to unpinned
//                     — one warning line, never an abort — when the process
//                     cpu mask does not cover the topology
//                     (cpuset-restricted containers).
//   OSS_PRESSURE      home-queue depth at which `.affinity_auto()` /
//                     inherited placements widen to the global tier while
//                     another node has parked workers (default 8; 0
//                     disables the feedback).
//   OSS_DEP_SHARDS    power-of-two number of dependency-domain shards
//                     (default 8).  Concurrent spawners registering
//                     disjoint regions lock different shards; 1 restores
//                     the single-lock domain of earlier releases
//                     (bit-exact edge sets, see docs/dependencies.md).
//   OSS_RECORD_GRAPH  "1" to record the task graph for DOT export.
//   OSS_TRACE         "off" | "exec" | "full" — execution tracing into the
//                     per-worker ring buffers (docs/observability.md).
//                     "exec" records one event per executed task (the
//                     classic TraceRecorder view), "full" the whole task
//                     lifecycle (spawn/ready/run plus steal, park/unpark,
//                     overflow, dependency edges).  Boolean spellings keep
//                     working: "1"/"true" = exec, "0"/"false" = off.
//   OSS_TRACE_OUT     path: export the trace when the runtime shuts down
//                     (".prv" suffix = Paraver, anything else = Chrome
//                     trace-event JSON).
//   OSS_TRACE_BUF     per-thread trace ring capacity in events (rounded up
//                     to a power of two; default 32768).  When a ring fills
//                     between drains, events drop and `trace_dropped`
//                     counts them — emission never blocks.
//   OSS_STATS_EVERY_MS period of the optional collector thread: every N ms
//                     it drains the trace rings and prints a StatsSnapshot
//                     delta line to stderr.  0 (default) = no collector.
//   OSS_PROF          "1" to collect per-label task profiles and the
//                     work/span critical path; a sorted profile table is
//                     printed at shutdown (docs/observability.md).
//   OSS_PROF_EVERY_MS period of periodic profile delta lines on the
//                     collector thread.  0 (default) = footer only.
//   OSS_WATCHDOG      health-watchdog interval in ms: the collector thread
//                     checks for no-progress intervals (tasks in flight,
//                     zero retirements) and dumps queue depths, parked
//                     workers and the oldest in-flight tasks to stderr;
//                     the same dump answers SIGUSR1.  0 (default) = off.
//   OSS_POOL          "on" (default) | "off" — allocation recycling
//                     (docs/memory.md): intrusive task pooling, pooled
//                     dependency-map nodes.  "off" restores per-spawn
//                     `new`/`delete` with bit-exact dependency semantics —
//                     the escape hatch and the A/B baseline.
//
// Unknown policy names fail fast with a message listing the valid options.
#pragma once

#include <cstddef>
#include <string>

#include "ompss/task_pool.hpp" // pool::enabled_by_default (OSS_POOL)

namespace oss {

class Topology;

/// Scheduling policy for ready tasks (Section 4 of the paper credits the
/// locality-aware policy for the `ray-rot` result).
enum class SchedulerPolicy {
  Fifo,     ///< single global FIFO queue; no locality, no stealing
  Locality, ///< tasks unblocked by a completion run next on the same worker
  WorkStealing, ///< per-worker LIFO deques with randomized stealing
};

/// How waiting threads (taskwait / barriers) behave while work is pending.
enum class WaitPolicy {
  Polling,  ///< spin and execute ready tasks (paper's default; fast, cores
            ///< stay fully loaded)
  Blocking, ///< sleep on a condition variable (paper's Pthreads-style barrier)
};

/// How idle *workers* behave between tasks.  The paper (§4) observes that
/// because the OmpSs runtime polls, "all used cores are always fully loaded
/// even if there is insufficient work", hurting system responsiveness and
/// power efficiency — these policies span that trade-off space:
enum class IdlePolicy {
  Spin,  ///< busy-poll continuously (the paper's observed behaviour)
  Yield, ///< poll but yield the CPU between rounds (oversubscribe-safe)
  Sleep, ///< back off to short sleeps when idle (power-friendly, adds latency)
  Park,  ///< park on an eventcount after a short spin; enqueues wake exactly
         ///< one parked worker, stop wakes all (default: precise wakeup, no
         ///< idle CPU burn, no sleep-loop latency)
};

/// NUMA placement mode (docs/numa.md).  On single-node machines every mode
/// behaves identically (placement is a no-op).
enum class NumaMode {
  Bind,       ///< bind per-worker scheduler state to the owning worker's
              ///< node and honor task affinity hints (default)
  Interleave, ///< honor affinity hints but leave runtime state interleaved
              ///< (first-touch); app helpers allocate interleaved by default
  Off,        ///< ignore topology entirely: flat scheduling, no binding
};

/// Execution-tracing mode (OSS_TRACE, docs/observability.md).
enum class TraceMode {
  Off,  ///< no tracing, zero overhead
  Exec, ///< one run-span event per executed task (classic TraceRecorder view)
  Full, ///< full lifecycle: spawn/ready/run + steal, park/unpark, overflow
        ///< placements, dependency edges — still lock-free, drop-on-full
};

/// Worker→CPU pinning layout (OSS_PIN).
enum class PinMode {
  Off,     ///< no pinning
  Node,    ///< each worker pinned to its home node's whole CPU set; dissolves
           ///< on single-node topologies (classic OSS_PIN=1)
  Compact, ///< worker i pinned to the i-th CPU in node-major enumeration —
           ///< fills one node before spilling to the next
  Scatter, ///< worker i pinned to node (i mod nodes) — round-robins workers
           ///< across nodes, one CPU each
};

const char* to_string(SchedulerPolicy p) noexcept;
const char* to_string(WaitPolicy p) noexcept;
const char* to_string(IdlePolicy p) noexcept;
const char* to_string(NumaMode m) noexcept;
const char* to_string(TraceMode m) noexcept;
const char* to_string(PinMode m) noexcept;

/// Parses a policy name; throws std::invalid_argument on unknown names.
SchedulerPolicy parse_scheduler_policy(const std::string& name);
WaitPolicy parse_wait_policy(const std::string& name);
IdlePolicy parse_idle_policy(const std::string& name);
NumaMode parse_numa_mode(const std::string& name);
TraceMode parse_trace_mode(const std::string& name);
PinMode parse_pin_mode(const std::string& name);

/// Parses a non-negative integer env knob (`name` only labels the error).
/// Strict: plain decimal digits, nothing else — a leading '-' must throw,
/// not wrap through strtoull to ~2^64, and '+'/whitespace/trailing junk are
/// rejected the same way.  Every OSS_* integer knob (including the
/// OSS_SERVICE_* family) goes through this.
std::size_t parse_env_size(const char* name, const char* value);

/// Parses a boolean env knob (1/true/yes/on, 0/false/no/off).
bool parse_env_bool(const char* name, const char* value);

/// Complete configuration of a `Runtime`.
struct RuntimeConfig {
  /// Total number of threads executing tasks, including the thread that
  /// constructs the runtime (which executes tasks while it waits).  Must be
  /// >= 1; `num_threads == 1` degenerates to lazy sequential execution at
  /// wait points.
  std::size_t num_threads = 0; // 0 = use hardware concurrency

  SchedulerPolicy scheduler = SchedulerPolicy::Locality;
  WaitPolicy wait_policy = WaitPolicy::Polling;
  IdlePolicy idle = IdlePolicy::Park;

  /// Busy-poll iterations before an idle worker parks/yields/sleeps.
  std::size_t spin_rounds = 64;

  /// Ceiling of full sweeps over sibling deques a pick() makes before
  /// reporting a failed steal (OSS_STEAL_TRIES; must be >= 1).  The actual
  /// per-worker sweep count adapts downward with the observed failed-steal
  /// rate and recovers on successful steals.
  std::size_t steal_tries = 2;

  /// NUMA placement mode (OSS_NUMA).
  NumaMode numa = NumaMode::Bind;

  /// Topology override (OSS_TOPOLOGY): "" = sysfs discovery with a flat
  /// fallback, "flat", "numa", or a fake spec like "2x4" / "0:0-3;1:4-7"
  /// (validated by Topology::detect at runtime construction).
  std::string topology;

  /// Pin each worker thread to the CPU set of its home node (OSS_PIN).
  /// Legacy boolean view of `pin_mode`; true is equivalent to
  /// PinMode::Node.  Workers whose target CPUs fall outside the process
  /// affinity mask stay unpinned (one warning line, never an abort).
  bool pin = false;

  /// Pinning layout (OSS_PIN=node|compact|scatter).  When Off, the legacy
  /// `pin` bool decides (true = Node); see `resolved_pin_mode()`.
  PinMode pin_mode = PinMode::Off;

  /// Home-queue pressure feedback threshold (OSS_PRESSURE): when a node's
  /// ready queue holds at least this many tasks while another node has
  /// parked workers, soft (auto/inherited) placements temporarily widen to
  /// the global tier.  0 disables the feedback.
  std::size_t pressure = 8;

  /// Dependency-domain shard count (OSS_DEP_SHARDS): declared address
  /// ranges hash to this many independently-locked interval maps, so
  /// concurrent spawners touching disjoint regions register without
  /// contending.  Must be a power of two in [1, 256]; 1 collapses to the
  /// classic single-lock domain (bit-exact edge sets — the escape hatch).
  /// See docs/dependencies.md for the hashing and lock-ordering protocol.
  std::size_t dep_shards = 8;

  /// Allocation recycling (OSS_POOL, docs/memory.md): pooled Task objects
  /// with intrusive refcounts and pooled dependency-map nodes, making the
  /// warmed spawn→execute→retire cycle allocation-free.  false restores
  /// plain `new`/`delete` per task (bit-exact dependency semantics).  The
  /// default is environment-sensitive so suites constructing RuntimeConfig
  /// directly still honor an OSS_POOL=off sweep.
  bool pool = pool::enabled_by_default();

  /// Record task-graph nodes/edges for `Runtime::export_graph_dot()`.
  bool record_graph = false;

  /// Record per-task execution events for `Runtime::export_trace_json()`.
  /// Legacy boolean view of `trace_mode`; true is equivalent to
  /// TraceMode::Exec.
  bool record_trace = false;

  /// Tracing mode (OSS_TRACE=off|exec|full).  When Off, the legacy
  /// `record_trace` bool decides (true = Exec); see `resolved_trace_mode()`.
  TraceMode trace_mode = TraceMode::Off;

  /// Per-thread trace ring capacity in events (OSS_TRACE_BUF; rounded up to
  /// a power of two by the ring).  Sized so a spawn burst between two
  /// quiescent points fits; overflow drops events and bumps `trace_dropped`.
  std::size_t trace_buffer = 32768;

  /// Export the trace here when the runtime is destroyed (OSS_TRACE_OUT).
  /// ".prv" suffix selects the Paraver format (a matching ".row"/".pcf"
  /// pair is written next to it), anything else Chrome trace-event JSON.
  /// Empty = no automatic export.
  std::string trace_out;

  /// Period in milliseconds of the optional stats/trace collector thread
  /// (OSS_STATS_EVERY_MS): every period it drains the trace rings and
  /// prints a StatsSnapshot delta line to stderr.  0 = no collector.
  std::size_t stats_every_ms = 0;

  /// Collect per-label task profiles and the work/span critical path
  /// (OSS_PROF, docs/observability.md).  When set, `Runtime::profile()`
  /// returns live data and the OSS_PROF=1 footer table prints at shutdown.
  bool prof = false;

  /// Period in milliseconds of periodic profile delta lines on the
  /// collector thread (OSS_PROF_EVERY_MS).  Implies profile collection.
  /// 0 = footer only.
  std::size_t prof_every_ms = 0;

  /// Health-watchdog interval in milliseconds (OSS_WATCHDOG): the collector
  /// thread flags intervals with tasks in flight but zero retirements and
  /// dumps runtime state (`Runtime::dump_health`); SIGUSR1 triggers the
  /// same dump on demand.  Implies profile collection (the dump reports
  /// task ages from the profiling timestamps).  0 = off.
  std::size_t watchdog_ms = 0;

  /// Resolves `num_threads == 0` to the hardware concurrency (min 1).
  [[nodiscard]] std::size_t resolved_threads() const noexcept;

  /// Effective tracing mode: `trace_mode` when set, else the legacy
  /// `record_trace` bool mapped to Exec.
  [[nodiscard]] TraceMode resolved_trace_mode() const noexcept {
    if (trace_mode != TraceMode::Off) return trace_mode;
    return record_trace ? TraceMode::Exec : TraceMode::Off;
  }

  /// Effective pinning layout: `pin_mode` when set, else the legacy `pin`
  /// bool mapped to Node.
  [[nodiscard]] PinMode resolved_pin_mode() const noexcept {
    if (pin_mode != PinMode::Off) return pin_mode;
    return pin ? PinMode::Node : PinMode::Off;
  }

  /// The topology a Runtime built from this config schedules against:
  /// flat when `numa == Off` (placement structurally dissolved), otherwise
  /// `Topology::detect(topology)`.  The single source of the rule — the
  /// Runtime constructor and diagnostics (table1's NUMA header) share it.
  [[nodiscard]] Topology resolved_topology() const;

  /// Reads OSS_* environment variables; unset variables keep defaults.
  /// Malformed values throw std::invalid_argument.
  static RuntimeConfig from_env();

  /// Convenience: default config with an explicit thread count.
  static RuntimeConfig with_threads(std::size_t n) {
    RuntimeConfig c;
    c.num_threads = n;
    return c;
  }
};

} // namespace oss
