// topology.hpp — hardware-topology discovery for locality placement.
//
// The paper's runtime keeps ready tasks close to the data they touch; doing
// that on a real machine needs to know which cores share a memory node.
// `Topology` answers exactly that: the machine as a list of NUMA nodes, each
// owning a set of CPUs.  Discovery sources, in order of precedence:
//
//   1. an explicit spec string (the `OSS_TOPOLOGY` override, forwarded via
//      `RuntimeConfig::topology`) — either the shorthand `"NxM"` (N nodes of
//      M cpus) or the full form `"0:0-3;1:4-7"` (node:cpulist pairs, cpulist
//      in the kernel's `0-3,8,10-11` syntax).  Malformed specs throw.
//   2. `"flat"` — force the single-node fallback (placement disabled).
//   3. `"numa"` or empty — read `/sys/devices/system/node/node*/cpulist`.
//      Any read or parse problem degrades to the flat fallback: topology
//      discovery must never stop a runtime from starting.
//
// Node identifiers used throughout the runtime (`TaskBuilder::affinity`,
// `Task::home_node`, scheduler routing) are *dense indices* `0..num_nodes-1`
// in ascending OS-node order; `TopologyNode::os_id` keeps the kernel's
// number for diagnostics and mbind calls.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oss {

/// One memory node: a dense runtime index, the kernel's node number, and the
/// CPUs attached to it (ascending).
struct TopologyNode {
  int id = 0;    ///< dense index used by the runtime (0..num_nodes-1)
  int os_id = 0; ///< kernel node number (sysfs `nodeN`)
  std::vector<int> cpus;
};

class Topology {
 public:
  /// Default: a single node with no known CPUs (the "blind" topology the
  /// scheduler used before this subsystem existed).
  Topology() : Topology(flat(0)) {}

  /// Single node owning cpus 0..ncpus-1 (placement-free fallback).
  static Topology flat(std::size_t ncpus);

  /// Parses a spec string: `"NxM"` shorthand or `"osid:cpulist;..."` full
  /// form.  Throws std::invalid_argument (message shows both forms) on
  /// malformed input, duplicate nodes/cpus, or an empty topology.
  static Topology from_spec(const std::string& spec);

  /// Reads `root/node*/cpulist` (default: the real sysfs node directory).
  /// Returns the flat fallback on any error — missing directory, no node
  /// entries, unreadable or malformed cpulist files.
  static Topology from_sysfs(const std::string& root = kSysfsNodeRoot);

  /// Resolves a `RuntimeConfig::topology` / `OSS_TOPOLOGY` value:
  ///   ""      — sysfs discovery with flat fallback
  ///   "flat"  — flat fallback, placement disabled
  ///   "numa"  — sysfs discovery with flat fallback
  ///   spec    — from_spec (throws on malformed input)
  static Topology detect(const std::string& value = {});

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool single_node() const noexcept { return nodes_.size() <= 1; }
  [[nodiscard]] std::size_t num_cpus() const noexcept;
  [[nodiscard]] const std::vector<TopologyNode>& nodes() const noexcept {
    return nodes_;
  }

  /// Dense node index owning `cpu`, or -1 when the cpu is unknown.
  [[nodiscard]] int node_of_cpu(int cpu) const noexcept;

  /// Dense node index a worker thread should consider home.  Workers are
  /// spread block-wise and proportionally to node CPU counts: with 2 nodes
  /// of 4 cpus and 4 workers, workers {0,1} map to node 0 and {2,3} to
  /// node 1 — adjacent worker ids share a socket, matching the scheduler's
  /// same-socket victim sweeps.  Always a valid index (0 when the topology
  /// has a single node or no known cpus).
  [[nodiscard]] int node_of_worker(int worker,
                                   std::size_t num_workers) const noexcept;

  /// Renders the topology in the full spec form (parseable by from_spec).
  [[nodiscard]] std::string spec() const;

  static constexpr const char* kSysfsNodeRoot = "/sys/devices/system/node";

 private:
  explicit Topology(std::vector<TopologyNode> nodes);

  std::vector<TopologyNode> nodes_;
};

} // namespace oss
