// chase_lev.hpp — lock-free work-stealing deque (Chase & Lev, SPAA'05).
//
// One *owner* thread pushes and takes at the bottom (LIFO — the hot end);
// any number of *thief* threads steal at the top (FIFO — the cold end).
// Owner operations are wait-free except when the buffer grows; steals are
// lock-free (a thief fails only when another thief or the owner won the
// element).
//
// Memory-order rationale (see docs/scheduler.md for the long version):
//
//   * `push` publishes the element with a release store to `bottom_`; a
//     thief's acquire/seq_cst load of `bottom_` therefore observes the slot
//     write that preceded it.
//   * `take` and `steal` race for the last element.  The classic algorithm
//     separates the owner's `bottom_` store from its `top_` load with a
//     seq_cst *fence*; ThreadSanitizer does not model standalone fences, so
//     we put the ordering on the accesses themselves: the owner's
//     `bottom_` store and `top_` load are seq_cst, as are the thief's
//     `top_`/`bottom_` loads and the CAS.  The single total order over
//     seq_cst operations restores the Dekker-style store/load guarantee
//     (owner sees the thief's CAS, or the thief sees the decremented
//     bottom — never neither).
//   * Buffer slots are `std::atomic<T>` accessed relaxed: a doomed thief may
//     read a slot concurrently with an owner overwrite after wrap-around;
//     the value is discarded when the CAS fails, but the access must still
//     be a data-race-free read.
//   * Grown buffers are retired to an owner-only list and freed in the
//     destructor: a stale thief may still be reading the old buffer, and
//     the element values for still-valid indices are identical in both.
//
// T must be trivially copyable (the scheduler stores raw `Task*`; the owning
// reference parks inside the task itself — see Task::anchor_queue_ref).
//
// A deque may be bound to a NUMA node (`numa_node >= 0`): ring buffers are
// then allocated through numa_raw_alloc so the owner's hot push/take slots
// live on the owner's memory node.  Binding is allocation-only — it changes
// nothing about the concurrency protocol above.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ompss/numa_alloc.hpp"

namespace oss {

template <class T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ChaseLevDeque elements must be trivially copyable");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 256,
                         int numa_node = -1)
      : numa_node_(numa_node),
        buffer_(new Buffer(round_up_pow2(initial_capacity), numa_node)) {
    retired_.reserve(8);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner only: pushes at the bottom (hot end).  Grows when full.
  void push(T x) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(x, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pops at the bottom (most recently pushed).  Returns T{}
  /// (null for pointers) when empty.
  T take() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was empty; undo the decrement.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return T{};
    }
    T x = buf->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves for it via the top CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        x = T{}; // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  /// Any thread: steals at the top (oldest element).  Returns T{} when the
  /// deque is empty or the element was lost to a concurrent take/steal.
  T steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return T{};
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T x = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return T{}; // lost the race; the value read above is discarded
    }
    return x;
  }

  /// Racy size estimate (idle heuristics / tests only).
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Buffer {
    Buffer(std::size_t cap, int numa_node)
        : capacity(cap),
          mask(cap - 1),
          slots(static_cast<std::atomic<T>*>(
              numa_raw_alloc(cap * sizeof(std::atomic<T>), numa_node))) {
      for (std::size_t i = 0; i < cap; ++i) new (&slots[i]) std::atomic<T>{};
    }
    ~Buffer() {
      // std::atomic<T> of a trivially-copyable T is trivially destructible;
      // releasing the pages is all that is needed.
      numa_raw_free(slots, capacity * sizeof(std::atomic<T>));
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    std::atomic<T>& slot(std::int64_t i) {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::atomic<T>* const slots;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2, numa_node_);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old); // thieves may still read it; freed in the dtor
    return bigger;
  }

  const int numa_node_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_; // owner-only
};

} // namespace oss
