// access.hpp — data-access annotations for task spawning.
//
// OmpSs tasks declare which memory their arguments read and write using
// `input`, `output`, and `inout` clauses; the runtime derives inter-task
// dependencies from overlaps between those regions.  This header provides the
// library-level equivalent of those clauses: `oss::in`, `oss::out`, and
// `oss::inout` build `Access` descriptors from objects, pointers+counts, or
// raw byte regions.
//
// Semantics (mirroring the paper and the wider OmpSs/StarSs model):
//   * `in`    — the task reads the region; creates a RAW edge from the last
//               writer of any overlapping bytes.
//   * `out`   — the task overwrites the region; creates WAR edges from all
//               readers since the last write and a WAW edge from the last
//               writer.  NOTE: the runtime performs *no automatic renaming*
//               (Section 3 of the paper), so `out` still serializes against
//               prior readers/writers.  Use manual renaming (circular
//               buffers) to expose pipeline parallelism.
//   * `inout` — both of the above.
//   * `commutative` — order-free mutual exclusion: tasks in a consecutive
//               commutative group on the same region may execute in any
//               order but never concurrently (the runtime serializes them
//               with a per-region lock).  The group collectively acts as a
//               writer towards earlier and later accesses.  Models OmpSs's
//               `commutative` clause (e.g. accumulating into a histogram).
//   * `concurrent` — tasks in a consecutive concurrent group may run in any
//               order AND concurrently; they are responsible for their own
//               synchronization (atomics, critical).  The group is ordered
//               against earlier/later regular accesses like a writer.
//               Models OmpSs's `concurrent` clause (e.g. atomic reductions).
//
// An access is a half-open byte interval [begin, end).  Zero-length accesses
// are legal and are ignored by the dependency tracker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace oss {

/// Direction of a task's access to a memory region.
enum class Mode : std::uint8_t {
  In = 0,          ///< read-only (OmpSs `input`)
  Out = 1,         ///< write-only (OmpSs `output`)
  InOut = 2,       ///< read-modify-write (OmpSs `inout`)
  Commutative = 3, ///< order-free, mutually exclusive (OmpSs `commutative`)
  Concurrent = 4,  ///< order-free, concurrent (OmpSs `concurrent`)
};

/// Returns a short human-readable name ("in", "out", ...).
const char* mode_name(Mode m) noexcept;

/// True for modes that behave as writers towards other accesses.
constexpr bool mode_writes(Mode m) noexcept { return m != Mode::In; }

/// A declared access: a half-open byte interval plus a direction.
struct Access {
  std::uintptr_t begin = 0; ///< first byte of the region
  std::uintptr_t end = 0;   ///< one past the last byte
  Mode mode = Mode::In;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin >= end; }
  [[nodiscard]] bool overlaps(const Access& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  friend bool operator==(const Access&, const Access&) = default;
};

/// Builds an access over an arbitrary byte region.
inline Access region(const void* p, std::size_t bytes, Mode m) noexcept {
  const auto b = reinterpret_cast<std::uintptr_t>(p);
  return Access{b, b + bytes, m};
}

/// Read access to a single object.  The region is the object representation
/// (`sizeof(T)` bytes); for containers this covers the header only, not the
/// heap storage — use the pointer+count overloads for element data.
template <class T>
Access in(const T& x) noexcept {
  return region(&x, sizeof(T), Mode::In);
}

/// Write access to a single object (see `in` for the region caveat).
template <class T>
Access out(T& x) noexcept {
  return region(&x, sizeof(T), Mode::Out);
}

/// Read-modify-write access to a single object.
template <class T>
Access inout(T& x) noexcept {
  return region(&x, sizeof(T), Mode::InOut);
}

/// Commutative access to a single object (any order, one at a time).
template <class T>
Access commutative(T& x) noexcept {
  return region(&x, sizeof(T), Mode::Commutative);
}

/// Concurrent access to a single object (any order, simultaneously; the
/// task body must synchronize its own updates).
template <class T>
Access concurrent(T& x) noexcept {
  return region(&x, sizeof(T), Mode::Concurrent);
}

/// Read access to `count` contiguous elements starting at `p`.
template <class T>
Access in(const T* p, std::size_t count) noexcept {
  return region(p, count * sizeof(T), Mode::In);
}

/// Write access to `count` contiguous elements starting at `p`.
template <class T>
Access out(T* p, std::size_t count) noexcept {
  return region(p, count * sizeof(T), Mode::Out);
}

/// Read-modify-write access to `count` contiguous elements starting at `p`.
template <class T>
Access inout(T* p, std::size_t count) noexcept {
  return region(p, count * sizeof(T), Mode::InOut);
}

/// Commutative access to `count` contiguous elements starting at `p`.
template <class T>
Access commutative(T* p, std::size_t count) noexcept {
  return region(p, count * sizeof(T), Mode::Commutative);
}

/// Concurrent access to `count` contiguous elements starting at `p`.
template <class T>
Access concurrent(T* p, std::size_t count) noexcept {
  return region(p, count * sizeof(T), Mode::Concurrent);
}

/// Span overloads (cover the elements viewed by the span).
template <class T>
Access in(std::span<const T> s) noexcept {
  return in(s.data(), s.size());
}
template <class T>
Access out(std::span<T> s) noexcept {
  return out(s.data(), s.size());
}
template <class T>
Access inout(std::span<T> s) noexcept {
  return inout(s.data(), s.size());
}
template <class T>
Access commutative(std::span<T> s) noexcept {
  return commutative(s.data(), s.size());
}
template <class T>
Access concurrent(std::span<T> s) noexcept {
  return concurrent(s.data(), s.size());
}

/// The access list attached to a task at spawn time.
using AccessList = std::vector<Access>;

} // namespace oss
