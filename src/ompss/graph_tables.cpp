#include "ompss/graph_tables.hpp"

#include <sstream>
#include <unordered_set>

namespace oss {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* edge_style(DepKind k) {
  switch (k) {
    case DepKind::Raw: return "color=black";
    case DepKind::War: return "color=red,style=dashed";
    case DepKind::Waw: return "color=blue,style=dashed";
    case DepKind::Explicit: return "color=darkgreen,style=dotted";
  }
  return "";
}

} // namespace

std::string GraphTables::to_dot() const {
  // Critical-path chain: start at the node carrying the largest recorded
  // path weight (the span's endpoint) and walk the crit_pred links back to
  // a root.  Weights come from the runtime's on_finished (oss::prof);
  // graphs recorded without profiling have no weights and no highlight.
  std::unordered_set<std::uint64_t> on_path;
  {
    const Node* tip = nullptr;
    for (const Node& n : nodes) {
      if (n.path_weight > 0 && (tip == nullptr || n.path_weight > tip->path_weight)) {
        tip = &n;
      }
    }
    std::uint64_t cursor = tip != nullptr ? tip->id : 0;
    while (cursor != 0 && on_path.insert(cursor).second) {
      const auto it = index.find(cursor);
      cursor = it != index.end() ? nodes[it->second].crit_pred : 0;
    }
  }

  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n";
  for (const Node& n : nodes) {
    os << "  t" << n.id << " [label=\"#" << n.id;
    if (!n.label.empty()) os << "\\n" << escape(n.label);
    os << "\"";
    if (on_path.count(n.id) != 0) {
      os << ",style=filled,fillcolor=\"#ffd0d0\",color=crimson,penwidth=2";
    }
    os << "];\n";
  }
  for (const Edge& e : edges) {
    // An edge lies on the critical path when both ends do and the target
    // names the source as the predecessor its longest path arrived through.
    bool crit = false;
    if (on_path.count(e.from) != 0 && on_path.count(e.to) != 0) {
      const auto it = index.find(e.to);
      crit = it != index.end() && nodes[it->second].crit_pred == e.from;
    }
    os << "  t" << e.from << " -> t" << e.to << " [" << edge_style(e.kind);
    if (crit) os << ",color=crimson,penwidth=2";
    os << ",label=\"" << to_string(e.kind) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

} // namespace oss
