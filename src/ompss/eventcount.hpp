// eventcount.hpp — park/unpark gate for idle workers.
//
// An eventcount decouples "is there work?" from "how do I sleep?": the
// waiter registers interest (prepare_wait), re-checks the work queues, and
// only then commits to sleeping; a producer that enqueues work afterwards is
// guaranteed to either be seen by the re-check or to wake the sleeper.
//
// Protocol (worker):                      Protocol (producer):
//   key = ec.prepare_wait();                enqueue(task);
//   if (work available) ec.cancel_wait();   ec.notify_one();
//   else                ec.wait(key);
//
// Correctness hinges on a Dekker-style store/load pairing: the waiter's
// `waiters_` increment must be visible to a producer that bumped the epoch,
// or the producer's epoch bump must be visible to the waiter's key/re-check.
// All four accesses are seq_cst so the single total order forbids the
// "neither sees the other" interleaving (lost wakeup).  The condition
// variable is only the sleeping primitive underneath; notify_one() touches
// the mutex solely to close the race against a waiter between its predicate
// check and the actual cv sleep.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace oss {

class EventCount {
 public:
  /// Registers the caller as a potential waiter and returns the ticket to
  /// pass to wait().  Must be paired with exactly one wait() or
  /// cancel_wait().
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Aborts a prepared wait (work was found during the re-check).
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Sleeps until the epoch moves past `key`.  Returns immediately if a
  /// notify already happened since prepare_wait().
  void wait(std::uint64_t key) {
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_seq_cst) != key;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wakes one parked waiter.  Returns true if someone may have been
  /// sleeping (i.e. a signal was actually issued).
  bool notify_one() { return notify_many(1) != 0; }

  /// Batch wakeup: wakes up to `n` parked waiters in ONE epoch bump —
  /// a burst of N newly-ready tasks releases min(N, parked) workers with a
  /// single pass instead of N serial notify_one calls.  Returns the number
  /// of waiters signalled (0 when nobody was parked).  Waiters between
  /// prepare_wait() and wait() are covered by the epoch bump exactly as in
  /// notify_one: their wait() returns immediately.
  std::size_t notify_many(std::size_t n) {
    if (n == 0) return 0;
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t w = waiters_.load(std::memory_order_seq_cst);
    if (w == 0) return 0;
    const std::size_t k = n < w ? n : static_cast<std::size_t>(w);
    std::lock_guard lock(mu_);
    if (k >= w) {
      cv_.notify_all();
    } else {
      for (std::size_t i = 0; i < k; ++i) cv_.notify_one();
    }
    return k;
  }

  /// Registered waiters right now (between prepare_wait and wake) —
  /// diagnostics/tests; inherently racy as a predicate.
  [[nodiscard]] std::size_t waiters() const noexcept {
    return static_cast<std::size_t>(
        waiters_.load(std::memory_order_seq_cst));
  }

  /// Wakes every parked waiter (shutdown).
  bool notify_all() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return false;
    std::lock_guard lock(mu_);
    cv_.notify_all();
    return true;
  }

 private:

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> waiters_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

} // namespace oss
