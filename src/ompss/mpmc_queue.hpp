// mpmc_queue.hpp — sharded multi-producer multi-consumer ready-task queue.
//
// The scheduler's *global* queues (spawn-ready tasks under Fifo/Locality,
// priority tasks under every policy) are multi-producer multi-consumer:
// any thread may spawn, any worker may pick.  A single mutex deque here is
// the contention hot spot the paper's task-churn workloads expose, so the
// global queue is split into shards, each a bounded lock-free MPMC ring
// (Vyukov's algorithm) with a mutex-protected overflow list for bursts that
// outrun the ring.
//
// Producers distribute over shards round-robin; consumers scan all shards
// starting from a rotating cursor.  Ordering is strict FIFO per shard
// (ticket order in the ring) and approximate FIFO across shards — the
// scheduler only needs per-shard fairness, not a total order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "ompss/task.hpp"

namespace oss {

/// Bounded lock-free MPMC ring (Vyukov).  Strict FIFO in ticket order.
/// `try_push` fails when full, `try_pop` fails when empty; both are
/// obstruction-free and never block.
template <class T>
class BoundedMpmcRing {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit BoundedMpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpmcRing(const BoundedMpmcRing&) = delete;
  BoundedMpmcRing& operator=(const BoundedMpmcRing&) = delete;

  bool try_push(T v) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(v);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false; // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_pop(T& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false; // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value{}; // guarded by seq's release/acquire handshake
  };

  // Producer and consumer cursors on separate cache lines.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
};

/// Sharded MPMC queue of ready tasks.  Each shard = lock-free ring + mutex
/// overflow deque; the ring handles the steady state, the overflow absorbs
/// spawn bursts beyond the ring capacity (push prefers the overflow once it
/// is non-empty so per-shard FIFO order survives bursts).
class ShardedTaskQueue {
 public:
  explicit ShardedTaskQueue(std::size_t shards, std::size_t ring_capacity = 1024)
      : shards_(shards == 0 ? 1 : shards) {
    for (auto& s : shards_) s = std::make_unique<Shard>(ring_capacity);
  }

  void push(TaskPtr t) {
    Shard& s = *next(push_cursor_);
    count_.fetch_add(1, std::memory_order_relaxed);
    if (s.overflow_count.load(std::memory_order_acquire) == 0) {
      Task* raw = t.get();
      raw->anchor_queue_ref(std::move(t));
      if (s.ring.try_push(raw)) return;
      t = raw->take_queue_ref(); // ring full; fall through to overflow
    }
    std::lock_guard lock(s.mu);
    s.overflow.push_back(std::move(t));
    s.overflow_count.fetch_add(1, std::memory_order_release);
  }

  /// Scans every shard once from a rotating start; null when all empty.
  TaskPtr pop() {
    const std::size_t n = shards_.size();
    const std::size_t base = n > 1 ? rotate(pop_cursor_) : 0;
    for (std::size_t i = 0; i < n; ++i) {
      Shard& s = *shards_[(base + i) % n];
      Task* raw = nullptr;
      if (s.ring.try_pop(raw)) {
        count_.fetch_sub(1, std::memory_order_relaxed);
        return raw->take_queue_ref();
      }
      if (s.overflow_count.load(std::memory_order_acquire) != 0) {
        std::lock_guard lock(s.mu);
        if (!s.overflow.empty()) {
          TaskPtr t = std::move(s.overflow.front());
          s.overflow.pop_front();
          s.overflow_count.fetch_sub(1, std::memory_order_release);
          count_.fetch_sub(1, std::memory_order_relaxed);
          return t;
        }
      }
    }
    return nullptr;
  }

  /// Racy total size (idle heuristics / tests).
  [[nodiscard]] std::size_t size() const {
    const auto c = count_.load(std::memory_order_relaxed);
    return c > 0 ? static_cast<std::size_t>(c) : 0;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  ~ShardedTaskQueue() {
    // Release anchored references for anything still queued.
    while (TaskPtr t = pop()) t.reset();
  }

 private:
  struct alignas(64) Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
    BoundedMpmcRing<Task*> ring;
    std::mutex mu;
    std::deque<TaskPtr> overflow;
    std::atomic<std::size_t> overflow_count{0};
  };

  std::size_t rotate(std::atomic<std::size_t>& cursor) {
    return cursor.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }
  Shard* next(std::atomic<std::size_t>& cursor) {
    return shards_[rotate(cursor)].get();
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> push_cursor_{0};
  std::atomic<std::size_t> pop_cursor_{0};
  std::atomic<std::int64_t> count_{0};
};

} // namespace oss
