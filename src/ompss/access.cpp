#include "ompss/access.hpp"

namespace oss {

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::In: return "in";
    case Mode::Out: return "out";
    case Mode::InOut: return "inout";
    case Mode::Commutative: return "commutative";
    case Mode::Concurrent: return "concurrent";
  }
  return "?";
}

} // namespace oss
