// numa_alloc.hpp — node-bound allocation and the page→node registry.
//
// Two layers:
//
//   * Raw page allocation (`numa_raw_alloc` / `numa_raw_free`): page-aligned
//     storage, kernel-bound to a NUMA node with a best-effort mbind
//     (MPOL_PREFERRED) when the platform has one.  Binding failures are
//     silent — on single-node machines, sandboxes, or kernels without mbind
//     the allocation simply stays wherever first touch lands it.  The
//     scheduler's per-worker state blocks and Chase–Lev ring buffers use
//     this layer directly.
//
//   * Registered application buffers (`numa_alloc_onnode` /
//     `numa_alloc_interleaved` / `numa_free`): raw allocation plus an entry
//     in the process-wide page→node registry, which is what makes
//     `TaskBuilder::affinity_auto()` work — the runtime derives a task's
//     home node by looking up its largest declared access region here.
//     Lookups go through a small thread-local page cache, so the per-spawn
//     cost is one hash-free array probe in the common case.
//
// `numa_first_touch` walks a buffer page-by-page writing one byte per page:
// with the kernel's default first-touch policy this places each page on the
// node of the touching thread — the classic OpenMP/OmpSs idiom for
// partitioned data.  `NumaBuffer` wraps allocate/register/free RAII-style.
//
// Node ids are the *dense* topology indices (see topology.hpp).  This header
// stays dependency-light (no topology include) so the lock-free queue
// headers can use the raw layer.
#pragma once

#include <cstddef>
#include <utility>

#include "ompss/access.hpp"

namespace oss {

/// System page size (cached; 4096 when sysconf is unavailable).
std::size_t numa_page_size() noexcept;

// --- raw layer -------------------------------------------------------------

/// Page-aligned allocation of at least `bytes`, best-effort bound to `node`
/// (kernel mbind with MPOL_PREFERRED).  `node < 0` skips binding entirely.
/// Throws std::bad_alloc on exhaustion.  Free with numa_raw_free.
void* numa_raw_alloc(std::size_t bytes, int node);

void numa_raw_free(void* p, std::size_t bytes) noexcept;

// --- page→node registry ----------------------------------------------------

/// Records [p, p+bytes) as living on `node`.  Overlapping re-registration
/// replaces the overlapped ranges.
void numa_register_range(const void* p, std::size_t bytes, int node);

/// Records [p, p+bytes) as page-interleaved over nodes 0..num_nodes-1
/// (page k of the range maps to node k % num_nodes).
void numa_register_interleaved(const void* p, std::size_t bytes,
                               std::size_t num_nodes);

/// Drops the registration whose range contains `p` (no-op when unknown).
void numa_unregister_range(const void* p) noexcept;

/// Dense node index recorded for the page containing `p`, or -1 when the
/// address was never registered.  Thread-safe; hot path served from a
/// thread-local page cache.
int numa_node_of(const void* p) noexcept;

/// Registry entries (diagnostics / tests).
std::size_t numa_registered_ranges() noexcept;

// --- registered application buffers ----------------------------------------

/// Allocates `bytes` bound to `node` and registers the range.
void* numa_alloc_onnode(std::size_t bytes, int node);

/// Allocates `bytes` page-interleaved over nodes 0..num_nodes-1 and
/// registers the range as interleaved.
void* numa_alloc_interleaved(std::size_t bytes, std::size_t num_nodes);

/// Unregisters and frees a buffer from either allocation helper.
void numa_free(void* p, std::size_t bytes) noexcept;

/// Writes one byte per page (and the last byte) so the kernel commits the
/// pages under the first-touch policy of the calling thread's node.
void numa_first_touch(void* p, std::size_t bytes) noexcept;

/// Home node for a task's access list: the node recorded for the largest
/// *registered* declared region (ties: first declared wins), or -1 when no
/// region is registered.  This is the `.affinity_auto()` derivation.
int home_node_of(const AccessList& accesses) noexcept;

// --- RAII buffer ------------------------------------------------------------

/// Move-only owner of a node-bound (or interleaved) registered buffer.
class NumaBuffer {
 public:
  NumaBuffer() = default;

  /// Node-bound buffer: `node >= 0` binds + registers; `node < 0` allocates
  /// unbound and unregistered (plain page-aligned storage).
  NumaBuffer(std::size_t bytes, int node)
      : p_(node >= 0 ? numa_alloc_onnode(bytes, node)
                     : numa_raw_alloc(bytes, -1)),
        bytes_(bytes),
        node_(node),
        registered_(node >= 0) {}

  /// Page-interleaved buffer over nodes 0..num_nodes-1.
  static NumaBuffer interleaved(std::size_t bytes, std::size_t num_nodes) {
    NumaBuffer b;
    b.p_ = numa_alloc_interleaved(bytes, num_nodes);
    b.bytes_ = bytes;
    b.node_ = -1;
    b.registered_ = true;
    return b;
  }

  NumaBuffer(NumaBuffer&& o) noexcept
      : p_(std::exchange(o.p_, nullptr)),
        bytes_(std::exchange(o.bytes_, 0)),
        node_(std::exchange(o.node_, -1)),
        registered_(std::exchange(o.registered_, false)) {}

  NumaBuffer& operator=(NumaBuffer&& o) noexcept {
    if (this != &o) {
      release();
      p_ = std::exchange(o.p_, nullptr);
      bytes_ = std::exchange(o.bytes_, 0);
      node_ = std::exchange(o.node_, -1);
      registered_ = std::exchange(o.registered_, false);
    }
    return *this;
  }

  NumaBuffer(const NumaBuffer&) = delete;
  NumaBuffer& operator=(const NumaBuffer&) = delete;

  ~NumaBuffer() { release(); }

  [[nodiscard]] void* data() const noexcept { return p_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_; }
  [[nodiscard]] int node() const noexcept { return node_; }
  [[nodiscard]] explicit operator bool() const noexcept { return p_ != nullptr; }

  template <class T>
  [[nodiscard]] T* as() const noexcept {
    return static_cast<T*>(p_);
  }

 private:
  void release() noexcept {
    if (p_ == nullptr) return;
    if (registered_) {
      numa_free(p_, bytes_);
    } else {
      numa_raw_free(p_, bytes_);
    }
    p_ = nullptr;
  }

  void* p_ = nullptr;
  std::size_t bytes_ = 0;
  int node_ = -1;
  bool registered_ = false;
};

} // namespace oss
