// WorkStealing policy: like Locality, but spawn-ready tasks also go to the
// spawning worker's own deque (Cilk-style LIFO spawn order), so a worker
// producing a burst of tasks keeps them hot locally and idle siblings pull
// the oldest ones from the cold end.  Victim sweeps are same-socket-first
// (see SchedulerBase::steal_from_siblings); home-node hints additionally
// reroute off-node spawns/unblocks to their home node's queue.
#include "ompss/scheduler_impl.hpp"

namespace oss {

void WorkStealingScheduler::enqueue_spawned(TaskPtr t, int spawner_worker) {
  if (place_priority(t)) return;
  // node_matches is true whenever the task has no valid home hint, so a
  // worker spawner always keeps hint-less tasks; place_home consumes
  // exactly the off-node hinted ones.
  if (is_worker(spawner_worker) && node_matches(spawner_worker, t)) {
    const std::uint64_t id = t->id();
    worker_state(spawner_worker).deque.push(std::move(t));
    trace_place(id, PlaceTier::Local);
    return;
  }
  if (place_home(t)) return;
  const std::uint64_t id = t->id();
  global_.push(std::move(t));
  trace_place(id, PlaceTier::Global);
}

void WorkStealingScheduler::enqueue_unblocked(TaskPtr t, int finisher_worker) {
  if (place_priority(t)) return;
  if (is_worker(finisher_worker) && node_matches(finisher_worker, t)) {
    const std::uint64_t id = t->id();
    worker_state(finisher_worker).deque.push(std::move(t));
    trace_place(id, PlaceTier::Local);
    return;
  }
  if (place_home(t)) return;
  const std::uint64_t id = t->id();
  global_.push(std::move(t));
  trace_place(id, PlaceTier::Global);
}

TaskPtr WorkStealingScheduler::pick(int worker, Stats& stats) {
  return common_pick(worker, stats, /*use_local=*/true, /*steal=*/true);
}

} // namespace oss
