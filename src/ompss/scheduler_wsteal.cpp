// WorkStealing policy: like Locality, but spawn-ready tasks also go to the
// spawning worker's own deque (Cilk-style LIFO spawn order), so a worker
// producing a burst of tasks keeps them hot locally and idle siblings pull
// the oldest ones from the cold end.
#include "ompss/scheduler_impl.hpp"

namespace oss {

void WorkStealingScheduler::enqueue_spawned(TaskPtr t, int spawner_worker) {
  if (place_priority(t)) return;
  if (is_worker(spawner_worker)) {
    worker_state(spawner_worker).deque.push(std::move(t));
  } else {
    global_.push(std::move(t));
  }
}

void WorkStealingScheduler::enqueue_unblocked(TaskPtr t, int finisher_worker) {
  if (place_priority(t)) return;
  if (is_worker(finisher_worker)) {
    worker_state(finisher_worker).deque.push(std::move(t));
  } else {
    global_.push(std::move(t));
  }
}

TaskPtr WorkStealingScheduler::pick(int worker, Stats& stats) {
  if (TaskPtr t = pick_common(worker, stats, /*use_local=*/true)) return t;
  return steal_from_siblings(worker, stats);
}

} // namespace oss
