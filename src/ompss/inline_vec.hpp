#pragma once
// inline_vec.hpp — a small-buffer vector for the spawn fast path.
//
// TaskSpec carries two lists through every spawn: the access list and
// the explicit-predecessor list.  Both are tiny in practice (h264dec's
// macroblock tasks have 4 accesses; most tasks have 0–2 explicit
// predecessors), yet std::vector heap-allocates for the first element.
// InlineVec keeps up to N elements in an inline buffer and only spills
// to a std::vector beyond that — so the common spawn never touches the
// allocator for either list.
//
// The inline slots are raw storage, not a std::array: element lifetimes
// start at push_back and end at clear/destruction.  A default-
// constructed InlineVec therefore costs two stores, not N value-
// initializations — TaskSpec construction is itself on the per-spawn
// fast path.
//
// Invariant: before the first spill ALL elements live in the inline
// buffer; after it ALL elements live in the spill vector (no split
// storage, so iteration is a single contiguous range either way).
// Move-only, like the TaskSpec it serves.

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace oss {

template <class T, std::size_t N>
class InlineVec {
 public:
  InlineVec() = default;

  InlineVec(InlineVec&& other) noexcept : spill_(std::move(other.spill_)) {
    n_ = other.n_;
    spilled_ = other.spilled_;
    for (std::size_t i = 0; i < other.n_; ++i) {
      ::new (slot(i)) T(std::move(other.slot_ref(i)));
      other.slot_ref(i).~T();
    }
    other.n_ = 0;
    other.spilled_ = false;
  }

  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      destroy_inline();
      spill_ = std::move(other.spill_);
      n_ = other.n_;
      spilled_ = other.spilled_;
      for (std::size_t i = 0; i < other.n_; ++i) {
        ::new (slot(i)) T(std::move(other.slot_ref(i)));
        other.slot_ref(i).~T();
      }
      other.n_ = 0;
      other.spilled_ = false;
    }
    return *this;
  }

  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  ~InlineVec() { destroy_inline(); }

  void push_back(T v) {
    if (!spilled_) {
      if (n_ < N) {
        ::new (slot(n_)) T(std::move(v));
        ++n_;
        return;
      }
      spill();
    }
    spill_.push_back(std::move(v));
  }

  // Take ownership of an already-built vector wholesale (the legacy
  // spawn shims hand us one); no per-element copy, no allocation.
  void adopt(std::vector<T>&& v) {
    if (empty()) {
      spill_ = std::move(v);
      spilled_ = true;
    } else {
      for (auto& e : v) push_back(std::move(e));
      v.clear();
    }
  }

  T* data() noexcept {
    return spilled_ ? spill_.data() : std::launder(slot_ptr(0));
  }
  const T* data() const noexcept {
    return spilled_ ? spill_.data() : std::launder(slot_cptr(0));
  }
  std::size_t size() const noexcept { return spilled_ ? spill_.size() : n_; }
  bool empty() const noexcept { return size() == 0; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size(); }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size(); }

  void clear() noexcept {
    if (spilled_) spill_.clear();
    destroy_inline();
    spilled_ = false;
  }

 private:
  void* slot(std::size_t i) noexcept { return buf_ + i * sizeof(T); }
  T* slot_ptr(std::size_t i) noexcept {
    return reinterpret_cast<T*>(buf_ + i * sizeof(T));
  }
  const T* slot_cptr(std::size_t i) const noexcept {
    return reinterpret_cast<const T*>(buf_ + i * sizeof(T));
  }
  T& slot_ref(std::size_t i) noexcept { return *std::launder(slot_ptr(i)); }

  void destroy_inline() noexcept {
    for (std::size_t i = 0; i < n_; ++i) slot_ref(i).~T();
    n_ = 0;
  }

  void spill() {
    spill_.reserve(N * 2);
    for (std::size_t i = 0; i < n_; ++i)
      spill_.push_back(std::move(slot_ref(i)));
    destroy_inline();
    spilled_ = true;
  }

  std::size_t n_ = 0;
  bool spilled_ = false;
  alignas(T) unsigned char buf_[sizeof(T) * N];
  std::vector<T> spill_;
};

}  // namespace oss
