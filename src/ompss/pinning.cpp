#include "ompss/pinning.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace oss {

#if defined(__linux__)

bool pinning_supported() noexcept { return true; }

std::vector<int> allowed_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return {};
  }
  std::vector<int> out;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) out.push_back(c);
  }
  return out;
}

namespace {

bool pin_handle(pthread_t handle, const std::vector<int>& cpus) noexcept {
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
}

} // namespace

bool pin_thread(std::thread::native_handle_type handle,
                const std::vector<int>& cpus) noexcept {
  return pin_handle(handle, cpus);
}

bool pin_current_thread(const std::vector<int>& cpus) noexcept {
  return pin_handle(pthread_self(), cpus);
}

#else // !__linux__

bool pinning_supported() noexcept { return false; }
std::vector<int> allowed_cpus() { return {}; }
bool pin_thread(std::thread::native_handle_type,
                const std::vector<int>&) noexcept {
  return false;
}
bool pin_current_thread(const std::vector<int>&) noexcept { return false; }

#endif

std::vector<int> intersect_cpus(const std::vector<int>& cpus,
                                const std::vector<int>& allowed) {
  std::vector<int> out;
  std::set_intersection(cpus.begin(), cpus.end(), allowed.begin(),
                        allowed.end(), std::back_inserter(out));
  return out;
}

std::vector<std::vector<int>> pin_layout(const Topology& topo, PinMode mode,
                                         std::size_t workers) {
  std::vector<std::vector<int>> out(workers);
  if (mode != PinMode::Compact && mode != PinMode::Scatter) return out;
  const auto& nodes = topo.nodes();
  const std::size_t nnodes = nodes.size();
  if (nnodes == 0) return out;

  if (mode == PinMode::Compact) {
    std::vector<int> flat;
    for (const auto& n : nodes) {
      flat.insert(flat.end(), n.cpus.begin(), n.cpus.end());
    }
    if (flat.empty()) return out;
    for (std::size_t w = 0; w < workers; ++w) {
      out[w] = {flat[w % flat.size()]};
    }
    return out;
  }

  // Scatter: worker i lands on node i % nnodes; oversubscription cycles
  // through that node's CPUs so two rounds of workers never share one CPU
  // while a sibling CPU sits empty.
  for (std::size_t w = 0; w < workers; ++w) {
    const auto& cpus = nodes[w % nnodes].cpus;
    if (cpus.empty()) continue;
    out[w] = {cpus[(w / nnodes) % cpus.size()]};
  }
  return out;
}

} // namespace oss
