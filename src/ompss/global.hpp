// global.hpp — process-wide default runtime convenience API.
//
// Mirrors how OmpSs programs use the model: there is one implicit runtime
// configured from the environment (`OSS_NUM_THREADS`, ...), and the program
// just spawns tasks.  First use creates the runtime; `oss::shutdown()`
// destroys it (mainly for tests that want to reconfigure).
//
//   oss::task("stage").in(a).out(b).spawn([&]{ b = f(a); });
//   oss::taskwait();
//
// Code that needs several differently-configured runtimes (the benchmark
// harness does) should construct `oss::Runtime` instances directly instead.
#pragma once

#include "ompss/runtime.hpp"
#include "ompss/task_builder.hpp"

namespace oss {

/// The process-wide default runtime, created on first use from
/// `RuntimeConfig::from_env()`.
Runtime& global_runtime();

/// Destroys the default runtime (drains it first).  The next call to
/// `global_runtime()` creates a fresh one, re-reading the environment.
void shutdown();

/// True if the default runtime currently exists.
bool global_runtime_exists();

/// Starts a fluent task declaration on the default runtime.
inline TaskBuilder task(std::string label = {}) {
  return global_runtime().task(std::move(label));
}

inline std::uint64_t spawn(AccessList accesses, Task::Fn fn, std::string label = {}) {
  return global_runtime().spawn(std::move(accesses), std::move(fn), std::move(label));
}

inline void taskwait() { global_runtime().taskwait(); }

inline void taskwait_on(const void* p, std::size_t bytes = 1) {
  global_runtime().taskwait_on(p, bytes);
}

inline void taskwait_on(const TaskHandle& h) { global_runtime().taskwait_on(h); }

template <class T>
void taskwait_on(const T& obj) {
  static_assert(!std::is_pointer_v<T>,
                "taskwait_on(ptr) would wait on the sizeof(T*) bytes of the "
                "pointer object itself; call taskwait_on(ptr, bytes) for a "
                "region or taskwait_on(*ptr) for the pointee");
  global_runtime().taskwait_on(obj);
}

inline void barrier() { global_runtime().barrier(); }

inline void critical(std::string_view name, const std::function<void()>& fn) {
  global_runtime().critical(name, fn);
}

} // namespace oss
