// graph_recorder.hpp — optional task-graph capture for visualization.
//
// When `RuntimeConfig::record_graph` is set, every spawned task and every
// dependency edge is recorded and can be exported as Graphviz DOT — the
// runtime-built equivalent of the task graphs OmpSs papers draw by hand.
// Edges are colored by hazard kind (RAW solid, WAR/WAW dashed) to make
// renaming opportunities visible (a pipeline whose parallelism is killed by
// WAW edges is immediately obvious).
//
// The node/edge storage and the DOT rendering live in GraphTables
// (graph_tables.hpp), shared with the GraphCapture/ReplayGraph pair
// (docs/replay.md) so the two recorders cannot drift; this class is the
// thread-safe wrapper the runtime mutates from every spawning thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ompss/graph_tables.hpp"

namespace oss {

class GraphRecorder {
 public:
  using Node = GraphTables::Node;
  using Edge = GraphTables::Edge;

  void add_node(std::uint64_t id, std::string label);
  void add_edge(std::uint64_t from, std::uint64_t to, DepKind kind);

  /// Records a finished task's critical-path length and the predecessor
  /// the path arrived through (runtime's on_finished; see oss::prof).
  /// to_dot() uses it to highlight the span chain.
  void set_node_path(std::uint64_t id, std::uint64_t path_weight,
                     std::uint64_t crit_pred);

  /// Graphviz rendering of everything recorded so far.  Thread-safe.
  [[nodiscard]] std::string to_dot() const;

  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::size_t edge_count() const;

  /// Edges of one hazard kind (shard-parity diagnostics: sharding must
  /// never change how many RAW/WAR/WAW/explicit edges a program has).
  [[nodiscard]] std::size_t edge_count(DepKind kind) const;

  /// Snapshot of the recorded edges, in recording order.  With concurrent
  /// spawners the order is a valid interleaving, not deterministic; the
  /// edge *multiset* is what parity tests compare.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Snapshot of the recorded nodes, in recording order (replay parity
  /// tests map node ids back to spawn order through this).
  [[nodiscard]] std::vector<Node> nodes() const;

 private:
  mutable std::mutex mu_;
  GraphTables tables_;
};

} // namespace oss
