#include "ompss/numa_alloc.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <shared_mutex>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace oss {

namespace {

// mbind policy constants (from <numaif.h>, which ships with libnuma-dev; we
// define them locally so the runtime needs no extra dependency).
constexpr int kMpolPreferred = 1;
constexpr int kMpolInterleave = 3;

/// Best-effort kernel binding; every failure path is silent by design
/// (single-node machines, seccomp sandboxes, kernels without NUMA).
void try_mbind(void* p, std::size_t bytes, int policy, unsigned long nodemask) {
#if defined(__linux__) && defined(SYS_mbind)
  if (nodemask == 0) return;
  // maxnode counts bits and the kernel wants one past the highest; 64 covers
  // the single-word mask we pass.
  (void)syscall(SYS_mbind, p, bytes, policy, &nodemask,
                static_cast<unsigned long>(sizeof(nodemask) * 8 + 1),
                static_cast<unsigned>(0));
#else
  (void)p;
  (void)bytes;
  (void)policy;
  (void)nodemask;
#endif
}

/// A registered range.  Non-interleaved ranges have nodes == 1 and `node`
/// is the binding; interleaved ranges map page k to node k % nodes.
struct RangeInfo {
  std::uintptr_t end = 0;
  int node = -1;
  std::size_t nodes = 1; ///< >1 means page-interleaved over 0..nodes-1
};

struct Registry {
  std::shared_mutex mu;
  std::map<std::uintptr_t, RangeInfo> ranges; // keyed by range begin
  /// Bumped on every mutation; thread-local caches self-invalidate on it.
  std::atomic<std::uint64_t> epoch{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Thread-local direct-mapped page→node cache.  An entry is valid only when
/// stamped with the current registry epoch, so unregistering a buffer (or
/// re-registering it elsewhere) invalidates every thread's cache at the cost
/// of one relaxed load per lookup.
struct PageCacheEntry {
  std::uintptr_t page = 0;
  std::uint64_t epoch = ~std::uint64_t{0};
  int node = -1;
};
constexpr std::size_t kPageCacheSize = 64; // power of two

thread_local PageCacheEntry tl_page_cache[kPageCacheSize];

int lookup_slow(std::uintptr_t addr) {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  auto it = r.ranges.upper_bound(addr);
  if (it == r.ranges.begin()) return -1;
  --it;
  if (addr >= it->second.end) return -1;
  if (it->second.nodes <= 1) return it->second.node;
  const std::size_t page = (addr - it->first) / numa_page_size();
  return static_cast<int>(page % it->second.nodes);
}

void registry_insert(const void* p, std::size_t bytes, int node,
                     std::size_t interleave_nodes) {
  if (p == nullptr || bytes == 0) return;
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t end = begin + bytes;
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  // Drop any stale range overlapping the new one (freed-then-reallocated
  // memory must not resurrect an old mapping).
  auto it = r.ranges.upper_bound(begin);
  if (it != r.ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > begin) it = prev;
  }
  while (it != r.ranges.end() && it->first < end) {
    it = r.ranges.erase(it);
  }
  r.ranges[begin] = RangeInfo{end, node, interleave_nodes};
  r.epoch.fetch_add(1, std::memory_order_release);
}

} // namespace

std::size_t numa_page_size() noexcept {
#if defined(__linux__)
  static const std::size_t sz = [] {
    const long v = ::sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{4096};
  }();
  return sz;
#else
  return 4096;
#endif
}

void* numa_raw_alloc(std::size_t bytes, int node) {
  const std::size_t page = numa_page_size();
  if (bytes == 0) bytes = 1;
  const std::size_t rounded = (bytes + page - 1) / page * page;
  void* p = std::aligned_alloc(page, rounded);
  if (p == nullptr) throw std::bad_alloc{};
  if (node >= 0 && node < 64) {
    try_mbind(p, rounded, kMpolPreferred, 1ul << node);
  }
  return p;
}

void numa_raw_free(void* p, std::size_t /*bytes*/) noexcept { std::free(p); }

void numa_register_range(const void* p, std::size_t bytes, int node) {
  registry_insert(p, bytes, node, 1);
}

void numa_register_interleaved(const void* p, std::size_t bytes,
                               std::size_t num_nodes) {
  registry_insert(p, bytes, -1, num_nodes > 1 ? num_nodes : 1);
}

void numa_unregister_range(const void* p) noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  auto it = r.ranges.upper_bound(addr);
  if (it == r.ranges.begin()) return;
  --it;
  if (addr >= it->second.end) return;
  r.ranges.erase(it);
  r.epoch.fetch_add(1, std::memory_order_release);
}

int numa_node_of(const void* p) noexcept {
  if (p == nullptr) return -1;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::size_t page_sz = numa_page_size();
  const std::uintptr_t page = addr / page_sz;
  const std::uint64_t epoch =
      registry().epoch.load(std::memory_order_acquire);
  PageCacheEntry& e = tl_page_cache[page & (kPageCacheSize - 1)];
  if (e.page == page && e.epoch == epoch) return e.node;
  const int node = lookup_slow(addr);
  // Cache positive *and* negative results; the epoch stamp keeps both honest.
  e = PageCacheEntry{page, epoch, node};
  return node;
}

std::size_t numa_registered_ranges() noexcept {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return r.ranges.size();
}

void* numa_alloc_onnode(std::size_t bytes, int node) {
  void* p = numa_raw_alloc(bytes, node);
  numa_register_range(p, bytes, node);
  return p;
}

void* numa_alloc_interleaved(std::size_t bytes, std::size_t num_nodes) {
  void* p = numa_raw_alloc(bytes, -1);
  if (num_nodes > 1 && num_nodes <= 64) {
    const unsigned long mask = num_nodes >= 64
                                   ? ~0ul
                                   : ((1ul << num_nodes) - 1);
    try_mbind(p, bytes, kMpolInterleave, mask);
  }
  numa_register_interleaved(p, bytes, num_nodes);
  return p;
}

void numa_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  numa_unregister_range(p);
  numa_raw_free(p, bytes);
}

void numa_first_touch(void* p, std::size_t bytes) noexcept {
  if (p == nullptr || bytes == 0) return;
  auto* bytes_p = static_cast<volatile unsigned char*>(p);
  const std::size_t page = numa_page_size();
  for (std::size_t off = 0; off < bytes; off += page) bytes_p[off] = 0;
  bytes_p[bytes - 1] = 0;
}

int home_node_of(const AccessList& accesses) noexcept {
  std::size_t best_size = 0;
  int best_node = -1;
  for (const Access& a : accesses) {
    if (a.empty() || a.size() <= best_size) continue;
    const int node = numa_node_of(reinterpret_cast<const void*>(a.begin));
    if (node >= 0) {
      best_size = a.size();
      best_node = node;
    }
  }
  return best_node;
}

} // namespace oss
