#include "ompss/topology.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace oss {

namespace {

std::size_t hardware_cpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument(
      "malformed topology spec '" + spec + "': " + why +
      " (expected \"NxM\" — N nodes of M cpus — or \"osid:cpulist;...\" like "
      "\"0:0-3;1:4-7\") [OSS_TOPOLOGY]");
}

/// Parses a non-negative integer at `s[pos...]`; advances pos past it.
/// Returns -1 when no digit is present.
long parse_int(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos]))) {
    return -1;
  }
  long v = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    v = v * 10 + (s[pos] - '0');
    if (v > 1'000'000) return -1; // reject absurd values before overflow
    ++pos;
  }
  return v;
}

/// Parses a kernel cpulist ("0-3,8,10-11") into ascending cpu ids.
/// Returns false on malformed input.
bool parse_cpulist(const std::string& list, std::vector<int>& out) {
  std::size_t pos = 0;
  while (pos < list.size()) {
    const long lo = parse_int(list, pos);
    if (lo < 0) return false;
    long hi = lo;
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      hi = parse_int(list, pos);
      if (hi < lo) return false;
    }
    if (hi - lo > 4096) return false; // sanity bound for fake specs/sysfs
    for (long c = lo; c <= hi; ++c) out.push_back(static_cast<int>(c));
    if (pos < list.size()) {
      if (list[pos] != ',') return false;
      ++pos;
      if (pos == list.size()) return false; // trailing comma
    }
  }
  return !out.empty();
}

/// Finalizes a node list: sorts by os_id, assigns dense ids, validates
/// uniqueness.  Returns false (leaving `nodes` unspecified) on duplicates.
bool finalize(std::vector<TopologyNode>& nodes) {
  if (nodes.empty()) return false;
  std::sort(nodes.begin(), nodes.end(),
            [](const TopologyNode& a, const TopologyNode& b) {
              return a.os_id < b.os_id;
            });
  std::vector<int> all_cpus;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0 && nodes[i].os_id == nodes[i - 1].os_id) return false;
    nodes[i].id = static_cast<int>(i);
    std::sort(nodes[i].cpus.begin(), nodes[i].cpus.end());
    all_cpus.insert(all_cpus.end(), nodes[i].cpus.begin(), nodes[i].cpus.end());
  }
  std::sort(all_cpus.begin(), all_cpus.end());
  return std::adjacent_find(all_cpus.begin(), all_cpus.end()) == all_cpus.end();
}

} // namespace

Topology::Topology(std::vector<TopologyNode> nodes) : nodes_(std::move(nodes)) {}

Topology Topology::flat(std::size_t ncpus) {
  TopologyNode n;
  n.id = 0;
  n.os_id = 0;
  n.cpus.reserve(ncpus);
  for (std::size_t c = 0; c < ncpus; ++c) n.cpus.push_back(static_cast<int>(c));
  return Topology(std::vector<TopologyNode>{std::move(n)});
}

Topology Topology::from_spec(const std::string& spec) {
  if (spec.empty()) bad_spec(spec, "empty spec");

  // Shorthand: "NxM" — N nodes of M cpus each, cpus numbered node-major.
  {
    std::size_t pos = 0;
    const long n = parse_int(spec, pos);
    if (n > 0 && pos < spec.size() && spec[pos] == 'x') {
      ++pos;
      const long m = parse_int(spec, pos);
      if (m <= 0 || pos != spec.size()) bad_spec(spec, "bad NxM shorthand");
      std::vector<TopologyNode> nodes;
      int cpu = 0;
      for (long i = 0; i < n; ++i) {
        TopologyNode node;
        node.os_id = static_cast<int>(i);
        for (long c = 0; c < m; ++c) node.cpus.push_back(cpu++);
        nodes.push_back(std::move(node));
      }
      if (!finalize(nodes)) bad_spec(spec, "bad NxM shorthand");
      return Topology(std::move(nodes));
    }
  }

  // Full form: "osid:cpulist;osid:cpulist;..."
  std::vector<TopologyNode> nodes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string entry =
        spec.substr(start, semi == std::string::npos ? semi : semi - start);
    if (entry.empty()) bad_spec(spec, "empty node entry");
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) bad_spec(spec, "missing ':' in node entry");
    std::size_t pos = 0;
    const long os_id = parse_int(entry, pos);
    if (os_id < 0 || pos != colon) bad_spec(spec, "bad node id");
    TopologyNode node;
    node.os_id = static_cast<int>(os_id);
    if (!parse_cpulist(entry.substr(colon + 1), node.cpus)) {
      bad_spec(spec, "bad cpulist");
    }
    nodes.push_back(std::move(node));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  if (!finalize(nodes)) bad_spec(spec, "duplicate node id or cpu");
  return Topology(std::move(nodes));
}

Topology Topology::from_sysfs(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<TopologyNode> nodes;
  std::error_code ec;
  fs::directory_iterator it(root, ec);
  if (ec) return flat(hardware_cpus());
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    std::size_t pos = 4;
    const long os_id = parse_int(name, pos);
    if (os_id < 0 || pos != name.size()) continue;
    std::ifstream in(entry.path() / "cpulist");
    if (!in) return flat(hardware_cpus());
    std::string list;
    std::getline(in, list);
    // Trim trailing whitespace (sysfs files end with '\n'; getline strips
    // it, but be lenient about stray spaces in fake trees).
    while (!list.empty() &&
           std::isspace(static_cast<unsigned char>(list.back()))) {
      list.pop_back();
    }
    TopologyNode node;
    node.os_id = static_cast<int>(os_id);
    if (list.empty()) continue; // memory-only node: no cpus, skip
    if (!parse_cpulist(list, node.cpus)) return flat(hardware_cpus());
    nodes.push_back(std::move(node));
  }
  if (!finalize(nodes)) return flat(hardware_cpus());
  return Topology(std::move(nodes));
}

Topology Topology::detect(const std::string& value) {
  if (value.empty() || value == "numa") return from_sysfs();
  if (value == "flat") return flat(hardware_cpus());
  return from_spec(value);
}

std::size_t Topology::num_cpus() const noexcept {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.cpus.size();
  return n;
}

int Topology::node_of_cpu(int cpu) const noexcept {
  for (const auto& node : nodes_) {
    if (std::binary_search(node.cpus.begin(), node.cpus.end(), cpu)) {
      return node.id;
    }
  }
  return -1;
}

int Topology::node_of_worker(int worker,
                             std::size_t num_workers) const noexcept {
  if (worker < 0 || num_workers == 0 || nodes_.size() <= 1) return 0;
  const std::size_t total = num_cpus();
  if (total == 0) return 0;
  const std::size_t w = static_cast<std::size_t>(worker) % num_workers;
  // Block-wise proportional spread: worker w sits at cpu position
  // w*total/num_workers in node-major cpu order.
  const std::size_t pos = (w * total) / num_workers;
  std::size_t acc = 0;
  for (const auto& node : nodes_) {
    acc += node.cpus.size();
    if (pos < acc) return node.id;
  }
  return nodes_.back().id;
}

std::string Topology::spec() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) os << ';';
    os << nodes_[i].os_id << ':';
    // Render cpus as compact ranges.
    const auto& cpus = nodes_[i].cpus;
    for (std::size_t j = 0; j < cpus.size();) {
      std::size_t k = j;
      while (k + 1 < cpus.size() && cpus[k + 1] == cpus[k] + 1) ++k;
      if (j > 0) os << ',';
      os << cpus[j];
      if (k > j) os << '-' << cpus[k];
      j = k + 1;
    }
  }
  return os.str();
}

} // namespace oss
