// stats.hpp — runtime instrumentation counters.
//
// Cheap always-on counters (relaxed atomics) exposing what the runtime did:
// how many tasks, how many dependency edges of each hazard kind, where ready
// tasks were popped from, how often work was stolen.  The ablation benches
// use these to demonstrate *why* a configuration is faster (e.g. the
// locality scheduler showing high local-queue hit rates on ray-rot).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace oss {

/// Plain-value snapshot of the counters, safe to copy around.
struct StatsSnapshot {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t edges_raw = 0;
  std::uint64_t edges_war = 0;
  std::uint64_t edges_waw = 0;
  std::uint64_t edges_explicit = 0; ///< handle edges from TaskBuilder::after
  std::uint64_t local_pops = 0;  ///< ready tasks taken from own local queue
  std::uint64_t global_pops = 0; ///< ready tasks taken from the global queue
  std::uint64_t steals = 0;      ///< ready tasks taken from another worker
  std::uint64_t steals_failed = 0; ///< picks that swept every victim empty
  std::uint64_t steals_remote = 0; ///< steals whose victim sat on another
                                   ///< NUMA node (subset of steals)
  std::uint64_t tasks_local = 0;  ///< affinity tasks picked on their home node
  std::uint64_t tasks_remote = 0; ///< affinity tasks picked on a foreign node
  std::uint64_t overflow_placements = 0; ///< soft home placements widened to
                                         ///< the global tier by the pressure
                                         ///< feedback (filled from the
                                         ///< scheduler by Runtime::stats())
  std::uint64_t parks = 0;       ///< times an idle worker parked on the gate
  std::uint64_t wakeups = 0;     ///< parked workers signalled awake (batch
                                 ///< wakeups count every worker they released)
  std::uint64_t dep_single_shard = 0; ///< registrations that locked at most
                                      ///< one dependency shard (fast path;
                                      ///< access-free tasks lock none)
  std::uint64_t dep_multi_shard = 0;  ///< registrations spanning ≥2 shards
                                      ///< (sorted multi-lock path)
  std::uint64_t dep_contended = 0;    ///< registrations that found ≥1 shard
                                      ///< lock held by another spawner
  std::uint64_t replayed_tasks = 0; ///< tasks submitted by Runtime::replay —
                                    ///< spawned with zero DepDomain visits
                                    ///< (subset of tasks_spawned; the
                                    ///< dep-domain-bypass proof of
                                    ///< docs/replay.md)
  std::uint64_t replay_graphs = 0;  ///< Runtime::replay invocations
  std::uint64_t taskwaits = 0;
  std::uint64_t barriers = 0;
  std::uint64_t trace_dropped = 0; ///< trace events lost to ring overflow
                                   ///< (filled from the TraceSystem by
                                   ///< Runtime::stats(); 0 when tracing off)
  std::uint64_t tasks_recycled = 0; ///< spawns served from the task pool
                                    ///< instead of the allocator (OSS_POOL)
  std::uint64_t pool_misses = 0;    ///< spawns that found both the thread
                                    ///< cache and the global pool empty and
                                    ///< allocated a fresh slab batch
  std::uint64_t pool_overflow = 0;  ///< retired tasks a full thread cache
                                    ///< spilled to the global pool (filled
                                    ///< from oss::pool by Runtime::stats())
  std::vector<std::uint64_t> per_worker_executed;

  [[nodiscard]] std::uint64_t edges_total() const {
    return edges_raw + edges_war + edges_waw + edges_explicit;
  }

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string() const;

  /// One-line summary for bench footers: task placement, steals, dep-shard
  /// traffic, trace drops.  `tag` names the run (benchmark/app name).
  [[nodiscard]] std::string footer(const std::string& tag) const;
};

/// True when OSS_STATS is set to a truthy value ("1"/"true"/"yes"/"on") —
/// the benches and apps print a `StatsSnapshot::footer` line to stderr so
/// runs are self-describing.
bool stats_footer_enabled();

class Stats {
 public:
  explicit Stats(std::size_t num_workers) : per_worker_executed_(num_workers) {
    for (auto& c : per_worker_executed_) c.store(0, std::memory_order_relaxed);
  }

  void on_spawn() { inc(tasks_spawned_); }
  void on_execute(int worker) {
    inc(tasks_executed_);
    if (worker >= 0 && static_cast<std::size_t>(worker) < per_worker_executed_.size())
      inc(per_worker_executed_[static_cast<std::size_t>(worker)]);
  }
  void on_edge_raw() { inc(edges_raw_); }
  void on_edge_war() { inc(edges_war_); }
  void on_edge_waw() { inc(edges_waw_); }
  void on_edge_explicit() { inc(edges_explicit_); }
  void on_local_pop() { inc(local_pops_); }
  void on_global_pop() { inc(global_pops_); }
  void on_steal() { inc(steals_); }
  void on_steal_failed() { inc(steals_failed_); }
  void on_steal_remote() { inc(steals_remote_); }
  void on_task_local() { inc(tasks_local_); }
  void on_task_remote() { inc(tasks_remote_); }
  void on_park() { inc(parks_); }
  void on_wakeup(std::uint64_t count = 1) {
    wakeups_.fetch_add(count, std::memory_order_relaxed);
  }
  /// One dependency registration: how many shards it locked and whether
  /// any of those locks were contended (DepDomain::RegisterReceipt).
  void on_dep_registration(std::uint32_t shards_touched, bool contended) {
    if (shards_touched > 1) {
      inc(dep_multi_shard_);
    } else {
      inc(dep_single_shard_);
    }
    if (contended) inc(dep_contended_);
  }
  void on_taskwait() { inc(taskwaits_); }
  void on_barrier() { inc(barriers_); }
  /// One Runtime::replay submission of `tasks` tasks.  Replayed tasks count
  /// as spawned (they are), but touch neither dep_single_shard_ nor
  /// dep_multi_shard_ — the counter gap is what proves the bypass.
  void on_replay(std::uint64_t tasks) {
    replay_graphs_.fetch_add(1, std::memory_order_relaxed);
    replayed_tasks_.fetch_add(tasks, std::memory_order_relaxed);
    tasks_spawned_.fetch_add(tasks, std::memory_order_relaxed);
  }
  /// Bulk edge accounting for a replayed graph (per-kind totals were
  /// counted once at capture; a replay adds them in four adds instead of
  /// one callback per edge).
  void add_edges(std::uint64_t raw, std::uint64_t war, std::uint64_t waw,
                 std::uint64_t expl) {
    if (raw) edges_raw_.fetch_add(raw, std::memory_order_relaxed);
    if (war) edges_war_.fetch_add(war, std::memory_order_relaxed);
    if (waw) edges_waw_.fetch_add(waw, std::memory_order_relaxed);
    if (expl) edges_explicit_.fetch_add(expl, std::memory_order_relaxed);
  }
  /// One pooled-task acquisition: recycled (pool hit) or a fresh slab
  /// allocation (pool miss).  Not called when OSS_POOL=off.
  void on_pool_acquire(bool recycled) {
    inc(recycled ? tasks_recycled_ : pool_misses_);
  }

  [[nodiscard]] StatsSnapshot snapshot() const;

 private:
  using Counter = std::atomic<std::uint64_t>;
  static void inc(Counter& c) { c.fetch_add(1, std::memory_order_relaxed); }

  Counter tasks_spawned_{0};
  Counter tasks_executed_{0};
  Counter edges_raw_{0};
  Counter edges_war_{0};
  Counter edges_waw_{0};
  Counter edges_explicit_{0};
  Counter local_pops_{0};
  Counter global_pops_{0};
  Counter steals_{0};
  Counter steals_failed_{0};
  Counter steals_remote_{0};
  Counter tasks_local_{0};
  Counter tasks_remote_{0};
  Counter parks_{0};
  Counter wakeups_{0};
  Counter dep_single_shard_{0};
  Counter dep_multi_shard_{0};
  Counter dep_contended_{0};
  Counter replayed_tasks_{0};
  Counter replay_graphs_{0};
  Counter taskwaits_{0};
  Counter barriers_{0};
  Counter tasks_recycled_{0};
  Counter pool_misses_{0};
  std::vector<Counter> per_worker_executed_;
};

} // namespace oss
