#include "ompss/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace oss {

// ---------------------------------------------------------------------------
// TraceRecorder (legacy view)
// ---------------------------------------------------------------------------

void TraceRecorder::record(int worker, std::uint64_t task_id,
                           const std::string& label, std::uint64_t start_us,
                           std::uint64_t end_us) {
  std::lock_guard lock(mu_);
  events_.push_back(Event{worker, task_id, label, start_us, end_us});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
} // namespace

std::string TraceRecorder::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << (e.label.empty() ? "task" : escape(e.label))
       << " #" << e.task_id << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << (e.end_us - e.start_us) << ",\"pid\":0,\"tid\":" << e.worker
       << "}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// TraceSystem
// ---------------------------------------------------------------------------

thread_local TraceSystem::TlsSlot TraceSystem::tls_slot_;

namespace {

/// Monotonic instance stamp: a TraceSystem constructed at a reused address
/// never matches a stale TLS slot.
std::atomic<std::uint64_t> g_trace_epoch{1};

std::uint32_t fnv1a(const std::string& s) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h != 0 ? h : 0x9e3779b1u; // 0 is reserved for "unlabeled"
}

} // namespace

TraceSystem::TraceSystem(TraceMode mode, std::size_t ring_capacity)
    : mode_(mode),
      ring_capacity_(ring_capacity < 2 ? 2 : ring_capacity),
      epoch_(g_trace_epoch.fetch_add(1, std::memory_order_relaxed)),
      t0_ticks_(clock()),
      t0_wall_(std::chrono::steady_clock::now()) {}

TraceSystem::~TraceSystem() = default;

void TraceSystem::bind_worker(int wid) {
  std::lock_guard lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  for (auto& r : rings_) {
    if (r->owner == self) { // rebind (nested runtimes on one thread)
      tls_slot_ = TlsSlot{this, epoch_, r.get()};
      return;
    }
  }
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring* r = rings_.back().get();
  r->tid = wid;
  r->owner = self;
  tls_slot_ = TlsSlot{this, epoch_, r};
}

TraceSystem::Ring* TraceSystem::ring_slow() {
  std::lock_guard lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  for (auto& r : rings_) {
    if (r->owner == self) {
      tls_slot_ = TlsSlot{this, epoch_, r.get()};
      return r.get();
    }
  }
  // A thread the runtime never bound: a foreign spawner.  Give it its own
  // timeline row above the worker range.
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring* r = rings_.back().get();
  r->tid = kForeignBase + foreign_rows_++;
  r->owner = self;
  tls_slot_ = TlsSlot{this, epoch_, r};
  return r;
}

std::uint32_t TraceSystem::intern(const std::string& label) {
  intern_calls_.fetch_add(1, std::memory_order_relaxed);
  if (label.empty()) return 0;
  const std::uint32_t h = fnv1a(label);
  // Small per-thread cache of hashes this thread already registered — the
  // steady state (every spawn reusing a handful of labels) stays lock-free.
  struct Cache {
    const TraceSystem* sys = nullptr;
    std::uint64_t epoch = 0;
    std::uint32_t seen[8] = {};
    unsigned next = 0;
  };
  static thread_local Cache cache;
  if (cache.sys == this && cache.epoch == epoch_) {
    for (std::uint32_t s : cache.seen)
      if (s == h) return h;
  } else {
    cache = Cache{};
    cache.sys = this;
    cache.epoch = epoch_;
  }
  {
    std::lock_guard lock(mu_);
    labels_.emplace(h, label); // first string wins on a hash collision
  }
  cache.seen[cache.next++ % 8] = h;
  return h;
}

std::string TraceSystem::label_name(std::uint32_t hash) const {
  if (hash == 0) return {};
  std::lock_guard lock(mu_);
  const auto it = labels_.find(hash);
  return it != labels_.end() ? it->second : std::string{};
}

double TraceSystem::ns_per_tick_locked() {
  const std::uint64_t now_ticks = clock();
  const auto now_wall = std::chrono::steady_clock::now();
  const double dticks = static_cast<double>(now_ticks - t0_ticks_);
  const double dns =
      std::chrono::duration<double, std::nano>(now_wall - t0_wall_).count();
  if (dticks <= 0.0 || dns <= 0.0) return 1.0;
  return dns / dticks;
}

void TraceSystem::drain_locked() {
  const double rate = ns_per_tick_locked();
  const auto to_ns = [&](std::uint64_t ticks) -> std::uint64_t {
    if (ticks == 0 || ticks <= t0_ticks_) return ticks == 0 ? 0 : 1;
    return static_cast<std::uint64_t>(
        static_cast<double>(ticks - t0_ticks_) * rate);
  };
  TraceEvent batch[256];
  for (auto& r : rings_) {
    for (;;) {
      const std::size_t n = r->buf.pop_bulk(batch, 256);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        if (store_.size() >= kMaxStoredEvents) {
          ++store_clamped_;
          continue;
        }
        TraceEvent e = batch[i];
        e.ts = to_ns(e.ts);
        if (e.kind == TraceEventKind::RunSpan) {
          e.arg = to_ns(e.arg);          // begin ticks → ns
          if (e.ts < e.arg) e.ts = e.arg; // clamp inverted spans
        }
        store_.push_back(Merged{r->tid, e});
      }
    }
  }
}

void TraceSystem::drain() {
  std::lock_guard lock(mu_);
  drain_locked();
}

void TraceSystem::drain_if_pressed() {
  std::lock_guard lock(mu_);
  bool pressed = false;
  for (auto& r : rings_) {
    if (r->buf.size() * 2 >= r->buf.capacity()) {
      pressed = true;
      break;
    }
  }
  if (pressed) drain_locked();
}

std::uint64_t TraceSystem::dropped() const noexcept {
  std::lock_guard lock(mu_);
  std::uint64_t n = store_clamped_;
  for (const auto& r : rings_) n += r->dropped.load(std::memory_order_relaxed);
  return n;
}

std::size_t TraceSystem::event_count() {
  std::lock_guard lock(mu_);
  drain_locked();
  return store_.size();
}

std::vector<TraceSystem::Merged> TraceSystem::merged_events() {
  std::lock_guard lock(mu_);
  drain_locked();
  std::vector<Merged> out = store_;
  std::stable_sort(out.begin(), out.end(), [](const Merged& a, const Merged& b) {
    return a.ev.ts < b.ev.ts;
  });
  return out;
}

namespace {

/// Timeline row ordering: workers by id, then foreign spawners.
std::vector<int> sorted_rows(const std::vector<TraceSystem::Merged>& evs) {
  std::vector<int> rows;
  for (const auto& m : evs) {
    if (std::find(rows.begin(), rows.end(), m.tid) == rows.end())
      rows.push_back(m.tid);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string row_name(int tid) {
  char buf[32];
  if (tid >= TraceSystem::kForeignBase) {
    std::snprintf(buf, sizeof buf, "spawner %d", tid - TraceSystem::kForeignBase);
  } else {
    std::snprintf(buf, sizeof buf, "worker %d", tid);
  }
  return buf;
}

std::string us3(std::uint64_t ns) { // microseconds with ns resolution
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

} // namespace

std::string TraceSystem::to_chrome_json() {
  std::vector<Merged> evs = merged_events();

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  if (mode_ == TraceMode::Exec) {
    // Byte-compatible with the classic TraceRecorder export: one complete
    // ("X") event per executed task, integer microseconds, nothing else.
    std::vector<Merged> runs;
    for (const auto& m : evs)
      if (m.ev.kind == TraceEventKind::RunSpan) runs.push_back(m);
    std::stable_sort(runs.begin(), runs.end(), [](const Merged& a, const Merged& b) {
      return a.ev.arg < b.ev.arg;
    });
    for (const auto& m : runs) {
      const std::string label = label_name(m.ev.label);
      sep();
      os << "{\"name\":\"" << (label.empty() ? "task" : escape(label)) << " #"
         << m.ev.task << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << m.ev.arg / 1000
         << ",\"dur\":" << (m.ev.ts - m.ev.arg) / 1000 << ",\"pid\":0,\"tid\":"
         << m.tid << "}";
    }
    os << "]}";
    return os.str();
  }

  // Full mode: named worker rows, run spans, spawn→run and dep flow arrows,
  // instants for the scheduler events.
  const std::vector<int> rows = sorted_rows(evs);
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"name\":\"oss runtime\"}}";
  int sort_index = 0;
  for (int tid : rows) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << row_name(tid) << "\"}}";
    sep();
    os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"sort_index\":" << sort_index++ << "}}";
  }

  struct RunRef {
    int tid = -1;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
  };
  std::unordered_map<std::uint64_t, RunRef> runs;   // task → its run span
  std::unordered_map<std::uint64_t, int> spawn_row; // task → spawn row
  std::unordered_map<std::uint64_t, const char*> tier;
  for (const auto& m : evs) {
    if (m.ev.kind == TraceEventKind::RunSpan)
      runs[m.ev.task] = RunRef{m.tid, m.ev.arg, m.ev.ts};
    else if (m.ev.kind == TraceEventKind::Spawn)
      spawn_row[m.ev.task] = m.tid;
    else if (m.ev.kind == TraceEventKind::Place)
      tier[m.ev.task] = to_string(static_cast<PlaceTier>(m.ev.arg));
  }

  std::uint64_t dep_id = 0;
  for (const auto& m : evs) {
    const TraceEvent& e = m.ev;
    switch (e.kind) {
      case TraceEventKind::RunSpan: {
        const std::string label = label_name(e.label);
        sep();
        os << "{\"name\":\"" << (label.empty() ? "task" : escape(label)) << " #"
           << e.task << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << us3(e.arg)
           << ",\"dur\":" << us3(e.ts - e.arg) << ",\"pid\":0,\"tid\":" << m.tid;
        // args.task lets offline tools (analyze_trace --span) identify the
        // span without parsing the display name.
        os << ",\"args\":{\"task\":" << e.task;
        const auto t = tier.find(e.task);
        if (t != tier.end()) os << ",\"tier\":\"" << t->second << "\"";
        os << "}}";
        break;
      }
      case TraceEventKind::Spawn: {
        sep();
        os << "{\"name\":\"spawn\",\"cat\":\"spawn\",\"ph\":\"s\",\"id\":" << e.task
           << ",\"ts\":" << us3(e.ts) << ",\"pid\":0,\"tid\":" << m.tid << "}";
        break;
      }
      case TraceEventKind::Ready: {
        sep();
        os << "{\"name\":\"ready #" << e.task
           << "\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us3(e.ts)
           << ",\"pid\":0,\"tid\":" << m.tid << "}";
        break;
      }
      case TraceEventKind::Steal: {
        sep();
        os << "{\"name\":\"steal #" << e.task
           << "\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us3(e.ts)
           << ",\"pid\":0,\"tid\":" << m.tid << ",\"args\":{\"victim\":" << e.arg
           << "}}";
        break;
      }
      case TraceEventKind::Park:
      case TraceEventKind::Unpark: {
        sep();
        os << "{\"name\":\"" << (e.kind == TraceEventKind::Park ? "park" : "unpark")
           << "\",\"cat\":\"idle\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us3(e.ts)
           << ",\"pid\":0,\"tid\":" << m.tid << "}";
        break;
      }
      case TraceEventKind::Overflow: {
        sep();
        os << "{\"name\":\"overflow #" << e.task
           << "\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us3(e.ts)
           << ",\"pid\":0,\"tid\":" << m.tid << "}";
        break;
      }
      case TraceEventKind::DepContended: {
        sep();
        os << "{\"name\":\"dep contended #" << e.task
           << "\",\"cat\":\"deps\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us3(e.ts)
           << ",\"pid\":0,\"tid\":" << m.tid << "}";
        break;
      }
      case TraceEventKind::Edge: {
        // producer run-end → consumer run-begin, when both spans exist.
        const auto p = runs.find(e.arg);
        const auto c = runs.find(e.task);
        if (p == runs.end() || c == runs.end()) break;
        ++dep_id;
        sep();
        os << "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":" << dep_id
           << ",\"ts\":" << us3(p->second.end_ns) << ",\"pid\":0,\"tid\":"
           << p->second.tid << ",\"args\":{\"from\":" << e.arg
           << ",\"to\":" << e.task << "}}";
        sep();
        os << "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
           << dep_id << ",\"ts\":" << us3(c->second.begin_ns)
           << ",\"pid\":0,\"tid\":" << c->second.tid << "}";
        break;
      }
      case TraceEventKind::Place:
        break; // folded into the RunSpan args above
    }
    // The flow arrow's finish half: bind spawn→run at the run's begin.
    if (e.kind == TraceEventKind::RunSpan &&
        spawn_row.find(e.task) != spawn_row.end()) {
      sep();
      os << "{\"name\":\"spawn\",\"cat\":\"spawn\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
         << e.task << ",\"ts\":" << us3(e.arg) << ",\"pid\":0,\"tid\":" << m.tid
         << "}";
    }
  }
  os << "]}";
  return os.str();
}

const char* to_string(PlaceTier t) noexcept {
  switch (t) {
    case PlaceTier::Priority: return "priority";
    case PlaceTier::Local: return "local";
    case PlaceTier::Home: return "home";
    case PlaceTier::Global: return "global";
  }
  return "?";
}

bool TraceSystem::write_chrome_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

// Paraver event types (the 9xxxxxxx range is free for user semantics).
namespace {
constexpr long kPrvTask = 90000001;      // value = task id (run span borders)
constexpr long kPrvSpawn = 90000002;     // value = task id
constexpr long kPrvReady = 90000003;     // value = task id
constexpr long kPrvSteal = 90000004;     // value = victim worker + 1
constexpr long kPrvPark = 90000005;      // value 1 = park, 0 = unpark
constexpr long kPrvOverflow = 90000006;  // value = task id
constexpr long kPrvContended = 90000007; // value = task id
} // namespace

bool TraceSystem::write_paraver(const std::string& path) {
  std::string base = path;
  if (base.size() > 4 && base.compare(base.size() - 4, 4, ".prv") == 0)
    base.resize(base.size() - 4);

  const std::vector<Merged> evs = merged_events();
  std::vector<int> rows = sorted_rows(evs);
  if (rows.empty()) rows.push_back(0);
  const auto row_of = [&](int tid) {
    return static_cast<int>(
        std::find(rows.begin(), rows.end(), tid) - rows.begin()) + 1;
  };

  std::uint64_t dur = 0;
  for (const auto& m : evs) dur = std::max(dur, m.ev.ts);

  std::ofstream prv(base + ".prv", std::ios::binary);
  if (!prv) return false;
  // Header: date, duration (ns), 1 node with T cpus, 1 app with T threads
  // all on cpu 1.
  std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  localtime_s(&tm, &now);
#else
  localtime_r(&now, &tm);
#endif
  char date[64];
  std::strftime(date, sizeof date, "%d/%m/%Y at %H:%M", &tm);
  const std::size_t nrows = rows.size();
  prv << "#Paraver (" << date << "):" << dur << "_ns:1(" << nrows << "):1:1("
      << nrows << ":1)\n";

  for (const auto& m : evs) {
    const TraceEvent& e = m.ev;
    const int row = row_of(m.tid);
    switch (e.kind) {
      case TraceEventKind::RunSpan:
        // State record: running (state 1) for the span, plus a task-id
        // event at its begin.
        prv << "1:" << row << ":1:1:" << row << ':' << e.arg << ':' << e.ts
            << ":1\n";
        prv << "2:" << row << ":1:1:" << row << ':' << e.arg << ':' << kPrvTask
            << ':' << e.task << "\n";
        break;
      case TraceEventKind::Spawn:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':' << kPrvSpawn
            << ':' << e.task << "\n";
        break;
      case TraceEventKind::Ready:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':' << kPrvReady
            << ':' << e.task << "\n";
        break;
      case TraceEventKind::Steal:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':' << kPrvSteal
            << ':' << (e.arg + 1) << "\n";
        break;
      case TraceEventKind::Park:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':' << kPrvPark
            << ":1\n";
        break;
      case TraceEventKind::Unpark:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':' << kPrvPark
            << ":0\n";
        break;
      case TraceEventKind::Overflow:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':'
            << kPrvOverflow << ':' << e.task << "\n";
        break;
      case TraceEventKind::DepContended:
        prv << "2:" << row << ":1:1:" << row << ':' << e.ts << ':'
            << kPrvContended << ':' << e.task << "\n";
        break;
      case TraceEventKind::Place:
      case TraceEventKind::Edge:
        break; // structural; no timeline coordinate
    }
  }
  if (!prv) return false;

  std::ofstream rowf(base + ".row", std::ios::binary);
  if (!rowf) return false;
  rowf << "LEVEL THREAD SIZE " << nrows << "\n";
  for (int tid : rows) rowf << row_name(tid) << "\n";
  if (!rowf) return false;

  std::ofstream pcf(base + ".pcf", std::ios::binary);
  if (!pcf) return false;
  pcf << "EVENT_TYPE\n"
      << "0 " << kPrvTask << " Task id (run begin)\n"
      << "0 " << kPrvSpawn << " Task spawned\n"
      << "0 " << kPrvReady << " Task deps resolved\n"
      << "0 " << kPrvSteal << " Steal (value = victim worker + 1)\n"
      << "0 " << kPrvPark << " Worker parked (1) / woke (0)\n"
      << "0 " << kPrvOverflow << " Overflow placement\n"
      << "0 " << kPrvContended << " Dep-shard contention\n";
  return static_cast<bool>(pcf);
}

TraceRecorder& TraceSystem::legacy_recorder() {
  std::vector<Merged> runs;
  {
    std::lock_guard lock(mu_);
    drain_locked();
    for (const auto& m : store_)
      if (m.ev.kind == TraceEventKind::RunSpan) runs.push_back(m);
  }
  std::stable_sort(runs.begin(), runs.end(), [](const Merged& a, const Merged& b) {
    return a.ev.arg < b.ev.arg;
  });
  auto rec = std::make_unique<TraceRecorder>();
  for (const auto& m : runs) {
    rec->record(m.tid, m.ev.task, label_name(m.ev.label), m.ev.arg / 1000,
                m.ev.ts / 1000);
  }
  std::lock_guard lock(mu_);
  legacy_ = std::move(rec);
  return *legacy_;
}

} // namespace oss
