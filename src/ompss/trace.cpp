#include "ompss/trace.hpp"

#include <sstream>

namespace oss {

void TraceRecorder::record(int worker, std::uint64_t task_id,
                           const std::string& label, std::uint64_t start_us,
                           std::uint64_t end_us) {
  std::lock_guard lock(mu_);
  events_.push_back(Event{worker, task_id, label, start_us, end_us});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
} // namespace

std::string TraceRecorder::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << (e.label.empty() ? "task" : escape(e.label))
       << " #" << e.task_id << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << (e.end_us - e.start_us) << ",\"pid\":0,\"tid\":" << e.worker
       << "}";
  }
  os << "]}";
  return os.str();
}

} // namespace oss
