// Fifo policy: one sharded global FIFO, no local deques, no stealing.
// The placement-oblivious baseline the paper's locality results are
// measured against — local_pops and steals stay exactly zero.
#include "ompss/scheduler_impl.hpp"

namespace oss {

void FifoScheduler::enqueue_spawned(TaskPtr t, int /*spawner_worker*/) {
  if (place_priority(t)) return;
  global_.push(std::move(t));
}

void FifoScheduler::enqueue_unblocked(TaskPtr t, int /*finisher_worker*/) {
  if (place_priority(t)) return;
  global_.push(std::move(t));
}

TaskPtr FifoScheduler::pick(int worker, Stats& stats) {
  return pick_common(worker, stats, /*use_local=*/false);
}

} // namespace oss
