// Fifo policy: one sharded global FIFO, no local deques, no stealing.
// The placement-oblivious baseline the paper's locality results are
// measured against — local_pops and steals stay exactly zero.  Affinity is
// the one placement concession every policy shares: a home-node task goes
// to that node's queue (still FIFO within it) so `.affinity()` means the
// same thing whichever policy is active.
#include "ompss/scheduler_impl.hpp"

namespace oss {

void FifoScheduler::enqueue_spawned(TaskPtr t, int /*spawner_worker*/) {
  if (place_priority(t)) return;
  if (place_home(t)) return;
  const std::uint64_t id = t->id();
  global_.push(std::move(t));
  trace_place(id, PlaceTier::Global);
}

void FifoScheduler::enqueue_unblocked(TaskPtr t, int /*finisher_worker*/) {
  if (place_priority(t)) return;
  if (place_home(t)) return;
  const std::uint64_t id = t->id();
  global_.push(std::move(t));
  trace_place(id, PlaceTier::Global);
}

TaskPtr FifoScheduler::pick(int worker, Stats& stats) {
  return common_pick(worker, stats, /*use_local=*/false, /*steal=*/false);
}

} // namespace oss
