// taskloop.hpp — chunked loop-to-tasks helpers (OmpSs `taskloop` analogue).
//
// `spawn_for` splits [begin, end) into chunks and spawns one task per chunk.
// An optional access builder lets each chunk declare the regions it touches,
// so loop tasks compose with the dependency system (e.g. a later loop over
// the same array chains automatically):
//
//   oss::spawn_for(rt, 0, n, 256,
//       [&](std::size_t lo, std::size_t hi) { work(lo, hi); },
//       [&](std::size_t lo, std::size_t hi) {
//         return oss::AccessList{oss::out(&data[lo], hi - lo)};
//       });
//   rt.taskwait();
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "ompss/runtime.hpp"
#include "ompss/task_builder.hpp"

namespace oss {

/// Spawns one task per chunk of [begin, end).  `body(lo, hi)` processes a
/// half-open sub-range; `accesses(lo, hi)` (optional) declares its regions.
/// Tasks are only spawned — pair with `taskwait()`/`barrier()`.
inline void spawn_for(
    Runtime& rt, std::size_t begin, std::size_t end, std::size_t chunk,
    std::function<void(std::size_t, std::size_t)> body,
    std::function<AccessList(std::size_t, std::size_t)> accesses = nullptr,
    std::string label = "taskloop") {
  if (chunk == 0) chunk = 1;
  // One shared copy of the body; chunk lambdas stay small.
  auto shared_body =
      std::make_shared<std::function<void(std::size_t, std::size_t)>>(
          std::move(body));
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    TaskBuilder b = rt.task(label);
    if (accesses) b.accesses(accesses(lo, hi));
    b.spawn([shared_body, lo, hi] { (*shared_body)(lo, hi); });
  }
}

} // namespace oss
