#include "ompss/prof.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace oss {

namespace {

/// Same FNV-1a as the trace layer (trace.cpp): the two systems must agree
/// on the hash so one Task::trace_label slot serves both.
std::uint32_t fnv1a(const std::string& s) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h != 0 ? h : 0x9e3779b1u; // 0 is reserved for "unlabeled"
}

/// Instance epochs for intern()'s TLS cache (same scheme as TraceSystem):
/// starts at 1 so a zero-initialized cache never matches a live instance.
std::atomic<std::uint64_t> g_prof_epoch{1};

/// Key stored for label-less tasks: slot keys must be nonzero (0 = empty),
/// and 0x9e3779b1 is what an unlucky real label hashing to 0 remaps to —
/// keep "unlabeled" distinct from it.
constexpr std::uint32_t kUnlabeledKey = 1u;

std::size_t hist_bucket(std::uint64_t ticks) noexcept {
  if (ticks == 0) return 0;
  const unsigned b = static_cast<unsigned>(std::bit_width(ticks)) - 1u;
  return b < ProfSystem::kHistBuckets ? b : ProfSystem::kHistBuckets - 1;
}

void fetch_min(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void fetch_max(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string ms_str(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string us_str(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(ns) / 1e3);
  return buf;
}

} // namespace

bool prof_footer_enabled() {
  const char* v = std::getenv("OSS_PROF");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

ProfSystem::ProfSystem(std::size_t num_workers)
    : num_workers_(num_workers),
      shards_(new Shard[num_workers + 1]),
      epoch_(g_prof_epoch.fetch_add(1, std::memory_order_relaxed)),
      t0_ticks_(clock()),
      t0_wall_(std::chrono::steady_clock::now()) {}

std::uint32_t ProfSystem::intern(const std::string& label) {
  intern_calls_.fetch_add(1, std::memory_order_relaxed);
  if (label.empty()) return 0;
  const std::uint32_t h = fnv1a(label);
  // Per-thread recently-seen cache, same shape as TraceSystem::intern: the
  // steady state (spawn loops reusing a handful of labels) takes no lock.
  struct Cache {
    const ProfSystem* sys = nullptr;
    // The pointer alone can falsely match a *new* ProfSystem at a reused
    // address (a foreign spawner thread outliving the runtime would then
    // skip registering its labels here); the epoch disambiguates.
    std::uint64_t epoch = 0;
    std::uint32_t seen[8] = {};
    unsigned next = 0;
  };
  static thread_local Cache cache;
  if (cache.sys == this && cache.epoch == epoch_) {
    for (std::uint32_t s : cache.seen)
      if (s == h) return h;
  } else {
    cache = Cache{};
    cache.sys = this;
    cache.epoch = epoch_;
  }
  {
    std::lock_guard lock(mu_);
    labels_.emplace(h, label); // first string wins on a hash collision
  }
  cache.seen[cache.next++ % 8] = h;
  return h;
}

std::string ProfSystem::label_name(std::uint32_t hash) const {
  if (hash == 0 || hash == kUnlabeledKey) return "(unlabeled)";
  std::lock_guard lock(mu_);
  const auto it = labels_.find(hash);
  if (it != labels_.end()) return it->second;
  char buf[16];
  std::snprintf(buf, sizeof buf, "#%08x", hash);
  return buf;
}

void ProfSystem::record(int wid, std::uint32_t label, std::uint64_t exec_ticks,
                        std::uint64_t wait_ticks,
                        std::uint64_t queue_ticks) noexcept {
  Shard& sh = shards_[shard_index(wid)];
  const std::uint32_t key = label != 0 ? label : kUnlabeledKey;
  Slot* slot = nullptr;
  std::size_t i = key & (kSlots - 1);
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    Slot& s = sh.slots[i];
    std::uint32_t k = s.key.load(std::memory_order_relaxed);
    if (k == 0) {
      // Claim the empty slot; a racing claim of the same key also wins.
      if (s.key.compare_exchange_strong(k, key, std::memory_order_relaxed) ||
          k == key) {
        slot = &s;
        break;
      }
      // Claimed by a different label between load and CAS: keep probing.
    } else if (k == key) {
      slot = &s;
      break;
    }
    i = (i + 1) & (kSlots - 1);
  }
  if (slot == nullptr) {
    // More distinct labels than the table holds: count, never block.
    sh.overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->exec_sum.fetch_add(exec_ticks, std::memory_order_relaxed);
  fetch_min(slot->exec_min, exec_ticks);
  fetch_max(slot->exec_max, exec_ticks);
  slot->wait_sum.fetch_add(wait_ticks, std::memory_order_relaxed);
  slot->queue_sum.fetch_add(queue_ticks, std::memory_order_relaxed);
  slot->hist[hist_bucket(exec_ticks)].fetch_add(1, std::memory_order_relaxed);
}

void ProfSystem::note_path(std::uint64_t path_ticks,
                           const PathAttr& attr) noexcept {
  // Screening load: the overwhelmingly common losing candidate pays one
  // relaxed read.  Winners re-check under the mutex so the (length,
  // attribution) pair stays consistent.
  if (path_ticks <= span_ticks_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mu_);
  if (path_ticks > span_ticks_.load(std::memory_order_relaxed)) {
    span_ticks_.store(path_ticks, std::memory_order_relaxed);
    span_attr_ = attr;
  }
}

double ProfSystem::ns_per_tick() const {
  const std::uint64_t now_ticks = clock();
  const auto now_wall = std::chrono::steady_clock::now();
  const double dticks = static_cast<double>(now_ticks - t0_ticks_);
  const double dns =
      std::chrono::duration<double, std::nano>(now_wall - t0_wall_).count();
  if (dticks <= 0.0 || dns <= 0.0) return 1.0;
  return dns / dticks;
}

ProfileSnapshot ProfSystem::snapshot() const {
  ProfileSnapshot out;
  const double rate = ns_per_tick();
  out.ns_per_tick = rate;
  const auto to_ns = [&](std::uint64_t ticks) {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) * rate);
  };

  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t exec = 0;
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max = 0;
    std::uint64_t wait = 0;
    std::uint64_t queue = 0;
    std::array<std::uint64_t, kHistBuckets> hist{};
  };
  std::unordered_map<std::uint32_t, Agg> agg;
  for (std::size_t sh = 0; sh <= num_workers_; ++sh) {
    const Shard& shard = shards_[sh];
    out.overflowed += shard.overflow.load(std::memory_order_relaxed);
    for (const Slot& s : shard.slots) {
      const std::uint32_t key = s.key.load(std::memory_order_relaxed);
      if (key == 0) continue;
      const std::uint64_t n = s.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      Agg& a = agg[key];
      a.count += n;
      a.exec += s.exec_sum.load(std::memory_order_relaxed);
      a.min = std::min(a.min, s.exec_min.load(std::memory_order_relaxed));
      a.max = std::max(a.max, s.exec_max.load(std::memory_order_relaxed));
      a.wait += s.wait_sum.load(std::memory_order_relaxed);
      a.queue += s.queue_sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        a.hist[b] += s.hist[b].load(std::memory_order_relaxed);
      }
    }
  }

  out.labels.reserve(agg.size());
  for (const auto& [key, a] : agg) {
    ProfileSnapshot::Label l;
    l.name = label_name(key);
    l.hash = key;
    l.count = a.count;
    l.exec_ns = to_ns(a.exec);
    l.exec_min_ns = to_ns(a.min == std::numeric_limits<std::uint64_t>::max()
                              ? 0
                              : a.min);
    l.exec_max_ns = to_ns(a.max);
    l.wait_ns = to_ns(a.wait);
    l.queue_ns = to_ns(a.queue);
    l.hist = a.hist;
    out.tasks += l.count;
    out.work_ns += l.exec_ns;
    out.labels.push_back(std::move(l));
  }
  std::sort(out.labels.begin(), out.labels.end(),
            [](const ProfileSnapshot::Label& a, const ProfileSnapshot::Label& b) {
              return a.exec_ns > b.exec_ns;
            });

  out.span_ns = to_ns(span_ticks_.load(std::memory_order_relaxed));
  PathAttr attr;
  {
    // Copy out, resolve names unlocked: label_name takes mu_ itself.
    std::lock_guard lock(mu_);
    attr = span_attr_;
  }
  for (std::size_t i = 0; i < PathAttr::kTop; ++i) {
    if (attr.ticks[i] == 0) continue;
    out.critical_ns.emplace_back(label_name(attr.label[i]),
                                 to_ns(attr.ticks[i]));
  }
  std::sort(out.critical_ns.begin(), out.critical_ns.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string ProfileSnapshot::span_line(const std::string& tag) const {
  std::ostringstream os;
  os << "[oss-span " << tag << "] work=" << ms_str(work_ns)
     << "ms span=" << ms_str(span_ns) << "ms parallelism=";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", parallelism());
  os << buf;
  if (!critical_ns.empty()) {
    os << " critical:";
    for (const auto& [name, ns] : critical_ns) {
      os << ' ' << name << '=' << ms_str(ns) << "ms";
    }
  }
  return os.str();
}

std::string ProfileSnapshot::to_table(const std::string& tag) const {
  std::ostringstream os;
  os << span_line(tag) << '\n';
  os << "[oss-prof " << tag << "] " << tasks << " tasks, " << labels.size()
     << " labels";
  if (overflowed > 0) os << " (" << overflowed << " records overflowed)";
  os << '\n';
  char line[256];
  std::snprintf(line, sizeof line, "  %-24s %10s %12s %10s %10s %10s %12s %12s\n",
                "label", "count", "exec_ms", "mean_us", "min_us", "max_us",
                "wait_ms", "queue_ms");
  os << line;
  for (const Label& l : labels) {
    std::snprintf(line, sizeof line,
                  "  %-24s %10llu %12s %10.1f %10s %10s %12s %12s\n",
                  l.name.size() <= 24 ? l.name.c_str()
                                      : l.name.substr(0, 24).c_str(),
                  static_cast<unsigned long long>(l.count),
                  ms_str(l.exec_ns).c_str(), l.mean_ns() / 1e3,
                  us_str(l.exec_min_ns).c_str(), us_str(l.exec_max_ns).c_str(),
                  ms_str(l.wait_ns).c_str(), ms_str(l.queue_ns).c_str());
    os << line;
  }
  return os.str();
}

} // namespace oss
