#include "ompss/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

#include "ompss/numa_alloc.hpp"
#include "ompss/pinning.hpp"
#include "ompss/replay.hpp"
#include "ompss/task_pool.hpp"

namespace oss {

namespace {
/// Runtime construction serial (Runtime::serial_): lets a ReplayGraph
/// reject replay against any runtime other than the live instance that
/// captured it, including a restart reusing the same address.
std::atomic<std::uint64_t> g_runtime_serial{0};
} // namespace

// ---------------------------------------------------------------------------
// Thread-local binding: which runtime/worker/task the current thread is in.
// Saved and restored around nested scopes so tests may create runtimes
// inside tasks of other runtimes.
// ---------------------------------------------------------------------------

struct Runtime::ThreadBinding {
  Runtime* rt = nullptr;
  int worker = -1;
  Task* current_task = nullptr;
};

namespace {
thread_local Runtime::ThreadBinding tl_binding;

/// RAII loan of a per-thread scratch std::vector<TaskPtr> — the successor
/// and newly-ready lists in on_finished() used to be fresh vectors per
/// retirement, i.e. one or two heap allocations per task.  A small
/// free-stack (not a single slot) because retirement can nest: a polling
/// taskwait inside a task body executes further tasks, whose on_finished
/// needs its own scratch while the outer one is live.
class ScratchTaskVec {
 public:
  ScratchTaskVec() {
    auto& s = stack();
    if (!s.free.empty()) {
      v_ = s.free.back();
      s.free.pop_back();
    } else {
      v_ = new std::vector<TaskPtr>();
    }
  }
  ~ScratchTaskVec() {
    v_->clear();
    auto& s = stack();
    if (s.free.size() < kMaxCached) {
      s.free.push_back(v_);
    } else {
      delete v_;
    }
  }
  ScratchTaskVec(const ScratchTaskVec&) = delete;
  ScratchTaskVec& operator=(const ScratchTaskVec&) = delete;

  std::vector<TaskPtr>& get() noexcept { return *v_; }

 private:
  static constexpr std::size_t kMaxCached = 8;
  struct Stack {
    std::vector<std::vector<TaskPtr>*> free;
    ~Stack() {
      for (auto* p : free) delete p;
    }
  };
  static Stack& stack() {
    thread_local Stack s;
    return s;
  }
  std::vector<TaskPtr>* v_;
};

#if defined(__unix__) || defined(__APPLE__)
// SIGUSR1 → health dump (OSS_WATCHDOG).  The handler only sets a flag; the
// collector thread polls it and does the actual (non-async-signal-safe)
// dump.  Installation is refcounted so overlapping watchdog runtimes share
// the handler and the last destructor restores whatever was there before.
std::atomic<bool> g_sigusr1{false};
std::mutex g_sigusr1_mu;
int g_sigusr1_users = 0;
struct sigaction g_sigusr1_prev;

void sigusr1_handler(int) { g_sigusr1.store(true, std::memory_order_relaxed); }

void install_sigusr1() {
  std::lock_guard lock(g_sigusr1_mu);
  if (++g_sigusr1_users > 1) return;
  // A signal delivered to a previous watchdog runtime but never consumed
  // (destroyed before its collector's next poll) must not fire a spurious
  // dump in this generation.
  g_sigusr1.store(false, std::memory_order_relaxed);
  struct sigaction sa {};
  sa.sa_handler = &sigusr1_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, &g_sigusr1_prev);
}

void uninstall_sigusr1() {
  std::lock_guard lock(g_sigusr1_mu);
  if (--g_sigusr1_users > 0) return;
  sigaction(SIGUSR1, &g_sigusr1_prev, nullptr);
}

bool take_sigusr1() { return g_sigusr1.exchange(false, std::memory_order_relaxed); }
#else
void install_sigusr1() {}
void uninstall_sigusr1() {}
bool take_sigusr1() { return false; }
#endif
} // namespace

Runtime* Runtime::current() noexcept { return tl_binding.rt; }
int Runtime::current_worker() noexcept { return tl_binding.worker; }

// ---------------------------------------------------------------------------
// Construction / destruction
// ---------------------------------------------------------------------------

Runtime::Runtime(RuntimeConfig cfg)
    : cfg_(cfg),
      num_threads_(cfg.resolved_threads()),
      root_ctx_(std::make_shared<TaskContext>(cfg.dep_shards, cfg.pool)),
      topo_(cfg.resolved_topology()),
      scheduler_(Scheduler::create(cfg.scheduler, num_threads_,
                                   cfg.steal_tries, topo_, cfg.numa,
                                   cfg.pressure)),
      stats_(num_threads_) {
  serial_ = g_runtime_serial.fetch_add(1, std::memory_order_relaxed) + 1;
  pool_overflow_base_ = pool::overflow_total();
  // Built once, not per spawn: the sink is the same closure for the life
  // of the runtime and EdgeSink is a std::function (capture copy + possible
  // heap box on every construction).
  edge_sink_ = [this](const TaskPtr& from, const TaskPtr& to, DepKind kind) {
    switch (kind) {
      case DepKind::Raw: stats_.on_edge_raw(); break;
      case DepKind::War: stats_.on_edge_war(); break;
      case DepKind::Waw: stats_.on_edge_waw(); break;
      case DepKind::Explicit: stats_.on_edge_explicit(); break;
    }
    if (graph_) graph_->add_edge(from->id(), to->id(), kind);
    // Capture hook: edges discovered while a GraphCapture scope is open
    // are recorded into the scope (registration runs on the capturing
    // thread, so the relaxed load observes the scope it opened itself).
    if (GraphCapture* cap = capture_.load(std::memory_order_relaxed)) {
      cap->on_edge(from, to, kind);
    }
  };
  if (cfg_.record_graph) graph_ = std::make_unique<GraphRecorder>();
  if (cfg_.resolved_trace_mode() != TraceMode::Off) {
    trace_ = std::make_unique<TraceSystem>(cfg_.resolved_trace_mode(),
                                           cfg_.trace_buffer);
    trace_->bind_worker(0);
    // Wired before the pool threads exist, so the very first enqueue any
    // worker performs already traces.
    scheduler_->set_trace(trace_.get());
    trace_out_ = cfg_.trace_out;
  }
  if (cfg_.prof || cfg_.prof_every_ms > 0 || cfg_.watchdog_ms > 0) {
    prof_ = std::make_unique<ProfSystem>(num_threads_);
    run_slots_.reset(new RunSlot[num_threads_]);
  }
  // Critical-path propagation is shared by the profiler and the graph
  // recorder (DOT critical-path coloring); trace-only runs skip it.
  path_track_ = prof_ != nullptr || graph_ != nullptr;

  // One idle gate per NUMA node so home-node enqueues wake same-node
  // parked workers (node-aware wakeup); single-node topologies get exactly
  // one gate — the pre-NUMA behaviour.
  const std::size_t gates =
      (cfg_.numa != NumaMode::Off && !topo_.single_node()) ? topo_.num_nodes()
                                                           : 1;
  idle_gates_.reserve(gates);
  for (std::size_t g = 0; g < gates; ++g) {
    idle_gates_.push_back(std::make_unique<EventCount>());
  }

  // The constructing thread becomes worker 0 for the lifetime of the
  // runtime (it executes tasks whenever it waits).
  tl_binding = ThreadBinding{this, 0, nullptr};

  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
  }

  if (cfg_.resolved_pin_mode() != PinMode::Off) apply_pinning();

  if (cfg_.watchdog_ms > 0) install_sigusr1();

  if (cfg_.stats_every_ms > 0 || cfg_.prof_every_ms > 0 ||
      cfg_.watchdog_ms > 0) {
    collector_ = std::thread([this] { collector_loop(); });
  }
}

void Runtime::collector_loop() {
  // The shared low-duty background thread: OSS_STATS_EVERY_MS drains the
  // trace rings (bounding drop pressure in apps that never reach a barrier)
  // and prints the StatsSnapshot *delta* since its last tick, so a long run
  // reads as a rate log rather than ever-growing totals; OSS_PROF_EVERY_MS
  // prints profile deltas the same way; OSS_WATCHDOG flags intervals where
  // tasks are in flight but nothing retired and dumps the runtime state.
  // One thread, one tick period (the minimum of the armed knobs), each
  // purpose firing on its own schedule.
  using steady = std::chrono::steady_clock;
  const auto period = [](std::size_t v) {
    return std::chrono::milliseconds(v);
  };
  std::size_t tick_ms = ~std::size_t{0};
  if (cfg_.stats_every_ms > 0) tick_ms = std::min(tick_ms, cfg_.stats_every_ms);
  if (cfg_.prof_every_ms > 0) tick_ms = std::min(tick_ms, cfg_.prof_every_ms);
  if (cfg_.watchdog_ms > 0) tick_ms = std::min(tick_ms, cfg_.watchdog_ms);

  StatsSnapshot prev = stats();
  ProfileSnapshot prev_prof;
  if (prof_ && cfg_.prof_every_ms > 0) prev_prof = prof_->snapshot();
  const auto start = steady::now();
  auto stats_due = start + period(cfg_.stats_every_ms);
  auto prof_due = start + period(cfg_.prof_every_ms);
  auto watch_due = start + period(cfg_.watchdog_ms);
  std::uint64_t watch_last_executed = prev.tasks_executed;
  bool stall_reported = false;

  std::unique_lock lock(collector_mu_);
  while (!collector_stop_.load(std::memory_order_acquire)) {
    collector_cv_.wait_for(lock, period(tick_ms), [this] {
      return collector_stop_.load(std::memory_order_acquire);
    });
    if (collector_stop_.load(std::memory_order_acquire)) break;
    lock.unlock();
    const auto now = steady::now();

    if (take_sigusr1()) {
      std::ostringstream os;
      dump_health(os);
      std::fputs(os.str().c_str(), stderr);
      health_dumps_.fetch_add(1, std::memory_order_relaxed);
    }

    if (cfg_.stats_every_ms > 0 && now >= stats_due) {
      if (trace_) trace_->drain();
      const StatsSnapshot cur = stats();
      std::fprintf(stderr,
                   "[oss-stats tick] +tasks=%llu +steals=%llu +parks=%llu "
                   "+overflow=%llu trace_dropped=%llu\n",
                   static_cast<unsigned long long>(cur.tasks_executed -
                                                   prev.tasks_executed),
                   static_cast<unsigned long long>(cur.steals - prev.steals),
                   static_cast<unsigned long long>(cur.parks - prev.parks),
                   static_cast<unsigned long long>(cur.overflow_placements -
                                                   prev.overflow_placements),
                   static_cast<unsigned long long>(cur.trace_dropped));
      prev = cur;
      stats_due = now + period(cfg_.stats_every_ms);
    }

    if (cfg_.prof_every_ms > 0 && prof_ && now >= prof_due) {
      const ProfileSnapshot cur = prof_->snapshot();
      const char* top = cur.labels.empty() ? "-" : cur.labels[0].name.c_str();
      std::fprintf(stderr,
                   "[oss-prof tick] +tasks=%llu +work=%.3fms span=%.3fms "
                   "parallelism=%.2f top=%s\n",
                   static_cast<unsigned long long>(cur.tasks - prev_prof.tasks),
                   static_cast<double>(cur.work_ns - prev_prof.work_ns) / 1e6,
                   static_cast<double>(cur.span_ns) / 1e6, cur.parallelism(),
                   top);
      prev_prof = cur;
      prof_due = now + period(cfg_.prof_every_ms);
    }

    if (cfg_.watchdog_ms > 0 && now >= watch_due) {
      const std::uint64_t executed = stats_.snapshot().tasks_executed;
      const std::size_t inflight = pending_.load(std::memory_order_acquire);
      if (inflight > 0 && executed == watch_last_executed) {
        // Tasks in flight, zero retirements for a whole interval: stalled.
        // One dump per stall episode — the flag resets on any progress.
        if (!stall_reported) {
          stall_reported = true;
          std::ostringstream os;
          os << "[oss-watchdog] no task retired for " << cfg_.watchdog_ms
             << " ms with " << inflight << " in flight\n";
          dump_health(os);
          std::fputs(os.str().c_str(), stderr);
          health_dumps_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        stall_reported = false;
      }
      watch_last_executed = executed;
      watch_due = now + period(cfg_.watchdog_ms);
    }

    lock.lock();
  }
}

void Runtime::apply_pinning() {
  const PinMode mode = cfg_.resolved_pin_mode();
  // Node-set pinning on a single-node topology (including OSS_NUMA=off)
  // would pin every worker to the same full CPU set — a no-op; the knob
  // structurally dissolves like the rest of the NUMA subsystem.  The
  // single-CPU layouts (compact/scatter) stay meaningful on one node: they
  // stop the kernel migrating workers between cores mid-run.
  if (mode == PinMode::Node && topo_.single_node()) return;
  if (!pinning_supported()) {
    std::fprintf(stderr,
                 "oss: OSS_PIN=%s ignored: thread affinity is not supported "
                 "on this platform\n",
                 to_string(mode));
    return;
  }

  // Compact/scatter targets come from the pure layout function; node mode
  // keeps the per-worker node lookup (the scheduler owns that mapping).
  const std::vector<std::vector<int>> layout =
      pin_layout(topo_, mode, num_threads_);

  const std::vector<int> allowed = allowed_cpus();
  std::size_t skipped = 0;
  if (allowed.empty()) {
    skipped = num_threads_;
  } else {
    for (std::size_t w = 0; w < num_threads_; ++w) {
      std::vector<int> want;
      if (mode == PinMode::Node) {
        const int node = scheduler_->worker_node(static_cast<int>(w));
        want = topo_.nodes()[static_cast<std::size_t>(node)].cpus;
      } else {
        want = layout[w];
        // Flat/blind topologies discover no CPUs; lay the workers out over
        // the process mask instead so compact/scatter still pin one CPU
        // each rather than silently skipping everyone.
        if (want.empty()) want = {allowed[w % allowed.size()]};
      }
      const std::vector<int> target = intersect_cpus(want, allowed);
      if (target.empty()) {
        ++skipped;
        continue;
      }
      bool ok;
      if (w == 0) {
        ok = pin_current_thread(target);
        if (ok) {
          owner_prev_cpus_ = allowed;
          owner_tid_ = std::this_thread::get_id();
        }
      } else {
        ok = pin_thread(workers_[w - 1].native_handle(), target);
      }
      if (ok) {
        ++pinned_workers_;
      } else {
        ++skipped;
      }
    }
  }
  if (skipped > 0) {
    std::fprintf(stderr,
                 "oss: OSS_PIN=%s: process cpu mask does not cover the "
                 "requested layout; %zu of %zu workers left unpinned\n",
                 to_string(mode), skipped, num_threads_);
  }
}

Runtime::~Runtime() {
  // Stop the collector before *anything* else is torn down: its ticks call
  // stats()/dump_health() against live runtime state, so joining it first
  // (atomic stop flag + cv handshake) guarantees no tick can land
  // mid-destruction.  The empty lock_guard orders the store against a
  // concurrent wait_for predicate check — a collector between its predicate
  // and its sleep observes either the flag or the notify.
  if (collector_.joinable()) {
    collector_stop_.store(true, std::memory_order_release);
    { std::lock_guard lock(collector_mu_); }
    collector_cv_.notify_all();
    collector_.join();
  }
  try {
    barrier();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oss::Runtime: exception pending at destruction: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "oss::Runtime: exception pending at destruction\n");
  }
  stop_.store(true, std::memory_order_release);
  for (auto& gate : idle_gates_) gate->notify_all();
  {
    std::lock_guard lock(cv_mu_);
    cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
  // Final drain after every producer thread is gone, then the deferred
  // export (trace_to / OSS_TRACE_OUT).  Failures warn — a missing trace
  // file must never take the process down in a destructor.
  if (trace_) {
    trace_->drain();
    if (!trace_out_.empty()) {
      const bool prv = trace_out_.size() >= 4 &&
                       trace_out_.compare(trace_out_.size() - 4, 4, ".prv") == 0;
      const bool ok = prv ? trace_->write_paraver(trace_out_)
                          : trace_->write_chrome_json(trace_out_);
      if (!ok) {
        std::fprintf(stderr, "oss: could not write trace to '%s'\n",
                     trace_out_.c_str());
      }
    }
  }
  // OSS_PROF=1 footer: the sorted per-label table + work/span summary,
  // printed after the workers joined (every record is in).
  if (prof_ && prof_footer_enabled()) {
    std::fputs(prof_->snapshot().to_table("runtime").c_str(), stderr);
  }
  if (cfg_.watchdog_ms > 0) uninstall_sigusr1();
  // Hand the owning thread back with its pre-pin affinity mask: the caller
  // outlives the runtime, and a thread silently left pinned to one node
  // would be a surprising parting gift.  Only when the destructor runs on
  // the thread that was pinned (restoring through a stored handle would
  // dereference a possibly-dead pthread_t when the owner exited first);
  // a runtime destroyed cross-thread leaves that thread's pinned mask in
  // place.
  if (!owner_prev_cpus_.empty() && std::this_thread::get_id() == owner_tid_) {
    pin_current_thread(owner_prev_cpus_);
  }
  if (tl_binding.rt == this) tl_binding = ThreadBinding{};
}

// ---------------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------------

ContextPtr Runtime::current_spawn_context() {
  if (tl_binding.rt == this && tl_binding.current_task != nullptr) {
    return tl_binding.current_task->child_context();
  }
  return root_ctx_;
}

// The legacy positional shims route through the exact spec (and thus the
// same inline-closure slot and pooled task path) the builder uses: the
// vector argument is adopted wholesale, and `fn` is already a SmallFn by
// the time it arrives — a shim spawn and a builder spawn of the same body
// perform identical allocations (test_task_pool.cpp holds that parity).
std::uint64_t Runtime::spawn(AccessList accesses, Task::Fn fn, std::string label) {
  TaskSpec spec;
  spec.accesses.adopt(std::move(accesses));
  spec.label = std::move(label);
  return spawn_task(std::move(spec), std::move(fn)).id();
}

std::uint64_t Runtime::spawn(AccessList accesses, Task::Fn fn, TaskOptions opts) {
  TaskSpec spec;
  spec.accesses.adopt(std::move(accesses));
  spec.label = std::move(opts.label);
  spec.priority = opts.priority;
  spec.deferred = opts.deferred;
  return spawn_task(std::move(spec), std::move(fn)).id();
}

TaskHandle Runtime::spawn_task(TaskSpec spec, Task::Fn fn) {
  ContextPtr ctx = spec.context ? std::move(spec.context)
                                : current_spawn_context();
  // Capture scope (oss::replay): tasks spawned while a GraphCapture is
  // open are recorded and *held* — validated up front so a rejected spawn
  // leaves no bookkeeping behind.  Undeferred (`if(0)`) tasks would
  // deadlock against their own hold predecessor, and non-root contexts
  // (TaskGroup / nested spawns) cannot be reproduced by replay, which
  // always re-submits into the root context.
  GraphCapture* const cap = capture_.load(std::memory_order_relaxed);
  if (cap != nullptr) {
    if (!spec.deferred) {
      throw std::logic_error(
          "oss::GraphCapture: undeferred (if(0)) tasks cannot be captured");
    }
    if (ctx != root_ctx_) {
      throw std::logic_error(
          "oss::GraphCapture: only root-context tasks can be captured (no "
          "TaskGroup or nested spawns inside a capture scope)");
    }
  }
  const std::uint64_t id =
      next_task_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  TaskPtr task;
  if (cfg_.pool) {
    // Steady-state path: a recycled task object, its containers still
    // holding last life's capacity.  prepare() + set_accesses() touch no
    // allocator once the pool and the task's buffers are warm.
    const pool::AcquireResult a = pool::acquire();
    stats_.on_pool_acquire(a.recycled);
    a.task->prepare(id, std::move(fn), ctx, std::move(spec.label));
    a.task->set_accesses(spec.accesses.data(), spec.accesses.size());
    task = TaskPtr::adopt(a.task);
  } else {
    // OSS_POOL=off: one fresh allocation per task, deleted at final
    // release — the pre-pool behavior.
    task = TaskPtr::adopt(
        new Task(id, std::move(fn),
                 AccessList(spec.accesses.begin(), spec.accesses.end()), ctx,
                 std::move(spec.label)));
  }
  task->set_priority(spec.priority);
  task->set_undeferred(!spec.deferred);
  ctx->live_children.fetch_add(1, std::memory_order_acq_rel);
  pending_.fetch_add(1, std::memory_order_acq_rel);

  if (graph_) graph_->add_node(id, task->label());
  if (trace_) task->set_trace_label(trace_->intern(task->label()));
  if (prof_) {
    // Same FNV-1a hash as the trace intern, so one trace_label slot serves
    // both; when both are on the second intern is a TLS-cache hit.
    task->set_trace_label(prof_->intern(task->label()));
    task->set_spawn_ts(ProfSystem::clock());
  }

  // Spawn guard: hold one phantom predecessor while edges materialize so a
  // burst of concurrently finishing producers cannot publish (or worse,
  // publish twice) a half-registered task.  Released below; whoever brings
  // preds to zero — this thread or a finisher — owns the Ready transition.
  task->preds.store(1, std::memory_order_relaxed);

  // Record into the open capture scope *before* registration: on_spawn
  // assigns the capture index (so on_edge can resolve the consumer) and
  // adds the hold predecessor that keeps the whole iteration parked until
  // GraphCapture::finish().
  if (cap != nullptr) cap->on_spawn(task);

  const RegisterReceipt receipt =
      ctx->domain().register_task(task, edge_sink_, trace_.get());
  stats_.on_dep_registration(receipt.shards_touched, receipt.contended);

  // Explicit handle edges (TaskBuilder::after), deduplicated: one edge
  // per distinct predecessor even if the same handle was passed twice.
  for (std::size_t i = 0; i < spec.after.size(); ++i) {
    const TaskPtr& pred = spec.after[i];
    bool dup = false;
    for (std::size_t j = 0; j < i && !dup; ++j) {
      dup = (spec.after[j] == pred);
    }
    if (!dup) add_explicit_edge(pred, task, edge_sink_, trace_.get());
  }

  // NUMA home node, resolved in precedence order: the explicit hint, the
  // node of the largest registered access region (.affinity_auto()), then
  // the chain-inherited node (max-bytes vote over dependency predecessors
  // with a resolved home, recorded by dep_domain during registration
  // above).  Hints naming a node the topology does not have are ignored,
  // so affinity-annotated code runs unchanged on smaller machines.
  // Derived homes (auto/inherited) are marked *soft*: the scheduler's
  // pressure feedback may widen them, never an explicit hint.  Must be set
  // before the spawn guard is released — a finisher may publish the task
  // to the scheduler the instant preds can reach zero.
  const auto valid_node = [this](int n) {
    return n >= 0 && static_cast<std::size_t>(n) < topo_.num_nodes();
  };
  int home = -1;
  bool soft = false;
  if (valid_node(spec.affinity)) {
    home = spec.affinity;
  } else if (spec.affinity_auto) {
    const int derived = home_node_of(task->accesses());
    if (valid_node(derived)) {
      home = derived;
      soft = true;
    }
  }
  if (home < 0 && valid_node(task->inherited_node())) {
    home = task->inherited_node();
    soft = true;
  }
  if (home >= 0 && !topo_.single_node()) {
    task->set_home_node(home, soft);
  }

  stats_.on_spawn();

  const int spawner = (tl_binding.rt == this) ? tl_binding.worker : -1;

  // Release the spawn guard.  acq_rel: the release half publishes the
  // registration (accesses, locks, home node) to the finisher that later
  // zeroes preds; the acquire half, when *we* zero it, synchronizes with
  // every producer that already finished and decremented.
  const bool ready =
      task->preds.fetch_sub(1, std::memory_order_acq_rel) == 1;
  if (ready) {
    task->set_state(TaskState::Ready);
    // Ready at spawn: no dependency wait (ready_ts == spawn_ts).
    if (prof_) task->set_ready_ts(task->spawn_ts());
  }
  if (trace_) trace_->emit_spawn(id, task->trace_label(), ready);

  if (task->undeferred()) {
    // OmpSs if(0): the spawning thread waits for the dependencies itself
    // (helping with other work meanwhile) and runs the body inline.
    // on_finished() marks undeferred tasks Ready without enqueueing them.
    std::size_t idle_rounds = 0;
    while (task->state() != TaskState::Ready) {
      if (try_execute_one(spawner)) {
        idle_rounds = 0;
        continue;
      }
      if (++idle_rounds > cfg_.spin_rounds) {
        std::this_thread::yield();
        idle_rounds = 0;
      }
    }
    execute(task, spawner);
    return TaskHandle(this, std::move(task));
  }

  if (ready) {
    // Node-aware wakeup: prefer a worker parked on the task's home node,
    // else one on the spawner's node (warm cache), else anyone.
    const int wake_node =
        task->home_node() >= 0 ? task->home_node()
                               : scheduler_->worker_node(spawner);
    TaskPtr to_run = task;
    scheduler_->enqueue_spawned(std::move(to_run), spawner);
    wake_one_worker(wake_node);
    if (blocked_waiters_.load(std::memory_order_acquire) > 0) {
      std::lock_guard lock(cv_mu_);
      cv_.notify_all();
    }
  }
  return TaskHandle(this, std::move(task));
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Runtime::execute(const TaskPtr& t, int wid) {
  t->set_state(TaskState::Running);
  Task* const prev_task = tl_binding.current_task;
  Runtime* const prev_rt = tl_binding.rt;
  const int prev_wid = tl_binding.worker;
  tl_binding = ThreadBinding{this, wid, t.get()};

  // Commutative regions: hold every exclusion lock for the duration of the
  // body.  Locks are acquired in address order (deadlock-free) and
  // deduplicated (one region may appear via several accesses).
  std::vector<std::mutex*> locks;
  for (const auto& sp : t->exclusion_locks()) locks.push_back(sp.get());
  std::sort(locks.begin(), locks.end());
  locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
  for (std::mutex* m : locks) m->lock();

  // Raw-tick timestamps: one rdtsc here, one after the body; the ns
  // conversion happens at drain/snapshot time, off the execution path.
  const std::uint64_t t0 = (trace_ || path_track_) ? TraceSystem::clock() : 0;
  if (prof_ && wid >= 0) {
    // Watchdog view: what this worker is running right now.  Relaxed
    // stores — the collector's read is an approximate snapshot by design.
    RunSlot& slot = run_slots_[static_cast<std::size_t>(wid)];
    slot.label.store(t->trace_label(), std::memory_order_relaxed);
    slot.start_ticks.store(t0, std::memory_order_relaxed);
    slot.task_id.store(t->id(), std::memory_order_relaxed);
  }
  try {
    t->run();
  } catch (...) {
    t->parent_context()->note_exception(std::current_exception());
  }
  for (auto it = locks.rbegin(); it != locks.rend(); ++it) (*it)->unlock();
  t->release_body(); // handles may outlive the task; free captures now
  if (trace_) trace_->emit_run(t->id(), t->trace_label(), t0);

  std::uint64_t exec_ticks = 0;
  if (path_track_) {
    const std::uint64_t t1 = TraceSystem::clock();
    exec_ticks = t1 > t0 ? t1 - t0 : 0;
  }
  if (prof_) {
    if (wid >= 0) {
      run_slots_[static_cast<std::size_t>(wid)].task_id.store(
          0, std::memory_order_relaxed);
    }
    const std::uint64_t spawn_ts = t->spawn_ts();
    std::uint64_t ready_ts = t->ready_ts();
    if (ready_ts == 0) ready_ts = spawn_ts;
    const std::uint64_t wait = ready_ts > spawn_ts ? ready_ts - spawn_ts : 0;
    const std::uint64_t queue = t0 > ready_ts ? t0 - ready_ts : 0;
    prof_->record(wid, t->trace_label(), exec_ticks, wait, queue);
  }

  tl_binding = ThreadBinding{prev_rt, prev_wid, prev_task};
  stats_.on_execute(wid);
  on_finished(t, wid, exec_ticks);
}

void Runtime::on_finished(const TaskPtr& t, int wid,
                          std::uint64_t exec_ticks) {
  // Retirement takes only the finished task's own successor lock — no
  // dependency-shard lock is ever re-entered here, so a finish never
  // serializes against in-flight registrations of unrelated regions.
  // finish_take_successors marks the task finished and drains the list as
  // one atomic step: an edge racing in either lands in `succs` or observes
  // `finished` and is skipped by the registrant.  Both lists are borrowed
  // per-thread scratch vectors — retirement runs once per task and must
  // not allocate (ScratchTaskVec above).
  ScratchTaskVec succs_scratch;
  std::vector<TaskPtr>& succs = succs_scratch.get();
  t->finish_take_successors(succs);
  t->set_state(TaskState::Finished);

  // Critical-path bookkeeping (oss::prof / graph coloring): this task's
  // path length is the longest predecessor path plus its own execution.
  // Reading the pred-path fields plain is safe here: every offer to them
  // happened under this task's succ_mu_ before the offering predecessor
  // decremented preds, and finish_take_successors just took that mutex.
  std::uint64_t path_ticks = 0;
  PathAttr path_attr{};
  if (path_track_) {
    path_ticks = t->pred_path_ticks() + exec_ticks;
    path_attr = t->pred_attr();
    path_attr.add(t->trace_label(), exec_ticks);
    t->set_path_ticks(path_ticks);
    if (prof_) prof_->note_path(path_ticks, path_attr);
    if (graph_) graph_->set_node_path(t->id(), path_ticks, t->crit_pred());
  }

  ScratchTaskVec ready_scratch;
  std::vector<TaskPtr>& newly_ready = ready_scratch.get();
  std::uint64_t ready_now = 0; // one clock read shared by the whole burst
  for (TaskPtr& s : succs) {
    // The offer must precede the decrement: the successor reads its pred
    // path plain once ITS preds hit zero, relying on exactly this order.
    if (path_track_) s->offer_pred_path(path_ticks, t->id(), path_attr);
    // acq_rel: acquire pairs with the producers' release decrements (their
    // outputs are visible to the task body) and with the spawner's guard
    // release (the registration is complete when we publish).
    if (s->preds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // ready_ts before the Ready store: an undeferred spawner acquires the
      // state and may read the timestamp immediately.
      if (prof_) {
        if (ready_now == 0) ready_now = ProfSystem::clock();
        s->set_ready_ts(ready_now);
      }
      s->set_state(TaskState::Ready);
      if (trace_) trace_->emit_ready(s->id());
      // Undeferred tasks are claimed by their (polling) spawner and must
      // not be enqueued; the Ready state transition is their signal.
      if (!s->undeferred()) newly_ready.push_back(std::move(s));
    }
  }

  // Batch wakeup: enqueue the whole burst first, then release min(N, parked)
  // workers in one eventcount pass per node gate instead of N serial
  // notify_one calls.  On multi-node topologies the burst is bucketed by
  // home node so each bucket's wakeup starts at the gate whose workers own
  // the data (node-aware wakeup); tasks without a home count towards the
  // finisher's node.  The single-gate (single-node) case skips the
  // bucketing entirely — this path runs once per task completion and must
  // not allocate.  The finisher itself continues with at most one of the
  // tasks; every additional one can feed a woken thief.
  const std::size_t gates = idle_gates_.size();
  if (gates == 1) {
    for (TaskPtr& s : newly_ready) {
      scheduler_->enqueue_unblocked(std::move(s), wid);
    }
    wake_workers(newly_ready.size(), 0);
  } else {
    constexpr std::size_t kInlineGates = 16;
    std::size_t inline_counts[kInlineGates] = {};
    std::vector<std::size_t> spill;
    if (gates > kInlineGates) spill.resize(gates, 0);
    std::size_t* per_gate = gates > kInlineGates ? spill.data() : inline_counts;
    const std::size_t finisher_gate = gate_index(wid);
    for (TaskPtr& s : newly_ready) {
      const int home = s->home_node();
      const std::size_t g =
          (home >= 0 && static_cast<std::size_t>(home) < gates)
              ? static_cast<std::size_t>(home)
              : finisher_gate;
      ++per_gate[g];
      scheduler_->enqueue_unblocked(std::move(s), wid);
    }
    for (std::size_t g = 0; g < gates; ++g) {
      if (per_gate[g] > 0) wake_workers(per_gate[g], static_cast<int>(g));
    }
  }

  // Child-count updates must happen after the graph bookkeeping so a
  // taskwait that observes zero children also observes the final graph.
  t->parent_context()->live_children.fetch_sub(1, std::memory_order_acq_rel);
  pending_.fetch_sub(1, std::memory_order_acq_rel);

  if (blocked_waiters_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(cv_mu_);
    cv_.notify_all();
  }
}

bool Runtime::try_execute_one(int wid) {
  TaskPtr t = scheduler_->pick(wid, stats_);
  if (!t) return false;
  execute(t, wid);
  return true;
}

void Runtime::worker_loop(int wid) {
  tl_binding = ThreadBinding{this, wid, nullptr};
  if (trace_) trace_->bind_worker(wid);
  std::size_t idle_rounds = 0;
  std::size_t sleep_us = 20;
  // Park on the own node's gate (node-aware wakeup): home-node enqueues
  // bump this gate first, so the worker that wakes is one whose socket
  // already holds the task's data.
  EventCount& gate = *idle_gates_[gate_index(wid)];
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_execute_one(wid)) {
      idle_rounds = 0;
      sleep_us = 20;
      continue;
    }
    ++idle_rounds;
    switch (cfg_.idle) {
      case IdlePolicy::Spin:
        // Pure polling: the behaviour the paper observes ("all used cores
        // are always fully loaded even if there is insufficient work").
        break;
      case IdlePolicy::Yield:
        if (idle_rounds > cfg_.spin_rounds) {
          std::this_thread::yield();
          idle_rounds = 0;
        }
        break;
      case IdlePolicy::Sleep:
        // Power-friendly back-off: short sleeps with exponential growth,
        // trading wake-up latency for idle CPU time.
        if (idle_rounds > cfg_.spin_rounds) {
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
          if (sleep_us < 1000) sleep_us *= 2;
          idle_rounds = 0;
        }
        break;
      case IdlePolicy::Park:
        // Eventcount protocol: register as a waiter, re-check for work,
        // and only then sleep.  An enqueue between prepare and wait bumps
        // the epoch, so wait() returns immediately — no lost wakeups, no
        // sleep-loop latency, no idle CPU burn.  The re-check is a cheap
        // emptiness probe (prepare_wait's seq_cst op makes earlier
        // enqueues visible to it); actually picking the task happens back
        // in the loop, outside the waiter window, so producers never see
        // a phantom waiter while this worker is busy executing.
        if (idle_rounds > cfg_.spin_rounds) {
          const std::uint64_t key = gate.prepare_wait();
          if (stop_.load(std::memory_order_acquire) ||
              scheduler_->queued() != 0) {
            gate.cancel_wait();
          } else {
            stats_.on_park();
            if (trace_) trace_->emit_park();
            // The scheduler's per-node parked counts feed the home-queue
            // pressure feedback ("is another node idle?").
            scheduler_->on_worker_park(wid);
            gate.wait(key);
            scheduler_->on_worker_unpark(wid);
            if (trace_) trace_->emit_unpark();
          }
          idle_rounds = 0;
        }
        break;
    }
  }
  tl_binding = ThreadBinding{};
}

std::size_t Runtime::gate_index(int wid) const noexcept {
  if (idle_gates_.size() == 1) return 0;
  const int node = scheduler_->worker_node(wid);
  return (node >= 0 && static_cast<std::size_t>(node) < idle_gates_.size())
             ? static_cast<std::size_t>(node)
             : 0;
}

void Runtime::wake_one_worker(int preferred_node) {
  wake_workers(1, preferred_node);
}

void Runtime::wake_workers(std::size_t n, int preferred_node) {
  if (n == 0) return;
  const std::size_t gates = idle_gates_.size();
  // Start at the preferred node's gate; fall back round-robin over the
  // rest until `n` workers were signalled or every gate was tried, so a
  // wakeup can never be lost to node preference (work conservation).
  std::size_t start;
  if (preferred_node >= 0 && static_cast<std::size_t>(preferred_node) < gates) {
    start = static_cast<std::size_t>(preferred_node);
  } else {
    start = gates == 1
                ? 0
                : wake_cursor_.fetch_add(1, std::memory_order_relaxed) % gates;
  }
  std::size_t woken = 0;
  for (std::size_t i = 0; i < gates && woken < n; ++i) {
    woken += idle_gates_[(start + i) % gates]->notify_many(n - woken);
  }
  if (woken > 0) stats_.on_wakeup(woken);
}

// ---------------------------------------------------------------------------
// Waiting
// ---------------------------------------------------------------------------

void Runtime::wait_until(const std::function<bool()>& done) {
  const int wid = (tl_binding.rt == this) ? tl_binding.worker : -1;

  if (cfg_.wait_policy == WaitPolicy::Blocking && num_threads_ > 1) {
    // Sleep-based wait (the "more expensive blocking thread barrier" of the
    // paper's rgbcmy analysis).  The waiter does not execute tasks; with a
    // single thread there would be nobody left to run them, so that case
    // falls through to the polling path below.
    blocked_waiters_.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock lock(cv_mu_);
    cv_.wait(lock, [&] { return done(); });
    blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  // Polling wait: help execute tasks until the predicate holds.
  std::size_t idle_rounds = 0;
  while (!done()) {
    if (try_execute_one(wid)) {
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds > cfg_.spin_rounds) {
      std::this_thread::yield();
      idle_rounds = 0;
    }
  }
}

void Runtime::taskwait() { taskwait_scope(current_spawn_context()); }

void Runtime::taskwait_on(const void* p, std::size_t bytes) {
  ContextPtr ctx = current_spawn_context();
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  std::vector<TaskPtr> waitees;
  // The domain locks its own shards; as before, the wait set covers
  // previously spawned siblings (spawns racing this call are not covered).
  ctx->domain().collect_overlapping(begin, begin + bytes, waitees);
  if (waitees.empty()) return;
  wait_until([&] {
    for (const TaskPtr& t : waitees) {
      if (!t->finished()) return false;
    }
    return true;
  });
}

void Runtime::taskwait_on(const TaskHandle& h) {
  const TaskPtr& t = h.task();
  if (!t || t->finished()) return;
  if (h.runtime() != this) {
    throw std::invalid_argument(
        "oss::Runtime::taskwait_on: handle belongs to a different runtime");
  }
  wait_until([&] { return t->finished(); });
}

void Runtime::taskwait_scope(const ContextPtr& ctx) {
  stats_.on_taskwait();
  wait_until([&] {
    return ctx->live_children.load(std::memory_order_acquire) == 0;
  });
  if (std::exception_ptr ep = ctx->take_exception()) std::rethrow_exception(ep);
}

void Runtime::barrier() {
  stats_.on_barrier();
  wait_until([&] { return pending_.load(std::memory_order_acquire) == 0; });
  // Quiescent point: relieve any ring at half capacity so iterative apps
  // (barrier per frame/phase) never drop events between real drains.  Rings
  // below the threshold are left alone — an empty-handed check is two loads
  // per ring, so tight barrier loops stay cheap.
  if (trace_) trace_->drain_if_pressed();
  if (std::exception_ptr ep = root_ctx_->take_exception())
    std::rethrow_exception(ep);
}

void Runtime::critical(std::string_view name, const std::function<void()>& fn) {
  std::lock_guard lock(criticals_.get(name));
  fn();
}

// ---------------------------------------------------------------------------
// TaskHandle (declared in task_handle.hpp; needs the complete Runtime)
// ---------------------------------------------------------------------------

void TaskHandle::wait() const {
  if (rt_ == nullptr || task_ == nullptr || task_->finished()) return;
  rt_->taskwait_on(*this);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

StatsSnapshot Runtime::stats() const {
  // The single coherent merge of runtime-owned and scheduler-owned
  // counters (see the header for the relaxed-read contract).  Counters are
  // sampled in one pass here so every consumer — table1, the apps'
  // StatsSnapshot out-params, tests — sees the same merge, rather than
  // each call site stitching its own.
  StatsSnapshot s = stats_.snapshot();
  s.overflow_placements = scheduler_->overflow_placements();
  if (trace_) s.trace_dropped = trace_->dropped();
  // The task pool is process-wide; report the overflow delta since this
  // runtime was constructed (approximate when runtimes overlap, exact for
  // the usual one-runtime-at-a-time case).
  s.pool_overflow = pool::overflow_total() - pool_overflow_base_;
  return s;
}

ProfileSnapshot Runtime::profile() const {
  return prof_ ? prof_->snapshot() : ProfileSnapshot{};
}

void Runtime::dump_health(std::ostream& os) const {
  const StatsSnapshot s = stats();
  const std::size_t inflight = pending_.load(std::memory_order_acquire);
  os << "[oss-health] pending=" << inflight << " spawned=" << s.tasks_spawned
     << " executed=" << s.tasks_executed << " queued=" << scheduler_->queued()
     << "\n";

  const QueueDepths qd = scheduler_->queue_depths();
  os << "[oss-health] queues: priority=" << qd.priority
     << " global=" << qd.global;
  for (std::size_t n = 0; n < qd.per_node.size(); ++n) {
    os << " node" << n << "=" << qd.per_node[n]
       << "(parked=" << scheduler_->parked_on_node(static_cast<int>(n)) << ")";
  }
  os << "\n";

  // What every worker is doing right now (racy snapshot; a task may retire
  // between the id load and the print — ages are approximate).
  const double rate = prof_ ? prof_->ns_per_tick() : 1.0;
  const std::uint64_t now = ProfSystem::clock();
  for (std::size_t w = 0; w < num_threads_; ++w) {
    os << "[oss-health] worker " << w << ": ";
    const std::uint64_t id =
        run_slots_ ? run_slots_[w].task_id.load(std::memory_order_relaxed) : 0;
    if (id != 0) {
      const std::uint32_t lab =
          run_slots_[w].label.load(std::memory_order_relaxed);
      const std::uint64_t start =
          run_slots_[w].start_ticks.load(std::memory_order_relaxed);
      const double ms =
          now > start ? static_cast<double>(now - start) * rate / 1e6 : 0.0;
      os << "running #" << id << " '"
         << (prof_ ? prof_->label_name(lab) : std::string("?")) << "' for "
         << static_cast<std::uint64_t>(ms) << " ms";
    } else {
      os << "idle";
    }
    if (w < qd.per_worker.size()) os << ", deque=" << qd.per_worker[w];
    os << "\n";
  }

  // Oldest unfinished tasks still registered in the root dependency domain
  // (tasks declaring no accesses are invisible here).  The TaskPtr refs
  // keep them alive and un-recycled while we print.
  std::vector<TaskPtr> unfinished;
  root_ctx_->domain().collect_overlapping(0, ~std::uintptr_t{0}, unfinished);
  std::sort(unfinished.begin(), unfinished.end(),
            [](const TaskPtr& a, const TaskPtr& b) {
              return a->spawn_ts() < b->spawn_ts();
            });
  const std::size_t show = std::min<std::size_t>(unfinished.size(), 5);
  if (show > 0) {
    os << "[oss-health] oldest unfinished tasks (" << unfinished.size()
       << " total):\n";
  }
  for (std::size_t i = 0; i < show; ++i) {
    const TaskPtr& t = unfinished[i];
    const std::uint64_t spawn = t->spawn_ts();
    const double age_ms =
        (spawn != 0 && now > spawn)
            ? static_cast<double>(now - spawn) * rate / 1e6
            : 0.0;
    os << "[oss-health]   #" << t->id() << " '" << t->label() << "' "
       << to_string(t->state())
       << " preds=" << t->preds.load(std::memory_order_relaxed) << " age="
       << static_cast<std::uint64_t>(age_ms) << " ms\n";
  }
}

std::string Runtime::export_graph_dot() const {
  return graph_ ? graph_->to_dot() : std::string{};
}

std::string Runtime::export_trace_json() const {
  return trace_ ? trace_->to_chrome_json() : std::string{};
}

void Runtime::trace_to(std::string path) {
  if (!trace_) {
    std::fprintf(stderr,
                 "oss: trace_to(\"%s\") ignored: tracing is off (set "
                 "OSS_TRACE=exec|full or RuntimeConfig::trace_mode before "
                 "constructing the runtime)\n",
                 path.c_str());
    return;
  }
  trace_out_ = std::move(path);
}

} // namespace oss
