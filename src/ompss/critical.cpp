#include "ompss/critical.hpp"

namespace oss {

std::mutex& CriticalRegistry::get(std::string_view name) {
  std::lock_guard lock(map_mu_);
  auto it = sections_.find(std::string(name));
  if (it == sections_.end()) {
    it = sections_.emplace(std::string(name), std::make_unique<std::mutex>()).first;
  }
  return *it->second;
}

std::size_t CriticalRegistry::section_count() const {
  std::lock_guard lock(map_mu_);
  return sections_.size();
}

} // namespace oss
