#include "ompss/scheduler.hpp"

namespace oss {

Scheduler::Scheduler(SchedulerPolicy policy, std::size_t num_workers)
    : policy_(policy), local_(num_workers) {}

void Scheduler::enqueue_spawned(TaskPtr t, int spawner_worker) {
  if (t->priority() > 0) {
    global_hi_.push_back(std::move(t));
    return;
  }
  switch (policy_) {
    case SchedulerPolicy::Fifo:
    case SchedulerPolicy::Locality:
      global_.push_back(std::move(t));
      break;
    case SchedulerPolicy::WorkStealing:
      if (spawner_worker >= 0 &&
          static_cast<std::size_t>(spawner_worker) < local_.size()) {
        local_[static_cast<std::size_t>(spawner_worker)].push_back(std::move(t));
      } else {
        global_.push_back(std::move(t));
      }
      break;
  }
}

void Scheduler::enqueue_unblocked(TaskPtr t, int finisher_worker) {
  if (t->priority() > 0) {
    global_hi_.push_back(std::move(t));
    return;
  }
  switch (policy_) {
    case SchedulerPolicy::Fifo:
      global_.push_back(std::move(t));
      break;
    case SchedulerPolicy::Locality:
    case SchedulerPolicy::WorkStealing:
      if (finisher_worker >= 0 &&
          static_cast<std::size_t>(finisher_worker) < local_.size()) {
        // Front of the finisher's queue: runs next on the same worker,
        // back-to-back with its producer (the paper's cache-locality win).
        local_[static_cast<std::size_t>(finisher_worker)].push_front(std::move(t));
      } else {
        global_.push_back(std::move(t));
      }
      break;
  }
}

TaskPtr Scheduler::pick(int worker, Stats& stats) {
  const bool is_worker =
      worker >= 0 && static_cast<std::size_t>(worker) < local_.size();

  if (TaskPtr t = global_hi_.pop_front()) {
    stats.on_global_pop();
    return t;
  }

  if (is_worker && policy_ != SchedulerPolicy::Fifo) {
    if (TaskPtr t = local_[static_cast<std::size_t>(worker)].pop_front()) {
      stats.on_local_pop();
      return t;
    }
  }

  if (TaskPtr t = global_.pop_front()) {
    stats.on_global_pop();
    return t;
  }

  if (policy_ != SchedulerPolicy::Fifo && !local_.empty()) {
    // Steal scan starting from a rotating position to spread contention.
    const std::uint32_t start =
        steal_seed_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = local_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (is_worker && victim == static_cast<std::size_t>(worker)) continue;
      if (TaskPtr t = local_[victim].pop_back()) {
        stats.on_steal();
        return t;
      }
    }
  }
  return nullptr;
}

std::size_t Scheduler::queued() const {
  std::size_t n = global_hi_.size() + global_.size();
  for (const auto& q : local_) n += q.size();
  return n;
}

} // namespace oss
