#include "ompss/scheduler.hpp"

#include <new>
#include <stdexcept>
#include <thread>

#include "ompss/numa_alloc.hpp"
#include "ompss/scheduler_impl.hpp"

namespace oss {

namespace {

/// Shard the global queues by worker count: contention grows with workers,
/// but more shards weaken cross-shard FIFO fairness, so scale gently.
/// (<=2 workers get a single shard, preserving strict FIFO order there.)
std::size_t shard_count(std::size_t num_workers) {
  const std::size_t n = num_workers / 2;
  if (n < 1) return 1;
  return n > 8 ? 8 : n;
}

/// splitmix64 — turns small worker ids into well-mixed RNG seeds.
std::uint64_t seed_from_id(std::uint64_t id) {
  std::uint64_t z = (id + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1; // xorshift must not start at 0
}

} // namespace

SchedulerBase::SchedulerBase(SchedulerPolicy policy, std::size_t num_workers,
                             std::size_t steal_tries, const Topology& topo,
                             NumaMode numa, std::size_t pressure)
    : Scheduler(policy),
      num_workers_(num_workers),
      steal_tries_(steal_tries == 0 ? 1 : steal_tries),
      pressure_threshold_(pressure),
      topo_(topo),
      numa_mode_(numa),
      global_hi_(shard_count(num_workers)),
      global_(shard_count(num_workers)) {
  const bool multi_node = numa_mode_ != NumaMode::Off && !topo_.single_node();

  worker_node_.resize(num_workers_, 0);
  node_workers_.resize(multi_node ? topo_.num_nodes() : 1);
  node_parked_ = std::make_unique<std::atomic<int>[]>(node_workers_.size());
  for (std::size_t n = 0; n < node_workers_.size(); ++n) {
    node_parked_[n].store(0, std::memory_order_relaxed);
  }
  for (std::size_t w = 0; w < num_workers_; ++w) {
    const int node = multi_node
                         ? topo_.node_of_worker(static_cast<int>(w), num_workers_)
                         : 0;
    worker_node_[w] = node;
    node_workers_[static_cast<std::size_t>(node)].push_back(static_cast<int>(w));
  }

  if (multi_node) {
    node_queues_.reserve(topo_.num_nodes());
    for (std::size_t n = 0; n < topo_.num_nodes(); ++n) {
      node_queues_.push_back(std::make_unique<ShardedTaskQueue>(
          shard_count(num_workers_)));
    }
  }

  // State blocks: one node-bound page-backed allocation per worker, so the
  // deque control words and ring buffers live on the owning worker's node.
  // Binding only happens under NumaMode::Bind on a real multi-node
  // topology; otherwise numa_raw_alloc degrades to plain aligned pages.
  workers_.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i) {
    const int bind_node =
        (multi_node && numa_mode_ == NumaMode::Bind) ? worker_node_[i] : -1;
    void* mem = numa_raw_alloc(sizeof(WorkerState), bind_node);
    WorkerState* ws = new (mem) WorkerState(bind_node);
    ws->rng = seed_from_id(i);
    ws->steal_budget.store(steal_tries_, std::memory_order_relaxed);
    workers_.push_back(ws);
  }
}

SchedulerBase::~SchedulerBase() {
  for (WorkerState* ws : workers_) {
    ws->~WorkerState();
    numa_raw_free(ws, sizeof(WorkerState));
  }
}

int SchedulerBase::worker_node(int worker) const noexcept {
  if (!is_worker(worker)) return -1;
  return worker_node_[static_cast<std::size_t>(worker)];
}

std::size_t SchedulerBase::steal_budget(int worker) const noexcept {
  if (!is_worker(worker)) return steal_tries_;
  return workers_[static_cast<std::size_t>(worker)]->steal_budget.load(
      std::memory_order_relaxed);
}

void SchedulerBase::on_worker_park(int worker) noexcept {
  if (!is_worker(worker)) return;
  const auto node =
      static_cast<std::size_t>(worker_node_[static_cast<std::size_t>(worker)]);
  node_parked_[node].fetch_add(1, std::memory_order_relaxed);
}

void SchedulerBase::on_worker_unpark(int worker) noexcept {
  if (!is_worker(worker)) return;
  const auto node =
      static_cast<std::size_t>(worker_node_[static_cast<std::size_t>(worker)]);
  node_parked_[node].fetch_sub(1, std::memory_order_relaxed);
}

std::size_t SchedulerBase::parked_on_node(int node) const noexcept {
  if (node < 0 || static_cast<std::size_t>(node) >= node_workers_.size()) {
    return 0;
  }
  const int n =
      node_parked_[static_cast<std::size_t>(node)].load(std::memory_order_relaxed);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

TaskPtr SchedulerBase::pick_common(int worker, Stats& stats, bool use_local) {
  if (TaskPtr t = global_hi_.pop()) {
    stats.on_global_pop();
    return t;
  }
  if (use_local && is_worker(worker)) {
    if (TaskPtr t = worker_state(worker).deque.take()) {
      stats.on_local_pop();
      return t;
    }
  }
  // Own node's affinity queue before the global queue: home-node tasks are
  // the ones whose data is on this socket.
  const int my_node = is_worker(worker)
                          ? worker_node_[static_cast<std::size_t>(worker)]
                          : -1;
  if (my_node >= 0 && !node_queues_.empty()) {
    if (TaskPtr t = node_queues_[static_cast<std::size_t>(my_node)]->pop()) {
      stats.on_global_pop();
      return t;
    }
  }
  if (TaskPtr t = global_.pop()) {
    stats.on_global_pop();
    return t;
  }
  // Foreign node queues last: work conservation beats placement — a task is
  // better executed remotely than stranded (its home node may not even have
  // a worker).  One refinement (the drain-side dual of the enqueue-side
  // pressure feedback): when the foreign queue's home node has *parked*
  // workers — idle capacity that a wakeup is already racing towards — a
  // worker skips the raid for exactly one pick (patience token), giving the
  // home node one scheduling quantum to claim its own work.  The very next
  // pick drains unconditionally, so nothing can strand; on oversubscribed
  // machines this one yield is what lets home workers run at all.
  if (!node_queues_.empty()) {
    WorkerState* const st =
        is_worker(worker) ? &worker_state(worker) : nullptr;
    bool deferred = false;
    for (std::size_t n = 0; n < node_queues_.size(); ++n) {
      if (static_cast<int>(n) == my_node) continue;
      // Same knob as the enqueue-side widening: OSS_PRESSURE=0 turns the
      // whole pressure feedback off, patience included.
      if (st != nullptr && pressure_threshold_ > 0 &&
          st->foreign_deferrals < kForeignPatience &&
          node_parked_[n].load(std::memory_order_relaxed) > 0 &&
          node_queues_[n]->size() > 0) {
        deferred = true;
        continue;
      }
      if (TaskPtr t = node_queues_[n]->pop()) {
        if (st != nullptr) st->foreign_deferrals = 0;
        stats.on_global_pop();
        return t;
      }
    }
    if (st != nullptr) {
      st->deferred_this_pick = deferred;
      if (deferred) {
        ++st->foreign_deferrals;
      } else {
        st->foreign_deferrals = 0;
      }
    }
  }
  return nullptr;
}

TaskPtr SchedulerBase::common_pick(int worker, Stats& stats, bool use_local,
                                   bool steal) {
  TaskPtr t = pick_common(worker, stats, use_local);
  if (!t && steal) t = steal_from_siblings(worker, stats);
  // Patience epilogue, multi-node only (single-node topologies build no
  // node queues and must stay byte-for-byte on the old pick path).
  if (!node_queues_.empty() && is_worker(worker)) {
    WorkerState& st = worker_state(worker);
    if (st.deferred_this_pick) {
      st.deferred_this_pick = false;
      // The patience only means something if the skipped node's woken
      // workers can actually run — but never at the cost of work this
      // worker could have stolen: yield only when the whole pick (steal
      // tier included) found nothing.  One ~µs syscall, taken only while
      // another node has both queued work and idle workers.
      if (!t) std::this_thread::yield();
    }
  }
  account_pick(worker, t, stats);
  return t;
}

TaskPtr SchedulerBase::try_steal(std::size_t victim, int thief, Stats& stats) {
  TaskPtr t = workers_[victim]->deque.steal();
  if (!t) return nullptr;
  stats.on_steal();
  if (trace_ != nullptr) {
    trace_->emit_steal(t->id(), static_cast<int>(victim));
  }
  if (!node_queues_.empty() && is_worker(thief) &&
      worker_node_[victim] != worker_node_[static_cast<std::size_t>(thief)]) {
    stats.on_steal_remote();
  }
  return t;
}

TaskPtr SchedulerBase::steal_from_siblings(int thief, Stats& stats) {
  const std::size_t n = num_workers_;
  const bool self_is_worker = is_worker(thief);
  if (n == 0 || (self_is_worker && n == 1)) return nullptr;

  WorkerState* st = self_is_worker ? &worker_state(thief) : nullptr;
  const std::size_t rounds =
      st != nullptr ? st->steal_budget.load(std::memory_order_relaxed)
                    : steal_tries_;
  const int my_node =
      self_is_worker ? worker_node_[static_cast<std::size_t>(thief)] : -1;
  const std::vector<int>* mates =
      (st != nullptr && !node_queues_.empty())
          ? &node_workers_[static_cast<std::size_t>(my_node)]
          : nullptr;

  for (std::size_t round = 0; round < rounds; ++round) {
    if (mates != nullptr) {
      // Same-socket pass first: stealing from a sibling on the same node
      // keeps the task's working set on this socket's memory.
      if (mates->size() > 1) {
        const std::size_t m = mates->size();
        const std::size_t start =
            static_cast<std::size_t>(next_rand(st->rng)) % m;
        for (std::size_t i = 0; i < m; ++i) {
          const int victim = (*mates)[(start + i) % m];
          if (victim == thief) continue;
          if (TaskPtr t = try_steal(static_cast<std::size_t>(victim), thief,
                                    stats)) {
            grow_budget(st);
            return t;
          }
        }
      }
      // Remote pass: cross-socket victims only.
      const std::size_t start =
          static_cast<std::size_t>(next_rand(st->rng)) % n;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        if (worker_node_[victim] == my_node) continue;
        if (TaskPtr t = try_steal(victim, thief, stats)) {
          grow_budget(st);
          return t;
        }
      }
    } else {
      // Flat sweep (single-node topologies and non-worker thieves).
      std::size_t start;
      if (st != nullptr) {
        start = static_cast<std::size_t>(next_rand(st->rng)) % n;
      } else {
        start = foreign_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        if (self_is_worker && victim == static_cast<std::size_t>(thief)) {
          continue;
        }
        if (TaskPtr t = try_steal(victim, thief, stats)) {
          grow_budget(st);
          return t;
        }
      }
    }
  }
  stats.on_steal_failed();
  // Adaptive back-off: sustained failed sweeps halve the budget towards a
  // single sweep, cutting useless cold-end probing (and cross-socket
  // traffic) when the system is genuinely out of stealable work.
  decay_budget(st);
  return nullptr;
}

std::size_t SchedulerBase::queued() const {
  std::size_t n = global_hi_.size() + global_.size();
  for (const auto& q : node_queues_) n += q->size();
  for (std::size_t i = 0; i < num_workers_; ++i) n += workers_[i]->deque.size();
  return n;
}

QueueDepths SchedulerBase::queue_depths() const {
  QueueDepths d;
  d.priority = global_hi_.size();
  d.global = global_.size();
  d.per_node.reserve(node_queues_.size());
  for (const auto& q : node_queues_) d.per_node.push_back(q->size());
  d.per_worker.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i) {
    d.per_worker.push_back(workers_[i]->deque.size());
  }
  return d;
}

std::unique_ptr<Scheduler> Scheduler::create(SchedulerPolicy policy,
                                             std::size_t num_workers,
                                             std::size_t steal_tries,
                                             const Topology& topo,
                                             NumaMode numa,
                                             std::size_t pressure) {
  switch (policy) {
    case SchedulerPolicy::Fifo:
      return std::make_unique<FifoScheduler>(num_workers, steal_tries, topo,
                                             numa, pressure);
    case SchedulerPolicy::Locality:
      return std::make_unique<LocalityScheduler>(num_workers, steal_tries,
                                                 topo, numa, pressure);
    case SchedulerPolicy::WorkStealing:
      return std::make_unique<WorkStealingScheduler>(num_workers, steal_tries,
                                                     topo, numa, pressure);
  }
  throw std::invalid_argument("Scheduler::create: unknown policy");
}

} // namespace oss
