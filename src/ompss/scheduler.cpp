#include "ompss/scheduler.hpp"

#include <stdexcept>

#include "ompss/scheduler_impl.hpp"

namespace oss {

namespace {

/// Shard the global queues by worker count: contention grows with workers,
/// but more shards weaken cross-shard FIFO fairness, so scale gently.
/// (<=2 workers get a single shard, preserving strict FIFO order there.)
std::size_t shard_count(std::size_t num_workers) {
  const std::size_t n = num_workers / 2;
  if (n < 1) return 1;
  return n > 8 ? 8 : n;
}

/// splitmix64 — turns small worker ids into well-mixed RNG seeds.
std::uint64_t seed_from_id(std::uint64_t id) {
  std::uint64_t z = (id + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1; // xorshift must not start at 0
}

} // namespace

SchedulerBase::SchedulerBase(SchedulerPolicy policy, std::size_t num_workers,
                             std::size_t steal_tries)
    : Scheduler(policy),
      num_workers_(num_workers),
      steal_tries_(steal_tries == 0 ? 1 : steal_tries),
      global_hi_(shard_count(num_workers)),
      global_(shard_count(num_workers)),
      workers_(std::make_unique<WorkerState[]>(num_workers)) {
  for (std::size_t i = 0; i < num_workers_; ++i) {
    workers_[i].rng = seed_from_id(i);
  }
}

TaskPtr SchedulerBase::pick_common(int worker, Stats& stats, bool use_local) {
  if (TaskPtr t = global_hi_.pop()) {
    stats.on_global_pop();
    return t;
  }
  if (use_local && is_worker(worker)) {
    if (TaskPtr t = worker_state(worker).deque.take()) {
      stats.on_local_pop();
      return t;
    }
  }
  if (TaskPtr t = global_.pop()) {
    stats.on_global_pop();
    return t;
  }
  return nullptr;
}

TaskPtr SchedulerBase::steal_from_siblings(int thief, Stats& stats) {
  const std::size_t n = num_workers_;
  const bool self_is_worker = is_worker(thief);
  if (n == 0 || (self_is_worker && n == 1)) return nullptr;

  for (std::size_t round = 0; round < steal_tries_; ++round) {
    std::size_t start;
    if (self_is_worker) {
      start = static_cast<std::size_t>(next_rand(worker_state(thief).rng)) % n;
    } else {
      start = foreign_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (self_is_worker && victim == static_cast<std::size_t>(thief)) continue;
      if (TaskPtr t = workers_[victim].deque.steal()) {
        stats.on_steal();
        return t;
      }
    }
  }
  stats.on_steal_failed();
  return nullptr;
}

std::size_t SchedulerBase::queued() const {
  std::size_t n = global_hi_.size() + global_.size();
  for (std::size_t i = 0; i < num_workers_; ++i) n += workers_[i].deque.size();
  return n;
}

std::unique_ptr<Scheduler> Scheduler::create(SchedulerPolicy policy,
                                             std::size_t num_workers,
                                             std::size_t steal_tries) {
  switch (policy) {
    case SchedulerPolicy::Fifo:
      return std::make_unique<FifoScheduler>(num_workers, steal_tries);
    case SchedulerPolicy::Locality:
      return std::make_unique<LocalityScheduler>(num_workers, steal_tries);
    case SchedulerPolicy::WorkStealing:
      return std::make_unique<WorkStealingScheduler>(num_workers, steal_tries);
  }
  throw std::invalid_argument("Scheduler::create: unknown policy");
}

} // namespace oss
