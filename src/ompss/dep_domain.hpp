// dep_domain.hpp — sharded address-range dependency tracking.
//
// This is the mechanism behind the paper's central claim: "task dependencies
// are resolved at runtime, using the input/output specification of the
// function arguments."  A `DepDomain` maintains, for every byte range that
// any sibling task has declared, the *current writer set* (either the last
// writer, or an open commutative/concurrent group acting as a collective
// writer) and the *readers since that write*.  Registering a new task's
// accesses derives the hazards:
//
//   RAW  — `in`/`inout` after a write: edge from the writer set.
//   WAW  — writing modes after a write: edge from the writer set.
//   WAR  — writing modes after reads: edges from every reader since the
//          last write.
//
// Group modes:
//   Commutative — consecutive commutative accesses to a region join one
//     group: no edges among members (any order), but the runtime hands each
//     member the region's exclusion lock so they never run concurrently.
//   Concurrent — like commutative but without the lock (members synchronize
//     themselves).
//   A group is *closed* by any non-matching access; later accesses treat
//   the whole group as the last writer.
//
// Because OmpSs performs no automatic renaming (paper §3, observation 2),
// WAR and WAW are *real* edges here — which is exactly why the H.264 decoder
// needs manual renaming through circular buffers to pipeline.
//
// Concurrency (docs/dependencies.md): the address space is divided into
// fixed stripes of 2^kStripeShift bytes; each stripe hashes to one of a
// power-of-two number of *shards*, and each shard owns an interval map plus
// its own lock.  Registering a task splits its accesses at stripe
// boundaries, sorts the touched shard set, and locks the shards in shard-id
// order — the whole registration is atomic (no cyclic edge sets between
// concurrent spawners), deadlock-free, and the common single-shard case
// pays exactly one uncontended lock.  Overlapping byte ranges always share
// the stripes they overlap in, hence the shard, hence the lock — no hazard
// can be missed across shards.  With one shard no splitting happens at all
// and the domain behaves bit-exactly like the classic single-lock design
// (the OSS_DEP_SHARDS=1 escape hatch).
//
// Within each shard the interval map is keyed by region start.  Partially
// overlapping declarations split entries so each maximal sub-range carries
// its own history; this supports tasks declaring overlapping windows of the
// same array (e.g. halo exchanges).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ompss/access.hpp"
#include "ompss/task.hpp"
#include "ompss/task_pool.hpp"

namespace oss {

/// Kind of dependency edge, for statistics and graph export.  `Explicit`
/// edges come from `TaskBuilder::after(handle)` rather than from region
/// overlap.
enum class DepKind : std::uint8_t { Raw, War, Waw, Explicit };

const char* to_string(DepKind k) noexcept;

/// Callback invoked for every edge discovered during registration.
/// Arguments: producer, consumer, kind.  The edge was inserted while the
/// producer was unfinished (the per-task successor lock linearizes edge
/// insertion against retirement), but the sink itself runs after that
/// lock is released — a racing producer may already be Finished when the
/// sink observes it, so sinks must not assume producer liveness beyond
/// the ids/kind they are passed.  Called while the registering thread
/// holds the shard locks of the consumer's regions, so sinks must not
/// re-enter the domain.
using EdgeSink = std::function<void(const TaskPtr&, const TaskPtr&, DepKind)>;

class TraceSystem;

/// Registers the explicit (handle-declared) edge producer → consumer:
/// increments `consumer->preds`, appends to the producer's successor list,
/// and reports a `DepKind::Explicit` edge to `sink` (and, when `trace` is
/// non-null and in full mode, to the trace stream).  Self-edges, null or
/// already-finished producers are ignored.  Returns true if an edge was
/// added.  Thread-safe via the producer's successor lock; the consumer must
/// still be unpublished (spawn guard held).
bool add_explicit_edge(const TaskPtr& producer, const TaskPtr& consumer,
                       const EdgeSink& sink, TraceSystem* trace = nullptr);

/// What one registration did, for the runtime's contention counters.
struct RegisterReceipt {
  std::uint32_t shards_touched = 0; ///< distinct shard locks taken
  bool contended = false;           ///< ≥1 lock was held by another spawner
};

class DepDomain {
 public:
  /// `shards` must be a power of two in [1, 256] (validated by
  /// RuntimeConfig; direct constructions round invalid counts up to the
  /// next power of two and clamp).  1 = classic single-lock domain.
  /// `pooled` backs each shard's interval map with a per-shard node pool
  /// (freed nodes recycle under the shard lock instead of returning to the
  /// allocator); off = plain heap nodes, identical behavior otherwise.
  explicit DepDomain(std::size_t shards = 1,
                     bool pooled = pool::enabled_by_default());
  ~DepDomain();

  DepDomain(const DepDomain&) = delete;
  DepDomain& operator=(const DepDomain&) = delete;

  /// Registers `task`'s access list against the history of its siblings.
  /// For every hazard found, increments `task->preds`, appends `task` to the
  /// producer's successor list, and calls `sink` (if non-null).  Edges are
  /// deduplicated per (producer, consumer) pair within one registration.
  /// Commutative accesses additionally attach the region's exclusion lock
  /// to the task.  Predecessors with a resolved home node vote for the
  /// task's `inherited_node`, weighted by overlap bytes (max total wins;
  /// docs/numa.md).
  ///
  /// Thread-safe: locks the touched shards in shard-id order for the whole
  /// registration.  Concurrent registrations of disjoint regions proceed in
  /// parallel.  The caller must hold the task's spawn guard (preds ≥ 1)
  /// until after this returns.
  ///
  /// When `trace` is non-null and in full mode, every discovered edge and
  /// any shard-lock contention are emitted to the trace stream.
  RegisterReceipt register_task(const TaskPtr& task, const EdgeSink& sink,
                                TraceSystem* trace = nullptr);

  /// Collects every unfinished task recorded for bytes overlapping
  /// [p, p+bytes) — the wait set of `taskwait on`.  Locks each shard in
  /// turn; tasks registered concurrently with the call may or may not be
  /// included (same contract callers already had: `taskwait on` covers
  /// previously spawned siblings).
  void collect_overlapping(std::uintptr_t begin, std::uintptr_t end,
                           std::vector<TaskPtr>& out) const;

  /// Number of distinct interval entries currently tracked (for tests).
  std::size_t entry_count() const;

  /// Shards this domain hashes to.
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Shard index of an address under this domain's hash (tests/bench).
  [[nodiscard]] std::size_t shard_of(std::uintptr_t addr) const noexcept;

  /// Stripe granularity of the shard hash: addresses within the same
  /// 2^kStripeShift-byte stripe always share a shard, so typical task-sized
  /// regions touch exactly one shard.
  static constexpr unsigned kStripeShift = 20; // 1 MiB

 private:
  struct Entry {
    std::uintptr_t end = 0; ///< one past the last byte of the interval

    /// Last regular writer (null when none, or when a group is the
    /// current writer set).
    TaskPtr last_writer;

    /// Open or closed commutative/concurrent group acting as the
    /// collective last writer (empty when none).
    std::vector<TaskPtr> group;
    Mode group_mode = Mode::In; ///< Commutative or Concurrent when group set
    bool group_open = false;    ///< closed groups only act as writer set

    /// Exclusion lock shared by the commutative group members.
    std::shared_ptr<std::mutex> comm_lock;

    /// Readers since the current writer set was installed.
    std::vector<TaskPtr> readers;

    /// Writer set and readers of the epoch *preceding* the open group.
    /// Members joining the group later must take the same WAW/WAR edges the
    /// group starter took: members are unordered among themselves, but the
    /// whole group is ordered after the previous epoch.  (Without this, a
    /// joiner had no predecessors at all and could run concurrently with
    /// the previous epoch's writer.)  Cleared when the group closes.
    std::vector<TaskPtr> epoch_writers;
    std::vector<TaskPtr> epoch_readers;
  };

  /// Interval map: key is the interval start; intervals never overlap.
  /// The allocator recycles tree nodes through the shard's NodePool when
  /// the domain is pooled (null pool = plain operator new, the OSS_POOL=off
  /// path) — interval split/merge churn stops hitting the global allocator
  /// once a shard is warm.
  using MapAlloc = pool::PoolAllocator<std::pair<const std::uintptr_t, Entry>>;
  using Map = std::map<std::uintptr_t, Entry, std::less<std::uintptr_t>, MapAlloc>;

  /// One shard: its slice of the address space (the stripes hashing here)
  /// and the lock serializing access to it.  The node pool is declared
  /// before the map so the map (which frees into it) destructs first; it
  /// is synchronized by `mu`, which every map mutation already holds.
  struct Shard {
    explicit Shard(bool pooled) : map(MapAlloc(pooled ? &node_pool : nullptr)) {}
    mutable std::mutex mu;
    pool::NodePool node_pool;
    Map map;
  };

  struct RegCtx; // per-registration state (dedup, home votes)

  /// Splits the entry at `it` so that one piece ends exactly at `at`
  /// (which must lie strictly inside the entry); returns the iterator to
  /// the piece beginning at `at`.
  static Map::iterator split(Map& map, Map::iterator it, std::uintptr_t at);

  /// Registers one mode over [begin, end) against one shard's map.
  /// Caller holds the shard lock.
  void register_range(Map& map, std::uintptr_t begin, std::uintptr_t end,
                      Mode mode, RegCtx& ctx);

  /// Shard pointers are stable (never reallocated after construction).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t mask_; ///< shard_count - 1 (power of two)
};

} // namespace oss
