// dep_domain.hpp — address-range dependency tracking.
//
// This is the mechanism behind the paper's central claim: "task dependencies
// are resolved at runtime, using the input/output specification of the
// function arguments."  A `DepDomain` maintains, for every byte range that
// any sibling task has declared, the *current writer set* (either the last
// writer, or an open commutative/concurrent group acting as a collective
// writer) and the *readers since that write*.  Registering a new task's
// accesses derives the hazards:
//
//   RAW  — `in`/`inout` after a write: edge from the writer set.
//   WAW  — writing modes after a write: edge from the writer set.
//   WAR  — writing modes after reads: edges from every reader since the
//          last write.
//
// Group modes:
//   Commutative — consecutive commutative accesses to a region join one
//     group: no edges among members (any order), but the runtime hands each
//     member the region's exclusion lock so they never run concurrently.
//   Concurrent — like commutative but without the lock (members synchronize
//     themselves).
//   A group is *closed* by any non-matching access; later accesses treat
//   the whole group as the last writer.
//
// Because OmpSs performs no automatic renaming (paper §3, observation 2),
// WAR and WAW are *real* edges here — which is exactly why the H.264 decoder
// needs manual renaming through circular buffers to pipeline.
//
// The domain is an interval map keyed by region start.  Partially
// overlapping declarations split entries so each maximal sub-range carries
// its own history; this supports tasks declaring overlapping windows of the
// same array (e.g. halo exchanges).
//
// Locking: the domain has no internal synchronization; the owning runtime
// serializes all calls with its graph mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ompss/access.hpp"
#include "ompss/task.hpp"

namespace oss {

/// Kind of dependency edge, for statistics and graph export.  `Explicit`
/// edges come from `TaskBuilder::after(handle)` rather than from region
/// overlap.
enum class DepKind : std::uint8_t { Raw, War, Waw, Explicit };

const char* to_string(DepKind k) noexcept;

/// Callback invoked for every edge discovered during registration.
/// Arguments: producer, consumer, kind.  The producer is guaranteed
/// unfinished at the time of the call (still under the graph mutex).
using EdgeSink = std::function<void(const TaskPtr&, const TaskPtr&, DepKind)>;

/// Registers the explicit (handle-declared) edge producer → consumer:
/// increments `consumer->preds`, appends to the producer's successor list,
/// and reports a `DepKind::Explicit` edge to `sink`.  Self-edges, null or
/// already-finished producers are ignored.  Returns true if an edge was
/// added.  Must be called under the runtime graph mutex, before the
/// consumer becomes ready.
bool add_explicit_edge(const TaskPtr& producer, const TaskPtr& consumer,
                       const EdgeSink& sink);

class DepDomain {
 public:
  DepDomain();
  ~DepDomain();

  DepDomain(const DepDomain&) = delete;
  DepDomain& operator=(const DepDomain&) = delete;

  /// Registers `task`'s access list against the history of its siblings.
  /// For every hazard found, increments `task->preds`, appends `task` to the
  /// producer's successor list, and calls `sink` (if non-null).  Edges are
  /// deduplicated per (producer, consumer) pair within one registration.
  /// Commutative accesses additionally attach the region's exclusion lock
  /// to the task.
  ///
  /// Must be called under the runtime graph mutex.
  void register_task(const TaskPtr& task, const EdgeSink& sink);

  /// Collects every unfinished task recorded for bytes overlapping
  /// [p, p+bytes) — the wait set of `taskwait on`.  Must be called under the
  /// runtime graph mutex.
  void collect_overlapping(std::uintptr_t begin, std::uintptr_t end,
                           std::vector<TaskPtr>& out) const;

  /// Number of distinct interval entries currently tracked (for tests).
  std::size_t entry_count() const noexcept { return map_.size(); }

 private:
  struct Entry {
    std::uintptr_t end = 0; ///< one past the last byte of the interval

    /// Last regular writer (null when none, or when a group is the
    /// current writer set).
    TaskPtr last_writer;

    /// Open or closed commutative/concurrent group acting as the
    /// collective last writer (empty when none).
    std::vector<TaskPtr> group;
    Mode group_mode = Mode::In; ///< Commutative or Concurrent when group set
    bool group_open = false;    ///< closed groups only act as writer set

    /// Exclusion lock shared by the commutative group members.
    std::shared_ptr<std::mutex> comm_lock;

    /// Readers since the current writer set was installed.
    std::vector<TaskPtr> readers;

    /// Writer set and readers of the epoch *preceding* the open group.
    /// Members joining the group later must take the same WAW/WAR edges the
    /// group starter took: members are unordered among themselves, but the
    /// whole group is ordered after the previous epoch.  (Without this, a
    /// joiner had no predecessors at all and could run concurrently with
    /// the previous epoch's writer.)  Cleared when the group closes.
    std::vector<TaskPtr> epoch_writers;
    std::vector<TaskPtr> epoch_readers;
  };

  /// Interval map: key is the interval start; intervals never overlap.
  using Map = std::map<std::uintptr_t, Entry>;
  Map map_;

  /// Splits the entry at `it` so that one piece ends exactly at `at`
  /// (which must lie strictly inside the entry); returns the iterator to
  /// the piece beginning at `at`.
  Map::iterator split(Map::iterator it, std::uintptr_t at);
};

} // namespace oss
