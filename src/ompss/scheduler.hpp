// scheduler.hpp — ready-task placement policies.
//
// The paper attributes the ray-rot result to the runtime scheduler "placing
// dependent tasks on the same core": when task B becomes ready because task A
// (its producer) finished on worker W, B is pushed to the *front* of W's
// local queue so W executes it back-to-back with A while A's output is still
// in cache.  This class implements that policy plus two reference points:
//
//   Fifo          — one global FIFO; placement-oblivious baseline.
//   Locality      — unblocked tasks go to the finishing worker's local LIFO;
//                   spawn-ready tasks go to the global queue.  (Default,
//                   matches the Nanos++ behaviour the paper describes.)
//   WorkStealing  — like Locality, but spawn-ready tasks also go to the
//                   spawner's local queue when the spawner is a worker.
//
// Under every policy an idle worker falls back to the global queue and then
// steals from the *back* of sibling queues, so no ready task can be stranded.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "ompss/config.hpp"
#include "ompss/queues.hpp"
#include "ompss/stats.hpp"
#include "ompss/task.hpp"

namespace oss {

class Scheduler {
 public:
  Scheduler(SchedulerPolicy policy, std::size_t num_workers);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Places a task that was ready at spawn time (no unmet dependencies).
  /// `spawner_worker` is the worker id of the spawning thread, or -1 when
  /// spawned from a non-worker thread.
  void enqueue_spawned(TaskPtr t, int spawner_worker);

  /// Places a task that became ready because a predecessor finished on
  /// `finisher_worker` (-1 if the finisher is not a worker).
  void enqueue_unblocked(TaskPtr t, int finisher_worker);

  /// Takes the next task for `worker` (-1 for non-worker threads helping
  /// out): local queue first, then global, then steal.  Returns null if no
  /// work was found.  Updates pop/steal statistics.
  TaskPtr pick(int worker, Stats& stats);

  /// Approximate count of queued ready tasks (for idle heuristics/tests).
  [[nodiscard]] std::size_t queued() const;

  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }

 private:
  SchedulerPolicy policy_;
  TaskDeque global_hi_; ///< tasks with priority > 0, served before all else
  TaskDeque global_;
  std::vector<TaskDeque> local_;
  std::atomic<std::uint32_t> steal_seed_{0x9e3779b9u};
};

} // namespace oss
