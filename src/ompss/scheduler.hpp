// scheduler.hpp — pluggable ready-task placement policies.
//
// The paper attributes the ray-rot result to the runtime scheduler "placing
// dependent tasks on the same core": when task B becomes ready because task A
// (its producer) finished on worker W, B is pushed to the hot end of W's
// local deque so W executes it back-to-back with A while A's output is still
// in cache.  Three policies implement that idea plus two reference points:
//
//   Fifo          — one sharded global FIFO; placement-oblivious baseline.
//   Locality      — unblocked tasks go to the finishing worker's local LIFO;
//                   spawn-ready tasks go to the global queue.  (Default,
//                   matches the Nanos++ behaviour the paper describes.)
//   WorkStealing  — like Locality, but spawn-ready tasks also go to the
//                   spawner's local deque when the spawner is a worker.
//
// Under every policy an idle worker falls back to the global queue and then
// steals from the cold end of sibling deques, so no ready task can be
// stranded.  The local deques are lock-free Chase–Lev (chase_lev.hpp) and
// the global queues are sharded MPMC rings (mpmc_queue.hpp); build with
// -DOSS_MUTEX_QUEUES=ON for the mutex-deque baseline.
//
// NUMA awareness (docs/numa.md): on multi-node topologies every policy
// routes tasks carrying a home-node hint (`Task::home_node`) to a per-node
// ready queue drained preferentially by that node's workers; victim sweeps
// try same-socket deques before crossing the interconnect; and each
// worker's state block + deque buffers are allocated on its own node
// (NumaMode::Bind).  On a single-node topology all of this collapses to
// exactly the topology-blind behaviour.
//
// `Scheduler` is an abstract interface so the runtime can swap policies
// without special-casing; implementations live in scheduler_impl.hpp and
// the scheduler_*.cpp policy files, and are built via `Scheduler::create`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ompss/config.hpp"
#include "ompss/stats.hpp"
#include "ompss/task.hpp"
#include "ompss/topology.hpp"

namespace oss {

class TraceSystem;

/// Per-tier queue-depth breakdown (Scheduler::queue_depths) — the health
/// dump's view of where ready tasks are waiting.  All counts approximate
/// (racy snapshot of concurrently mutated queues).
struct QueueDepths {
  std::size_t priority = 0;            ///< global high-priority tier
  std::size_t global = 0;              ///< global spawn-ready tier
  std::vector<std::size_t> per_node;   ///< per-NUMA-node home queues
  std::vector<std::size_t> per_worker; ///< per-worker local deques
};

class Scheduler {
 public:
  /// Builds the scheduler implementing `policy` for `num_workers` workers.
  /// `steal_tries` is the ceiling of full victim sweeps an idle pick()
  /// performs before giving up (the OSS_STEAL_TRIES knob; the per-worker
  /// sweep count adapts below it — see steal_budget).  `topo` describes the
  /// machine (default: a blind single-node topology) and `numa` selects how
  /// aggressively the scheduler binds its own state to it.  `pressure` is
  /// the home-queue depth at which soft (auto/inherited) placements widen
  /// to the global tier while another node has parked workers
  /// (OSS_PRESSURE; 0 disables the feedback).
  static std::unique_ptr<Scheduler> create(
      SchedulerPolicy policy, std::size_t num_workers,
      std::size_t steal_tries = 2, const Topology& topo = Topology(),
      NumaMode numa = NumaMode::Bind, std::size_t pressure = 8);

  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Places a task that was ready at spawn time (no unmet dependencies).
  /// `spawner_worker` is the worker id of the spawning thread, or -1 when
  /// spawned from a non-worker thread.  When the policy routes the task to
  /// the spawner's local deque, the call must happen on that worker's own
  /// thread (the runtime always does; the deque owner ops require it).
  virtual void enqueue_spawned(TaskPtr t, int spawner_worker) = 0;

  /// Places a task that became ready because a predecessor finished on
  /// `finisher_worker` (-1 if the finisher is not a worker).  Same owner
  /// discipline as enqueue_spawned.
  virtual void enqueue_unblocked(TaskPtr t, int finisher_worker) = 0;

  /// Takes the next task for `worker` (-1 for non-worker threads helping
  /// out): priority queue, then local deque, then global, then steal.
  /// Returns null if no work was found.  Updates pop/steal statistics.
  virtual TaskPtr pick(int worker, Stats& stats) = 0;

  /// Approximate count of queued ready tasks (for idle heuristics/tests).
  [[nodiscard]] virtual std::size_t queued() const = 0;

  /// Per-tier breakdown of `queued()` (health dumps, docs/observability.md).
  [[nodiscard]] virtual QueueDepths queue_depths() const = 0;

  /// Dense NUMA node index of a worker (0 on single-node topologies, -1
  /// for non-worker ids).  Matches Topology::node_of_worker.
  [[nodiscard]] virtual int worker_node(int worker) const noexcept = 0;

  /// Current adaptive sweep count of a worker's steal loop, in
  /// [1, steal_tries ceiling].  Diagnostics/tests.
  [[nodiscard]] virtual std::size_t steal_budget(int worker) const noexcept = 0;

  /// Park/unpark notifications from the runtime's idle loop.  The scheduler
  /// keeps per-node parked-worker counts out of them; they are what the
  /// home-queue pressure feedback consults ("is another node idle?").
  /// Non-worker ids are ignored.
  virtual void on_worker_park(int worker) noexcept = 0;
  virtual void on_worker_unpark(int worker) noexcept = 0;

  /// Times the pressure feedback diverted a soft home-node placement to the
  /// global tier (mirrored into StatsSnapshot::overflow_placements).
  [[nodiscard]] virtual std::uint64_t overflow_placements() const noexcept = 0;

  /// Parked workers currently registered on `node` (diagnostics/tests).
  [[nodiscard]] virtual std::size_t parked_on_node(int node) const noexcept = 0;

  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }

  /// Attaches the trace stream (owned by the Runtime; may be null).  Called
  /// once right after construction, before any worker runs — placement,
  /// steal, and overflow events are emitted through it in full mode.
  void set_trace(TraceSystem* trace) noexcept { trace_ = trace; }

 protected:
  explicit Scheduler(SchedulerPolicy policy) : policy_(policy) {}

  TraceSystem* trace_ = nullptr;

 private:
  SchedulerPolicy policy_;
};

} // namespace oss
