#include "ompss/task.hpp"

#include <utility>

#include "ompss/dep_domain.hpp"
#include "ompss/task_pool.hpp"

namespace oss {

const char* to_string(TaskState s) noexcept {
  switch (s) {
    case TaskState::Created: return "created";
    case TaskState::Ready: return "ready";
    case TaskState::Running: return "running";
    case TaskState::Finished: return "finished";
  }
  return "?";
}

TaskContext::TaskContext(std::size_t dep_shards, bool pooled)
    : domain_(std::make_unique<DepDomain>(dep_shards, pooled)),
      dep_shards_(dep_shards),
      pooled_(pooled) {}

TaskContext::~TaskContext() = default;

void TaskContext::note_exception(std::exception_ptr ep) {
  std::lock_guard lock(mu_);
  if (!first_exception_) first_exception_ = std::move(ep);
}

std::exception_ptr TaskContext::take_exception() {
  std::lock_guard lock(mu_);
  return std::exchange(first_exception_, nullptr);
}

bool TaskContext::has_exception() const {
  std::lock_guard lock(mu_);
  return static_cast<bool>(first_exception_);
}

Task::Task(std::uint64_t id, Fn fn, AccessList accesses, ContextPtr parent_ctx,
           std::string label)
    : id_(id),
      fn_(std::move(fn)),
      accesses_(std::move(accesses)),
      parent_ctx_(std::move(parent_ctx)),
      label_(std::move(label)) {}

Task::~Task() = default;

void Task::destroy_or_recycle() noexcept {
  if (pooled_) {
    pool::recycle(this);
  } else {
    delete this;
  }
}

void Task::release_body() noexcept { fn_ = nullptr; }

const ContextPtr& Task::child_context() {
  // Children inherit the parent context's dependency-shard count and pool
  // mode, so one RuntimeConfig setting propagates down the task tree.
  if (!child_ctx_) {
    child_ctx_ = std::make_shared<TaskContext>(parent_ctx_->dep_shards(),
                                               parent_ctx_->pooled());
  }
  return child_ctx_;
}

} // namespace oss
