// runtime.hpp — the OmpSs-style task-dataflow runtime.
//
// `oss::Runtime` is the library embodiment of the OmpSs execution model the
// paper evaluates:
//
//   * `rt.task("label").in(a).out(b).spawn(fn)` corresponds to calling a
//     function annotated with `#pragma omp task input(...) output(...)`:
//     the call is recorded in a task graph instead of executed, and
//     dependencies are derived at runtime from the declared memory regions.
//     The fluent builder lives in task_builder.hpp; it finalizes into a
//     `TaskHandle` (task_handle.hpp).  The positional
//     `spawn(accesses, fn, opts)` overloads remain as thin shims.
//   * Tasks may be spawned long before their producers finish — this is what
//     makes pipeline parallelism (the paper's H.264 case study) directly
//     expressible.
//   * `taskwait()` waits for the *direct children* of the current context
//     (`#pragma omp taskwait`); `taskwait_on(p)` waits only for previously
//     spawned tasks whose declared regions overlap `p`
//     (`#pragma omp taskwait on(...)`).
//   * `barrier()` waits for *all* tasks in the runtime; with the default
//     polling policy the waiting thread executes tasks while it waits (the
//     paper credits exactly this polling task barrier for the rgbcmy win).
//   * `critical(name, fn)` is `#pragma omp critical(name)` for dependencies
//     deliberately hidden from the task specifications.
//
// Threading model: `num_threads` total executors = the constructing thread
// (worker 0, which executes tasks whenever it waits) plus `num_threads - 1`
// pool workers.  This mirrors "a static number of cores controlled by an
// environmental variable" — see RuntimeConfig.
//
// Exceptions thrown by task bodies are captured and rethrown at the parent's
// next `taskwait()` / `barrier()` (first exception wins).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "ompss/access.hpp"
#include "ompss/config.hpp"
#include "ompss/critical.hpp"
#include "ompss/dep_domain.hpp"
#include "ompss/eventcount.hpp"
#include "ompss/graph_recorder.hpp"
#include "ompss/inline_vec.hpp"
#include "ompss/prof.hpp"
#include "ompss/scheduler.hpp"
#include "ompss/stats.hpp"
#include "ompss/task.hpp"
#include "ompss/task_handle.hpp"
#include "ompss/topology.hpp"
#include "ompss/trace.hpp"

namespace oss {

class TaskBuilder;
class GraphCapture;
class ReplayGraph;

/// Per-spawn options (the OmpSs task clauses beyond the access list).
struct TaskOptions {
  std::string label;  ///< diagnostics name (graph/trace output)
  int priority = 0;   ///< OmpSs `priority` clause: >0 runs before normal tasks
  bool deferred = true; ///< false = OmpSs `if(0)`: the spawning thread waits
                        ///< for the task's dependencies and runs it inline
};

/// Everything a task declares at spawn time.  `TaskBuilder` accumulates one
/// of these; the legacy `spawn()` overloads fill in the subset they expose.
/// The two lists are inline-first (InlineVec): a typical declaration — a
/// handful of accesses, zero-to-few explicit predecessors — never touches
/// the allocator on its way through spawn_task.
struct TaskSpec {
  InlineVec<Access, 8> accesses; ///< declared memory regions (dependency
                                 ///< source); 8 inline covers every task in
                                 ///< src/apps and bench
  std::string label;     ///< diagnostics name (graph/trace output)
  int priority = 0;      ///< OmpSs `priority` clause
  bool deferred = true;  ///< false = OmpSs `if(0)` inline execution
  int affinity = -1;     ///< NUMA home node hint (TaskBuilder::affinity);
                         ///< out-of-range nodes are ignored at spawn
  bool affinity_auto = false; ///< derive the home node from the largest
                              ///< registered access region (numa_alloc)
  ContextPtr context;    ///< spawn into this context instead of the ambient
                         ///< one (used by TaskGroup); null = ambient
  InlineVec<TaskPtr, 4> after; ///< explicit predecessors (TaskBuilder::after)
};

class Runtime {
 public:
  /// Starts `cfg.resolved_threads() - 1` pool workers immediately.
  explicit Runtime(RuntimeConfig cfg = RuntimeConfig{});
  /// Convenience: default config with `threads` total threads.
  explicit Runtime(std::size_t threads)
      : Runtime(RuntimeConfig::with_threads(threads)) {}

  /// Drains all outstanding tasks (barrier), then stops and joins workers.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Starts a fluent task declaration — the primary spawn API:
  ///
  ///   TaskHandle h = rt.task("stage")
  ///                    .in(a).out(b)
  ///                    .priority(1)
  ///                    .spawn([&] { b = f(a); });
  ///
  /// Defined in task_builder.hpp (included by the ompss.hpp umbrella).
  TaskBuilder task(std::string label = {});

  /// Spawns a task from a fully-populated spec.  `fn` runs once all hazards
  /// against earlier siblings and all `spec.after` predecessors resolved.
  /// This is the single underlying spawn path: `TaskBuilder::spawn` and the
  /// legacy `spawn()` shims both land here.
  ///
  /// May be called from the owning thread, from inside tasks (nested
  /// tasks), or from foreign threads (treated as spawning into the root
  /// context).
  TaskHandle spawn_task(TaskSpec spec, Task::Fn fn);

  /// Legacy positional spawn (shim over `spawn_task`).  `accesses` declares
  /// the regions the task body will touch.  Returns the task id (usable to
  /// correlate graph/trace output); prefer `task(...)` which returns a
  /// first-class TaskHandle.
  std::uint64_t spawn(AccessList accesses, Task::Fn fn, std::string label = {});

  /// Legacy spawn with full task options (shim over `spawn_task`).
  std::uint64_t spawn(AccessList accesses, Task::Fn fn, TaskOptions opts);

  /// Re-submits a captured iteration (oss::replay, docs/replay.md) without
  /// touching any dependency shard: tasks are drawn from the pool with
  /// their predecessor counts pre-stored and successor lists pre-wired
  /// from the graph's CSR arrays, and ready roots are batch-enqueued
  /// through the node-aware wakeup path.  `binder(i)` supplies the body
  /// for task index `i` (capture order) — re-bound on every replay so
  /// buffers/frame data can change between iterations.  Returns after
  /// submission; pair with taskwait()/barrier() like any spawn burst.
  ///
  /// Throws std::invalid_argument when `graph` is empty or was captured by
  /// a different runtime (including an earlier, since-destroyed instance —
  /// re-capture after a runtime restart), std::invalid_argument when
  /// `binder` is empty.  Safe to call concurrently from several threads
  /// with disjoint graphs.
  void replay(const ReplayGraph& graph,
              const std::function<Task::Fn(std::size_t)>& binder);

  /// Waits until all *direct children* of the current context finished.
  /// Rethrows the first exception any of them threw.
  void taskwait();

  /// Waits until every previously spawned sibling task whose declared
  /// access regions overlap [p, p+bytes) has finished.  Mirrors
  /// `#pragma omp taskwait on(expr)`.
  void taskwait_on(const void* p, std::size_t bytes = 1);

  template <class T>
  void taskwait_on(const T& obj) {
    static_assert(!std::is_pointer_v<T>,
                  "taskwait_on(ptr) would wait on the sizeof(T*) bytes of the "
                  "pointer object itself; call taskwait_on(ptr, bytes) for a "
                  "region or taskwait_on(*ptr) for the pointee");
    taskwait_on(static_cast<const void*>(&obj), sizeof(T));
  }

  /// Waits until exactly the task referenced by `h` finished (per-task
  /// `taskwait on`).  Empty handles and handles of other runtimes that
  /// already finished return immediately; waiting on another runtime's
  /// unfinished handle is an error (throws std::invalid_argument).
  void taskwait_on(const TaskHandle& h);

  /// Waits until every task spawned into `ctx` finished, then rethrows the
  /// first exception any of them threw.  This is the TaskGroup wait hook;
  /// `taskwait()` is the same operation on the ambient context.
  void taskwait_scope(const ContextPtr& ctx);

  /// Waits until the runtime has no unfinished task at all, then rethrows
  /// any pending root-context exception.  The calling thread helps execute
  /// tasks under the polling policy and sleeps under the blocking policy.
  void barrier();

  /// Runs `fn` holding the named critical-section mutex.
  void critical(std::string_view name, const std::function<void()>& fn);

  /// Total executor threads (pool workers + the owning thread).
  [[nodiscard]] std::size_t num_threads() const noexcept { return num_threads_; }

  [[nodiscard]] const RuntimeConfig& config() const noexcept { return cfg_; }

  /// The machine topology this runtime schedules against: discovered from
  /// sysfs, overridden by `RuntimeConfig::topology` / OSS_TOPOLOGY, or flat
  /// when `OSS_NUMA=off`.  Node indices accepted by `TaskBuilder::affinity`
  /// are indices into `topology().nodes()`.
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// The scheduler (topology queries, steal-budget diagnostics).
  [[nodiscard]] const Scheduler& scheduler() const noexcept {
    return *scheduler_;
  }

  /// Workers successfully pinned to their home node's CPU set (OSS_PIN).
  /// 0 when pinning is off, structurally dissolved (single-node topology),
  /// unsupported, or fully blocked by the process cpu mask.  Deterministic
  /// once the constructor returned — pinning is applied synchronously.
  [[nodiscard]] std::size_t pinned_workers() const noexcept {
    return pinned_workers_;
  }

  /// Counter snapshot — the single merge point for runtime-owned and
  /// scheduler-owned counters (table1 and the apps' StatsSnapshot
  /// out-params all read through here).
  ///
  /// Read contract: every counter is a relaxed atomic read; the snapshot
  /// is *per-counter coherent* (each value existed at some point) but not
  /// cross-counter consistent while workers are in flight — e.g.
  /// tasks_executed may momentarily trail tasks_spawned.  Snapshots taken
  /// at a quiescent point (after `barrier()` / the destructor's drain, or
  /// a `taskwait()` with no unrelated tasks) are exact: every counter
  /// update happens-before the completion the wait observed.
  [[nodiscard]] StatsSnapshot stats() const;

  /// DOT rendering of the recorded task graph.  Empty unless
  /// `config().record_graph` was set.
  [[nodiscard]] std::string export_graph_dot() const;

  /// Chrome trace-event JSON.  Empty unless tracing is enabled
  /// (OSS_TRACE=exec|full / `config().record_trace`).  Exec mode reproduces
  /// the classic one-event-per-task format; full mode adds named worker
  /// rows, spawn→run flow arrows, and scheduler instants.
  [[nodiscard]] std::string export_trace_json() const;

  /// Writes the trace to `path` at the next quiescent point — actually at
  /// destruction, after the final drain (so the export covers everything).
  /// A ".prv" suffix selects the Paraver format (".row"/".pcf" written next
  /// to it), anything else Chrome JSON.  Overrides `config().trace_out`.
  /// A warning is printed (and nothing recorded) when tracing is off —
  /// enable it at construction, the rings cannot appear retroactively.
  void trace_to(std::string path);

  /// The trace system itself (null unless tracing enabled): merged events,
  /// drop counters, on-demand exports.
  [[nodiscard]] TraceSystem* trace_system() const noexcept {
    return trace_.get();
  }

  /// The legacy run-span view for `analyze_trace` (null unless tracing
  /// enabled).  Thin shim: rebuilt from the ring-buffer event stream on
  /// each call — take it once, at a quiescent point.
  [[nodiscard]] const TraceRecorder* trace_recorder() const {
    return trace_ ? &trace_->legacy_recorder() : nullptr;
  }

  /// Per-label profiling snapshot + work/span/parallelism summary
  /// (docs/observability.md).  Empty unless profiling is enabled
  /// (RuntimeConfig::prof / prof_every_ms / watchdog_ms — the OSS_PROF,
  /// OSS_PROF_EVERY_MS, OSS_WATCHDOG knobs).  Same coherence contract as
  /// stats(): exact at quiescent points, per-counter coherent in flight.
  [[nodiscard]] ProfileSnapshot profile() const;

  /// The profiling system itself (null unless profiling enabled).
  [[nodiscard]] ProfSystem* prof_system() const noexcept {
    return prof_.get();
  }

  /// Writes the health dump — queue depths per tier/node, parked-worker
  /// counts, what every worker is running right now, the oldest unfinished
  /// tasks — to `os`.  Safe from any thread at any time; this is what the
  /// OSS_WATCHDOG stall detector and the SIGUSR1 handler print.
  void dump_health(std::ostream& os) const;

  /// Health dumps emitted by the runtime itself so far (watchdog stalls +
  /// SIGUSR1 requests); regression hook for the watchdog tests.
  [[nodiscard]] std::uint64_t health_dumps() const noexcept {
    return health_dumps_.load(std::memory_order_relaxed);
  }

  /// The graph recorder (null unless `config().record_graph`); exposes the
  /// recorded edge multiset for parity tests and tooling beyond DOT export.
  [[nodiscard]] const GraphRecorder* graph_recorder() const noexcept {
    return graph_.get();
  }

  /// Unfinished tasks currently known to the runtime (diagnostics).
  [[nodiscard]] std::size_t pending_tasks() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// The runtime the current thread is executing under (null outside).
  static Runtime* current() noexcept;

  /// Worker id of the calling thread within its runtime: 0 for the owning
  /// thread, 1..N-1 for pool workers, -1 for foreign threads.
  static int current_worker() noexcept;

  /// Thread-local binding of a thread to a runtime (implementation detail,
  /// public so the thread_local instance can live at namespace scope).
  struct ThreadBinding;

 private:
  friend class GraphCapture;

  void worker_loop(int wid);
  /// OSS_PIN: binds every worker thread (including the owning thread,
  /// worker 0) to its pinning target, intersected with the process
  /// affinity mask — the home node's whole CPU set for `node`, a single
  /// CPU per worker for `compact`/`scatter` (see pin_layout()).  Workers
  /// the mask cannot cover stay unpinned; one warning line total, never
  /// an abort.  Called from the constructor after the pool threads exist
  /// (pthread_setaffinity_np targets them by native handle, so the count
  /// is final when construction returns).
  void apply_pinning();
  void collector_loop();
  bool try_execute_one(int wid);
  void execute(const TaskPtr& t, int wid);
  /// `exec_ticks` is the task body's raw-tick duration (0 when neither
  /// profiling nor graph recording needs it) — it extends the critical
  /// path the finished task hands to its successors.
  void on_finished(const TaskPtr& t, int wid, std::uint64_t exec_ticks);
  ContextPtr current_spawn_context();

  /// Wakes one parked worker after a task was enqueued.  `preferred_node`
  /// (dense topology index, -1 = none) is tried first — a home-node
  /// enqueue should release a same-node parked worker, not ship the task
  /// across the interconnect to whoever wakes.  When nobody is parked the
  /// cost is a pair of uncontended atomic ops per gate scanned (one gate
  /// on single-node topologies; every gate must still bump its epoch — a
  /// waiter between prepare_wait and wait is only covered by the bump, so
  /// skipping "empty" gates would reintroduce lost wakeups).
  void wake_one_worker(int preferred_node = -1);

  /// Batch wakeup: after an enqueue burst of `n` tasks, wakes min(n, parked)
  /// workers in one eventcount pass per node gate instead of n serial
  /// notify_one calls, starting at `preferred_node`.
  void wake_workers(std::size_t n, int preferred_node = -1);

  /// Index into idle_gates_ for a worker (node gate on multi-node
  /// topologies, the single gate otherwise).
  [[nodiscard]] std::size_t gate_index(int wid) const noexcept;

  /// Polls (executing tasks) or blocks until `done()` returns true.
  void wait_until(const std::function<bool()>& done);

  /// Releases a captured iteration's hold predecessors in capture order
  /// (GraphCapture::finish / abandoning destructor): tasks whose count
  /// reaches zero become Ready and are batch-enqueued.  Defined in
  /// replay.cpp alongside Runtime::replay.
  void capture_release(const std::vector<TaskPtr>& held);

  /// Enqueues a burst of already-Ready tasks and wakes min(N, parked)
  /// workers, bucketed by home-node gate on multi-node topologies — the
  /// batch half of the node-aware wakeup path, shared by capture_release
  /// and replay.  Defined in replay.cpp.
  void publish_ready_batch(std::vector<TaskPtr>& ready, int worker);

  RuntimeConfig cfg_;
  std::size_t num_threads_;

  /// Process-wide construction serial (monotonic).  ReplayGraph remembers
  /// the serial of the runtime that captured it, so replay against a
  /// *restarted* runtime — even one constructed at the same address — is
  /// rejected instead of replaying stale structure (docs/replay.md).
  std::uint64_t serial_ = 0;

  /// Open capture scope, or null.  Written by GraphCapture's constructor/
  /// destructor on the capturing thread; read on every spawn.  A capture
  /// scope is single-threaded by contract, but unrelated threads may spawn
  /// into other runtimes concurrently — hence the atomic.
  std::atomic<GraphCapture*> capture_{nullptr};

  // There is deliberately no runtime-wide graph mutex: dependency state is
  // sharded inside each context's DepDomain (docs/dependencies.md), and
  // per-task bookkeeping (preds, successors) carries its own
  // synchronization — spawn and finish scale with the thread count.
  std::atomic<std::uint64_t> next_task_id_{0};

  ContextPtr root_ctx_;

  /// Edge-discovery callback handed to every registration, built once at
  /// construction — spawn_task used to materialize a fresh std::function
  /// per spawn, a capture-copy on the hottest path for nothing.
  EdgeSink edge_sink_;

  /// oss::pool::overflow_total() at construction; stats() reports the
  /// delta so a runtime's snapshot reflects (approximately, the pool is
  /// process-wide) its own overflow traffic.
  std::uint64_t pool_overflow_base_ = 0;

  Topology topo_; ///< declared before scheduler_: create() reads it
  std::unique_ptr<Scheduler> scheduler_;
  mutable Stats stats_;
  CriticalRegistry criticals_;
  std::unique_ptr<GraphRecorder> graph_;
  std::unique_ptr<TraceSystem> trace_;
  std::string trace_out_; ///< destructor export target ("" = none)

  /// oss::prof (docs/observability.md): per-label task profiles and
  /// work/span critical-path attribution.  Null when OSS_PROF,
  /// OSS_PROF_EVERY_MS and OSS_WATCHDOG are all off — the execution path
  /// then never reads the clock on profiling's behalf.
  std::unique_ptr<ProfSystem> prof_;

  /// True when anything consumes per-task critical-path bookkeeping
  /// (prof_ or graph_); gates the successor path offers in on_finished so
  /// trace-only runs pay nothing new.
  bool path_track_ = false;

  /// What each worker is running right now (null unless prof_): relaxed
  /// stores around the task body, read by the watchdog/dump — an
  /// approximate, racy view by design.
  struct RunSlot {
    std::atomic<std::uint64_t> task_id{0}; ///< 0 = idle
    std::atomic<std::uint32_t> label{0};
    std::atomic<std::uint64_t> start_ticks{0};
  };
  std::unique_ptr<RunSlot[]> run_slots_; ///< num_threads_ entries

  std::atomic<std::uint64_t> health_dumps_{0};

  /// Optional collector thread (OSS_STATS_EVERY_MS / OSS_PROF_EVERY_MS /
  /// OSS_WATCHDOG): periodically drains the trace rings, prints stats and
  /// profile deltas, and runs the no-progress watchdog.  The stop flag is
  /// atomic and the destructor joins the thread *before* starting any
  /// teardown, so a tick can never land mid-destruction.
  std::thread collector_;
  std::mutex collector_mu_;
  std::condition_variable collector_cv_;
  std::atomic<bool> collector_stop_{false};

  std::atomic<std::size_t> pending_{0}; ///< spawned but not finished
  std::atomic<bool> stop_{false};

  std::size_t pinned_workers_ = 0; ///< workers OSS_PIN actually bound
  /// Worker 0 is the caller's thread: its pre-pin affinity mask and thread
  /// id are saved so a destructor running on that same thread hands it
  /// back unpinned (cross-thread destruction keeps the pinned mask —
  /// restoring through a stored pthread handle would risk a dead
  /// pthread_t; the id comparison has no such lifetime hazard and, unlike
  /// tl_binding, survives nested runtimes on one thread).
  std::vector<int> owner_prev_cpus_;
  std::thread::id owner_tid_;

  /// Park/unpark gates for idle workers (IdlePolicy::Park), one per NUMA
  /// node (a single gate on single-node topologies, where the whole
  /// node-awareness structurally dissolves).  A worker parks on its own
  /// node's gate; an enqueue wakes a worker parked on the task's home node
  /// first and falls back to the other gates, so a home-node task is
  /// claimed by a same-node worker instead of whoever happens to wake.
  /// Stop wakes all gates.
  std::vector<std::unique_ptr<EventCount>> idle_gates_;

  /// Rotates the fallback start gate for wakeups without a node
  /// preference, so node 0 doesn't absorb every anonymous wakeup.
  std::atomic<std::uint32_t> wake_cursor_{0};

  // Blocking-wait support: waiters sleep on cv_, completions notify when
  // blocked_waiters_ > 0 (so the polling fast path pays nothing).
  std::mutex cv_mu_;
  std::condition_variable cv_;
  std::atomic<int> blocked_waiters_{0};

  std::vector<std::thread> workers_;
};

} // namespace oss
