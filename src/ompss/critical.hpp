// critical.hpp — named critical sections.
//
// The paper's H.264 study hides the Picture-Info-Buffer and Decoded-Picture-
// Buffer dependencies from the task specifications (they cannot be known at
// spawn time) and instead guards the fetch/release statements inside the
// task bodies with `omp critical`.  This registry is the library equivalent:
// a process-wide map from section name to mutex, used as
//
//   rt.critical("dpb", [&]{ entry = dpb.fetch(); });
//
// The empty name refers to the single anonymous section (like an unnamed
// `#pragma omp critical`).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace oss {

class CriticalRegistry {
 public:
  /// Returns the mutex for `name`, creating it on first use.  Thread-safe.
  std::mutex& get(std::string_view name);

  /// Number of distinct named sections created so far (for tests).
  std::size_t section_count() const;

 private:
  mutable std::mutex map_mu_;
  std::unordered_map<std::string, std::unique_ptr<std::mutex>> sections_;
};

} // namespace oss
