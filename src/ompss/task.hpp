// task.hpp — task objects and per-parent task contexts.
//
// A `Task` is a deferred function call plus the access list declared at spawn
// time.  Tasks move through Created → Ready → Running → Finished.
//
// Dependency bookkeeping is designed for *concurrent* spawn and finish
// (docs/dependencies.md): `preds` is an atomic count of unfinished
// predecessors, the successor list is guarded by a per-task mutex, and the
// finish side (`finish_take_successors`) linearizes against edge insertion
// (`add_successor_edge`) through that mutex — a producer either accepts the
// edge before retiring or the consumer sees it already finished and skips
// the edge.  No runtime-wide lock is involved.
//
// Lifetime is an intrusive refcount (`TaskPtr`), not std::shared_ptr: the
// final release of a pooled task routes through oss::pool::recycle instead
// of the allocator, which is what makes a steady-state spawn→execute→retire
// cycle allocation-free (docs/memory.md).  The decrement uses acq_rel, so
// whichever thread performs the final release observes every prior
// release's writes before recycling or deleting the task.
//
// Every task that spawns children owns a `TaskContext`: it counts live direct
// children (what `taskwait` waits on), holds the dependency domain in which
// the children's accesses are matched against each other, and stores the
// first exception thrown by any child (rethrown at the next `taskwait`).
// The runtime owns a root context for tasks spawned outside any task.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ompss/access.hpp"
#include "ompss/small_fn.hpp"
#include "ompss/task_pool.hpp"

namespace oss {

class Task;
class DepDomain;

/// Intrusive smart pointer over Task's embedded refcount.  Drop-in for the
/// former std::shared_ptr<Task> uses (copy/move/reset/get/use_count), minus
/// the separately-allocated control block — the count lives in the Task, so
/// creating the first handle costs nothing.
class TaskPtr {
 public:
  TaskPtr() noexcept = default;
  TaskPtr(std::nullptr_t) noexcept {}

  TaskPtr(const TaskPtr& o) noexcept : p_(o.p_) {
    if (p_) retain(p_);
  }
  TaskPtr(TaskPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  TaskPtr& operator=(const TaskPtr& o) noexcept {
    TaskPtr tmp(o);
    swap(tmp);
    return *this;
  }
  TaskPtr& operator=(TaskPtr&& o) noexcept {
    TaskPtr tmp(std::move(o));
    swap(tmp);
    return *this;
  }
  TaskPtr& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~TaskPtr() {
    if (p_) release(p_);
  }

  /// Wraps a task whose refcount is already set for this handle (fresh
  /// allocation or pool::acquire + prepare).  Does not retain.
  static TaskPtr adopt(Task* t) noexcept {
    TaskPtr p;
    p.p_ = t;
    return p;
  }

  void reset() noexcept {
    if (p_) {
      release(p_);
      p_ = nullptr;
    }
  }

  void swap(TaskPtr& o) noexcept { std::swap(p_, o.p_); }

  Task* get() const noexcept { return p_; }
  Task* operator->() const noexcept { return p_; }
  Task& operator*() const noexcept { return *p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  /// Current refcount (approximate under concurrency, like shared_ptr).
  long use_count() const noexcept;

  friend bool operator==(const TaskPtr& a, const TaskPtr& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator==(const TaskPtr& a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }

 private:
  static void retain(Task* t) noexcept;
  static void release(Task* t) noexcept;

  Task* p_ = nullptr;
};

/// Lifecycle states of a task.
enum class TaskState : std::uint8_t {
  Created, ///< spawned, dependency registration in progress or unmet deps
  Ready,   ///< all predecessors finished; sitting in a ready queue
  Running, ///< executing on some worker
  Finished ///< body returned (or threw); successors may proceed
};

const char* to_string(TaskState s) noexcept;

/// Fixed-size top-K label attribution of a critical path (oss::prof): which
/// task labels contribute how many raw clock ticks along the heaviest
/// predecessor chain ending at some task.  Carried by value per task — the
/// winning predecessor's attribution is copied forward at its finish, the
/// task's own execution added — so the span's composition is known at any
/// barrier without keeping retired tasks alive or walking a graph.
struct PathAttr {
  static constexpr std::size_t kTop = 4;
  std::uint32_t label[kTop] = {0, 0, 0, 0}; ///< interned label hashes
  std::uint64_t ticks[kTop] = {0, 0, 0, 0}; ///< 0 = slot empty

  /// Adds `t` ticks to `lab`'s entry: merges into a matching slot, claims an
  /// empty one, or evicts the smallest entry when `t` beats it.  Top-K with
  /// eviction, not exact — good enough to name the dominant span labels.
  void add(std::uint32_t lab, std::uint64_t t) noexcept {
    std::size_t min_i = 0;
    for (std::size_t i = 0; i < kTop; ++i) {
      if (ticks[i] != 0 && label[i] == lab) {
        ticks[i] += t;
        return;
      }
      if (ticks[i] == 0) {
        label[i] = lab;
        ticks[i] = t;
        return;
      }
      if (ticks[i] < ticks[min_i]) min_i = i;
    }
    if (t > ticks[min_i]) {
      label[min_i] = lab;
      ticks[min_i] = t;
    }
  }
};

/// Shared bookkeeping for the children of one parent (a task or the root).
class TaskContext {
 public:
  /// `dep_shards` sizes the context's dependency domain (power of two;
  /// RuntimeConfig::dep_shards).  Child contexts inherit their parent's
  /// count — see Task::child_context.  `pooled` selects the per-shard
  /// node pools for the domain's interval maps (RuntimeConfig::pool).
  explicit TaskContext(std::size_t dep_shards = 1,
                       bool pooled = pool::enabled_by_default());
  ~TaskContext();

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

  /// Direct children spawned into this context that have not yet finished.
  std::atomic<std::size_t> live_children{0};

  /// Dependency domain for sibling tasks of this context.  Internally
  /// sharded and locked; callers need no external synchronization.
  DepDomain& domain() noexcept { return *domain_; }
  const DepDomain& domain() const noexcept { return *domain_; }

  /// Shard count of this context's domain (inherited by child contexts).
  [[nodiscard]] std::size_t dep_shards() const noexcept { return dep_shards_; }

  /// Whether this context's domain uses pooled map nodes (inherited).
  [[nodiscard]] bool pooled() const noexcept { return pooled_; }

  /// Records the first exception escaping a child task.  Thread-safe.
  void note_exception(std::exception_ptr ep);

  /// Removes and returns the stored exception (null if none).  Thread-safe.
  std::exception_ptr take_exception();

  /// True if an exception is waiting to be rethrown.
  bool has_exception() const;

 private:
  std::unique_ptr<DepDomain> domain_;
  std::size_t dep_shards_;
  bool pooled_;
  mutable std::mutex mu_;
  std::exception_ptr first_exception_;
};

using ContextPtr = std::shared_ptr<TaskContext>;

/// A spawned task.
class Task {
 public:
  using Fn = SmallFn;

  Task(std::uint64_t id, Fn fn, AccessList accesses, ContextPtr parent_ctx,
       std::string label);

  /// Dormant task for the pool: no id, no body, refcount 1.  Must be
  /// prepare()d before use.  Only oss::pool constructs these.
  Task() = default;
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  // ---- pooled lifecycle -----------------------------------------------

  /// (Re)initializes a dormant task for a new spawn.  Every field a spawn
  /// sets is reset here; containers keep their capacity from the previous
  /// life — that retained capacity is the pool's whole point.
  void prepare(std::uint64_t id, Fn fn, ContextPtr parent_ctx,
               std::string label) {
    id_ = id;
    fn_ = std::move(fn);
    parent_ctx_ = std::move(parent_ctx);
    label_ = std::move(label);
    priority_ = 0;
    trace_label_ = 0;
    home_node_.store(-1, std::memory_order_relaxed);
    inherited_node_.store(-1, std::memory_order_relaxed);
    home_soft_.store(false, std::memory_order_relaxed);
    undeferred_ = false;
    spawn_ts_ = 0;
    ready_ts_ = 0;
    pred_path_ticks_ = 0;
    crit_pred_ = 0;
    pred_attr_ = PathAttr{};
    path_ticks_.store(0, std::memory_order_relaxed);
    finished_.store(false, std::memory_order_relaxed);
    state_.store(TaskState::Created, std::memory_order_relaxed);
    preds.store(0, std::memory_order_relaxed);
    refs_.store(1, std::memory_order_relaxed);
  }

  /// Copies the access list into the task's recycled storage.
  void set_accesses(const Access* p, std::size_t n) {
    accesses_.assign(p, p + n);
  }

  /// Drops every owning/heavy member before the task re-enters the pool.
  /// Containers are cleared, not destroyed, so their buffers survive into
  /// the next life.  Called with refcount 0 (no handle can observe it).
  void recycle_clear() noexcept {
    fn_.reset();
    accesses_.clear();
    parent_ctx_.reset();
    child_ctx_.reset();
    label_.clear();
    exclusion_locks_.clear();
    queue_ref_.reset();
    successors.clear();
  }

  void retain() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  void release() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) destroy_or_recycle();
  }
  long refcount() const noexcept {
    return static_cast<long>(refs_.load(std::memory_order_relaxed));
  }

  /// True for pool-owned tasks (final release recycles instead of deletes).
  bool pooled() const noexcept { return pooled_; }
  void mark_pooled() noexcept { pooled_ = true; }

  /// Pool-internal freelist link; owned by oss::pool while the task is
  /// dormant, dead storage while it is live.
  Task* pool_next = nullptr;

  // ---------------------------------------------------------------------

  std::uint64_t id() const noexcept { return id_; }
  const std::string& label() const noexcept { return label_; }
  const AccessList& accesses() const noexcept { return accesses_; }

  /// Context the task was spawned into (its siblings' dependency domain).
  const ContextPtr& parent_context() const noexcept { return parent_ctx_; }

  /// Lazily creates the context for this task's own children.
  /// Called only from the thread currently executing this task.
  const ContextPtr& child_context();

  /// Child context if one was ever created (may be null).
  const ContextPtr& child_context_if_any() const noexcept { return child_ctx_; }

  /// Runs the task body (does not catch exceptions).
  void run() { fn_(); }

  /// Drops the body closure.  Called by the runtime once the body returned:
  /// TaskHandles keep the Task object alive arbitrarily long, and the
  /// closure may hold large captures that should not live that long.
  /// Only the executing thread may call this.
  void release_body() noexcept;

  /// Atomic completion flag; set (release) after the body returns and
  /// before successors are notified.
  bool finished() const noexcept { return finished_.load(std::memory_order_acquire); }
  void mark_finished() noexcept { finished_.store(true, std::memory_order_release); }

  TaskState state() const noexcept { return state_.load(std::memory_order_acquire); }
  void set_state(TaskState s) noexcept { state_.store(s, std::memory_order_release); }

  /// Scheduling priority (higher runs earlier; 0 = normal).
  int priority() const noexcept { return priority_; }
  void set_priority(int p) noexcept { priority_ = p; }

  /// Interned trace-label hash (TraceSystem::intern), set once at spawn
  /// when tracing is on so the execution path never hashes the label.
  std::uint32_t trace_label() const noexcept { return trace_label_; }
  void set_trace_label(std::uint32_t h) noexcept { trace_label_ = h; }

  /// Undeferred (`if(0)`) task: the spawning thread executes it inline once
  /// its dependencies resolve; it is never enqueued.
  bool undeferred() const noexcept { return undeferred_; }
  void set_undeferred(bool v) noexcept { undeferred_ = v; }

  /// NUMA home node (dense topology index) the scheduler should place this
  /// task on, or -1 for no affinity.  Set before the task is published to
  /// any ready queue (the queue handshake orders it for readers).  `soft`
  /// marks a runtime-derived home (affinity_auto / chain inheritance) the
  /// scheduler may widen under queue pressure; explicit `.affinity(node)`
  /// hints are hard and never widened.
  ///
  /// Relaxed atomics: the spawner writes the home while other spawners may
  /// concurrently read it for chain inheritance (they discovered an edge
  /// from this task in a dependency shard this task no longer holds).  The
  /// home is a *hint* — a torn decision is impossible (single word) and a
  /// stale read costs at most one inheritance vote.
  int home_node() const noexcept {
    return home_node_.load(std::memory_order_relaxed);
  }
  void set_home_node(int n, bool soft = false) noexcept {
    home_node_.store(n, std::memory_order_relaxed);
    home_soft_.store(soft, std::memory_order_relaxed);
  }
  bool home_soft() const noexcept {
    return home_soft_.load(std::memory_order_relaxed);
  }

  /// Chain affinity inheritance: the home node that won the max-bytes vote
  /// over this task's dependency predecessors, recorded while the task's
  /// edges are discovered (dep_domain) and consulted at spawn-time home
  /// resolution when the task carries no hint of its own.  -1 = nothing to
  /// inherit.  Written only by the spawning thread during registration;
  /// atomic because diagnostics may read it from other threads.
  int inherited_node() const noexcept {
    return inherited_node_.load(std::memory_order_relaxed);
  }
  void set_inherited_node(int n) noexcept {
    inherited_node_.store(n, std::memory_order_relaxed);
  }

  /// Attaches a commutative-region exclusion lock (called only by the
  /// spawning thread during registration, under the region's shard lock;
  /// published to the executing worker by the ready-queue handshake).
  void add_exclusion_lock(std::shared_ptr<std::mutex> m) {
    exclusion_locks_.push_back(std::move(m));
  }

  /// Locks the task must hold while executing (commutative regions).
  const std::vector<std::shared_ptr<std::mutex>>& exclusion_locks() const noexcept {
    return exclusion_locks_;
  }

  // ---- profiling / critical-path bookkeeping (oss::prof) ---------------
  // All timestamps are raw TraceSystem::clock() ticks, converted to ns only
  // at snapshot time.  The plain (non-atomic) fields ride existing
  // happens-before edges: spawn_ts is written by the spawner before the
  // spawn-guard release; ready_ts by whichever thread zeroes `preds`,
  // before the queue publish (or state release) the executor acquires; the
  // pred-path fields are written under `succ_mu_` by finishing producers
  // and read plainly by the consumer only at its own retirement — by then
  // every producer's offer happened-before the consumer's readiness.
  // When the runtime's timing gate is off, none of this is ever touched.

  std::uint64_t spawn_ts() const noexcept { return spawn_ts_; }
  void set_spawn_ts(std::uint64_t t) noexcept { spawn_ts_ = t; }
  std::uint64_t ready_ts() const noexcept { return ready_ts_; }
  void set_ready_ts(std::uint64_t t) noexcept { ready_ts_ = t; }

  /// Producer-side critical-path offer: each finishing predecessor calls
  /// this (before decrementing `preds`) with its own completed path length
  /// and attribution; the heaviest offer wins.  `succ_mu_` serializes
  /// concurrent producers.
  void offer_pred_path(std::uint64_t path_ticks, std::uint64_t pred_id,
                       const PathAttr& attr) {
    std::lock_guard lock(succ_mu_);
    if (path_ticks > pred_path_ticks_) {
      pred_path_ticks_ = path_ticks;
      crit_pred_ = pred_id;
      pred_attr_ = attr;
    }
  }
  std::uint64_t pred_path_ticks() const noexcept { return pred_path_ticks_; }
  /// Id of the predecessor whose path won (0 = none) — the back-pointer the
  /// graph recorder walks to color the critical chain.
  std::uint64_t crit_pred() const noexcept { return crit_pred_; }
  const PathAttr& pred_attr() const noexcept { return pred_attr_; }

  /// Completed path length in ticks (max over predecessors + own exec),
  /// stored at retirement; read by diagnostics and the graph recorder.
  std::uint64_t path_ticks() const noexcept {
    return path_ticks_.load(std::memory_order_relaxed);
  }
  void set_path_ticks(std::uint64_t t) noexcept {
    path_ticks_.store(t, std::memory_order_relaxed);
  }

  // ---- lock-free ready-queue anchor -----------------------------------
  // The lock-free queues (chase_lev.hpp, mpmc_queue.hpp) store tasks as raw
  // `Task*`; the queue's owning reference parks in this slot while the task
  // is enqueued.  The enqueuer writes it before the queue publishes the
  // pointer and the single dequeuer that wins the element takes it back —
  // the queue's release/acquire (or CAS) handshake orders the two, and a
  // ready task sits in at most one queue, so one slot suffices.

  void anchor_queue_ref(TaskPtr self) noexcept {
    queue_ref_ = std::move(self);
  }

  [[nodiscard]] TaskPtr take_queue_ref() noexcept {
    return std::move(queue_ref_);
  }

  // ---- concurrent spawn/finish protocol -------------------------------
  //
  // Edges materialize from several dependency shards (and several spawning
  // threads' registrations) concurrently with producers finishing, so the
  // per-task bookkeeping carries its own synchronization:
  //
  //   * `preds` counts unfinished predecessors, plus one *spawn guard* the
  //     runtime holds while the consumer's own registration is in flight
  //     (so a burst of concurrent finishes cannot publish a half-registered
  //     task).  The release half of the protocol is the finisher's
  //     fetch_sub; the acquire half is whoever brings it to zero.
  //   * the successor list is guarded by `succ_mu_`; `add_successor_edge`
  //     (producer side of edge insertion) and `finish_take_successors`
  //     (retirement) linearize through it.

  /// Unfinished predecessors (+1 while the spawn guard is held); the task
  /// becomes ready when this hits zero.
  std::atomic<int> preds{0};

  /// Tasks whose `preds` must be decremented when this task finishes.
  /// Guarded by succ_mu_; test-only direct reads require quiescence.
  std::vector<TaskPtr> successors;

  /// Producer side of edge insertion: unless this task already finished,
  /// atomically increments `consumer->preds` and appends the consumer to
  /// the successor list.  Returns false when this task already retired (no
  /// edge needed — its effects are visible).  The consumer must still be
  /// guarded (unpublished) so the increment cannot race its readiness.
  bool add_successor_edge(const TaskPtr& consumer) {
    std::lock_guard lock(succ_mu_);
    if (finished()) return false;
    consumer->preds.fetch_add(1, std::memory_order_relaxed);
    successors.push_back(consumer);
    return true;
  }

  /// Retirement: marks the task finished and drains the successor list into
  /// `out`, as one atomic step against add_successor_edge — a concurrent
  /// edge either lands in `out` or observes `finished` and is skipped.
  /// `out` is appended to (callers pass a cleared scratch vector); the
  /// task's own list keeps its capacity for the next life.
  void finish_take_successors(std::vector<TaskPtr>& out) {
    std::lock_guard lock(succ_mu_);
    mark_finished();
    for (auto& s : successors) out.push_back(std::move(s));
    successors.clear();
  }

 private:
  /// Final-release path: pooled tasks go back to the freelist, plain tasks
  /// are deleted.  Out of line — task.cpp knows the pool.
  void destroy_or_recycle() noexcept;

  std::mutex succ_mu_; ///< guards `successors` and orders it vs `finished_`
  std::uint64_t id_ = 0;
  Fn fn_;
  AccessList accesses_;
  ContextPtr parent_ctx_;
  ContextPtr child_ctx_; // lazily created; touched only by the executing thread
  std::string label_;
  int priority_ = 0;
  std::uint32_t trace_label_ = 0;
  std::atomic<int> home_node_{-1};
  std::atomic<int> inherited_node_{-1};
  std::atomic<bool> home_soft_{false};
  bool undeferred_ = false;
  bool pooled_ = false;
  std::uint64_t spawn_ts_ = 0;      ///< raw ticks at spawn (prof on only)
  std::uint64_t ready_ts_ = 0;      ///< raw ticks when preds hit zero
  std::uint64_t pred_path_ticks_ = 0; ///< heaviest predecessor path (succ_mu_)
  std::uint64_t crit_pred_ = 0;       ///< id of the winning predecessor
  PathAttr pred_attr_;                ///< its label attribution (succ_mu_)
  std::atomic<std::uint64_t> path_ticks_{0}; ///< own completed path length
  std::vector<std::shared_ptr<std::mutex>> exclusion_locks_;
  TaskPtr queue_ref_; // owning self-reference while in a lock-free queue
  std::atomic<bool> finished_{false};
  std::atomic<TaskState> state_{TaskState::Created};
  std::atomic<std::uint32_t> refs_{1};
};

inline void TaskPtr::retain(Task* t) noexcept { t->retain(); }
inline void TaskPtr::release(Task* t) noexcept { t->release(); }
inline long TaskPtr::use_count() const noexcept {
  return p_ ? p_->refcount() : 0;
}

/// Builds a fresh (non-pooled) task and wraps it — the test/bench-facing
/// replacement for the former std::make_shared<Task>(...).
inline TaskPtr make_task(std::uint64_t id, Task::Fn fn, AccessList accesses,
                         ContextPtr parent_ctx, std::string label) {
  return TaskPtr::adopt(new Task(id, std::move(fn), std::move(accesses),
                                 std::move(parent_ctx), std::move(label)));
}

} // namespace oss
