// trace_analysis.hpp — post-mortem analysis of execution traces.
//
// The original OmpSs toolchain ships Paraver for trace inspection; this is
// the library-sized equivalent: given the events a `TraceRecorder` captured,
// compute per-worker utilization, per-label aggregates, and the critical
// span, and render a compact text report.  Used by the examples and by the
// granularity ablation to show *where* runtime overhead goes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace oss {

class TraceRecorder;
class TraceSystem;

/// Aggregate statistics over one label (task kind).
struct LabelStats {
  std::string label;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;

  [[nodiscard]] double mean_us() const {
    return count ? static_cast<double>(total_us) / static_cast<double>(count) : 0.0;
  }
};

/// Per-worker activity.
struct WorkerStats {
  int worker = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_us = 0;
};

/// Whole-trace summary.
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t makespan_us = 0; ///< last end − first start
  std::uint64_t busy_us = 0;     ///< sum of task durations over all workers
  std::vector<WorkerStats> workers;   ///< sorted by worker id
  std::vector<LabelStats> labels;     ///< sorted by total time, descending

  /// busy / (makespan × workers): 1.0 = perfectly packed.
  [[nodiscard]] double utilization() const;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
};

/// Analyzes a recorder's events (empty summary if tracing was disabled).
TraceSummary analyze_trace(const TraceRecorder& trace);

// ---------------------------------------------------------------------------
// Offline work/span analysis (analyze_trace --span): recompute the numbers
// oss::prof maintains online — work = Σ durations, span = longest dependency
// chain, parallelism = work/span — from a recorded task graph.  The online
// and offline results are parity-tested against each other (test_prof.cpp).
// ---------------------------------------------------------------------------

/// One executed task as the span analysis sees it.
struct SpanTask {
  std::uint64_t id = 0;
  std::string label;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// One dependency edge (producer → consumer, task ids).
struct SpanEdge {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// Work/span result.
struct SpanSummary {
  std::uint64_t tasks = 0;
  std::uint64_t edges = 0;   ///< edges that joined two known tasks
  std::uint64_t work_ns = 0; ///< Σ task durations
  std::uint64_t span_ns = 0; ///< longest dependency chain
  /// Exact per-label time on the critical path, sorted descending (the
  /// offline counterpart of ProfileSnapshot::critical_ns, which keeps only
  /// the top PathAttr::kTop labels).
  std::vector<std::pair<std::string, std::uint64_t>> critical_ns;

  [[nodiscard]] double parallelism() const {
    return span_ns ? static_cast<double>(work_ns) /
                         static_cast<double>(span_ns)
                   : 0.0;
  }

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
};

/// Longest-path (Kahn topological) work/span over an explicit task set.
/// Edges naming unknown task ids are skipped; tasks caught in a cycle
/// (malformed input — dependency graphs are acyclic) contribute work but
/// not span.
SpanSummary compute_work_span(const std::vector<SpanTask>& tasks,
                              const std::vector<SpanEdge>& edges);

/// Same analysis straight off a live TraceSystem's merged events (full
/// mode records the dependency edges; exec mode yields zero edges and
/// span == longest single task).
SpanSummary compute_work_span(TraceSystem& trace);

/// A Chrome trace-event JSON export reduced to the span analysis inputs.
struct ParsedTrace {
  std::vector<SpanTask> tasks;
  std::vector<SpanEdge> edges;
};

/// Parses a Chrome trace-event JSON string produced by
/// `TraceSystem::to_chrome_json` (either mode): "X" events with cat "task"
/// become SpanTasks (id from args.task, falling back to the "#N" name
/// suffix), dep-flow "s" events with args.from/to become SpanEdges.
/// Tolerant of unknown events; throws std::invalid_argument only on
/// structurally broken JSON.
ParsedTrace parse_chrome_trace(const std::string& json);

} // namespace oss
