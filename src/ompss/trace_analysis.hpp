// trace_analysis.hpp — post-mortem analysis of execution traces.
//
// The original OmpSs toolchain ships Paraver for trace inspection; this is
// the library-sized equivalent: given the events a `TraceRecorder` captured,
// compute per-worker utilization, per-label aggregates, and the critical
// span, and render a compact text report.  Used by the examples and by the
// granularity ablation to show *where* runtime overhead goes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oss {

class TraceRecorder;

/// Aggregate statistics over one label (task kind).
struct LabelStats {
  std::string label;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;

  [[nodiscard]] double mean_us() const {
    return count ? static_cast<double>(total_us) / static_cast<double>(count) : 0.0;
  }
};

/// Per-worker activity.
struct WorkerStats {
  int worker = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_us = 0;
};

/// Whole-trace summary.
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t makespan_us = 0; ///< last end − first start
  std::uint64_t busy_us = 0;     ///< sum of task durations over all workers
  std::vector<WorkerStats> workers;   ///< sorted by worker id
  std::vector<LabelStats> labels;     ///< sorted by total time, descending

  /// busy / (makespan × workers): 1.0 = perfectly packed.
  [[nodiscard]] double utilization() const;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
};

/// Analyzes a recorder's events (empty summary if tracing was disabled).
TraceSummary analyze_trace(const TraceRecorder& trace);

} // namespace oss
