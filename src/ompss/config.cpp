#include "ompss/config.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <thread>

#include "ompss/topology.hpp"

namespace oss {

const char* to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::Fifo: return "fifo";
    case SchedulerPolicy::Locality: return "locality";
    case SchedulerPolicy::WorkStealing: return "wsteal";
  }
  return "?";
}

const char* to_string(WaitPolicy p) noexcept {
  switch (p) {
    case WaitPolicy::Polling: return "poll";
    case WaitPolicy::Blocking: return "block";
  }
  return "?";
}

SchedulerPolicy parse_scheduler_policy(const std::string& name) {
  if (name == "fifo") return SchedulerPolicy::Fifo;
  if (name == "locality") return SchedulerPolicy::Locality;
  if (name == "wsteal" || name == "work-stealing") return SchedulerPolicy::WorkStealing;
  throw std::invalid_argument("unknown scheduler policy '" + name +
                              "' (valid: fifo, locality, wsteal) [OSS_SCHEDULER]");
}

WaitPolicy parse_wait_policy(const std::string& name) {
  if (name == "poll" || name == "polling") return WaitPolicy::Polling;
  if (name == "block" || name == "blocking") return WaitPolicy::Blocking;
  throw std::invalid_argument("unknown wait policy '" + name +
                              "' (valid: poll, block) [OSS_BARRIER]");
}

const char* to_string(IdlePolicy p) noexcept {
  switch (p) {
    case IdlePolicy::Spin: return "spin";
    case IdlePolicy::Yield: return "yield";
    case IdlePolicy::Sleep: return "sleep";
    case IdlePolicy::Park: return "park";
  }
  return "?";
}

IdlePolicy parse_idle_policy(const std::string& name) {
  if (name == "spin") return IdlePolicy::Spin;
  if (name == "yield") return IdlePolicy::Yield;
  if (name == "sleep") return IdlePolicy::Sleep;
  if (name == "park") return IdlePolicy::Park;
  throw std::invalid_argument("unknown idle policy '" + name +
                              "' (valid: park, spin, yield, sleep) [OSS_IDLE]");
}

const char* to_string(NumaMode m) noexcept {
  switch (m) {
    case NumaMode::Bind: return "bind";
    case NumaMode::Interleave: return "interleave";
    case NumaMode::Off: return "off";
  }
  return "?";
}

NumaMode parse_numa_mode(const std::string& name) {
  if (name == "bind") return NumaMode::Bind;
  if (name == "interleave") return NumaMode::Interleave;
  if (name == "off") return NumaMode::Off;
  throw std::invalid_argument("unknown NUMA mode '" + name +
                              "' (valid: bind, interleave, off) [OSS_NUMA]");
}

const char* to_string(TraceMode m) noexcept {
  switch (m) {
    case TraceMode::Off: return "off";
    case TraceMode::Exec: return "exec";
    case TraceMode::Full: return "full";
  }
  return "?";
}

TraceMode parse_trace_mode(const std::string& name) {
  // Legacy boolean spellings (OSS_TRACE used to be a plain bool) keep
  // working: truthy = exec, falsy = off.
  if (name == "exec" || name == "1" || name == "true" || name == "yes" ||
      name == "on") {
    return TraceMode::Exec;
  }
  if (name == "off" || name == "0" || name == "false" || name == "no") {
    return TraceMode::Off;
  }
  if (name == "full") return TraceMode::Full;
  throw std::invalid_argument("unknown trace mode '" + name +
                              "' (valid: off, exec, full) [OSS_TRACE]");
}

const char* to_string(PinMode m) noexcept {
  switch (m) {
    case PinMode::Off: return "off";
    case PinMode::Node: return "node";
    case PinMode::Compact: return "compact";
    case PinMode::Scatter: return "scatter";
  }
  return "?";
}

PinMode parse_pin_mode(const std::string& name) {
  // OSS_PIN used to be a plain bool; truthy = the node layout.
  if (name == "node" || name == "1" || name == "true" || name == "yes" ||
      name == "on") {
    return PinMode::Node;
  }
  if (name == "off" || name == "0" || name == "false" || name == "no") {
    return PinMode::Off;
  }
  if (name == "compact") return PinMode::Compact;
  if (name == "scatter") return PinMode::Scatter;
  throw std::invalid_argument(
      "unknown pin mode '" + name +
      "' (valid: off, node, compact, scatter) [OSS_PIN]");
}

std::size_t RuntimeConfig::resolved_threads() const noexcept {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Topology RuntimeConfig::resolved_topology() const {
  if (numa == NumaMode::Off) return Topology::flat(resolved_threads());
  return Topology::detect(topology);
}

std::size_t parse_env_size(const char* name, const char* value) {
  // strtoull alone is too lenient for a config knob: it skips leading
  // whitespace, accepts a sign, and silently wraps "-1" to ~2^64.  Require
  // the string to be plain decimal digits from the first character so
  // OSS_NUM_THREADS=-1 (and " 1", "+1", "1 ") throw instead of wrapping.
  if (value[0] < '0' || value[0] > '9') {
    throw std::invalid_argument(std::string(name) + ": expected an integer, got '" + value + "'");
  }
  errno = 0;
  char* endp = nullptr;
  const unsigned long long v = std::strtoull(value, &endp, 10);
  if (endp == value || *endp != '\0') {
    throw std::invalid_argument(std::string(name) + ": expected an integer, got '" + value + "'");
  }
  if (errno == ERANGE || v > std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument(std::string(name) + ": integer out of range, got '" + value + "'");
  }
  return static_cast<std::size_t>(v);
}

bool parse_env_bool(const char* name, const char* value) {
  const std::string v(value);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument(std::string(name) + ": expected a boolean, got '" + v + "'");
}

namespace {

const char* env(const char* name) { return std::getenv(name); }

std::size_t parse_size(const char* name, const char* value) {
  return parse_env_size(name, value);
}

bool parse_bool(const char* name, const char* value) {
  return parse_env_bool(name, value);
}

} // namespace

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  if (const char* v = env("OSS_NUM_THREADS")) {
    cfg.num_threads = parse_size("OSS_NUM_THREADS", v);
    if (cfg.num_threads == 0) throw std::invalid_argument("OSS_NUM_THREADS must be >= 1");
  }
  if (const char* v = env("OSS_SCHEDULER")) cfg.scheduler = parse_scheduler_policy(v);
  if (const char* v = env("OSS_BARRIER")) cfg.wait_policy = parse_wait_policy(v);
  if (const char* v = env("OSS_IDLE")) cfg.idle = parse_idle_policy(v);
  if (const char* v = env("OSS_SPIN_ROUNDS")) cfg.spin_rounds = parse_size("OSS_SPIN_ROUNDS", v);
  if (const char* v = env("OSS_STEAL_TRIES")) {
    cfg.steal_tries = parse_size("OSS_STEAL_TRIES", v);
    if (cfg.steal_tries == 0) throw std::invalid_argument("OSS_STEAL_TRIES must be >= 1");
  }
  if (const char* v = env("OSS_NUMA")) cfg.numa = parse_numa_mode(v);
  if (const char* v = env("OSS_PIN")) {
    cfg.pin_mode = parse_pin_mode(v);
    cfg.pin = cfg.pin_mode != PinMode::Off; // keep the legacy bool in sync
  }
  if (const char* v = env("OSS_PRESSURE")) cfg.pressure = parse_size("OSS_PRESSURE", v);
  if (const char* v = env("OSS_POOL")) cfg.pool = parse_bool("OSS_POOL", v);
  if (const char* v = env("OSS_DEP_SHARDS")) {
    cfg.dep_shards = parse_size("OSS_DEP_SHARDS", v);
    if (cfg.dep_shards < 1 || cfg.dep_shards > 256 ||
        (cfg.dep_shards & (cfg.dep_shards - 1)) != 0) {
      throw std::invalid_argument(
          "OSS_DEP_SHARDS must be a power of two in [1, 256], got '" +
          std::string(v) + "'");
    }
  }
  if (const char* v = env("OSS_TOPOLOGY")) {
    (void)Topology::detect(v); // validate eagerly: malformed specs fail here
    cfg.topology = v;
  }
  if (const char* v = env("OSS_RECORD_GRAPH")) cfg.record_graph = parse_bool("OSS_RECORD_GRAPH", v);
  if (const char* v = env("OSS_TRACE")) {
    cfg.trace_mode = parse_trace_mode(v);
    cfg.record_trace = cfg.trace_mode != TraceMode::Off; // legacy bool view
  }
  if (const char* v = env("OSS_TRACE_OUT")) cfg.trace_out = v;
  if (const char* v = env("OSS_TRACE_BUF")) {
    cfg.trace_buffer = parse_size("OSS_TRACE_BUF", v);
    if (cfg.trace_buffer == 0) throw std::invalid_argument("OSS_TRACE_BUF must be >= 1");
  }
  if (const char* v = env("OSS_STATS_EVERY_MS")) cfg.stats_every_ms = parse_size("OSS_STATS_EVERY_MS", v);
  if (const char* v = env("OSS_PROF")) cfg.prof = parse_bool("OSS_PROF", v);
  if (const char* v = env("OSS_PROF_EVERY_MS")) cfg.prof_every_ms = parse_size("OSS_PROF_EVERY_MS", v);
  if (const char* v = env("OSS_WATCHDOG")) cfg.watchdog_ms = parse_size("OSS_WATCHDOG", v);
  return cfg;
}

} // namespace oss
