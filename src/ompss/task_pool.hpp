#pragma once
// task_pool.hpp — allocation recycling for the steady-state spawn path.
//
// Three cooperating pieces:
//
//   * oss::pool::acquire()/recycle() — a process-wide Task recycler.
//     Retiring workers push finished tasks onto a per-thread freelist
//     (no lock); spawners pop from their own freelist first, then
//     refill in batches from a mutex-protected global list, and only
//     `new` a fresh batch on a true miss.  The thread cache is capped
//     (kThreadCacheCap) so a retire-heavy worker spills batches to the
//     global list instead of hoarding, and the global list is capped
//     (kGlobalCap) so a burst cannot pin memory forever — beyond the
//     cap, tasks are actually deleted.  This is why tasks are
//     individually `new`ed (in batches of kSlabTasks) rather than
//     carved from permanent slabs: a hard cap needs to be able to give
//     memory back.
//
//   * oss::pool::NodePool + PoolAllocator — a fixed-size freelist used
//     as the std::map allocator for the dependency domain's interval
//     maps.  One NodePool per shard, protected by the shard's existing
//     mutex (the pool itself takes no locks).  Nodes are carved from
//     64-node chunks and recycled forever; interval erase/insert churn
//     in register_range stops hitting the global allocator once a
//     shard is warm.
//
//   * enabled_by_default() — the OSS_POOL=on|off escape hatch, read
//     once.  Off restores the pre-pool behavior (plain `new`/`delete`
//     per task, default map allocator) bit-exactly.
//
// Memory ordering: recycle() publishes the cleared task by pushing it
// under the thread-local list (same thread) or the global mutex; a
// later acquire() on another thread re-acquires it through that same
// mutex, so the retire happens-before the reuse.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace oss {

class Task;

namespace pool {

// Tuning knobs.  Cache cap bounds per-thread hoarding; flush batch is
// what moves per overflow/refill; slab is the miss batch size; global
// cap bounds total idle tasks process-wide.
inline constexpr std::size_t kThreadCacheCap = 128;
inline constexpr std::size_t kFlushBatch = 64;
inline constexpr std::size_t kSlabTasks = 32;
inline constexpr std::size_t kGlobalCap = 4096;

struct AcquireResult {
  Task* task;     // dormant task, caller must prepare() it
  bool recycled;  // false = freshly allocated (a pool miss)
};

// Pop a dormant task from the calling thread's cache (or the global
// list, or allocate a fresh batch).  The returned task is pooled: its
// final release() routes back through recycle().
AcquireResult acquire();

// Return a dead task (refcount 0) to the calling thread's cache.
// Called from Task::release() on the retiring thread.
void recycle(Task* t) noexcept;

// Process-wide counters (monotonic; Runtime::stats() computes deltas).
std::uint64_t recycled_total() noexcept;
std::uint64_t miss_total() noexcept;
std::uint64_t overflow_total() noexcept;

// Test accessors.
std::size_t thread_cache_size() noexcept;
std::size_t global_pool_size() noexcept;

// OSS_POOL env knob, parsed once (on|1|true|yes vs off|0|false|no;
// default on).  RuntimeConfig's `pool` field defaults to this.
bool enabled_by_default() noexcept;

// ---------------------------------------------------------------------------
// NodePool: fixed-size-node freelist, externally synchronized.
//
// The node size latches on the first allocation (the map's tree-node
// size); anything larger falls through to the global allocator so a
// rebound allocator for an oversized type stays correct.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;
  ~NodePool() {
    for (void* c : chunks_) ::operator delete(c);
  }

  void* allocate(std::size_t bytes) {
    if (node_size_ == 0)
      node_size_ = bytes < sizeof(FreeNode) ? sizeof(FreeNode) : bytes;
    if (bytes > node_size_) return ::operator new(bytes);
    if (!free_) refill();
    FreeNode* n = free_;
    free_ = n->next;
    return n;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    if (bytes > node_size_) {
      ::operator delete(p);
      return;
    }
    auto* n = static_cast<FreeNode*>(p);
    n->next = free_;
    free_ = n;
  }

  std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kChunkNodes = 64;

  void refill() {
    char* chunk = static_cast<char*>(::operator new(node_size_ * kChunkNodes));
    chunks_.push_back(chunk);
    for (std::size_t i = kChunkNodes; i-- > 0;) {
      auto* n = reinterpret_cast<FreeNode*>(chunk + i * node_size_);
      n->next = free_;
      free_ = n;
    }
  }

  std::size_t node_size_ = 0;
  FreeNode* free_ = nullptr;
  std::vector<void*> chunks_;
};

// Standard-allocator shim over a NodePool.  A null pool means "behave
// exactly like std::allocator" — that is the OSS_POOL=off path.
template <class T>
struct PoolAllocator {
  using value_type = T;

  NodePool* pool = nullptr;

  PoolAllocator() noexcept = default;
  explicit PoolAllocator(NodePool* p) noexcept : pool(p) {}
  template <class U>
  PoolAllocator(const PoolAllocator<U>& o) noexcept : pool(o.pool) {}

  T* allocate(std::size_t n) {
    if (n == 1 && pool) return static_cast<T*>(pool->allocate(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1 && pool) {
      pool->deallocate(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const PoolAllocator<U>& o) const noexcept {
    return pool == o.pool;
  }
  template <class U>
  bool operator!=(const PoolAllocator<U>& o) const noexcept {
    return pool != o.pool;
  }
};

}  // namespace pool
}  // namespace oss
