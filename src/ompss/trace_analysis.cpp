#include "ompss/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "ompss/trace.hpp"

namespace oss {

double TraceSummary::utilization() const {
  if (makespan_us == 0 || workers.empty()) return 0.0;
  return static_cast<double>(busy_us) /
         (static_cast<double>(makespan_us) * static_cast<double>(workers.size()));
}

TraceSummary analyze_trace(const TraceRecorder& trace) {
  TraceSummary s;
  const auto events = trace.events();
  s.events = events.size();
  if (events.empty()) return s;

  std::uint64_t first = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t last = 0;
  std::map<int, WorkerStats> workers;
  std::map<std::string, LabelStats> labels;

  for (const auto& e : events) {
    const std::uint64_t dur = e.end_us - e.start_us;
    first = std::min(first, e.start_us);
    last = std::max(last, e.end_us);
    s.busy_us += dur;

    WorkerStats& w = workers[e.worker];
    w.worker = e.worker;
    w.tasks++;
    w.busy_us += dur;

    const std::string key = e.label.empty() ? "(unlabeled)" : e.label;
    LabelStats& l = labels[key];
    if (l.count == 0) {
      l.label = key;
      l.min_us = dur;
      l.max_us = dur;
    }
    l.count++;
    l.total_us += dur;
    l.min_us = std::min(l.min_us, dur);
    l.max_us = std::max(l.max_us, dur);
  }

  s.makespan_us = last - first;
  for (auto& [id, w] : workers) s.workers.push_back(w);
  for (auto& [key, l] : labels) s.labels.push_back(l);
  std::sort(s.labels.begin(), s.labels.end(),
            [](const LabelStats& a, const LabelStats& b) {
              return a.total_us > b.total_us;
            });
  return s;
}

// ---------------------------------------------------------------------------
// Work/span (critical path) — offline counterpart of oss::prof
// ---------------------------------------------------------------------------

SpanSummary compute_work_span(const std::vector<SpanTask>& tasks,
                              const std::vector<SpanEdge>& edges) {
  SpanSummary s;
  s.tasks = tasks.size();
  if (tasks.empty()) return s;

  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) index.emplace(tasks[i].id, i);

  std::vector<std::uint64_t> dur(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const SpanTask& t = tasks[i];
    dur[i] = t.end_ns > t.begin_ns ? t.end_ns - t.begin_ns : 0;
    s.work_ns += dur[i];
  }

  // Adjacency + indegrees; edges naming tasks the trace never ran (dropped
  // events, foreign producers) are skipped — they cannot carry time.
  std::vector<std::vector<std::size_t>> out(tasks.size());
  std::vector<std::size_t> indeg(tasks.size(), 0);
  for (const SpanEdge& e : edges) {
    const auto f = index.find(e.from);
    const auto t = index.find(e.to);
    if (f == index.end() || t == index.end()) continue;
    out[f->second].push_back(t->second);
    ++indeg[t->second];
    ++s.edges;
  }

  // Kahn longest path: path[i] = longest chain ending at i (inclusive).
  std::vector<std::uint64_t> path(dur);
  std::vector<std::size_t> crit_pred(tasks.size(), tasks.size()); // = none
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (indeg[i] == 0) queue.push_back(i);
  std::size_t processed = 0;
  std::size_t tip = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    ++processed;
    if (path[u] > path[tip]) tip = u;
    for (const std::size_t v : out[u]) {
      if (path[u] + dur[v] > path[v]) {
        path[v] = path[u] + dur[v];
        crit_pred[v] = u;
      }
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  // processed < tasks.size() would mean a cycle — structurally impossible
  // for a recorded dependency graph; the unprocessed remainder keeps its
  // initial own-duration path and simply cannot win the span.
  s.span_ns = path[tip];

  // Walk the winning chain back for exact per-label attribution.
  std::map<std::string, std::uint64_t> by_label;
  for (std::size_t cur = tip; cur != tasks.size(); cur = crit_pred[cur]) {
    const std::string& l = tasks[cur].label;
    by_label[l.empty() ? "(unlabeled)" : l] += dur[cur];
    if (crit_pred[cur] == cur) break; // self-loop guard (malformed input)
  }
  s.critical_ns.assign(by_label.begin(), by_label.end());
  std::sort(s.critical_ns.begin(), s.critical_ns.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return s;
}

SpanSummary compute_work_span(TraceSystem& trace) {
  std::vector<SpanTask> tasks;
  std::vector<SpanEdge> edges;
  for (const TraceSystem::Merged& m : trace.merged_events()) {
    if (m.ev.kind == TraceEventKind::RunSpan) {
      // RunSpan: arg = begin, ts = end (already ns after the drain).
      tasks.push_back(SpanTask{m.ev.task, trace.label_name(m.ev.label),
                               m.ev.arg, m.ev.ts});
    } else if (m.ev.kind == TraceEventKind::Edge) {
      // Edge: arg = producer, task = consumer.
      edges.push_back(SpanEdge{m.ev.arg, m.ev.task});
    }
  }
  return compute_work_span(tasks, edges);
}

std::string SpanSummary::to_string() const {
  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", parallelism());
  os << "span: " << tasks << " tasks, " << edges << " edges, work "
     << work_ns / 1000 << " us, span " << span_ns / 1000
     << " us, parallelism " << buf << "\n";
  if (!critical_ns.empty()) {
    os << "critical path (by label):\n";
    for (const auto& [label, ns] : critical_ns) {
      os << "  " << label << ": " << ns / 1000 << " us\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON → span inputs
// ---------------------------------------------------------------------------

namespace {

/// Reads the string literal starting at json[i] (which must be '"'),
/// unescaping \" and \\; leaves `i` past the closing quote.
std::string read_string(const std::string& json, std::size_t& i) {
  std::string out;
  ++i; // opening quote
  while (i < json.size() && json[i] != '"') {
    if (json[i] == '\\' && i + 1 < json.size()) {
      out.push_back(json[i + 1]);
      i += 2;
    } else {
      out.push_back(json[i++]);
    }
  }
  if (i >= json.size()) throw std::invalid_argument("unterminated string");
  ++i; // closing quote
  return out;
}

/// Finds `"key":` at object level in `obj` (a single JSON object's text)
/// and returns the index just past the colon, or npos.  String values are
/// skipped while scanning, so a label containing a key-like substring
/// cannot fool it.
std::size_t find_key(const std::string& obj, const std::string& key) {
  const std::string pat = "\"" + key + "\"";
  bool in_str = false;
  for (std::size_t i = 0; i < obj.size(); ++i) {
    const char c = obj[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      if (obj.compare(i, pat.size(), pat) == 0) {
        std::size_t j = i + pat.size();
        while (j < obj.size() && (obj[j] == ' ' || obj[j] == '\t')) ++j;
        if (j < obj.size() && obj[j] == ':') return j + 1;
      }
      in_str = true;
    }
  }
  return std::string::npos;
}

/// String value of `"key"` in `obj`, or "" when absent / not a string.
std::string string_field(const std::string& obj, const std::string& key) {
  std::size_t i = find_key(obj, key);
  if (i == std::string::npos) return {};
  while (i < obj.size() && (obj[i] == ' ' || obj[i] == '\t')) ++i;
  if (i >= obj.size() || obj[i] != '"') return {};
  return read_string(obj, i);
}

/// Numeric value of `"key"` in `obj` (bare JSON number), or NaN.
double number_field(const std::string& obj, const std::string& key) {
  std::size_t i = find_key(obj, key);
  if (i == std::string::npos) return std::nan("");
  while (i < obj.size() && (obj[i] == ' ' || obj[i] == '\t')) ++i;
  const char* begin = obj.c_str() + i;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return std::nan("");
  return v;
}

std::uint64_t us_to_ns(double us) {
  return us > 0 ? static_cast<std::uint64_t>(std::llround(us * 1000.0)) : 0;
}

} // namespace

ParsedTrace parse_chrome_trace(const std::string& json) {
  ParsedTrace out;
  // Event objects sit at brace depth 2 ({"traceEvents":[{...},{...}]});
  // anything deeper ("args" sub-objects) stays inside its event.  The
  // depth counter ignores braces inside string literals — labels are
  // arbitrary user text.
  int depth = 0;
  bool in_str = false;
  std::size_t obj_start = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      if (++depth == 2) obj_start = i;
    } else if (c == '}') {
      if (depth <= 0) throw std::invalid_argument("unbalanced braces");
      if (depth-- != 2) continue;
      const std::string obj = json.substr(obj_start, i - obj_start + 1);

      const std::string cat = string_field(obj, "cat");
      const std::string ph = string_field(obj, "ph");
      if (cat == "task" && ph == "X") {
        SpanTask t;
        std::string label = string_field(obj, "name");
        const double id_num = number_field(obj, "task"); // args.task
        // The display name carries a " #<id>" suffix; strip it, and use it
        // as the id fallback for exec-mode traces without args.
        const std::size_t hash = label.rfind(" #");
        if (hash != std::string::npos) {
          if (std::isnan(id_num)) {
            t.id = std::strtoull(label.c_str() + hash + 2, nullptr, 10);
          }
          label.resize(hash);
        }
        if (!std::isnan(id_num)) t.id = static_cast<std::uint64_t>(id_num);
        t.label = label == "task" ? std::string{} : label;
        const double ts = number_field(obj, "ts");
        const double dur = number_field(obj, "dur");
        if (t.id != 0 && !std::isnan(ts) && !std::isnan(dur)) {
          t.begin_ns = us_to_ns(ts);
          t.end_ns = t.begin_ns + us_to_ns(dur);
          out.tasks.push_back(std::move(t));
        }
      } else if (cat == "dep" && ph == "s") {
        const double from = number_field(obj, "from");
        const double to = number_field(obj, "to");
        if (!std::isnan(from) && !std::isnan(to)) {
          out.edges.push_back(SpanEdge{static_cast<std::uint64_t>(from),
                                       static_cast<std::uint64_t>(to)});
        }
      }
    }
  }
  if (depth != 0 || in_str) throw std::invalid_argument("truncated JSON");
  return out;
}

std::string TraceSummary::to_string() const {
  std::ostringstream os;
  os << "trace: " << events << " tasks, makespan " << makespan_us
     << " us, busy " << busy_us << " us, utilization "
     << static_cast<int>(utilization() * 100.0 + 0.5) << "%\n";
  os << "workers:\n";
  for (const auto& w : workers) {
    os << "  w" << w.worker << ": " << w.tasks << " tasks, " << w.busy_us
       << " us busy\n";
  }
  os << "labels (by total time):\n";
  for (const auto& l : labels) {
    os << "  " << l.label << ": n=" << l.count << " total=" << l.total_us
       << "us mean=" << static_cast<std::uint64_t>(l.mean_us())
       << "us min=" << l.min_us << "us max=" << l.max_us << "us\n";
  }
  return os.str();
}

} // namespace oss
