#include "ompss/trace_analysis.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "ompss/trace.hpp"

namespace oss {

double TraceSummary::utilization() const {
  if (makespan_us == 0 || workers.empty()) return 0.0;
  return static_cast<double>(busy_us) /
         (static_cast<double>(makespan_us) * static_cast<double>(workers.size()));
}

TraceSummary analyze_trace(const TraceRecorder& trace) {
  TraceSummary s;
  const auto events = trace.events();
  s.events = events.size();
  if (events.empty()) return s;

  std::uint64_t first = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t last = 0;
  std::map<int, WorkerStats> workers;
  std::map<std::string, LabelStats> labels;

  for (const auto& e : events) {
    const std::uint64_t dur = e.end_us - e.start_us;
    first = std::min(first, e.start_us);
    last = std::max(last, e.end_us);
    s.busy_us += dur;

    WorkerStats& w = workers[e.worker];
    w.worker = e.worker;
    w.tasks++;
    w.busy_us += dur;

    const std::string key = e.label.empty() ? "(unlabeled)" : e.label;
    LabelStats& l = labels[key];
    if (l.count == 0) {
      l.label = key;
      l.min_us = dur;
      l.max_us = dur;
    }
    l.count++;
    l.total_us += dur;
    l.min_us = std::min(l.min_us, dur);
    l.max_us = std::max(l.max_us, dur);
  }

  s.makespan_us = last - first;
  for (auto& [id, w] : workers) s.workers.push_back(w);
  for (auto& [key, l] : labels) s.labels.push_back(l);
  std::sort(s.labels.begin(), s.labels.end(),
            [](const LabelStats& a, const LabelStats& b) {
              return a.total_us > b.total_us;
            });
  return s;
}

std::string TraceSummary::to_string() const {
  std::ostringstream os;
  os << "trace: " << events << " tasks, makespan " << makespan_us
     << " us, busy " << busy_us << " us, utilization "
     << static_cast<int>(utilization() * 100.0 + 0.5) << "%\n";
  os << "workers:\n";
  for (const auto& w : workers) {
    os << "  w" << w.worker << ": " << w.tasks << " tasks, " << w.busy_us
       << " us busy\n";
  }
  os << "labels (by total time):\n";
  for (const auto& l : labels) {
    os << "  " << l.label << ": n=" << l.count << " total=" << l.total_us
       << "us mean=" << static_cast<std::uint64_t>(l.mean_us())
       << "us min=" << l.min_us << "us max=" << l.max_us << "us\n";
  }
  return os.str();
}

} // namespace oss
