#include "ompss/stats.hpp"

#include <cstdlib>
#include <sstream>

namespace oss {

StatsSnapshot Stats::snapshot() const {
  StatsSnapshot s;
  s.tasks_spawned = tasks_spawned_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.edges_raw = edges_raw_.load(std::memory_order_relaxed);
  s.edges_war = edges_war_.load(std::memory_order_relaxed);
  s.edges_waw = edges_waw_.load(std::memory_order_relaxed);
  s.edges_explicit = edges_explicit_.load(std::memory_order_relaxed);
  s.local_pops = local_pops_.load(std::memory_order_relaxed);
  s.global_pops = global_pops_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.steals_failed = steals_failed_.load(std::memory_order_relaxed);
  s.steals_remote = steals_remote_.load(std::memory_order_relaxed);
  s.tasks_local = tasks_local_.load(std::memory_order_relaxed);
  s.tasks_remote = tasks_remote_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.dep_single_shard = dep_single_shard_.load(std::memory_order_relaxed);
  s.dep_multi_shard = dep_multi_shard_.load(std::memory_order_relaxed);
  s.dep_contended = dep_contended_.load(std::memory_order_relaxed);
  s.replayed_tasks = replayed_tasks_.load(std::memory_order_relaxed);
  s.replay_graphs = replay_graphs_.load(std::memory_order_relaxed);
  s.taskwaits = taskwaits_.load(std::memory_order_relaxed);
  s.barriers = barriers_.load(std::memory_order_relaxed);
  s.tasks_recycled = tasks_recycled_.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  s.per_worker_executed.reserve(per_worker_executed_.size());
  for (const auto& c : per_worker_executed_)
    s.per_worker_executed.push_back(c.load(std::memory_order_relaxed));
  return s;
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "tasks: spawned=" << tasks_spawned << " executed=" << tasks_executed << '\n'
     << "edges: RAW=" << edges_raw << " WAR=" << edges_war << " WAW=" << edges_waw
     << " explicit=" << edges_explicit << " total=" << edges_total() << '\n'
     << "queue: local=" << local_pops << " global=" << global_pops
     << " steals=" << steals << " steal-fails=" << steals_failed << '\n'
     << "numa: local=" << tasks_local << " remote=" << tasks_remote
     << " remote-steals=" << steals_remote
     << " overflow=" << overflow_placements << '\n'
     << "idle: parks=" << parks << " wakeups=" << wakeups << '\n'
     << "deps: single-shard=" << dep_single_shard
     << " multi-shard=" << dep_multi_shard
     << " contended=" << dep_contended << '\n'
     << "replay: graphs=" << replay_graphs << " tasks=" << replayed_tasks << '\n'
     << "waits: taskwait=" << taskwaits << " barrier=" << barriers << '\n'
     << "trace: dropped=" << trace_dropped << '\n'
     << "pool: recycled=" << tasks_recycled << " misses=" << pool_misses
     << " overflow=" << pool_overflow << '\n'
     << "per-worker executed:";
  for (std::size_t i = 0; i < per_worker_executed.size(); ++i)
    os << " w" << i << '=' << per_worker_executed[i];
  os << '\n';
  return os.str();
}

std::string StatsSnapshot::footer(const std::string& tag) const {
  std::ostringstream os;
  os << "[oss-stats " << tag << "] tasks=" << tasks_executed
     << " (local=" << tasks_local << " remote=" << tasks_remote
     << ") steals=" << steals << " parks=" << parks
     << " deps(single=" << dep_single_shard << " multi=" << dep_multi_shard
     << " contended=" << dep_contended << " replayed=" << replayed_tasks
     << ") overflow=" << overflow_placements
     << " pool(recycled=" << tasks_recycled << " misses=" << pool_misses
     << " overflow=" << pool_overflow << ")"
     << " trace_dropped=" << trace_dropped;
  return os.str();
}

bool stats_footer_enabled() {
  const char* v = std::getenv("OSS_STATS");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

} // namespace oss
