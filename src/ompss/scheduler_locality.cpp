// Locality policy (default): a task unblocked by a completion is pushed to
// the hot end of the finishing worker's deque, so the consumer runs
// back-to-back with its producer while the produced data is still in cache
// (the paper's ray-rot win).  Spawn-ready tasks go to the global queue.
//
// A home-node hint refines both paths: the finisher keeps the task only
// when it sits on the task's home node (cache affinity and memory affinity
// agree); otherwise the task crosses to its home node's queue, where that
// node's workers drain it before touching the global tier.
#include "ompss/scheduler_impl.hpp"

namespace oss {

void LocalityScheduler::enqueue_spawned(TaskPtr t, int /*spawner_worker*/) {
  if (place_priority(t)) return;
  if (place_home(t)) return;
  const std::uint64_t id = t->id();
  global_.push(std::move(t));
  trace_place(id, PlaceTier::Global);
}

void LocalityScheduler::enqueue_unblocked(TaskPtr t, int finisher_worker) {
  if (place_priority(t)) return;
  if (is_worker(finisher_worker) && node_matches(finisher_worker, t)) {
    // Hot end of the finisher's deque: runs next on the same worker,
    // back-to-back with its producer (the paper's cache-locality win).
    const std::uint64_t id = t->id();
    worker_state(finisher_worker).deque.push(std::move(t));
    trace_place(id, PlaceTier::Local);
    return;
  }
  if (place_home(t)) return;
  const std::uint64_t id = t->id();
  global_.push(std::move(t));
  trace_place(id, PlaceTier::Global);
}

TaskPtr LocalityScheduler::pick(int worker, Stats& stats) {
  return common_pick(worker, stats, /*use_local=*/true, /*steal=*/true);
}

} // namespace oss
