// task_handle.hpp — first-class references to spawned tasks.
//
// `Runtime::spawn(...)` historically returned a bare task id, good only for
// correlating graph/trace output.  A `TaskHandle` is the typed upgrade: it
// keeps the underlying task object alive and remembers which runtime spawned
// it, so callers can
//
//   * poll completion (`done()`),
//   * block on exactly this task (`wait()` — a per-task `taskwait on`, the
//     waiting thread helps execute tasks under the polling policy), and
//   * hand it to `TaskBuilder::after(...)` to add an explicit dependency
//     edge that needs no overlapping memory regions.
//
// Handles are cheap to copy (one shared_ptr + one raw pointer) and remain
// valid after the task finished; a default-constructed handle is empty
// (`valid() == false`, `done() == true`, `wait()` is a no-op).
#pragma once

#include <cstdint>

#include "ompss/task.hpp"

namespace oss {

class Runtime;

class TaskHandle {
 public:
  /// Empty handle: refers to no task, behaves as already finished.
  TaskHandle() = default;

  /// True if the handle refers to a spawned task.
  [[nodiscard]] bool valid() const noexcept { return task_ != nullptr; }

  /// Id of the referenced task (0 for an empty handle).  Matches the ids in
  /// graph/trace exports and the value legacy `spawn()` returns.
  [[nodiscard]] std::uint64_t id() const noexcept {
    return task_ ? task_->id() : 0;
  }

  /// True once the task body returned (or threw).  Empty handles are done.
  [[nodiscard]] bool done() const noexcept {
    return task_ == nullptr || task_->finished();
  }

  /// Waits until the task finished — a per-task `taskwait on`.  The calling
  /// thread helps execute tasks while it waits (polling policy).  Safe to
  /// call from inside other tasks of the same runtime and from foreign
  /// threads.  No-op for empty or already-finished handles.
  void wait() const;

  /// NUMA home node the runtime resolved for the task at spawn time
  /// (TaskBuilder::affinity / affinity_auto), or -1 when the task has no
  /// affinity — including hints the topology could not honor and empty
  /// handles.
  [[nodiscard]] int home_node() const noexcept {
    return task_ ? task_->home_node() : -1;
  }

  /// Runtime that spawned the task (null for an empty handle).
  [[nodiscard]] Runtime* runtime() const noexcept { return rt_; }

 private:
  friend class Runtime;
  friend class TaskBuilder;

  TaskHandle(Runtime* rt, TaskPtr task) : rt_(rt), task_(std::move(task)) {}

  /// The referenced task (shared ownership keeps `done()` safe after the
  /// runtime retired the task).
  [[nodiscard]] const TaskPtr& task() const noexcept { return task_; }

  Runtime* rt_ = nullptr;
  TaskPtr task_;
};

} // namespace oss
