#include "cluster/streamcluster.hpp"

#include <stdexcept>

namespace cluster {

double FacilitySolution::total_cost() const {
  double c = facility_cost * static_cast<double>(centers.size());
  for (float d : dist) c += d;
  return c;
}

FacilitySolution initial_solution(const PointSet& points, std::size_t count,
                                  double facility_cost) {
  if (count == 0 || count > points.count) {
    throw std::invalid_argument("initial_solution: bad count");
  }
  FacilitySolution sol;
  sol.facility_cost = facility_cost;
  sol.assignment.assign(count, 0);
  sol.dist.assign(count, 0.f);
  sol.centers.push_back(0);

  for (std::size_t i = 1; i < count; ++i) {
    // Connect to the nearest open center.
    float best = dist2(points.point(i), points.point(sol.centers[0]), points.dim);
    std::uint32_t best_c = 0;
    for (std::size_t c = 1; c < sol.centers.size(); ++c) {
      const float d = dist2(points.point(i), points.point(sol.centers[c]), points.dim);
      if (d < best) {
        best = d;
        best_c = static_cast<std::uint32_t>(c);
      }
    }
    if (best > facility_cost) {
      // Opening here is cheaper than connecting: new facility.
      sol.assignment[i] = static_cast<std::uint32_t>(sol.centers.size());
      sol.dist[i] = 0.f;
      sol.centers.push_back(i);
    } else {
      sol.assignment[i] = best_c;
      sol.dist[i] = best;
    }
  }
  return sol;
}

void PGainPartial::init(std::size_t num_centers) {
  switch_gain = 0.0;
  center_extra.assign(num_centers, 0.0);
}

void PGainPartial::merge(const PGainPartial& other) {
  switch_gain += other.switch_gain;
  for (std::size_t i = 0; i < center_extra.size(); ++i) {
    center_extra[i] += other.center_extra[i];
  }
}

void pgain_block(const float* coords, std::size_t count, std::size_t dim,
                 const float* candidate, const std::uint32_t* assignment,
                 const float* dist, PGainPartial& partial) {
  for (std::size_t i = 0; i < count; ++i) {
    const float dx = dist2(coords + i * dim, candidate, dim);
    const double delta = static_cast<double>(dx) - static_cast<double>(dist[i]);
    if (delta < 0) {
      // The point prefers x regardless of closures.
      partial.switch_gain += -delta;
    } else {
      // If this point's center closes, moving it to x costs `delta` extra.
      partial.center_extra[assignment[i]] += delta;
    }
  }
}

void pgain_range(const PointSet& points, const FacilitySolution& sol,
                 std::size_t x, std::size_t begin, std::size_t end,
                 PGainPartial& partial) {
  if (begin >= end) return;
  pgain_block(points.point(begin), end - begin, points.dim, points.point(x),
              sol.assignment.data() + begin, sol.dist.data() + begin, partial);
}

double pgain_apply(const PointSet& points, FacilitySolution& sol, std::size_t x,
                   std::size_t count, const PGainPartial& merged) {
  const std::size_t k = sol.centers.size();
  // Opening an already-open facility is never profitable.
  for (std::size_t c : sol.centers) {
    if (c == x) return 0.0;
  }
  // Closing center c saves facility_cost but forces its loyal members to x.
  std::vector<bool> close(k, false);
  double gain = merged.switch_gain - sol.facility_cost; // pay to open x
  for (std::size_t c = 0; c < k; ++c) {
    const double saving = sol.facility_cost - merged.center_extra[c];
    if (saving > 0) {
      close[c] = true;
      gain += saving;
    }
  }
  if (gain <= 0) return gain;

  // Apply: open x, close marked centers, reassign points.
  const float* px = points.point(x);
  std::vector<std::size_t> new_centers;
  std::vector<std::uint32_t> remap(k, 0);
  for (std::size_t c = 0; c < k; ++c) {
    if (!close[c]) {
      remap[c] = static_cast<std::uint32_t>(new_centers.size());
      new_centers.push_back(sol.centers[c]);
    }
  }
  const auto x_idx = static_cast<std::uint32_t>(new_centers.size());
  new_centers.push_back(x);

  for (std::size_t i = 0; i < count; ++i) {
    const float dx = dist2(points.point(i), px, points.dim);
    const std::uint32_t old_c = sol.assignment[i];
    if (dx < sol.dist[i] || close[old_c]) {
      // Switchers and orphans both go to x (orphans by construction of
      // center_extra; switchers by definition).
      sol.assignment[i] = x_idx;
      sol.dist[i] = dx;
    } else {
      sol.assignment[i] = remap[old_c];
    }
  }
  sol.centers = std::move(new_centers);
  return gain;
}

std::vector<std::size_t> candidate_sequence(std::size_t count, int rounds,
                                            std::uint32_t seed) {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(rounds));
  std::uint32_t s = seed * 2654435761u + 101u;
  for (int i = 0; i < rounds; ++i) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    out.push_back(s % count);
  }
  return out;
}

FacilitySolution streamcluster_seq(const PointSet& points, std::size_t chunk,
                                   double facility_cost, int rounds,
                                   std::uint32_t seed) {
  if (chunk == 0) throw std::invalid_argument("streamcluster: chunk must be > 0");
  FacilitySolution sol;
  for (std::size_t consumed = chunk; ; consumed += chunk) {
    const std::size_t count = consumed < points.count ? consumed : points.count;
    sol = initial_solution(points, count, facility_cost);
    for (std::size_t x : candidate_sequence(count, rounds, seed)) {
      PGainPartial partial;
      partial.init(sol.centers.size());
      pgain_range(points, sol, x, 0, count, partial);
      pgain_apply(points, sol, x, count, partial);
    }
    if (count == points.count) break;
  }
  return sol;
}

} // namespace cluster
