#include "cluster/points.hpp"

#include <cmath>

namespace cluster {

namespace {
std::uint32_t xorshift(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}
float unit(std::uint32_t& s) {
  return static_cast<float>(xorshift(s) & 0xFFFFFF) / float(0x1000000);
}
} // namespace

float dist2(const float* a, const float* b, std::size_t dim) {
  float acc = 0.f;
  for (std::size_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

PointSet make_blobs(std::size_t count, std::size_t dim, std::size_t clusters,
                    std::uint32_t seed, float spread) {
  PointSet ps;
  ps.count = count;
  ps.dim = dim;
  ps.coords.resize(count * dim);
  std::uint32_t rng = seed * 2654435761u + 17u;

  // Cluster centers spread through the unit cube.
  std::vector<float> centers(clusters * dim);
  for (auto& c : centers) c = unit(rng);

  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t k = i % (clusters > 0 ? clusters : 1);
    float* p = ps.point(i);
    for (std::size_t d = 0; d < dim; ++d) {
      // Box-Muller for approximately Gaussian jitter.
      const float u1 = unit(rng) + 1e-7f;
      const float u2 = unit(rng);
      const float n =
          std::sqrt(-2.f * std::log(u1)) * std::cos(6.2831853f * u2);
      p[d] = centers[k * dim + d] + spread * n;
    }
  }
  return ps;
}

PointSet make_uniform(std::size_t count, std::size_t dim, std::uint32_t seed) {
  PointSet ps;
  ps.count = count;
  ps.dim = dim;
  ps.coords.resize(count * dim);
  std::uint32_t rng = seed * 747796405u + 5u;
  for (auto& c : ps.coords) c = unit(rng);
  return ps;
}

} // namespace cluster
