// points.hpp — point sets and generators for the clustering benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cluster {

/// A dense row-major point set: `count` points of `dim` float coordinates.
struct PointSet {
  std::size_t count = 0;
  std::size_t dim = 0;
  std::vector<float> coords; // count * dim

  [[nodiscard]] const float* point(std::size_t i) const {
    return coords.data() + i * dim;
  }
  [[nodiscard]] float* point(std::size_t i) { return coords.data() + i * dim; }
};

/// Squared Euclidean distance between two `dim`-vectors.
float dist2(const float* a, const float* b, std::size_t dim);

/// Deterministic mixture-of-Gaussians generator: `clusters` well-separated
/// blobs (box-muller noise), used by both kmeans and streamcluster.
PointSet make_blobs(std::size_t count, std::size_t dim, std::size_t clusters,
                    std::uint32_t seed, float spread = 0.05f);

/// Uniform noise points in the unit cube.
PointSet make_uniform(std::size_t count, std::size_t dim, std::uint32_t seed);

} // namespace cluster
