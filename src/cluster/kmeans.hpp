// kmeans.hpp — Lloyd's algorithm (the `kmeans` benchmark).
//
// The classic barrier-phased structure the suite parallelizes:
//   repeat for `iters` iterations:
//     phase 1 (parallel over points): assign each point to nearest centroid,
//              accumulating per-thread partial sums;
//     phase 2 (reduction): merge partials, recompute centroids.
//
// The phase kernels are exposed piecewise (assign_range / merge / recompute)
// so the sequential, Pthreads, and OmpSs variants share them exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/points.hpp"

namespace cluster {

/// Per-thread (or per-task) partial accumulation of one assignment phase.
struct KmeansPartial {
  std::vector<double> sums;        ///< k * dim coordinate sums
  std::vector<std::size_t> counts; ///< k point counts

  void init(std::size_t k, std::size_t dim);
  void merge(const KmeansPartial& other);
};

/// Result of a k-means run.
struct KmeansResult {
  std::vector<float> centroids;        ///< k * dim
  std::vector<std::uint32_t> assignment; ///< point -> cluster
  double inertia = 0.0;                ///< sum of squared distances
  int iterations = 0;
};

/// Deterministic initial centroids: evenly strided points from the set.
std::vector<float> kmeans_init_centroids(const PointSet& points, std::size_t k);

/// Assignment phase over points [begin, end): updates `assignment` for that
/// range and accumulates sums/counts into `partial` (which must be init'ed).
/// Returns the inertia contribution of the range.
double kmeans_assign_range(const PointSet& points,
                           const std::vector<float>& centroids, std::size_t k,
                           std::size_t begin, std::size_t end,
                           std::uint32_t* assignment, KmeansPartial& partial);

/// Assignment phase over a raw coordinate block (`count` points of `dim`
/// floats, row-major).  The pointer form lets callers hand in node-bound
/// partition copies (oss::NumaBuffer) instead of slices of one big vector —
/// the NUMA-aware task variant's kernel.  `assignment` receives the block's
/// `count` entries.  Returns the block's inertia contribution.
double kmeans_assign_block(const float* coords, std::size_t count,
                           std::size_t dim, const std::vector<float>& centroids,
                           std::size_t k, std::uint32_t* assignment,
                           KmeansPartial& partial);

/// Update phase: recomputes centroids from a fully merged partial.  Empty
/// clusters keep their previous centroid.
void kmeans_recompute(const KmeansPartial& merged, std::size_t k,
                      std::size_t dim, std::vector<float>& centroids);

/// Full sequential k-means (`iters` fixed Lloyd iterations).
KmeansResult kmeans_seq(const PointSet& points, std::size_t k, int iters);

} // namespace cluster
