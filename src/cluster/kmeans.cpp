#include "cluster/kmeans.hpp"

#include <limits>
#include <stdexcept>

namespace cluster {

void KmeansPartial::init(std::size_t k, std::size_t dim) {
  sums.assign(k * dim, 0.0);
  counts.assign(k, 0);
}

void KmeansPartial::merge(const KmeansPartial& other) {
  for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += other.sums[i];
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
}

std::vector<float> kmeans_init_centroids(const PointSet& points, std::size_t k) {
  if (k == 0 || points.count == 0) {
    throw std::invalid_argument("kmeans: k and point count must be > 0");
  }
  std::vector<float> centroids(k * points.dim);
  const std::size_t stride = points.count / k > 0 ? points.count / k : 1;
  for (std::size_t c = 0; c < k; ++c) {
    const float* src = points.point((c * stride) % points.count);
    for (std::size_t d = 0; d < points.dim; ++d) centroids[c * points.dim + d] = src[d];
  }
  return centroids;
}

double kmeans_assign_block(const float* coords, std::size_t count,
                           std::size_t dim, const std::vector<float>& centroids,
                           std::size_t k, std::uint32_t* assignment,
                           KmeansPartial& partial) {
  double inertia = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = coords + i * dim;
    float best = std::numeric_limits<float>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const float d2 = dist2(p, centroids.data() + c * dim, dim);
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    assignment[i] = static_cast<std::uint32_t>(best_c);
    partial.counts[best_c]++;
    for (std::size_t d = 0; d < dim; ++d) partial.sums[best_c * dim + d] += p[d];
    inertia += best;
  }
  return inertia;
}

double kmeans_assign_range(const PointSet& points,
                           const std::vector<float>& centroids, std::size_t k,
                           std::size_t begin, std::size_t end,
                           std::uint32_t* assignment, KmeansPartial& partial) {
  if (begin >= end) return 0.0;
  return kmeans_assign_block(points.point(begin), end - begin, points.dim,
                             centroids, k, assignment + begin, partial);
}

void kmeans_recompute(const KmeansPartial& merged, std::size_t k,
                      std::size_t dim, std::vector<float>& centroids) {
  for (std::size_t c = 0; c < k; ++c) {
    if (merged.counts[c] == 0) continue; // keep previous centroid
    const double inv = 1.0 / static_cast<double>(merged.counts[c]);
    for (std::size_t d = 0; d < dim; ++d) {
      centroids[c * dim + d] = static_cast<float>(merged.sums[c * dim + d] * inv);
    }
  }
}

KmeansResult kmeans_seq(const PointSet& points, std::size_t k, int iters) {
  KmeansResult res;
  res.centroids = kmeans_init_centroids(points, k);
  res.assignment.assign(points.count, 0);

  for (int it = 0; it < iters; ++it) {
    KmeansPartial partial;
    partial.init(k, points.dim);
    res.inertia = kmeans_assign_range(points, res.centroids, k, 0, points.count,
                                      res.assignment.data(), partial);
    kmeans_recompute(partial, k, points.dim, res.centroids);
    res.iterations = it + 1;
  }
  return res;
}

} // namespace cluster
