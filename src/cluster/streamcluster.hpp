// streamcluster.hpp — online facility-location clustering (the
// `streamcluster` benchmark, PARSEC-style).
//
// Points arrive as a stream processed in chunks.  For each chunk the solver
// maintains a facility-location solution (a set of open centers, each point
// assigned to its nearest open center) and improves it by local search:
// repeatedly evaluate the *gain* of opening a candidate point x as a new
// facility (the PARSEC `pgain` kernel) and apply it when positive.
//
// pgain(x) decomposes per point, which is exactly what the benchmark
// parallelizes: each thread/task computes partial switch-gains and
// per-center closure costs over a point range, a barrier separates the
// phases, then one thread reduces and applies.  The per-range kernel
// (`pgain_range`) and the reduction (`pgain_apply`) are shared by all
// variants.
//
// Distances are squared Euclidean, as in PARSEC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/points.hpp"

namespace cluster {

/// A facility-location solution over a (prefix of a) point set.
struct FacilitySolution {
  std::vector<std::size_t> centers;      ///< point indices of open facilities
  std::vector<std::uint32_t> assignment; ///< point -> position in `centers`
  std::vector<float> dist;               ///< point -> squared dist to its center
  double facility_cost = 1.0;

  /// Total cost: connection cost + facility_cost * |centers|.
  [[nodiscard]] double total_cost() const;
};

/// Builds the initial solution for `count` points: point 0 opens; each
/// subsequent point opens a new facility iff its connection cost exceeds
/// the facility cost (deterministic variant of PARSEC's SpeedyK).
FacilitySolution initial_solution(const PointSet& points, std::size_t count,
                                  double facility_cost);

/// Per-range partial state of one pgain evaluation.
struct PGainPartial {
  double switch_gain = 0.0;          ///< savings from points switching to x
  std::vector<double> center_extra;  ///< per-center cost of forcing the rest to x

  void init(std::size_t num_centers);
  void merge(const PGainPartial& other);
};

/// Evaluates candidate `x` over points [begin, end) of the first `count`
/// points, accumulating into `partial` (init'ed to the solution's center
/// count).
void pgain_range(const PointSet& points, const FacilitySolution& sol,
                 std::size_t x, std::size_t begin, std::size_t end,
                 PGainPartial& partial);

/// pgain over a raw coordinate block: `count` points of `dim` floats with
/// their slice of the solution's assignment/dist arrays.  `candidate` points
/// at the candidate facility's coordinates.  The pointer form is the kernel
/// of the NUMA-aware task variant, which streams over node-bound partition
/// copies (oss::NumaBuffer) instead of the shared point array.
void pgain_block(const float* coords, std::size_t count, std::size_t dim,
                 const float* candidate, const std::uint32_t* assignment,
                 const float* dist, PGainPartial& partial);

/// Reduces a merged partial: returns the gain of opening `x` (possibly
/// closing centers), and if the gain is positive applies the move to `sol`
/// (reassigning points).  `count` is the stream prefix length.
double pgain_apply(const PointSet& points, FacilitySolution& sol, std::size_t x,
                   std::size_t count, const PGainPartial& merged);

/// Deterministic candidate sequence for the local search.
std::vector<std::size_t> candidate_sequence(std::size_t count, int rounds,
                                            std::uint32_t seed);

/// Full sequential streamcluster: processes `points` in `chunk`-sized
/// prefixes, running `rounds` local-search candidates after each chunk.
/// Returns the final solution over all points.
FacilitySolution streamcluster_seq(const PointSet& points, std::size_t chunk,
                                   double facility_cost, int rounds,
                                   std::uint32_t seed);

} // namespace cluster
