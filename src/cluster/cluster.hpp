// cluster.hpp — umbrella header for the clustering substrate.
#pragma once

#include "cluster/kmeans.hpp"
#include "cluster/points.hpp"
#include "cluster/streamcluster.hpp"
