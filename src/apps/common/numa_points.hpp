// numa_points.hpp — node-bound partition copies of a point set.
//
// The clustering apps (kmeans, streamcluster) already process their points
// block-wise; this helper is what turns that partitioning into registry-
// backed NUMA placement: each block's coordinates are copied once into an
// `oss::NumaBuffer` bound round-robin over the topology's nodes.  Because
// the buffers are *registered* (page→node registry, numa_alloc.hpp), a task
// declaring `.in(coords(b), floats(b))` and `.affinity_auto()` resolves its
// home node to the block's node — the scheduler then routes the task to a
// worker on the socket that holds the data.
//
// On single-node topologies everything still works (one node, every hint
// dissolves at spawn) and the one-time copy is the only cost — O(data)
// against O(data × iterations) of compute, so it amortizes at real scales
// (at `tiny` it is visible in table1's kmeans column; the paper's scales
// bury it).
#pragma once

#include <cstring>
#include <utility>
#include <vector>

#include "apps/common/blocks.hpp"
#include "cluster/points.hpp"
#include "ompss/numa_alloc.hpp"

namespace apps {

class NumaPartitions {
 public:
  /// Copies `points` into per-block node-bound buffers: block b of at most
  /// `block_points` points lands on node `b % num_nodes`.
  NumaPartitions(const cluster::PointSet& points, std::size_t block_points,
                 std::size_t num_nodes)
      : dim_(points.dim), blocks_(split_blocks(points.count, block_points)) {
    if (num_nodes == 0) num_nodes = 1;
    bufs_.reserve(blocks_.size());
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const auto [lo, hi] = blocks_[b];
      const std::size_t bytes = (hi - lo) * dim_ * sizeof(float);
      bufs_.emplace_back(bytes, static_cast<int>(b % num_nodes));
      // The copy doubles as the first touch; the mbind preference set by
      // NumaBuffer puts the pages on the block's node regardless of which
      // thread copies.
      std::memcpy(bufs_.back().data(), points.point(lo), bytes);
    }
  }

  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Global point range [lo, hi) the block covers.
  [[nodiscard]] std::size_t lo(std::size_t b) const noexcept {
    return blocks_[b].first;
  }
  [[nodiscard]] std::size_t hi(std::size_t b) const noexcept {
    return blocks_[b].second;
  }
  [[nodiscard]] std::size_t count(std::size_t b) const noexcept {
    return hi(b) - lo(b);
  }

  /// The block's node-bound coordinate copy (count(b) * dim floats).
  [[nodiscard]] const float* coords(std::size_t b) const noexcept {
    return bufs_[b].as<const float>();
  }
  [[nodiscard]] std::size_t floats(std::size_t b) const noexcept {
    return count(b) * dim_;
  }

  /// Dense node the block's buffer was bound to.
  [[nodiscard]] int node(std::size_t b) const noexcept {
    return bufs_[b].node();
  }

 private:
  std::size_t dim_;
  std::vector<std::pair<std::size_t, std::size_t>> blocks_;
  std::vector<oss::NumaBuffer> bufs_;
};

} // namespace apps
