// blocks.hpp — shared helpers for splitting work into blocks.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace apps {

/// Splits [0, n) into consecutive half-open blocks of at most `block` items.
inline std::vector<std::pair<std::size_t, std::size_t>> split_blocks(
    std::size_t n, std::size_t block) {
  if (block == 0) block = 1;
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t lo = 0; lo < n; lo += block) {
    const std::size_t hi = lo + block < n ? lo + block : n;
    out.emplace_back(lo, hi);
  }
  return out;
}

} // namespace apps
