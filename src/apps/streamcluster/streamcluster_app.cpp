#include "apps/streamcluster/streamcluster_app.hpp"

#include <cstdio>

#include "apps/common/blocks.hpp"
#include "apps/common/numa_points.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

using cluster::FacilitySolution;
using cluster::PGainPartial;

StreamclusterWorkload StreamclusterWorkload::make(benchcore::Scale scale) {
  StreamclusterWorkload w;
  const std::size_t count = benchcore::by_scale<std::size_t>(scale, 2000, 16000, 65536, 262144);
  const std::size_t dim = benchcore::by_scale<std::size_t>(scale, 8, 16, 32, 64);
  w.points = cluster::make_blobs(count, dim, 10, 99u, 0.08f);
  w.chunk = benchcore::by_scale<std::size_t>(scale, 1000, 8000, 16384, 65536);
  w.facility_cost = 0.5 * static_cast<double>(dim) / 16.0;
  w.rounds = benchcore::by_scale(scale, 8, 24, 32, 48);
  w.block_points = benchcore::by_scale<std::size_t>(scale, 256, 1024, 4096, 8192);
  return w;
}

FacilitySolution streamcluster_app_seq(const StreamclusterWorkload& w) {
  return cluster::streamcluster_seq(w.points, w.chunk, w.facility_cost,
                                    w.rounds, w.seed);
}

FacilitySolution streamcluster_app_pthreads(const StreamclusterWorkload& w,
                                            std::size_t threads) {
  FacilitySolution sol;
  pt::ThreadPool pool(threads);
  for (std::size_t consumed = w.chunk;; consumed += w.chunk) {
    const std::size_t count =
        consumed < w.points.count ? consumed : w.points.count;
    sol = cluster::initial_solution(w.points, count, w.facility_cost);
    for (std::size_t x : cluster::candidate_sequence(count, w.rounds, w.seed)) {
      // Parallel pgain: per-thread partials over static ranges, then a
      // serial reduce+apply — the benchmark's barrier-phased hot loop.
      std::vector<PGainPartial> partials(threads);
      pool.run([&](std::size_t tid) {
        partials[tid].init(sol.centers.size());
        const std::size_t chunk_sz = (count + threads - 1) / threads;
        const std::size_t lo = tid * chunk_sz;
        const std::size_t hi = lo + chunk_sz < count ? lo + chunk_sz : count;
        if (lo < hi) cluster::pgain_range(w.points, sol, x, lo, hi, partials[tid]);
      });
      PGainPartial merged;
      merged.init(sol.centers.size());
      for (const auto& p : partials) merged.merge(p);
      cluster::pgain_apply(w.points, sol, x, count, merged);
    }
    if (count == w.points.count) break;
  }
  return sol;
}

FacilitySolution streamcluster_app_ompss(const StreamclusterWorkload& w,
                                         std::size_t threads, bool numa_place,
                                         oss::StatsSnapshot* stats) {
  FacilitySolution sol;
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  cfg.prof = cfg.prof || oss::stats_footer_enabled(); // work/span footer
  oss::Runtime rt(cfg);

  // Node-bound partition copies over the whole set; a stream prefix of
  // `count` points covers blocks with lo < count (the last one clamped).
  NumaPartitions parts(w.points, w.block_points, rt.topology().num_nodes());

  for (std::size_t consumed = w.chunk;; consumed += w.chunk) {
    const std::size_t count =
        consumed < w.points.count ? consumed : w.points.count;
    sol = cluster::initial_solution(w.points, count, w.facility_cost);
    // Blocks covering the stream prefix: a contiguous run (the partitions
    // are consecutive), so one task per block in [0, live).
    std::size_t live = 0;
    while (live < parts.blocks() && parts.lo(live) < count) ++live;
    for (std::size_t x : cluster::candidate_sequence(count, w.rounds, w.seed)) {
      std::vector<PGainPartial> partials(live);
      const float* px = w.points.point(x);
      for (std::size_t b = 0; b < live; ++b) {
        const std::size_t lo = parts.lo(b);
        const std::size_t n = (parts.hi(b) < count ? parts.hi(b) : count) - lo;
        auto builder = rt.task("pgain_range");
        builder.in(parts.coords(b), n * w.points.dim).out(partials[b]);
        if (numa_place) builder.affinity_auto();
        builder.spawn([&, b, lo, n, px] {
          partials[b].init(sol.centers.size());
          cluster::pgain_block(parts.coords(b), n, w.points.dim, px,
                               sol.assignment.data() + lo,
                               sol.dist.data() + lo, partials[b]);
        });
      }
      rt.taskwait(); // task barrier before the serial reduce
      PGainPartial merged;
      merged.init(sol.centers.size());
      for (const auto& p : partials) merged.merge(p);
      cluster::pgain_apply(w.points, sol, x, count, merged);
    }
    if (count == w.points.count) break;
  }
  if (stats != nullptr) *stats = rt.stats();
  if (oss::stats_footer_enabled()) {
    std::fprintf(stderr, "%s\n", rt.stats().footer("streamcluster").c_str());
    std::fprintf(stderr, "%s\n",
                 rt.profile().span_line("streamcluster").c_str());
  }
  return sol;
}

} // namespace apps
