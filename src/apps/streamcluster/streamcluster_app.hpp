// streamcluster_app.hpp — the `streamcluster` benchmark (PARSEC-style
// online clustering; barrier-phased pgain evaluations).
#pragma once

#include "bench_core/workload.hpp"
#include "cluster/cluster.hpp"

namespace apps {

struct StreamclusterWorkload {
  cluster::PointSet points;
  std::size_t chunk = 4096;
  double facility_cost = 0.5;
  int rounds = 24; ///< local-search candidates per chunk
  std::uint32_t seed = 77;
  std::size_t block_points = 1024;

  static StreamclusterWorkload make(benchcore::Scale scale);
};

cluster::FacilitySolution streamcluster_app_seq(const StreamclusterWorkload& w);
cluster::FacilitySolution streamcluster_app_pthreads(
    const StreamclusterWorkload& w, std::size_t threads);
cluster::FacilitySolution streamcluster_app_ompss(
    const StreamclusterWorkload& w, std::size_t threads);

} // namespace apps
