// streamcluster_app.hpp — the `streamcluster` benchmark (PARSEC-style
// online clustering; barrier-phased pgain evaluations).
#pragma once

#include "bench_core/workload.hpp"
#include "cluster/cluster.hpp"
#include "ompss/stats.hpp"

namespace apps {

struct StreamclusterWorkload {
  cluster::PointSet points;
  std::size_t chunk = 4096;
  double facility_cost = 0.5;
  int rounds = 24; ///< local-search candidates per chunk
  std::uint32_t seed = 77;
  std::size_t block_points = 1024;

  static StreamclusterWorkload make(benchcore::Scale scale);
};

cluster::FacilitySolution streamcluster_app_seq(const StreamclusterWorkload& w);
cluster::FacilitySolution streamcluster_app_pthreads(
    const StreamclusterWorkload& w, std::size_t threads);
/// OmpSs variant with registry-backed NUMA placement: point blocks are
/// copied into node-bound NumaBuffers and each pgain task spawns with
/// `.affinity_auto()` (see kmeans_app_ompss — same protocol, same knobs).
/// `numa_place=false` spawns the same task graph without hints; `stats`
/// receives the runtime counter snapshot when non-null.
cluster::FacilitySolution streamcluster_app_ompss(
    const StreamclusterWorkload& w, std::size_t threads,
    bool numa_place = true, oss::StatsSnapshot* stats = nullptr);

} // namespace apps
