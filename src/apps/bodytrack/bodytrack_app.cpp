#include "apps/bodytrack/bodytrack_app.hpp"

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

using tracking::BinaryMap;
using tracking::BodyPose;

BodytrackWorkload BodytrackWorkload::make(benchcore::Scale scale) {
  BodytrackWorkload w;
  w.width = benchcore::by_scale(scale, 96, 160, 320, 640);
  w.height = benchcore::by_scale(scale, 72, 120, 240, 480);
  w.frames = benchcore::by_scale(scale, 4, 8, 12, 20);
  w.cfg.num_particles = benchcore::by_scale(scale, 64, 128, 512, 2048);
  w.cfg.annealing_layers = benchcore::by_scale(scale, 2, 3, 4, 5);
  w.block_particles = benchcore::by_scale<std::size_t>(scale, 16, 32, 64, 128);
  return w;
}

std::vector<BodyPose> bodytrack_seq(const BodytrackWorkload& w) {
  return tracking::track_seq(w.cfg, w.frames, w.width, w.height);
}

std::vector<BodyPose> bodytrack_pthreads(const BodytrackWorkload& w,
                                         std::size_t threads) {
  std::vector<BodyPose> particles(
      static_cast<std::size_t>(w.cfg.num_particles),
      tracking::ground_truth_pose(0, w.width, w.height));
  std::vector<double> weights(particles.size(), 1.0);
  std::vector<BodyPose> estimates;
  estimates.reserve(static_cast<std::size_t>(w.frames));

  pt::ThreadPool pool(threads);
  for (int f = 0; f < w.frames; ++f) {
    const BinaryMap obs = tracking::make_observation(f, w.width, w.height);
    for (int layer = 0; layer < w.cfg.annealing_layers; ++layer) {
      pt::parallel_for_dynamic(pool, 0, particles.size(), w.block_particles,
                               [&](std::size_t lo, std::size_t hi) {
                                 tracking::particles_step_range(
                                     particles, weights, obs, w.cfg, f, layer,
                                     lo, hi);
                               });
      tracking::resample(particles, weights,
                         w.cfg.seed + static_cast<std::uint32_t>(f * 97 + layer));
    }
    estimates.push_back(tracking::weighted_mean(particles, weights));
  }
  return estimates;
}

std::vector<BodyPose> bodytrack_ompss(const BodytrackWorkload& w,
                                      std::size_t threads) {
  std::vector<BodyPose> particles(
      static_cast<std::size_t>(w.cfg.num_particles),
      tracking::ground_truth_pose(0, w.width, w.height));
  std::vector<double> weights(particles.size(), 1.0);
  std::vector<BodyPose> estimates;
  estimates.reserve(static_cast<std::size_t>(w.frames));

  oss::Runtime rt(threads);
  const auto blocks = split_blocks(particles.size(), w.block_particles);
  for (int f = 0; f < w.frames; ++f) {
    const BinaryMap obs = tracking::make_observation(f, w.width, w.height);
    for (int layer = 0; layer < w.cfg.annealing_layers; ++layer) {
      for (const auto& [lo, hi] : blocks) {
        rt.task("particle_weights")
            .inout(&particles[lo], hi - lo)
            .out(&weights[lo], hi - lo)
            .spawn([&, f, layer, lo = lo, hi = hi] {
              tracking::particles_step_range(particles, weights, obs, w.cfg, f,
                                             layer, lo, hi);
            });
      }
      rt.taskwait(); // polling task barrier before the serial resample
      tracking::resample(particles, weights,
                         w.cfg.seed + static_cast<std::uint32_t>(f * 97 + layer));
    }
    estimates.push_back(tracking::weighted_mean(particles, weights));
  }
  return estimates;
}

} // namespace apps
