// bodytrack_app.hpp — the `bodytrack` benchmark (annealed particle filter).
//
// Per frame and annealing layer, the particle weight evaluation is the
// parallel hot loop; resampling is a short serial phase between layers —
// barrier-phased like PARSEC bodytrack.  Deterministic across variants (see
// tracking/particle_filter.hpp).
#pragma once

#include <vector>

#include "bench_core/workload.hpp"
#include "tracking/tracking.hpp"

namespace apps {

struct BodytrackWorkload {
  tracking::TrackerConfig cfg;
  int frames = 8;
  int width = 160;
  int height = 120;
  std::size_t block_particles = 32;

  static BodytrackWorkload make(benchcore::Scale scale);
};

std::vector<tracking::BodyPose> bodytrack_seq(const BodytrackWorkload& w);
std::vector<tracking::BodyPose> bodytrack_pthreads(const BodytrackWorkload& w,
                                                   std::size_t threads);
std::vector<tracking::BodyPose> bodytrack_ompss(const BodytrackWorkload& w,
                                                std::size_t threads);

} // namespace apps
