#include "apps/h264dec/h264dec_app.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

using video::BitReader;
using video::DecodedPictureBuffer;
using video::EncodedFrame;
using video::FrameHeader;
using video::FrameType;
using video::MbSyntax;
using video::PictureInfo;
using video::PictureInfoBuffer;
using video::VideoFrame;

H264Workload H264Workload::make(benchcore::Scale scale) {
  video::EncoderConfig ec;
  ec.width = benchcore::by_scale(scale, 128, 320, 640, 1280);
  ec.height = benchcore::by_scale(scale, 96, 192, 384, 720);
  ec.frames = benchcore::by_scale(scale, 6, 16, 24, 48);
  ec.gop = 8;
  ec.qp = 18;
  const video::EncodeResult enc = video::encode_video(ec);

  H264Workload w;
  w.video = enc.video;
  w.expected_checksums = enc.recon_checksums;
  w.pipeline_depth = 4;
  w.mb_group = benchcore::by_scale(scale, 2, 2, 4, 4);
  return w;
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> h264dec_seq(const H264Workload& w) {
  return video::decode_video_seq(w.video);
}

// ---------------------------------------------------------------------------
// Pthreads: line decoding (row wavefront) per frame
// ---------------------------------------------------------------------------

namespace {

/// Reconstructs one frame with `pool.size()` threads in MB-row wavefront
/// order.  `progress[y]` counts reconstructed MBs in row y; a thread
/// starting MB (x, y) of an intra frame spins until its top neighbor
/// (x, y-1) is done.  Inter frames have no intra-frame dependency.
void reconstruct_wavefront(pt::ThreadPool& pool, const FrameHeader& hdr,
                           const MbSyntax* mbs, VideoFrame& cur,
                           const VideoFrame* ref) {
  const std::size_t threads = pool.size();
  std::vector<std::atomic<int>> progress(static_cast<std::size_t>(hdr.mb_h));
  for (auto& p : progress) p.store(0, std::memory_order_relaxed);

  pool.run([&](std::size_t tid) {
    for (int y = static_cast<int>(tid); y < hdr.mb_h;
         y += static_cast<int>(threads)) {
      for (int x = 0; x < hdr.mb_w; ++x) {
        if (hdr.type == FrameType::I && y > 0) {
          // Wait for the top neighbor (the "line decoding" spin).
          std::size_t spins = 0;
          while (progress[static_cast<std::size_t>(y - 1)].load(
                     std::memory_order_acquire) < x + 1) {
            if (++spins > 512) {
              std::this_thread::yield();
              spins = 0;
            }
          }
        }
        video::reconstruct_mb(hdr, mbs, x, y, cur, ref);
        progress[static_cast<std::size_t>(y)].store(x + 1,
                                                    std::memory_order_release);
      }
    }
  });
}

} // namespace

std::vector<std::uint64_t> h264dec_pthreads(const H264Workload& w,
                                            std::size_t threads) {
  std::vector<std::uint64_t> checksums;
  checksums.reserve(w.video.frames.size());
  pt::ThreadPool pool(threads);
  VideoFrame prev;
  std::vector<MbSyntax> mbs;
  for (const EncodedFrame& ef : w.video.frames) {
    BitReader br(ef.payload);
    const FrameHeader hdr = video::parse_frame_header(br);
    mbs.assign(hdr.mb_count(), MbSyntax{});
    video::entropy_decode_frame(br, hdr, mbs.data());
    VideoFrame cur(hdr.width(), hdr.height());
    reconstruct_wavefront(pool, hdr, mbs.data(), cur, &prev);
    checksums.push_back(cur.checksum());
    prev = std::move(cur);
  }
  return checksums;
}

std::vector<std::uint64_t> h264dec_pthreads_pipeline(const H264Workload& w,
                                                     std::size_t threads) {
  // Parsed+entropy-decoded frames in flight between the stages.  The bound
  // mirrors the OmpSs side's renaming depth: with `pipeline_depth` frames in
  // flight total and one of them being reconstructed, the queue holds at
  // most `pipeline_depth - 1` — so the ablation's depth sweep varies both
  // decoders, not just the OmpSs one.
  struct Job {
    FrameHeader hdr;
    std::vector<MbSyntax> mbs;
  };
  const std::size_t bound =
      w.pipeline_depth > 1 ? static_cast<std::size_t>(w.pipeline_depth) - 1
                           : 1;
  pt::MpmcQueue<std::unique_ptr<Job>> queue(bound); // bounded: backpressure

  // Front stage: read + parse + entropy decode, running ahead.
  std::thread front([&] {
    for (const EncodedFrame& ef : w.video.frames) {
      auto job = std::make_unique<Job>();
      BitReader br(ef.payload);
      job->hdr = video::parse_frame_header(br);
      job->mbs.assign(job->hdr.mb_count(), MbSyntax{});
      video::entropy_decode_frame(br, job->hdr, job->mbs.data());
      queue.push(std::move(job));
    }
    queue.close();
  });

  // Back stage (this thread): wavefront reconstruction + output.
  const std::size_t recon_threads = threads > 1 ? threads - 1 : 1;
  pt::ThreadPool pool(recon_threads);
  std::vector<std::uint64_t> checksums;
  checksums.reserve(w.video.frames.size());
  VideoFrame prev;
  while (auto job = queue.pop()) {
    VideoFrame cur((*job)->hdr.width(), (*job)->hdr.height());
    reconstruct_wavefront(pool, (*job)->hdr, (*job)->mbs.data(), cur, &prev);
    checksums.push_back(cur.checksum());
    prev = std::move(cur);
  }
  front.join();
  return checksums;
}

// ---------------------------------------------------------------------------
// OmpSs: Listing 1 pipeline with circular renaming + nested tile tasks
// ---------------------------------------------------------------------------

namespace {

// Context structures, one per pipeline stage (the paper's ReadContext,
// NalContext, EntropyContext, ...): their inout chaining serializes
// instances of the same stage across iterations.
struct ReadContext {
  std::size_t next_frame = 0;
  bool eof = false;
};
struct ParseContext {
  int dummy = 0;
};
struct EntropyContext {
  int dummy = 0;
};
struct ReconContext {
  int prev_dpb_slot = -1; ///< reference picture slot of frame k-1
};
struct OutputContext {
  std::vector<std::uint64_t>* sink = nullptr;
  int prev_slot = -1; ///< slot to release after the next picture displays
  int prev_pib = -1;
};

/// Per-iteration circular-buffer entry (the paper's Slice/frm/pic arrays).
struct SliceSlot {
  EncodedFrame payload;
  FrameHeader hdr;
  std::vector<MbSyntax> mbs;
  int dpb_slot = -1;
  int pib_slot = -1;
  char pic_token = 0; ///< renamed "picture ready" dependency carrier
};

} // namespace

void h264dec_reconstruct_tiles(oss::Runtime& rt, const FrameHeader& hdr,
                               const MbSyntax* mbs, video::VideoFrame& cur,
                               const video::VideoFrame* ref, int group) {
  if (group < 1) group = 1;
  const int gw = (hdr.mb_w + group - 1) / group;
  const int gh = (hdr.mb_h + group - 1) / group;
  std::vector<char> tokens(static_cast<std::size_t>(gw) * gh, 0);

  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      oss::TaskBuilder tile = rt.task("recon_tile");
      tile.out(tokens[static_cast<std::size_t>(gy) * gw + gx]);
      if (hdr.type == FrameType::I) {
        // Intra wavefront: left and top tiles must be reconstructed.
        if (gx > 0)
          tile.in(tokens[static_cast<std::size_t>(gy) * gw + gx - 1]);
        if (gy > 0)
          tile.in(tokens[static_cast<std::size_t>(gy - 1) * gw + gx]);
      }
      tile.spawn([&hdr, mbs, &cur, ref, gx, gy, group] {
        const int x0 = gx * group;
        const int y0 = gy * group;
        const int x1 = std::min(hdr.mb_w, x0 + group);
        const int y1 = std::min(hdr.mb_h, y0 + group);
        for (int y = y0; y < y1; ++y) {
          for (int x = x0; x < x1; ++x) {
            video::reconstruct_mb(hdr, mbs, x, y, cur, ref);
          }
        }
      });
    }
  }
  rt.taskwait(); // wait for this frame's tiles (children of the recon task)
}

std::vector<std::uint64_t> h264dec_ompss_grouped(const H264Workload& w,
                                                 std::size_t threads,
                                                 int mb_group) {
  const std::size_t N = static_cast<std::size_t>(
      w.pipeline_depth < 2 ? 2 : w.pipeline_depth); // renaming depth
  // Env-derived config (OSS_TRACE, OSS_PIN, ...) with the caller's thread
  // count pinned on top, so `OSS_TRACE=full examples/h264_pipeline out.json`
  // traces the decode without a recompile.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  // OSS_STATS=1 also reports work/span below, which needs the profiler on.
  cfg.prof = cfg.prof || oss::stats_footer_enabled();
  oss::Runtime rt(cfg);

  std::vector<std::uint64_t> checksums;
  checksums.reserve(w.video.frames.size());

  DecodedPictureBuffer dpb(N + 2, w.video.width, w.video.height);
  PictureInfoBuffer pib(N + 2);

  std::vector<SliceSlot> slots(N);
  ReadContext rc;
  ParseContext nc;
  EntropyContext ec;
  ReconContext mc;
  OutputContext oc;
  oc.sink = &checksums;

  std::size_t k = 0;
  while (!rc.eof) {
    SliceSlot& slot = slots[k % N];

    // --- read stage: pull the next frame payload from the "file".
    rt.task("read_frame")
        .inout(rc)
        .out(slot.payload)
        .spawn([&w, &rc, &slot] {
          if (rc.next_frame >= w.video.frames.size()) {
            rc.eof = true;
            slot.payload.payload.clear();
            return;
          }
          slot.payload = w.video.frames[rc.next_frame];
          rc.next_frame++;
          if (rc.next_frame >= w.video.frames.size()) rc.eof = true;
        });

    // --- parse stage: header + PIB allocation (hidden dep, critical).
    rt.task("parse_header")
        .inout(nc)
        .in(slot.payload)
        .out(slot.hdr)
        .out(slot.pib_slot)
        .spawn([&rt, &pib, &slot] {
          if (slot.payload.payload.empty()) { // 0-frame stream guard
            slot.pib_slot = -1;
            return;
          }
          BitReader br(slot.payload.payload);
          slot.hdr = video::parse_frame_header(br);
          int pi = -1;
          while (pi < 0) {
            rt.critical("pib", [&] {
              pi = pib.allocate(PictureInfo{slot.hdr.frame_num,
                                            slot.hdr.type, -1});
            });
            if (pi < 0) std::this_thread::yield();
          }
          slot.pib_slot = pi;
        });

    // --- entropy decode stage.
    rt.task("entropy_decode")
        .inout(ec)
        .in(slot.hdr)
        .in(slot.payload)
        .out(slot.mbs)
        .spawn([&slot] {
          if (slot.payload.payload.empty()) return;
          BitReader br(slot.payload.payload);
          (void)video::parse_frame_header(br); // skip header bits
          slot.mbs.assign(slot.hdr.mb_count(), MbSyntax{});
          video::entropy_decode_frame(br, slot.hdr, slot.mbs.data());
        });

    // --- reconstruction stage: DPB fetch (hidden dep, critical) + tiles.
    rt.task("reconstruct")
        .inout(mc)
        .in(slot.hdr)
        .in(slot.mbs)
        .out(slot.pic_token)
        .out(slot.dpb_slot)
        .spawn([&rt, &dpb, &mc, &slot, mb_group] {
          if (slot.hdr.mb_w == 0) { // 0-frame stream guard (hdr is `in`)
            slot.dpb_slot = -1;
            return;
          }
          int pic = -1;
          while (pic < 0) {
            rt.critical("dpb", [&] { pic = dpb.fetch_free(); });
            if (pic < 0) std::this_thread::yield();
          }
          slot.dpb_slot = pic;
          VideoFrame& cur = dpb.picture(pic);
          const VideoFrame* ref =
              mc.prev_dpb_slot >= 0 ? &dpb.picture(mc.prev_dpb_slot) : nullptr;
          h264dec_reconstruct_tiles(rt, slot.hdr, slot.mbs.data(), cur, ref,
                                    mb_group);
          mc.prev_dpb_slot = pic;
        });

    // --- output stage: checksum in display order, release retired buffers.
    rt.task("output")
        .inout(oc)
        .in(slot.pic_token)
        .in(slot.dpb_slot)
        .in(slot.pib_slot)
        .spawn([&rt, &dpb, &pib, &oc, &slot] {
          if (slot.dpb_slot < 0) return;
          oc.sink->push_back(dpb.picture(slot.dpb_slot).checksum());
          // The previous picture is no longer needed as a reference
          // once this frame is reconstructed; release it now.
          if (oc.prev_slot >= 0) {
            rt.critical("dpb", [&] { dpb.release(oc.prev_slot); });
          }
          if (oc.prev_pib >= 0) {
            rt.critical("pib", [&] { pib.retire(oc.prev_pib); });
          }
          oc.prev_slot = slot.dpb_slot;
          oc.prev_pib = slot.pib_slot;
        });

    // Listing 1: ensure the read task ran before testing the loop condition.
    rt.taskwait_on(rc);
    ++k;
  }

  rt.barrier();
  // Release the last picture's buffers.
  if (oc.prev_slot >= 0) dpb.release(oc.prev_slot);
  if (oc.prev_pib >= 0) pib.retire(oc.prev_pib);
  if (oss::stats_footer_enabled()) {
    std::fprintf(stderr, "%s\n", rt.stats().footer("h264dec").c_str());
    std::fprintf(stderr, "%s\n", rt.profile().span_line("h264dec").c_str());
  }
  return checksums;
}

std::vector<std::uint64_t> h264dec_ompss(const H264Workload& w,
                                         std::size_t threads) {
  return h264dec_ompss_grouped(w, threads, w.mb_group);
}

} // namespace apps
