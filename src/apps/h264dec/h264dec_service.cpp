#include "apps/h264dec/h264dec_service.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

#include "ompss/ompss.hpp"

namespace apps {

using video::BitReader;
using video::EncodedFrame;
using video::FrameHeader;
using video::MbSyntax;
using video::PictureInfo;
using video::VideoFrame;

/// Per-frame circular-buffer entry — the service spelling of the one-shot
/// decoder's SliceSlot.  Lives in node-bound registered pages (NodeArray),
/// so stage tasks declaring these members resolve `.affinity_auto()` to the
/// session's home node.
struct H264DecSession::Slot {
  EncodedFrame payload;
  FrameHeader hdr{};
  std::vector<MbSyntax> mbs;
  int dpb_slot = -1;
  int pib_slot = -1;
  char pic_token = 0; ///< renamed "picture ready" dependency carrier
};

/// Stage contexts: inout chaining on these serializes instances of the same
/// stage across frames (the Listing-1 pipeline skeleton).
struct H264DecSession::StageCtx {
  struct {
    std::size_t frames = 0;
  } ic; ///< ingest
  struct {
    int dummy = 0;
  } pc; ///< parse
  struct {
    int dummy = 0;
  } ec; ///< entropy decode
  struct {
    int prev_dpb_slot = -1; ///< reference picture of frame k-1
  } mc; ///< reconstruct
  struct {
    int prev_slot = -1; ///< DPB slot to release after the next display
    int prev_pib = -1;
  } oc; ///< output
};

H264DecSession::H264DecSession(oss::Runtime& rt,
                               oss::service::StreamPtr stream, int width,
                               int height, int mb_group)
    : rt_(rt),
      stream_(std::move(stream)),
      mb_group_(mb_group),
      depth_(stream_->window().depth()),
      // N frames in flight + the displayed picture + its reference.
      dpb_(depth_ + 2, width, height),
      pib_(depth_ + 2),
      slots_(depth_, stream_->node()),
      ctx_(stream_->node()),
      dpb_crit_("svc" + std::to_string(stream_->id()) + ":dpb"),
      pib_crit_("svc" + std::to_string(stream_->id()) + ":pib") {}

H264DecSession::~H264DecSession() {
  try {
    close();
  } catch (...) {
    // A frame-task exception has nowhere to go from a destructor; explicit
    // close() is the path that propagates it.
  }
}

bool H264DecSession::submit(const EncodedFrame& frame,
                            oss::service::Submit policy) {
  if (frame.payload.empty()) {
    throw std::invalid_argument(
        "apps::H264DecSession::submit: empty frame payload");
  }
  // Backpressure gate: at most `depth_` frames in flight.  The window slot
  // is released by this frame's output task, so an admitted frame also owns
  // circular-buffer slot seq % depth_ — the renamed regions below handle
  // WAR ordering against the previous occupant, the window bounds memory.
  if (!stream_->window().acquire(policy)) return false;

  const std::size_t k = seq_++;
  Slot& slot = slots_[k % depth_];
  StageCtx& cx = *ctx_;
  const auto submitted = std::chrono::steady_clock::now();

  // --- ingest: copy the payload into the slot (the read stage of the
  // one-shot decoder; as a task so the slot's payload region gets a writer
  // per frame and renames cleanly).
  stream_->task("svc_ingest")
      .affinity_auto()
      .inout(cx.ic)
      .out(slot.payload)
      .spawn([frame, &slot, &cx] {
        slot.payload = frame;
        ++cx.ic.frames;
      });

  // --- parse: header + PIB allocation (hidden dep, per-session critical).
  stream_->task("svc_parse")
      .affinity_auto()
      .inout(cx.pc)
      .in(slot.payload)
      .out(slot.hdr)
      .out(slot.pib_slot)
      .spawn([this, &slot] {
        BitReader br(slot.payload.payload);
        slot.hdr = video::parse_frame_header(br);
        int pi = -1;
        while (pi < 0) {
          rt_.critical(pib_crit_, [&] {
            pi = pib_.allocate(
                PictureInfo{slot.hdr.frame_num, slot.hdr.type, -1});
          });
          if (pi < 0) std::this_thread::yield();
        }
        slot.pib_slot = pi;
      });

  // --- entropy decode.
  stream_->task("svc_entropy")
      .affinity_auto()
      .inout(cx.ec)
      .in(slot.hdr)
      .in(slot.payload)
      .out(slot.mbs)
      .spawn([&slot] {
        BitReader br(slot.payload.payload);
        (void)video::parse_frame_header(br); // skip header bits
        slot.mbs.assign(slot.hdr.mb_count(), MbSyntax{});
        video::entropy_decode_frame(br, slot.hdr, slot.mbs.data());
      });

  // --- reconstruct: DPB fetch (hidden dep) + the shared nested tile graph.
  stream_->task("svc_reconstruct")
      .affinity_auto()
      .inout(cx.mc)
      .in(slot.hdr)
      .in(slot.mbs)
      .out(slot.pic_token)
      .out(slot.dpb_slot)
      .spawn([this, &slot, &cx] {
        int pic = -1;
        while (pic < 0) {
          rt_.critical(dpb_crit_, [&] { pic = dpb_.fetch_free(); });
          if (pic < 0) std::this_thread::yield();
        }
        slot.dpb_slot = pic;
        VideoFrame& cur = dpb_.picture(pic);
        const VideoFrame* ref = cx.mc.prev_dpb_slot >= 0
                                    ? &dpb_.picture(cx.mc.prev_dpb_slot)
                                    : nullptr;
        h264dec_reconstruct_tiles(rt_, slot.hdr, slot.mbs.data(), cur, ref,
                                  mb_group_);
        cx.mc.prev_dpb_slot = pic;
      });

  // --- output: checksum + latency in display (= submission) order, release
  // retired buffers, then free the window slot.  The window release is last:
  // it is what lets a blocked submitter reuse this circular-buffer slot.
  stream_->task("svc_output")
      .affinity_auto()
      .inout(cx.oc)
      .in(slot.pic_token)
      .in(slot.dpb_slot)
      .in(slot.pib_slot)
      .spawn([this, &slot, &cx, submitted] {
        checksums_.push_back(dpb_.picture(slot.dpb_slot).checksum());
        latencies_ns_.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submitted)
                .count()));
        // The previous picture stops being a reference once this frame is
        // reconstructed; retire its buffers now.
        if (cx.oc.prev_slot >= 0) {
          rt_.critical(dpb_crit_, [&] { dpb_.release(cx.oc.prev_slot); });
        }
        if (cx.oc.prev_pib >= 0) {
          rt_.critical(pib_crit_, [&] { pib_.retire(cx.oc.prev_pib); });
        }
        cx.oc.prev_slot = slot.dpb_slot;
        cx.oc.prev_pib = slot.pib_slot;
        stream_->window().release();
      });

  return true;
}

void H264DecSession::finish() { stream_->drain(); }

void H264DecSession::close() {
  if (closed_) return;
  closed_ = true;
  stream_->close(); // fail blocked submitters, drain admitted frames
  // Release the last picture's buffers (quiescent now — drained above).
  if (ctx_->oc.prev_slot >= 0) {
    dpb_.release(ctx_->oc.prev_slot);
    ctx_->oc.prev_slot = -1;
  }
  if (ctx_->oc.prev_pib >= 0) {
    pib_.retire(ctx_->oc.prev_pib);
    ctx_->oc.prev_pib = -1;
  }
}

// --- H264DecService ---------------------------------------------------------

H264DecService::H264DecService(oss::Runtime& rt, oss::service::Config cfg)
    : rt_(rt), svc_(rt, cfg) {}

H264DecSessionPtr H264DecService::open(std::string name, int width,
                                       int height, int mb_group,
                                       oss::service::Reject* why) {
  oss::service::StreamPtr stream = svc_.open(std::move(name), why);
  if (!stream) return nullptr;
  return H264DecSessionPtr(
      new H264DecSession(rt_, std::move(stream), width, height, mb_group));
}

H264DecSessionPtr H264DecService::open(std::string name,
                                       const H264Workload& w,
                                       oss::service::Reject* why) {
  return open(std::move(name), w.video.width, w.video.height, w.mb_group,
              why);
}

} // namespace apps
