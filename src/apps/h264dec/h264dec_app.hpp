// h264dec_app.hpp — the `h264dec` benchmark (paper §3 case study).
//
// Three decoders over the same synthetic H.264-shaped bitstream:
//
//   * seq — stages in order per frame (reference).
//   * pthreads — the paper's "highly optimized line decoding strategy"
//     (Chi & Juurlink [1]): per-frame macroblock reconstruction is
//     parallelized as a row wavefront with per-row atomic progress counters
//     and spin-waiting; entropy decode runs on the main thread.
//   * ompss — Listing 1: one task per pipeline stage per iteration
//     (read / parse / entropy-decode / reconstruct / output), chained by
//     inout context structures and manually renamed through circular
//     buffers of depth `pipeline_depth`; `taskwait_on` the read context
//     gates the loop; PIB/DPB fetch/release are hidden dependencies guarded
//     by critical sections.  Reconstruction spawns nested tile tasks of
//     `mb_group` × `mb_group` macroblocks whose wavefront dependencies are
//     expressed through a token matrix — `mb_group` is the task-granularity
//     knob the paper discusses (grouping amortizes runtime overhead but
//     caps parallelism).
//
// All variants return per-frame checksums in display order; correctness is
// exact equality with the encoder's reconstruction checksums.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_core/workload.hpp"
#include "video/video.hpp"

namespace oss {
class Runtime;
}

namespace apps {

struct H264Workload {
  video::EncodedVideo video;
  std::vector<std::uint64_t> expected_checksums;
  int pipeline_depth = 4; ///< circular-buffer renaming depth N
  int mb_group = 2;       ///< OmpSs nested-task tile edge, in macroblocks

  static H264Workload make(benchcore::Scale scale);
};

std::vector<std::uint64_t> h264dec_seq(const H264Workload& w);
std::vector<std::uint64_t> h264dec_pthreads(const H264Workload& w,
                                            std::size_t threads);

/// Stage-threaded Pthreads pipeline: a front thread parses and
/// entropy-decodes frames ahead while the consumer reconstructs the current
/// frame with a wavefront worker pool — entropy decode of frame k+1 overlaps
/// reconstruction of frame k (the cross-stage overlap of [1]).  Uses
/// `threads` total: 1 front + max(1, threads-1) reconstruction workers.
std::vector<std::uint64_t> h264dec_pthreads_pipeline(const H264Workload& w,
                                                     std::size_t threads);
std::vector<std::uint64_t> h264dec_ompss(const H264Workload& w,
                                         std::size_t threads);

/// Ablation entry point: explicit grouping factor (bench/ablation_granularity).
std::vector<std::uint64_t> h264dec_ompss_grouped(const H264Workload& w,
                                                 std::size_t threads,
                                                 int mb_group);

/// The Listing-1 nested reconstruction stage: tiles of `group`×`group`
/// macroblocks spawned as child tasks with wavefront dependencies through a
/// token matrix, taskwait'ed before returning.  Shared by the one-shot
/// decoder above and the decode service (h264dec_service.hpp), so both run
/// the identical reconstruction task graph.
void h264dec_reconstruct_tiles(oss::Runtime& rt, const video::FrameHeader& hdr,
                               const video::MbSyntax* mbs,
                               video::VideoFrame& cur,
                               const video::VideoFrame* ref, int group);

} // namespace apps
