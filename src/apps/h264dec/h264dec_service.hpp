// h264dec_service.hpp — the multi-stream H.264 decode service (paper §3
// case study, service form; docs/service.md).
//
// Where `h264dec_ompss` decodes one bitstream and exits, `H264DecService`
// keeps one Runtime alive and serves N concurrent client streams.  Each
// open `H264DecSession` runs the *same* Listing-1 pipeline as the one-shot
// decoder — one task per stage per frame (ingest / parse / entropy-decode /
// reconstruct+tiles / output), chained by inout context structs and renamed
// through a circular slot buffer — but:
//
//   * the slot buffer depth is the stream's backpressure window
//     (OSS_SERVICE_WINDOW): `submit()` admits a frame only when a window
//     slot is free (Submit::Block waits, Submit::FailFast bounces), so a
//     fast client cannot grow the task queue without bound;
//   * the per-session state (slots, stage contexts) lives in node-bound
//     registered pages on the session's home node, so every stage task's
//     `.affinity_auto()` routes the whole stream to one NUMA node;
//   * stage tasks run in the stream's private dependency domain — sessions
//     never dependency-interfere, and `close()` drains exactly this
//     session's in-flight frames.
//
// Reconstruction reuses `h264dec_reconstruct_tiles` verbatim, so the
// service executes the identical nested task graph as the one-shot decoder
// and its checksums are bit-exact against `h264dec_seq`.
//
// Threading: sessions are independent — drive each from its own thread.
// Within one session, submit/finish/close are externally synchronized (one
// submitter per stream, the usual one-decoder-thread-per-client shape).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/h264dec/h264dec_app.hpp"
#include "service/service.hpp"
#include "video/video.hpp"

namespace apps {

class H264DecService;

/// One client stream: frames go in via `submit`, per-frame checksums and
/// submit→output latencies come out after `finish()`/`close()`.
class H264DecSession {
 public:
  ~H264DecSession();

  H264DecSession(const H264DecSession&) = delete;
  H264DecSession& operator=(const H264DecSession&) = delete;

  /// Admits one encoded frame and spawns its stage chain.  False = not
  /// admitted (window full under FailFast, or the session/service closed);
  /// a rejected frame spawns nothing.  Throws std::invalid_argument on an
  /// empty payload.
  [[nodiscard]] bool submit(
      const video::EncodedFrame& frame,
      oss::service::Submit policy = oss::service::Submit::Block);

  /// Waits until every admitted frame has produced output.  The session
  /// stays open for more submissions.
  void finish();

  /// Closes the session: blocked submitters fail, admitted frames drain,
  /// buffers are released, the admission slot frees.  Idempotent.
  void close();

  [[nodiscard]] bool open() const { return stream_->open(); }

  /// Per-frame reconstruction checksums in submission order.  Stable (and
  /// safe to read) after finish()/close().
  [[nodiscard]] const std::vector<std::uint64_t>& checksums() const {
    return checksums_;
  }
  /// Per-frame submit→output latency, nanoseconds, submission order.
  [[nodiscard]] const std::vector<std::uint64_t>& latencies_ns() const {
    return latencies_ns_;
  }

  [[nodiscard]] oss::service::Window& window() { return stream_->window(); }
  [[nodiscard]] int node() const { return stream_->node(); }
  [[nodiscard]] std::uint64_t id() const { return stream_->id(); }

 private:
  friend class H264DecService;

  struct Slot;
  struct StageCtx;

  H264DecSession(oss::Runtime& rt, oss::service::StreamPtr stream, int width,
                 int height, int mb_group);

  oss::Runtime& rt_;
  oss::service::StreamPtr stream_;
  int mb_group_;
  std::size_t depth_; ///< window depth == slot count N

  video::DecodedPictureBuffer dpb_; ///< N + 2: N in flight + display + ref
  video::PictureInfoBuffer pib_;
  oss::service::NodeArray<Slot> slots_;  ///< node-bound circular buffer
  oss::service::NodeLocal<StageCtx> ctx_; ///< node-bound stage contexts

  // Per-session critical names: sessions must not serialize against each
  // other's (or the one-shot decoder's) buffer bookkeeping.
  std::string dpb_crit_;
  std::string pib_crit_;

  std::size_t seq_ = 0; ///< frames submitted (slot index = seq_ % depth_)
  bool closed_ = false;
  std::vector<std::uint64_t> checksums_;    ///< written by output tasks
  std::vector<std::uint64_t> latencies_ns_; ///< written by output tasks
};

using H264DecSessionPtr = std::shared_ptr<H264DecSession>;

/// The service front: admission control over one long-lived Runtime.
class H264DecService {
 public:
  explicit H264DecService(
      oss::Runtime& rt,
      oss::service::Config cfg = oss::service::Config::from_env());

  /// Opens a decode session for streams of the given frame geometry.
  /// Returns null with `*why` set when the service is at capacity or
  /// closed.  Thread-safe.
  [[nodiscard]] H264DecSessionPtr open(std::string name, int width,
                                       int height, int mb_group,
                                       oss::service::Reject* why = nullptr);

  /// Convenience: geometry and grouping from a workload.
  [[nodiscard]] H264DecSessionPtr open(std::string name,
                                       const H264Workload& w,
                                       oss::service::Reject* why = nullptr);

  /// Rejects future opens and drains every open session.
  void close() { svc_.close(); }

  [[nodiscard]] oss::service::Service::Stats stats() const {
    return svc_.stats();
  }
  [[nodiscard]] const oss::service::Config& config() const noexcept {
    return svc_.config();
  }
  [[nodiscard]] oss::Runtime& runtime() const noexcept {
    return svc_.runtime();
  }

 private:
  oss::Runtime& rt_;
  oss::service::Service svc_;
};

} // namespace apps
