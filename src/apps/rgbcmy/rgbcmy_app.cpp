#include "apps/rgbcmy/rgbcmy_app.hpp"

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

RgbcmyWorkload RgbcmyWorkload::make(benchcore::Scale scale) {
  RgbcmyWorkload w;
  const int width = benchcore::by_scale(scale, 96, 320, 640, 1920);
  const int height = benchcore::by_scale(scale, 64, 240, 480, 1080);
  w.src = img::make_test_rgb(width, height, 23u);
  w.iters = benchcore::by_scale(scale, 4, 10, 12, 16);
  w.block_rows = benchcore::by_scale(scale, 8, 16, 32, 32);
  return w;
}

img::Image rgbcmy_seq(const RgbcmyWorkload& w) {
  img::Image dst(w.src.width(), w.src.height(), 4);
  for (int it = 0; it < w.iters; ++it) {
    img::rgb_to_cmyk_rows(w.src, dst, 0, w.src.height());
  }
  return dst;
}

img::Image rgbcmy_pthreads(const RgbcmyWorkload& w, std::size_t threads) {
  img::Image dst(w.src.width(), w.src.height(), 4);
  pt::ThreadPool pool(threads);
  pt::BlockingBarrier barrier(threads);
  const std::size_t rows = static_cast<std::size_t>(w.src.height());
  // Persistent SPMD region: every iteration statically splits the rows and
  // crosses the blocking barrier — the structure the paper describes.
  pool.run([&](std::size_t tid) {
    const std::size_t chunk = (rows + threads - 1) / threads;
    const std::size_t lo = tid * chunk;
    const std::size_t hi = lo + chunk < rows ? lo + chunk : rows;
    for (int it = 0; it < w.iters; ++it) {
      if (lo < hi) {
        img::rgb_to_cmyk_rows(w.src, dst, static_cast<int>(lo),
                              static_cast<int>(hi));
      }
      barrier.wait();
    }
  });
  return dst;
}

img::Image rgbcmy_ompss_with_policy(const RgbcmyWorkload& w, std::size_t threads,
                                    bool polling_barrier) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.wait_policy =
      polling_barrier ? oss::WaitPolicy::Polling : oss::WaitPolicy::Blocking;
  oss::Runtime rt(cfg);

  img::Image dst(w.src.width(), w.src.height(), 4);
  const auto blocks = split_blocks(static_cast<std::size_t>(w.src.height()),
                                   static_cast<std::size_t>(w.block_rows));
  for (int it = 0; it < w.iters; ++it) {
    for (const auto& [lo, hi] : blocks) {
      rt.task("rgb_to_cmyk")
          .in(w.src.row(static_cast<int>(lo)), (hi - lo) * w.src.stride())
          .out(dst.row(static_cast<int>(lo)), (hi - lo) * dst.stride())
          .spawn([&w, &dst, lo = lo, hi = hi] {
            img::rgb_to_cmyk_rows(w.src, dst, static_cast<int>(lo),
                                  static_cast<int>(hi));
          });
    }
    rt.barrier(); // polling task barrier (or blocking, for the ablation)
  }
  return dst;
}

img::Image rgbcmy_ompss(const RgbcmyWorkload& w, std::size_t threads) {
  return rgbcmy_ompss_with_policy(w, threads, /*polling_barrier=*/true);
}

} // namespace apps
