// rgbcmy_app.hpp — the `rgbcmy` benchmark (RGB→CMYK conversion).
//
// The paper's analysis of this benchmark: many short iterations (under
// 20 ms each at 16 cores), separated by a barrier.  The Pthreads variant
// uses a *blocking* thread barrier between iterations; the OmpSs variant a
// *polling* task barrier — at high core counts the wake-up latency of the
// blocking barrier dominates and OmpSs pulls ahead (1.53x at 32 cores in
// Table 1).  The `iters` knob below reproduces that structure.
#pragma once

#include "bench_core/workload.hpp"
#include "img/img.hpp"

namespace apps {

struct RgbcmyWorkload {
  img::Image src;
  int iters = 10;      ///< barrier-separated repetitions
  int block_rows = 16;

  static RgbcmyWorkload make(benchcore::Scale scale);
};

img::Image rgbcmy_seq(const RgbcmyWorkload& w);
img::Image rgbcmy_pthreads(const RgbcmyWorkload& w, std::size_t threads);
img::Image rgbcmy_ompss(const RgbcmyWorkload& w, std::size_t threads);

/// Ablation entry point: same as rgbcmy_ompss but with an explicit wait
/// policy, used by bench/ablation_barrier.
img::Image rgbcmy_ompss_with_policy(const RgbcmyWorkload& w, std::size_t threads,
                                    bool polling_barrier);

} // namespace apps
