// c_ray.hpp — the `c-ray` benchmark (raytracing kernel).
//
// Rows are the parallel unit, grouped into blocks of `block_rows`.  The
// Pthreads variant self-schedules row blocks over a thread pool (dynamic,
// matching c-ray's irregular per-row cost); the OmpSs variant spawns one
// task per row block with an `out` dependency on the rows it fills.
#pragma once

#include "bench_core/workload.hpp"
#include "img/image.hpp"
#include "raytrace/raytrace.hpp"

namespace apps {

struct CRayWorkload {
  cray::Scene scene;
  cray::RenderOptions opts;
  int width = 0;
  int height = 0;
  int block_rows = 8;

  static CRayWorkload make(benchcore::Scale scale);
};

img::Image c_ray_seq(const CRayWorkload& w);
img::Image c_ray_pthreads(const CRayWorkload& w, std::size_t threads);
img::Image c_ray_ompss(const CRayWorkload& w, std::size_t threads);

} // namespace apps
