#include "apps/c_ray/c_ray.hpp"

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

CRayWorkload CRayWorkload::make(benchcore::Scale scale) {
  CRayWorkload w;
  w.width = benchcore::by_scale(scale, 64, 160, 320, 800);
  w.height = benchcore::by_scale(scale, 48, 120, 240, 600);
  w.scene = cray::Scene::procedural(benchcore::by_scale(scale, 6, 12, 20, 32), 7u);
  w.opts.max_depth = 3;
  w.opts.supersample = 1;
  w.block_rows = benchcore::by_scale(scale, 4, 8, 8, 16);
  return w;
}

img::Image c_ray_seq(const CRayWorkload& w) {
  img::Image out(w.width, w.height, 3);
  cray::render_rows(w.scene, out, w.opts, 0, w.height);
  return out;
}

img::Image c_ray_pthreads(const CRayWorkload& w, std::size_t threads) {
  img::Image out(w.width, w.height, 3);
  pt::ThreadPool pool(threads);
  pt::parallel_for_dynamic(pool, 0, static_cast<std::size_t>(w.height),
                           static_cast<std::size_t>(w.block_rows),
                           [&](std::size_t lo, std::size_t hi) {
                             cray::render_rows(w.scene, out, w.opts,
                                               static_cast<int>(lo),
                                               static_cast<int>(hi));
                           });
  return out;
}

img::Image c_ray_ompss(const CRayWorkload& w, std::size_t threads) {
  img::Image out(w.width, w.height, 3);
  oss::Runtime rt(threads);
  for (const auto& [lo, hi] : split_blocks(static_cast<std::size_t>(w.height),
                                           static_cast<std::size_t>(w.block_rows))) {
    rt.task("render_rows")
        .out(out.row(static_cast<int>(lo)), (hi - lo) * out.stride())
        .spawn([&w, &out, lo = lo, hi = hi] {
          cray::render_rows(w.scene, out, w.opts, static_cast<int>(lo),
                            static_cast<int>(hi));
        });
  }
  rt.taskwait();
  return out;
}

} // namespace apps
