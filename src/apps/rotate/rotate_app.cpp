#include "apps/rotate/rotate_app.hpp"

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

RotateWorkload RotateWorkload::make(benchcore::Scale scale) {
  RotateWorkload w;
  const int width = benchcore::by_scale(scale, 96, 256, 512, 1536);
  const int height = benchcore::by_scale(scale, 64, 192, 384, 1024);
  w.src = img::make_test_rgb(width, height, 11u);
  w.spec = img::RotateSpec::degrees(27.5);
  w.block_rows = benchcore::by_scale(scale, 8, 16, 16, 32);
  return w;
}

img::Image rotate_seq(const RotateWorkload& w) {
  img::Image dst(w.src.width(), w.src.height(), w.src.channels());
  img::rotate_rows(w.src, dst, w.spec, 0, w.src.height());
  return dst;
}

img::Image rotate_pthreads(const RotateWorkload& w, std::size_t threads) {
  img::Image dst(w.src.width(), w.src.height(), w.src.channels());
  pt::ThreadPool pool(threads);
  pt::parallel_for_dynamic(pool, 0, static_cast<std::size_t>(w.src.height()),
                           static_cast<std::size_t>(w.block_rows),
                           [&](std::size_t lo, std::size_t hi) {
                             img::rotate_rows(w.src, dst, w.spec,
                                              static_cast<int>(lo),
                                              static_cast<int>(hi));
                           });
  return dst;
}

img::Image rotate_ompss(const RotateWorkload& w, std::size_t threads) {
  img::Image dst(w.src.width(), w.src.height(), w.src.channels());
  oss::Runtime rt(threads);
  for (const auto& [lo, hi] :
       split_blocks(static_cast<std::size_t>(w.src.height()),
                    static_cast<std::size_t>(w.block_rows))) {
    rt.task("rotate_rows")
        .in(w.src.data(), w.src.size_bytes())
        .out(dst.row(static_cast<int>(lo)), (hi - lo) * dst.stride())
        .spawn([&w, &dst, lo = lo, hi = hi] {
          img::rotate_rows(w.src, dst, w.spec, static_cast<int>(lo),
                           static_cast<int>(hi));
        });
  }
  rt.taskwait();
  return dst;
}

} // namespace apps
