// rotate_app.hpp — the `rotate` benchmark (arbitrary-angle image rotation).
#pragma once

#include "bench_core/workload.hpp"
#include "img/img.hpp"

namespace apps {

struct RotateWorkload {
  img::Image src;
  img::RotateSpec spec;
  int block_rows = 16;

  static RotateWorkload make(benchcore::Scale scale);
};

img::Image rotate_seq(const RotateWorkload& w);
img::Image rotate_pthreads(const RotateWorkload& w, std::size_t threads);
img::Image rotate_ompss(const RotateWorkload& w, std::size_t threads);

} // namespace apps
