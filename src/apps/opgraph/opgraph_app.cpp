#include "apps/opgraph/opgraph_app.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "ompss/ompss.hpp"

namespace apps {
namespace {

constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ull;

inline std::uint64_t rotl64(std::uint64_t v, int s) noexcept {
  return (v << s) | (v >> (64 - s));
}

/// Which of the four operator kernels runs at (layer, column) — fixed per
/// position, so the graph is heterogeneous but deterministic.
inline int op_kind(int l, int j) noexcept { return (l * 31 + j) & 3; }

/// Column of the second input read by op (l, j): a layer-dependent neighbor,
/// never the own column (width > 3 at every scale).
inline int neighbor(int l, int j, int width) noexcept {
  return (j + 1 + (l % 3)) % width;
}

/// One operator: reads two n-element inputs, writes its own n-element
/// output.  Exact integer arithmetic — parallel and sequential runs are
/// bit-identical.
void run_op(int kind, const std::uint64_t* a, const std::uint64_t* b,
            std::uint64_t* out, int n) noexcept {
  switch (kind) {
    case 0:
      for (int e = 0; e < n; ++e) out[e] = a[e] + 3 * b[e] + 1;
      break;
    case 1:
      for (int e = 0; e < n; ++e) out[e] = (a[e] ^ b[e]) * 0x100000001b3ull;
      break;
    case 2:
      for (int e = 0; e < n; ++e) out[e] = rotl64(a[e], 7) + (b[e] >> 3);
      break;
    default:
      for (int e = 0; e < n; ++e) out[e] = (a[e] >> 1) + (b[e] << 1) + kSeed;
      break;
  }
}

/// All the buffers of one run: the evolving input row plus one output row
/// per layer.  Rows are flat (width * elems) so op j's region is the
/// contiguous slice [j*elems, (j+1)*elems) — what the tasks declare.
struct State {
  std::vector<std::uint64_t> input;
  std::vector<std::vector<std::uint64_t>> layer; // [l][width * elems]

  explicit State(const OpGraphWorkload& w) {
    const std::size_t row =
        static_cast<std::size_t>(w.width) * static_cast<std::size_t>(w.elems);
    input.resize(row);
    for (std::size_t x = 0; x < row; ++x) {
      input[x] = (static_cast<std::uint64_t>(x) + 1) * kSeed;
    }
    layer.assign(static_cast<std::size_t>(w.layers),
                 std::vector<std::uint64_t>(row, 0));
  }

  /// Source row for layer `l`'s reads.
  [[nodiscard]] const std::uint64_t* src(int l) const noexcept {
    return l == 0 ? input.data() : layer[static_cast<std::size_t>(l) - 1].data();
  }
  [[nodiscard]] std::uint64_t* dst(int l) noexcept {
    return layer[static_cast<std::size_t>(l)].data();
  }

  /// Post-iteration step, always on the controlling thread at a quiescent
  /// point: folds the final layer into the checksum and feeds it back as
  /// the next iteration's input (so every iteration computes on new data).
  std::uint64_t fold_and_advance(std::uint64_t sum) {
    const std::vector<std::uint64_t>& last = layer.back();
    for (std::size_t x = 0; x < last.size(); ++x) {
      sum = rotl64(sum, 1) ^ last[x];
      input[x] = rotl64(last[x], 11) + kSeed;
    }
    return sum;
  }
};

const char* label_of(int kind) noexcept {
  switch (kind) {
    case 0: return "op_add";
    case 1: return "op_xmul";
    case 2: return "op_rot";
    default: return "op_shift";
  }
}

/// Spawns one full iteration through the builder (the fresh-resolution
/// path; also the capture iteration of the replay variant).
void spawn_iteration(oss::Runtime& rt, const OpGraphWorkload& w, State& s) {
  const int n = w.elems;
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(std::uint64_t);
  for (int l = 0; l < w.layers; ++l) {
    const std::uint64_t* src = s.src(l);
    std::uint64_t* dst = s.dst(l);
    for (int j = 0; j < w.width; ++j) {
      const int kind = op_kind(l, j);
      const std::uint64_t* a = src + static_cast<std::size_t>(j) * n;
      const std::uint64_t* b =
          src + static_cast<std::size_t>(neighbor(l, j, w.width)) * n;
      std::uint64_t* out = dst + static_cast<std::size_t>(j) * n;
      rt.task(label_of(kind))
          .in(a, bytes)
          .in(b, bytes)
          .out(out, bytes)
          .spawn([kind, a, b, out, n] { run_op(kind, a, b, out, n); });
    }
  }
}

} // namespace

OpGraphWorkload OpGraphWorkload::make(benchcore::Scale scale) {
  OpGraphWorkload w;
  w.width = benchcore::by_scale(scale, 8, 48, 64, 96);
  w.layers = benchcore::by_scale(scale, 6, 42, 64, 84);
  w.elems = benchcore::by_scale(scale, 16, 32, 48, 64);
  w.iters = benchcore::by_scale(scale, 3, 6, 8, 10);
  return w;
}

std::uint64_t opgraph_seq(const OpGraphWorkload& w) {
  State s(w);
  std::uint64_t sum = 0;
  for (int it = 0; it < w.iters; ++it) {
    for (int l = 0; l < w.layers; ++l) {
      const std::uint64_t* src = s.src(l);
      std::uint64_t* dst = s.dst(l);
      for (int j = 0; j < w.width; ++j) {
        run_op(op_kind(l, j), src + static_cast<std::size_t>(j) * w.elems,
               src + static_cast<std::size_t>(neighbor(l, j, w.width)) * w.elems,
               dst + static_cast<std::size_t>(j) * w.elems, w.elems);
      }
    }
    sum = s.fold_and_advance(sum);
  }
  return sum;
}

std::uint64_t opgraph_ompss(const OpGraphWorkload& w, std::size_t threads,
                            oss::StatsSnapshot* stats) {
  oss::Runtime rt(threads);
  State s(w);
  std::uint64_t sum = 0;
  for (int it = 0; it < w.iters; ++it) {
    spawn_iteration(rt, w, s);
    rt.barrier();
    sum = s.fold_and_advance(sum);
  }
  if (stats) *stats = rt.stats();
  return sum;
}

std::uint64_t opgraph_replay(const OpGraphWorkload& w, std::size_t threads,
                             oss::StatsSnapshot* stats) {
  oss::Runtime rt(threads);
  State s(w);
  std::uint64_t sum = 0;

  // Iteration 0: spawn through the builder inside a capture scope — the
  // tasks are recorded (and held until finish()), then run normally.
  oss::ReplayGraph graph;
  {
    oss::GraphCapture cap(rt);
    spawn_iteration(rt, w, s);
    graph = cap.finish();
  }
  rt.barrier();
  sum = s.fold_and_advance(sum);

  // The binder rebuilds the body for capture index i = l*width + j.  The
  // buffer pointers are fixed for the life of the run — only the *data*
  // changes between iterations (fold_and_advance rewrites the input row).
  const int n = w.elems;
  const auto binder = [&](std::size_t i) -> oss::Task::Fn {
    const int l = static_cast<int>(i) / w.width;
    const int j = static_cast<int>(i) % w.width;
    const int kind = op_kind(l, j);
    const std::uint64_t* a = s.src(l) + static_cast<std::size_t>(j) * n;
    const std::uint64_t* b =
        s.src(l) + static_cast<std::size_t>(neighbor(l, j, w.width)) * n;
    std::uint64_t* out = s.dst(l) + static_cast<std::size_t>(j) * n;
    return [kind, a, b, out, n] { run_op(kind, a, b, out, n); };
  };

  for (int it = 1; it < w.iters; ++it) {
    rt.replay(graph, binder);
    rt.barrier();
    sum = s.fold_and_advance(sum);
  }
  if (stats) *stats = rt.stats();
  return sum;
}

} // namespace apps
