// opgraph_app.hpp — the `opgraph` benchmark (iterative operator graph).
//
// A PopART-style machine-learning op graph: `layers` layers of `width`
// heterogeneous operators, where op j of layer l reads two layer-(l-1)
// buffers (its own column and a layer-dependent neighbor) and writes its
// own output buffer — a few thousand tasks per iteration at the default
// scale, re-run for `iters` iterations with the *same* structure and
// different data (the input evolves from the previous iteration's output).
//
// This is the motivating workload for oss::replay (docs/replay.md): the
// dependency structure is bit-identical every iteration, so resolving it
// from scratch each time is pure overhead.  Three variants:
//
//   * opgraph_seq     — sequential reference (checksum ground truth)
//   * opgraph_ompss   — fresh dependency resolution every iteration
//   * opgraph_replay  — capture the first iteration, replay the rest
//
// All arithmetic is exact (uint64), so the three checksums must be
// bit-identical — the replay parity requirement.
#pragma once

#include <cstdint>

#include "bench_core/workload.hpp"
#include "ompss/stats.hpp"

namespace apps {

struct OpGraphWorkload {
  int width = 48;  ///< operators per layer
  int layers = 42; ///< layers per iteration (width*layers ops/iteration)
  int elems = 32;  ///< uint64 elements per operator buffer
  int iters = 6;   ///< iterations (the replay loop)

  static OpGraphWorkload make(benchcore::Scale scale);

  [[nodiscard]] int ops_per_iteration() const noexcept {
    return width * layers;
  }
};

std::uint64_t opgraph_seq(const OpGraphWorkload& w);

/// Fresh resolution: every iteration re-spawns the graph through the
/// dependency domain.  `stats` (optional) receives the runtime's final
/// counter snapshot.
std::uint64_t opgraph_ompss(const OpGraphWorkload& w, std::size_t threads,
                            oss::StatsSnapshot* stats = nullptr);

/// Capture-once / replay-N: iteration 0 runs inside a GraphCapture scope;
/// iterations 1..iters-1 are Runtime::replay array walks that touch no
/// dependency shard.
std::uint64_t opgraph_replay(const OpGraphWorkload& w, std::size_t threads,
                             oss::StatsSnapshot* stats = nullptr);

} // namespace apps
