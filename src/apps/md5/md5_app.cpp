#include "apps/md5/md5_app.hpp"

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

Md5Workload Md5Workload::make(benchcore::Scale scale) {
  Md5Workload w;
  const std::size_t buffers = benchcore::by_scale<std::size_t>(scale, 32, 128, 256, 1024);
  const std::size_t bytes = benchcore::by_scale<std::size_t>(scale, 4 << 10, 16 << 10, 64 << 10, 256 << 10);
  w.buffers = hashing::make_buffer_workload(buffers, bytes, 42u);
  w.group = benchcore::by_scale<std::size_t>(scale, 2, 4, 4, 8);
  return w;
}

std::vector<hashing::Md5Digest> md5_seq(const Md5Workload& w) {
  std::vector<hashing::Md5Digest> out(w.buffers.size());
  for (std::size_t i = 0; i < w.buffers.size(); ++i) {
    out[i] = hashing::md5(w.buffers[i].data(), w.buffers[i].size());
  }
  return out;
}

std::vector<hashing::Md5Digest> md5_pthreads(const Md5Workload& w,
                                             std::size_t threads) {
  std::vector<hashing::Md5Digest> out(w.buffers.size());
  pt::ThreadPool pool(threads);
  pt::parallel_for_dynamic(pool, 0, w.buffers.size(), w.group,
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               out[i] = hashing::md5(w.buffers[i].data(),
                                                     w.buffers[i].size());
                             }
                           });
  return out;
}

std::vector<hashing::Md5Digest> md5_ompss(const Md5Workload& w,
                                          std::size_t threads) {
  std::vector<hashing::Md5Digest> out(w.buffers.size());
  oss::Runtime rt(threads);
  for (const auto& [lo, hi] : split_blocks(w.buffers.size(), w.group)) {
    rt.task("md5_group")
        .in(w.buffers[lo].data(), 1) // representative input region
        .out(&out[lo], hi - lo)
        .spawn([&w, &out, lo = lo, hi = hi] {
          for (std::size_t i = lo; i < hi; ++i) {
            out[i] = hashing::md5(w.buffers[i].data(), w.buffers[i].size());
          }
        });
  }
  rt.taskwait();
  return out;
}

} // namespace apps
