// md5_app.hpp — the `md5` benchmark (hash a set of independent buffers).
#pragma once

#include <cstdint>
#include <vector>

#include "bench_core/workload.hpp"
#include "hashing/md5.hpp"

namespace apps {

struct Md5Workload {
  std::vector<std::vector<std::uint8_t>> buffers;
  std::size_t group = 4; ///< buffers per task/chunk

  static Md5Workload make(benchcore::Scale scale);
};

std::vector<hashing::Md5Digest> md5_seq(const Md5Workload& w);
std::vector<hashing::Md5Digest> md5_pthreads(const Md5Workload& w,
                                             std::size_t threads);
std::vector<hashing::Md5Digest> md5_ompss(const Md5Workload& w,
                                          std::size_t threads);

} // namespace apps
