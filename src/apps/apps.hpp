// apps.hpp — umbrella header for the 10-benchmark suite.
//
// Every benchmark exposes a `<Name>Workload::make(scale)` input factory and
// three run functions (`*_seq`, `*_pthreads(threads)`, `*_ompss(threads)`)
// exploiting the same parallelism — the comparability requirement of the
// paper's methodology (§2).
#pragma once

#include "apps/bodytrack/bodytrack_app.hpp"
#include "apps/c_ray/c_ray.hpp"
#include "apps/h264dec/h264dec_app.hpp"
#include "apps/kmeans/kmeans_app.hpp"
#include "apps/md5/md5_app.hpp"
#include "apps/opgraph/opgraph_app.hpp"
#include "apps/ray_rot/ray_rot.hpp"
#include "apps/rgbcmy/rgbcmy_app.hpp"
#include "apps/rot_cc/rot_cc.hpp"
#include "apps/rotate/rotate_app.hpp"
#include "apps/streamcluster/streamcluster_app.hpp"
