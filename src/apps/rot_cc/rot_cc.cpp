#include "apps/rot_cc/rot_cc.hpp"

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

RotCcWorkload RotCcWorkload::make(benchcore::Scale scale) {
  RotCcWorkload w;
  const int width = benchcore::by_scale(scale, 96, 256, 512, 1536);
  const int height = benchcore::by_scale(scale, 64, 192, 384, 1024);
  w.src = img::make_test_rgb(width, height, 31u);
  w.spec = img::RotateSpec::degrees(14.0);
  w.block_rows = benchcore::by_scale(scale, 8, 16, 16, 32);
  return w;
}

img::Image rot_cc_seq(const RotCcWorkload& w) {
  img::Image rotated(w.src.width(), w.src.height(), 3);
  img::rotate_rows(w.src, rotated, w.spec, 0, w.src.height());
  img::Image converted(w.src.width(), w.src.height(), 3);
  img::rgb_to_ycbcr_rows(rotated, converted, 0, w.src.height());
  return converted;
}

img::Image rot_cc_pthreads(const RotCcWorkload& w, std::size_t threads) {
  img::Image rotated(w.src.width(), w.src.height(), 3);
  img::Image converted(w.src.width(), w.src.height(), 3);
  pt::ThreadPool pool(threads);
  pt::parallel_for_dynamic(pool, 0, static_cast<std::size_t>(w.src.height()),
                           static_cast<std::size_t>(w.block_rows),
                           [&](std::size_t lo, std::size_t hi) {
                             img::rotate_rows(w.src, rotated, w.spec,
                                              static_cast<int>(lo),
                                              static_cast<int>(hi));
                           });
  pt::parallel_for_dynamic(pool, 0, static_cast<std::size_t>(w.src.height()),
                           static_cast<std::size_t>(w.block_rows),
                           [&](std::size_t lo, std::size_t hi) {
                             img::rgb_to_ycbcr_rows(rotated, converted,
                                                    static_cast<int>(lo),
                                                    static_cast<int>(hi));
                           });
  return converted;
}

img::Image rot_cc_ompss(const RotCcWorkload& w, std::size_t threads) {
  oss::Runtime rt(threads);
  img::Image rotated(w.src.width(), w.src.height(), 3);
  img::Image converted(w.src.width(), w.src.height(), 3);
  const auto blocks = split_blocks(static_cast<std::size_t>(w.src.height()),
                                   static_cast<std::size_t>(w.block_rows));
  for (const auto& [lo, hi] : blocks) {
    rt.task("rotate")
        .in(w.src.data(), w.src.size_bytes())
        .out(rotated.row(static_cast<int>(lo)), (hi - lo) * rotated.stride())
        .spawn([&w, &rotated, lo = lo, hi = hi] {
          img::rotate_rows(w.src, rotated, w.spec, static_cast<int>(lo),
                           static_cast<int>(hi));
        });
  }
  for (const auto& [lo, hi] : blocks) {
    rt.task("color_convert")
        .in(rotated.row(static_cast<int>(lo)), (hi - lo) * rotated.stride())
        .out(converted.row(static_cast<int>(lo)), (hi - lo) * converted.stride())
        .spawn([&rotated, &converted, lo = lo, hi = hi] {
          img::rgb_to_ycbcr_rows(rotated, converted, static_cast<int>(lo),
                                 static_cast<int>(hi));
        });
  }
  rt.taskwait();
  return converted;
}

} // namespace apps
