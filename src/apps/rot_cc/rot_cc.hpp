// rot_cc.hpp — the `rot-cc` benchmark: rotate feeds color conversion.
//
// Color conversion is row-local, so each conversion block depends exactly on
// the rotated rows it reads — clean per-block producer→consumer chains, the
// second of the paper's two chained workloads.
#pragma once

#include "bench_core/workload.hpp"
#include "img/img.hpp"

namespace apps {

struct RotCcWorkload {
  img::Image src;
  img::RotateSpec spec;
  int block_rows = 16;

  static RotCcWorkload make(benchcore::Scale scale);
};

img::Image rot_cc_seq(const RotCcWorkload& w);
img::Image rot_cc_pthreads(const RotCcWorkload& w, std::size_t threads);
img::Image rot_cc_ompss(const RotCcWorkload& w, std::size_t threads);

} // namespace apps
