// ray_rot.hpp — the `ray-rot` benchmark: c-ray output feeds rotate.
//
// The paper's analysis: OmpSs wins here (1.65x at 16 cores) because the
// locality-aware scheduler places each rotate block back-to-back on the
// core that just rendered the rows it consumes, so the producer's output is
// still cache-hot — the combined speedup even exceeds the product of the
// individual kernels'.
//
// To expose those per-block producer→consumer chains, each rotate block
// declares an `in` dependency on the *band* of source rows its inverse
// mapping can touch (computed conservatively from the block's corners), not
// on the whole frame.
#pragma once

#include <utility>

#include "bench_core/workload.hpp"
#include "img/img.hpp"
#include "ompss/config.hpp"
#include "raytrace/raytrace.hpp"

namespace apps {

struct RayRotWorkload {
  cray::Scene scene;
  cray::RenderOptions opts;
  img::RotateSpec spec;
  int width = 0;
  int height = 0;
  int block_rows = 8;

  static RayRotWorkload make(benchcore::Scale scale);
};

/// Source-row band [lo, hi) that rotating destination rows [dst_lo, dst_hi)
/// can sample (conservative, clamped to the image).
std::pair<int, int> rotate_source_band(const img::RotateSpec& spec, int width,
                                       int height, int dst_lo, int dst_hi);

img::Image ray_rot_seq(const RayRotWorkload& w);
img::Image ray_rot_pthreads(const RayRotWorkload& w, std::size_t threads);
img::Image ray_rot_ompss(const RayRotWorkload& w, std::size_t threads);

/// Ablation entry point: explicit scheduler policy (bench/ablation_locality).
img::Image ray_rot_ompss_with_policy(const RayRotWorkload& w,
                                     std::size_t threads,
                                     oss::SchedulerPolicy policy);

} // namespace apps
