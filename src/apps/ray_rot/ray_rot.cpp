#include "apps/ray_rot/ray_rot.hpp"

#include <cmath>

#include "apps/common/blocks.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

RayRotWorkload RayRotWorkload::make(benchcore::Scale scale) {
  RayRotWorkload w;
  w.width = benchcore::by_scale(scale, 64, 160, 320, 800);
  w.height = benchcore::by_scale(scale, 48, 120, 240, 600);
  w.scene = cray::Scene::procedural(benchcore::by_scale(scale, 6, 12, 20, 32), 9u);
  w.opts.max_depth = 3;
  w.spec = img::RotateSpec::degrees(8.0); // small angle: narrow source bands
  w.block_rows = benchcore::by_scale(scale, 4, 8, 8, 16);
  return w;
}

std::pair<int, int> rotate_source_band(const img::RotateSpec& spec, int width,
                                       int height, int dst_lo, int dst_hi) {
  const double cx = 0.5 * (width - 1);
  const double cy = 0.5 * (height - 1);
  const double c = std::cos(spec.angle_rad);
  const double s = std::sin(spec.angle_rad);
  double lo = 1e300, hi = -1e300;
  // Source y = -s*dx + c*dy + cy; extremes occur at the block corners.
  for (int y : {dst_lo, dst_hi - 1}) {
    for (int x : {0, width - 1}) {
      const double sy = -s * (x - cx) + c * (y - cy) + cy;
      lo = std::min(lo, sy);
      hi = std::max(hi, sy);
    }
  }
  int ilo = static_cast<int>(std::floor(lo)) - 1; // bilinear reads y0 and y0+1
  int ihi = static_cast<int>(std::ceil(hi)) + 2;
  if (ilo < 0) ilo = 0;
  if (ihi > height) ihi = height;
  if (ihi < ilo) ihi = ilo;
  return {ilo, ihi};
}

img::Image ray_rot_seq(const RayRotWorkload& w) {
  img::Image rendered(w.width, w.height, 3);
  cray::render_rows(w.scene, rendered, w.opts, 0, w.height);
  img::Image rotated(w.width, w.height, 3);
  img::rotate_rows(rendered, rotated, w.spec, 0, w.height);
  return rotated;
}

img::Image ray_rot_pthreads(const RayRotWorkload& w, std::size_t threads) {
  img::Image rendered(w.width, w.height, 3);
  img::Image rotated(w.width, w.height, 3);
  pt::ThreadPool pool(threads);
  // Classic Pthreads structure: render everything, join, rotate everything.
  pt::parallel_for_dynamic(pool, 0, static_cast<std::size_t>(w.height),
                           static_cast<std::size_t>(w.block_rows),
                           [&](std::size_t lo, std::size_t hi) {
                             cray::render_rows(w.scene, rendered, w.opts,
                                               static_cast<int>(lo),
                                               static_cast<int>(hi));
                           });
  pt::parallel_for_dynamic(pool, 0, static_cast<std::size_t>(w.height),
                           static_cast<std::size_t>(w.block_rows),
                           [&](std::size_t lo, std::size_t hi) {
                             img::rotate_rows(rendered, rotated, w.spec,
                                              static_cast<int>(lo),
                                              static_cast<int>(hi));
                           });
  return rotated;
}

img::Image ray_rot_ompss_with_policy(const RayRotWorkload& w,
                                     std::size_t threads,
                                     oss::SchedulerPolicy policy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.scheduler = policy;
  oss::Runtime rt(cfg);

  img::Image rendered(w.width, w.height, 3);
  img::Image rotated(w.width, w.height, 3);
  const auto blocks = split_blocks(static_cast<std::size_t>(w.height),
                                   static_cast<std::size_t>(w.block_rows));
  // Producers: render blocks.
  for (const auto& [lo, hi] : blocks) {
    rt.task("render")
        .out(rendered.row(static_cast<int>(lo)), (hi - lo) * rendered.stride())
        .spawn([&w, &rendered, lo = lo, hi = hi] {
          cray::render_rows(w.scene, rendered, w.opts, static_cast<int>(lo),
                            static_cast<int>(hi));
        });
  }
  // Consumers: rotate blocks, each depending only on its source band —
  // the per-block chains the locality scheduler exploits.
  for (const auto& [lo, hi] : blocks) {
    const auto [band_lo, band_hi] = rotate_source_band(
        w.spec, w.width, w.height, static_cast<int>(lo), static_cast<int>(hi));
    rt.task("rotate")
        .in(rendered.row(band_lo),
            static_cast<std::size_t>(band_hi - band_lo) * rendered.stride())
        .out(rotated.row(static_cast<int>(lo)), (hi - lo) * rotated.stride())
        .spawn([&w, &rendered, &rotated, lo = lo, hi = hi] {
          img::rotate_rows(rendered, rotated, w.spec, static_cast<int>(lo),
                           static_cast<int>(hi));
        });
  }
  rt.taskwait();
  return rotated;
}

img::Image ray_rot_ompss(const RayRotWorkload& w, std::size_t threads) {
  return ray_rot_ompss_with_policy(w, threads, oss::SchedulerPolicy::Locality);
}

} // namespace apps
