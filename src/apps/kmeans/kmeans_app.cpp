#include "apps/kmeans/kmeans_app.hpp"

#include <cstdio>

#include "apps/common/blocks.hpp"
#include "apps/common/numa_points.hpp"
#include "ompss/ompss.hpp"
#include "threading/threading.hpp"

namespace apps {

using cluster::KmeansPartial;
using cluster::KmeansResult;

KmeansWorkload KmeansWorkload::make(benchcore::Scale scale) {
  KmeansWorkload w;
  const std::size_t count = benchcore::by_scale<std::size_t>(scale, 2000, 20000, 100000, 500000);
  const std::size_t dim = benchcore::by_scale<std::size_t>(scale, 4, 8, 16, 32);
  w.k = benchcore::by_scale<std::size_t>(scale, 4, 8, 12, 16);
  w.points = cluster::make_blobs(count, dim, w.k, 13u);
  w.iters = benchcore::by_scale(scale, 4, 8, 10, 12);
  w.block_points = benchcore::by_scale<std::size_t>(scale, 256, 1024, 4096, 16384);
  return w;
}

KmeansResult kmeans_app_seq(const KmeansWorkload& w) {
  return cluster::kmeans_seq(w.points, w.k, w.iters);
}

KmeansResult kmeans_app_pthreads(const KmeansWorkload& w, std::size_t threads) {
  KmeansResult res;
  res.centroids = cluster::kmeans_init_centroids(w.points, w.k);
  res.assignment.assign(w.points.count, 0);

  pt::ThreadPool pool(threads);
  pt::BlockingBarrier barrier(threads);
  std::vector<KmeansPartial> partials(threads);
  std::vector<double> inertia(threads, 0.0);

  pool.run([&](std::size_t tid) {
    const std::size_t chunk = (w.points.count + threads - 1) / threads;
    const std::size_t lo = tid * chunk;
    const std::size_t hi = lo + chunk < w.points.count ? lo + chunk : w.points.count;
    for (int it = 0; it < w.iters; ++it) {
      partials[tid].init(w.k, w.points.dim);
      inertia[tid] = 0.0;
      if (lo < hi) {
        inertia[tid] = cluster::kmeans_assign_range(
            w.points, res.centroids, w.k, lo, hi, res.assignment.data(),
            partials[tid]);
      }
      if (barrier.wait()) {
        // Serial thread: reduce and update centroids for the next iteration.
        KmeansPartial merged;
        merged.init(w.k, w.points.dim);
        double total = 0.0;
        for (std::size_t t = 0; t < threads; ++t) {
          merged.merge(partials[t]);
          total += inertia[t];
        }
        cluster::kmeans_recompute(merged, w.k, w.points.dim, res.centroids);
        res.inertia = total;
        res.iterations = it + 1;
      }
      barrier.wait(); // everyone sees the updated centroids
    }
  });
  return res;
}

KmeansResult kmeans_app_ompss(const KmeansWorkload& w, std::size_t threads,
                              bool numa_place, oss::StatsSnapshot* stats) {
  KmeansResult res;
  res.centroids = cluster::kmeans_init_centroids(w.points, w.k);
  res.assignment.assign(w.points.count, 0);

  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  cfg.prof = cfg.prof || oss::stats_footer_enabled(); // work/span footer
  oss::Runtime rt(cfg);

  // Registry-backed placement: one node-bound copy per block (one-time
  // setup cost), tasks derive their home from their block.
  NumaPartitions parts(w.points, w.block_points,
                       rt.topology().num_nodes());
  std::vector<KmeansPartial> partials(parts.blocks());
  std::vector<double> inertia(parts.blocks(), 0.0);

  for (int it = 0; it < w.iters; ++it) {
    for (std::size_t b = 0; b < parts.blocks(); ++b) {
      auto builder = rt.task("kmeans_assign");
      builder.in(parts.coords(b), parts.floats(b))
          .in(res.centroids.data(), res.centroids.size())
          .out(partials[b])
          .out(inertia[b]);
      if (numa_place) builder.affinity_auto();
      builder.spawn([&, b] {
        partials[b].init(w.k, w.points.dim);
        inertia[b] = cluster::kmeans_assign_block(
            parts.coords(b), parts.count(b), w.points.dim, res.centroids,
            w.k, res.assignment.data() + parts.lo(b), partials[b]);
      });
    }
    // Reduction task: reads every partial, updates the centroids.  No hint
    // of its own — chain inheritance resolves it to its first predecessor's
    // home, keeping the reduce on-socket with the partials it merges.
    rt.task("kmeans_reduce")
        .in(partials.data(), partials.size())
        .in(inertia.data(), inertia.size())
        .inout(res.centroids.data(), res.centroids.size())
        .spawn([&, it] {
          KmeansPartial merged;
          merged.init(w.k, w.points.dim);
          double total = 0.0;
          for (std::size_t b = 0; b < parts.blocks(); ++b) {
            merged.merge(partials[b]);
            total += inertia[b];
          }
          cluster::kmeans_recompute(merged, w.k, w.points.dim, res.centroids);
          res.inertia = total;
          res.iterations = it + 1;
        });
  }
  rt.taskwait();
  if (stats != nullptr) *stats = rt.stats();
  if (oss::stats_footer_enabled()) {
    std::fprintf(stderr, "%s\n", rt.stats().footer("kmeans").c_str());
    std::fprintf(stderr, "%s\n", rt.profile().span_line("kmeans").c_str());
  }
  return res;
}

} // namespace apps
