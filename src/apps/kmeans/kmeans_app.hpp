// kmeans_app.hpp — the `kmeans` benchmark (Lloyd iterations, barrier-phased).
#pragma once

#include "bench_core/workload.hpp"
#include "cluster/cluster.hpp"

namespace apps {

struct KmeansWorkload {
  cluster::PointSet points;
  std::size_t k = 8;
  int iters = 8;
  std::size_t block_points = 1024;

  static KmeansWorkload make(benchcore::Scale scale);
};

cluster::KmeansResult kmeans_app_seq(const KmeansWorkload& w);
cluster::KmeansResult kmeans_app_pthreads(const KmeansWorkload& w,
                                          std::size_t threads);
cluster::KmeansResult kmeans_app_ompss(const KmeansWorkload& w,
                                       std::size_t threads);

} // namespace apps
