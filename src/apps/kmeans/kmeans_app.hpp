// kmeans_app.hpp — the `kmeans` benchmark (Lloyd iterations, barrier-phased).
#pragma once

#include "bench_core/workload.hpp"
#include "cluster/cluster.hpp"
#include "ompss/stats.hpp"

namespace apps {

struct KmeansWorkload {
  cluster::PointSet points;
  std::size_t k = 8;
  int iters = 8;
  std::size_t block_points = 1024;

  static KmeansWorkload make(benchcore::Scale scale);
};

cluster::KmeansResult kmeans_app_seq(const KmeansWorkload& w);
cluster::KmeansResult kmeans_app_pthreads(const KmeansWorkload& w,
                                          std::size_t threads);

/// OmpSs variant with registry-backed NUMA placement: the point blocks are
/// copied into node-bound NumaBuffers (round-robin over the runtime's
/// topology) and each assignment task spawns with `.affinity_auto()`, so
/// its home node is the node that holds its block.  The runtime is built
/// from `RuntimeConfig::from_env()` (threads overridden), so OSS_SCHEDULER /
/// OSS_TOPOLOGY / OSS_NUMA / OSS_PIN steer the run — on single-node
/// machines or under OSS_NUMA=off the placement structurally dissolves.
/// `numa_place=false` keeps the same task graph but spawns without hints
/// (the bm_numa placement-off baseline).  `stats`, when non-null, receives
/// the runtime's counter snapshot (tasks_local/tasks_remote prove routing).
cluster::KmeansResult kmeans_app_ompss(const KmeansWorkload& w,
                                       std::size_t threads,
                                       bool numa_place = true,
                                       oss::StatsSnapshot* stats = nullptr);

} // namespace apps
