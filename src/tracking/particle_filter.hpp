// particle_filter.hpp — annealed particle filter (the `bodytrack` benchmark).
//
// Structure mirrors PARSEC bodytrack:
//   for each frame:
//     for each annealing layer (noise shrinking per layer):
//       1. perturb every particle          (parallel over particles)
//       2. evaluate every particle weight  (parallel; the hot loop)
//       3. normalize + systematic resample (serial, cheap)
//   estimate = weighted mean of the final layer.
//
// Determinism: perturbations use a counter-based hash RNG keyed by
// (frame, layer, particle), so results are bit-identical however the
// particle loop is distributed — this is what lets the tests require exact
// sequential/Pthreads/OmpSs agreement.
#pragma once

#include <cstdint>
#include <vector>

#include "tracking/pose.hpp"

namespace tracking {

struct TrackerConfig {
  int num_particles = 128;
  int annealing_layers = 3;
  int samples_per_segment = 24; ///< likelihood sampling density
  float base_sigma_pos = 6.f;   ///< pixel noise at the first layer
  float base_sigma_ang = 0.20f; ///< radians noise at the first layer
  float layer_decay = 0.6f;     ///< per-layer noise multiplier
  double beta = 12.0;           ///< likelihood sharpness: w = exp(beta*overlap)
  std::uint32_t seed = 1234;
};

/// Ground-truth pose at frame `t` of the synthetic sequence: a body walking
/// across the image while swinging its limbs.
BodyPose ground_truth_pose(int frame, int width, int height);

/// The observation for frame `t`: the rendered + dilated ground-truth body.
BinaryMap make_observation(int frame, int width, int height, int dilate_radius = 2);

/// Deterministic per-(frame,layer,particle) Gaussian-ish perturbation of
/// `pose` in place.  Pure function of its arguments.
void perturb_pose(BodyPose& pose, const TrackerConfig& cfg, int frame,
                  int layer, int particle);

/// Weight kernel over particles [begin, end): perturbs each particle for
/// this (frame, layer) and writes its unnormalized weight.  This is the
/// range all variants parallelize.
void particles_step_range(std::vector<BodyPose>& particles,
                          std::vector<double>& weights, const BinaryMap& obs,
                          const TrackerConfig& cfg, int frame, int layer,
                          std::size_t begin, std::size_t end);

/// Serial phases shared by all variants:
/// systematic resampling (deterministic, uses cfg.seed + frame + layer).
void resample(std::vector<BodyPose>& particles, std::vector<double>& weights,
              std::uint32_t seq);

/// Weighted mean of the particle cloud.
BodyPose weighted_mean(const std::vector<BodyPose>& particles,
                       const std::vector<double>& weights);

/// Full sequential tracker over `frames` frames of a width×height sequence.
/// Returns the per-frame pose estimates.
std::vector<BodyPose> track_seq(const TrackerConfig& cfg, int frames, int width,
                                int height);

} // namespace tracking
