// pose.hpp — articulated 2-D body model for the bodytrack substrate.
//
// PARSEC's bodytrack fits a 3-D articulated body to multi-camera edge and
// foreground maps with an annealed particle filter.  We keep the same
// computational structure on a synthetic 2-D analogue: a stick figure with
// 8 degrees of freedom (torso position/orientation, 4 limb angles, scale)
// rendered into binary maps; per-particle likelihood evaluation samples the
// model's edge points against the observation map — the exact shape of the
// benchmark's hot loop.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tracking {

/// Body configuration: [x, y, torso_angle, l_arm, r_arm, l_leg, r_leg, scale].
struct BodyPose {
  static constexpr int kDof = 8;
  std::array<float, kDof> q{};

  float& x() { return q[0]; }
  float& y() { return q[1]; }
  float& torso() { return q[2]; }
  float& scale() { return q[7]; }
  [[nodiscard]] float x() const { return q[0]; }
  [[nodiscard]] float y() const { return q[1]; }

  /// Sum of absolute parameter differences (pose-space error metric;
  /// angles and pixels mixed deliberately, as a scale-free tracking score).
  [[nodiscard]] float distance(const BodyPose& o) const;
};

/// A 2-D point in image coordinates.
struct Pt {
  float x, y;
};

/// Samples `samples_per_segment` points along each of the 6 body segments
/// (torso, head, 2 arms, 2 legs) into `out` (cleared first).
void pose_sample_points(const BodyPose& pose, int samples_per_segment,
                        std::vector<Pt>& out);

/// Binary observation map.
struct BinaryMap {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels; // 0 or 1

  [[nodiscard]] bool inside(int x, int y) const {
    return x >= 0 && y >= 0 && x < width && y < height;
  }
  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
  void set(int x, int y) {
    if (inside(x, y))
      pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
             static_cast<std::size_t>(x)] = 1;
  }
};

/// Rasterizes the pose into a fresh width×height binary map (thick lines).
BinaryMap render_pose(const BodyPose& pose, int width, int height,
                      int samples_per_segment = 32);

/// Morphological dilation by `radius` (Chebyshev), used to soften the
/// observation before likelihood evaluation.
BinaryMap dilate(const BinaryMap& map, int radius);

/// Fraction of the pose's sample points that land on set pixels of `map`
/// (0..1); the likelihood core.  Pure and thread-safe.
double pose_overlap(const BodyPose& pose, const BinaryMap& map,
                    int samples_per_segment);

} // namespace tracking
