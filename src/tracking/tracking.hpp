// tracking.hpp — umbrella header for the bodytrack substrate.
#pragma once

#include "tracking/particle_filter.hpp"
#include "tracking/pose.hpp"
