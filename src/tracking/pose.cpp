#include "tracking/pose.hpp"

#include <cmath>

namespace tracking {

float BodyPose::distance(const BodyPose& o) const {
  float d = 0.f;
  for (int i = 0; i < kDof; ++i) d += std::abs(q[i] - o.q[i]);
  return d;
}

namespace {

struct Segment {
  Pt a, b;
};

/// Builds the six segments of the stick figure from a pose.
void body_segments(const BodyPose& pose, Segment out[6]) {
  const float s = pose.q[7] <= 0.f ? 1.f : pose.q[7];
  const float cx = pose.q[0];
  const float cy = pose.q[1];
  const float ta = pose.q[2];

  auto polar = [&](float base_x, float base_y, float angle, float len) -> Pt {
    return Pt{base_x + len * std::cos(angle), base_y + len * std::sin(angle)};
  };

  // Torso: from hip (cx,cy) upward along torso angle.
  const float torso_len = 40.f * s;
  const Pt hip{cx, cy};
  const Pt neck = polar(cx, cy, ta - 1.5707963f, torso_len);
  out[0] = {hip, neck};

  // Head: short continuation of the torso.
  out[1] = {neck, polar(neck.x, neck.y, ta - 1.5707963f, 12.f * s)};

  // Arms hang from the neck.
  const float arm_len = 28.f * s;
  out[2] = {neck, polar(neck.x, neck.y, ta + 1.5707963f + pose.q[3], arm_len)};
  out[3] = {neck, polar(neck.x, neck.y, ta + 1.5707963f + pose.q[4], arm_len)};

  // Legs hang from the hip.
  const float leg_len = 36.f * s;
  out[4] = {hip, polar(hip.x, hip.y, ta + 1.5707963f + pose.q[5], leg_len)};
  out[5] = {hip, polar(hip.x, hip.y, ta + 1.5707963f + pose.q[6], leg_len)};
}

} // namespace

void pose_sample_points(const BodyPose& pose, int samples_per_segment,
                        std::vector<Pt>& out) {
  out.clear();
  Segment segs[6];
  body_segments(pose, segs);
  const int n = samples_per_segment < 2 ? 2 : samples_per_segment;
  out.reserve(static_cast<std::size_t>(6 * n));
  for (const Segment& seg : segs) {
    for (int i = 0; i < n; ++i) {
      const float t = static_cast<float>(i) / static_cast<float>(n - 1);
      out.push_back(Pt{seg.a.x + t * (seg.b.x - seg.a.x),
                       seg.a.y + t * (seg.b.y - seg.a.y)});
    }
  }
}

BinaryMap render_pose(const BodyPose& pose, int width, int height,
                      int samples_per_segment) {
  BinaryMap map;
  map.width = width;
  map.height = height;
  map.pixels.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);
  std::vector<Pt> pts;
  pose_sample_points(pose, samples_per_segment, pts);
  for (const Pt& p : pts) {
    const int x = static_cast<int>(p.x + 0.5f);
    const int y = static_cast<int>(p.y + 0.5f);
    map.set(x, y);
    map.set(x + 1, y);
    map.set(x, y + 1); // slight thickness
  }
  return map;
}

BinaryMap dilate(const BinaryMap& in, int radius) {
  BinaryMap out;
  out.width = in.width;
  out.height = in.height;
  out.pixels.assign(in.pixels.size(), 0);
  for (int y = 0; y < in.height; ++y) {
    for (int x = 0; x < in.width; ++x) {
      if (!in.at(x, y)) continue;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          out.set(x + dx, y + dy);
        }
      }
    }
  }
  return out;
}

double pose_overlap(const BodyPose& pose, const BinaryMap& map,
                    int samples_per_segment) {
  std::vector<Pt> pts;
  pose_sample_points(pose, samples_per_segment, pts);
  if (pts.empty()) return 0.0;
  std::size_t hits = 0;
  for (const Pt& p : pts) {
    const int x = static_cast<int>(p.x + 0.5f);
    const int y = static_cast<int>(p.y + 0.5f);
    if (map.inside(x, y) && map.at(x, y)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pts.size());
}

} // namespace tracking
