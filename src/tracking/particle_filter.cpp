#include "tracking/particle_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace tracking {

namespace {

/// Counter-based hash RNG (SplitMix-style): pure function of the key, so
/// any execution order produces identical noise streams.
std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform in [-1, 1) from a key.
float signed_unit(std::uint64_t key) {
  return (static_cast<float>(hash64(key) >> 40) / float(1 << 24)) * 2.f - 1.f;
}

} // namespace

BodyPose ground_truth_pose(int frame, int width, int height) {
  BodyPose p;
  const float t = static_cast<float>(frame);
  p.q[0] = 0.2f * width + 2.5f * t;                    // drift right
  p.q[1] = 0.55f * height + 4.f * std::sin(0.3f * t);  // slight bob
  p.q[2] = 0.08f * std::sin(0.25f * t);                // torso sway
  p.q[3] = -0.5f + 0.45f * std::sin(0.5f * t);         // arms swing
  p.q[4] = 0.5f - 0.45f * std::sin(0.5f * t);
  p.q[5] = -0.3f + 0.35f * std::sin(0.5f * t + 3.14f); // legs counter-swing
  p.q[6] = 0.3f - 0.35f * std::sin(0.5f * t + 3.14f);
  p.q[7] = 1.0f;
  return p;
}

BinaryMap make_observation(int frame, int width, int height, int dilate_radius) {
  const BodyPose gt = ground_truth_pose(frame, width, height);
  return dilate(render_pose(gt, width, height), dilate_radius);
}

void perturb_pose(BodyPose& pose, const TrackerConfig& cfg, int frame,
                  int layer, int particle) {
  const float decay = std::pow(cfg.layer_decay, static_cast<float>(layer));
  const float sp = cfg.base_sigma_pos * decay;
  const float sa = cfg.base_sigma_ang * decay;
  const std::uint64_t base =
      (static_cast<std::uint64_t>(cfg.seed) << 32) ^
      (static_cast<std::uint64_t>(frame) << 20) ^
      (static_cast<std::uint64_t>(layer) << 12) ^
      static_cast<std::uint64_t>(particle);
  pose.q[0] += sp * signed_unit(base * 8 + 0);
  pose.q[1] += sp * signed_unit(base * 8 + 1);
  for (int i = 2; i < 7; ++i) {
    pose.q[i] += sa * signed_unit(base * 8 + static_cast<std::uint64_t>(i));
  }
  // Scale jitter, bounded away from zero.
  pose.q[7] += 0.02f * decay * signed_unit(base * 8 + 7);
  if (pose.q[7] < 0.5f) pose.q[7] = 0.5f;
  if (pose.q[7] > 1.5f) pose.q[7] = 1.5f;
}

void particles_step_range(std::vector<BodyPose>& particles,
                          std::vector<double>& weights, const BinaryMap& obs,
                          const TrackerConfig& cfg, int frame, int layer,
                          std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    perturb_pose(particles[i], cfg, frame, layer, static_cast<int>(i));
    const double overlap = pose_overlap(particles[i], obs, cfg.samples_per_segment);
    weights[i] = std::exp(cfg.beta * (overlap - 1.0));
  }
}

void resample(std::vector<BodyPose>& particles, std::vector<double>& weights,
              std::uint32_t seq) {
  const std::size_t n = particles.size();
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    // Degenerate cloud: keep particles, reset weights.
    for (double& w : weights) w = 1.0;
    return;
  }

  // Systematic resampling with a deterministic offset.
  const double offset =
      (static_cast<double>(hash64(seq) >> 40) / double(1 << 24));
  std::vector<BodyPose> next;
  next.reserve(n);
  double cumulative = 0.0;
  std::size_t src = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double target = (static_cast<double>(i) + offset) / static_cast<double>(n) * total;
    while (src + 1 < n && cumulative + weights[src] < target) {
      cumulative += weights[src];
      ++src;
    }
    next.push_back(particles[src]);
  }
  particles = std::move(next);
  for (double& w : weights) w = 1.0;
}

BodyPose weighted_mean(const std::vector<BodyPose>& particles,
                       const std::vector<double>& weights) {
  BodyPose mean;
  double total = 0.0;
  for (double w : weights) total += w;
  if (particles.empty() || total <= 0.0) return mean;
  for (int d = 0; d < BodyPose::kDof; ++d) {
    double acc = 0.0;
    for (std::size_t i = 0; i < particles.size(); ++i) {
      acc += weights[i] * particles[i].q[d];
    }
    mean.q[d] = static_cast<float>(acc / total);
  }
  return mean;
}

std::vector<BodyPose> track_seq(const TrackerConfig& cfg, int frames, int width,
                                int height) {
  if (cfg.num_particles <= 0) {
    throw std::invalid_argument("track_seq: need particles");
  }
  std::vector<BodyPose> particles(
      static_cast<std::size_t>(cfg.num_particles), ground_truth_pose(0, width, height));
  std::vector<double> weights(particles.size(), 1.0);
  std::vector<BodyPose> estimates;
  estimates.reserve(static_cast<std::size_t>(frames));

  for (int f = 0; f < frames; ++f) {
    const BinaryMap obs = make_observation(f, width, height);
    for (int layer = 0; layer < cfg.annealing_layers; ++layer) {
      particles_step_range(particles, weights, obs, cfg, f, layer, 0,
                           particles.size());
      resample(particles, weights,
               cfg.seed + static_cast<std::uint32_t>(f * 97 + layer));
    }
    estimates.push_back(weighted_mean(particles, weights));
  }
  return estimates;
}

} // namespace tracking
