#include "hashing/md5.hpp"

#include <cstring>

namespace hashing {

namespace {

// Per-round shift amounts (RFC 1321, Appendix A.3).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i+1))).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t rotl(std::uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

} // namespace

Md5::Md5() { reset(); }

void Md5::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  length_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  length_ += len;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = len < need ? len : need;
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

Md5Digest Md5::finish() {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i)
    len_le[i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
  std::memcpy(buffer_ + 56, len_le, 8);
  process_block(buffer_);
  buffered_ = 0;

  Md5Digest out;
  for (int i = 0; i < 4; ++i) {
    out.bytes[i * 4 + 0] = static_cast<std::uint8_t>(state_[i]);
    out.bytes[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 8);
    out.bytes[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 16);
    out.bytes[i * 4 + 3] = static_cast<std::uint8_t>(state_[i] >> 24);
  }
  return out;
}

std::string Md5Digest::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (std::uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 15]);
  }
  return s;
}

Md5Digest md5(const void* data, std::size_t len) {
  Md5 ctx;
  ctx.update(data, len);
  return ctx.finish();
}

Md5Digest md5(const std::string& s) { return md5(s.data(), s.size()); }

std::vector<std::vector<std::uint8_t>> make_buffer_workload(
    std::size_t num_buffers, std::size_t bytes_per_buffer, std::uint32_t seed) {
  std::vector<std::vector<std::uint8_t>> buffers(num_buffers);
  std::uint32_t s = seed | 1u;
  for (auto& buf : buffers) {
    buf.resize(bytes_per_buffer);
    for (auto& b : buf) {
      s ^= s << 13;
      s ^= s >> 17;
      s ^= s << 5;
      b = static_cast<std::uint8_t>(s);
    }
  }
  return buffers;
}

} // namespace hashing
