// md5.hpp — MD5 message digest (RFC 1321), implemented from scratch.
//
// Substrate for the `md5` benchmark: the suite hashes a large set of
// independent buffers (one task/thread work-item per buffer).  Both a
// one-shot function and an incremental context are provided; the context
// form is what the streaming tests exercise.
//
// MD5 is used here as a *workload*, not for security.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hashing {

/// A 128-bit MD5 digest.
struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  /// Lowercase hex rendering ("d41d8cd98f00b204e9800998ecf8427e").
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
};

/// Incremental MD5 computation.
class Md5 {
 public:
  Md5();

  /// Absorbs `len` bytes.
  void update(const void* data, std::size_t len);

  /// Finalizes and returns the digest.  The context must not be updated
  /// afterwards (reset() to reuse).
  Md5Digest finish();

  /// Returns the context to its initial state.
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t length_ = 0; ///< total bytes absorbed
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

/// One-shot digest of a byte range.
Md5Digest md5(const void* data, std::size_t len);

/// One-shot digest of a string.
Md5Digest md5(const std::string& s);

/// Deterministic pseudo-random buffer set for the md5 benchmark workload.
std::vector<std::vector<std::uint8_t>> make_buffer_workload(
    std::size_t num_buffers, std::size_t bytes_per_buffer, std::uint32_t seed);

} // namespace hashing
