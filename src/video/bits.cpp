#include "video/bits.hpp"

namespace video {

void BitWriter::put_bits(std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    cur_ = static_cast<std::uint8_t>((cur_ << 1) | ((value >> i) & 1u));
    if (++nbits_ == 8) {
      bytes_.push_back(cur_);
      cur_ = 0;
      nbits_ = 0;
    }
  }
}

void BitWriter::put_ue(std::uint32_t v) {
  const std::uint64_t code = static_cast<std::uint64_t>(v) + 1;
  int len = 0;
  while ((code >> len) > 1) ++len; // floor(log2(code))
  put_bits(0, len);                // len leading zeros
  for (int i = len; i >= 0; --i) {
    put_bits(static_cast<std::uint32_t>((code >> i) & 1u), 1);
  }
}

void BitWriter::put_se(std::int32_t v) {
  const std::uint32_t mapped =
      v > 0 ? static_cast<std::uint32_t>(2 * v - 1)
            : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  put_ue(mapped);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (nbits_ > 0) {
    cur_ = static_cast<std::uint8_t>(cur_ << (8 - nbits_));
    bytes_.push_back(cur_);
    cur_ = 0;
    nbits_ = 0;
  }
  return std::move(bytes_);
}

std::uint32_t BitReader::get_bits(int count) {
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) {
    if (pos_ >= size_ * 8) throw std::out_of_range("BitReader: past end of stream");
    const std::size_t byte = pos_ >> 3;
    const int bit = 7 - static_cast<int>(pos_ & 7);
    v = (v << 1) | ((data_[byte] >> bit) & 1u);
    ++pos_;
  }
  return v;
}

std::uint32_t BitReader::get_ue() {
  int zeros = 0;
  while (get_bits(1) == 0) {
    if (++zeros > 32) throw std::out_of_range("BitReader: malformed ue code");
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | get_bits(1);
  return v - 1;
}

std::int32_t BitReader::get_se() {
  const std::uint32_t k = get_ue();
  if (k & 1u) return static_cast<std::int32_t>((k + 1) / 2);
  return -static_cast<std::int32_t>(k / 2);
}

} // namespace video
