// bits.hpp — MSB-first bit I/O and Exp-Golomb coding.
//
// The entropy layer of the synthetic H.264-shaped codec: unsigned (ue) and
// signed (se) Exp-Golomb codes over an MSB-first bit stream, exactly the
// syntax-element coding family H.264 uses outside CABAC.  The entropy-decode
// pipeline stage spends its time here.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace video {

class BitWriter {
 public:
  /// Appends the lowest `count` bits of `value`, MSB first.
  void put_bits(std::uint32_t value, int count);

  /// Unsigned Exp-Golomb.
  void put_ue(std::uint32_t v);

  /// Signed Exp-Golomb (H.264 mapping: 1, -1, 2, -2, ...).
  void put_se(std::int32_t v);

  /// Flushes partial bits (zero padding) and returns the byte stream.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Bits written so far (before padding).
  [[nodiscard]] std::size_t bit_count() const {
    return bytes_.size() * 8 + static_cast<std::size_t>(nbits_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t cur_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  /// The reader only borrows the bytes; binding a temporary would dangle.
  explicit BitReader(std::vector<std::uint8_t>&&) = delete;

  /// Reads `count` bits MSB-first.  Throws std::out_of_range past the end.
  std::uint32_t get_bits(int count);

  /// Unsigned Exp-Golomb.
  std::uint32_t get_ue();

  /// Signed Exp-Golomb.
  std::int32_t get_se();

  /// Bits consumed so far.
  [[nodiscard]] std::size_t bit_position() const { return pos_; }

  [[nodiscard]] bool exhausted() const { return pos_ >= size_ * 8; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0; // bit position
};

} // namespace video
