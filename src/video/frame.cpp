#include "video/frame.hpp"

namespace video {

std::uint64_t VideoFrame::checksum() const {
  std::uint64_t h = 1469598103934665603ull; // FNV offset basis
  for (std::uint8_t b : y) {
    h ^= b;
    h *= 1099511628211ull; // FNV prime
  }
  return h;
}

} // namespace video
