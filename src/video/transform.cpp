#include "video/transform.hpp"

#include <cmath>

namespace video {

const int kZigzag4x4[16] = {0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15};

namespace {

/// One 4-point Hadamard butterfly: y = H·x (H symmetric, entries ±1).
inline void hadamard4(const std::int32_t x[4], std::int32_t y[4]) {
  const std::int32_t a = x[0] + x[1];
  const std::int32_t b = x[0] - x[1];
  const std::int32_t c = x[2] + x[3];
  const std::int32_t d = x[2] - x[3];
  y[0] = a + c;
  y[1] = b + d;
  y[2] = a - c;
  y[3] = b - d;
}

} // namespace

void forward_transform4x4(const std::int16_t in[16], std::int32_t out[16]) {
  std::int32_t tmp[16];
  // Rows: tmp = X·H (apply to each row vector).
  for (int i = 0; i < 4; ++i) {
    const std::int32_t row[4] = {in[i * 4 + 0], in[i * 4 + 1], in[i * 4 + 2],
                                 in[i * 4 + 3]};
    hadamard4(row, tmp + i * 4);
  }
  // Columns: out = H·tmp.
  for (int j = 0; j < 4; ++j) {
    const std::int32_t col[4] = {tmp[0 * 4 + j], tmp[1 * 4 + j], tmp[2 * 4 + j],
                                 tmp[3 * 4 + j]};
    std::int32_t res[4];
    hadamard4(col, res);
    out[0 * 4 + j] = res[0];
    out[1 * 4 + j] = res[1];
    out[2 * 4 + j] = res[2];
    out[3 * 4 + j] = res[3];
  }
}

void inverse_transform4x4(const std::int32_t in[16], std::int16_t out[16]) {
  std::int32_t tmp[16];
  for (int i = 0; i < 4; ++i) {
    hadamard4(in + i * 4, tmp + i * 4);
  }
  for (int j = 0; j < 4; ++j) {
    const std::int32_t col[4] = {tmp[0 * 4 + j], tmp[1 * 4 + j], tmp[2 * 4 + j],
                                 tmp[3 * 4 + j]};
    std::int32_t res[4];
    hadamard4(col, res);
    // H·H = 4I in each dimension → total gain 16; round-to-nearest shift.
    out[0 * 4 + j] = static_cast<std::int16_t>((res[0] + 8) >> 4);
    out[1 * 4 + j] = static_cast<std::int16_t>((res[1] + 8) >> 4);
    out[2 * 4 + j] = static_cast<std::int16_t>((res[2] + 8) >> 4);
    out[3 * 4 + j] = static_cast<std::int16_t>((res[3] + 8) >> 4);
  }
}

void quantize4x4(const std::int32_t in[16], std::int16_t out[16], int step) {
  if (step < 1) step = 1;
  for (int i = 0; i < 16; ++i) {
    const std::int32_t v = in[i];
    const std::int32_t mag = (std::abs(v) + step / 2) / step;
    out[i] = static_cast<std::int16_t>(v < 0 ? -mag : mag);
  }
}

void dequantize4x4(const std::int16_t in[16], std::int32_t out[16], int step) {
  if (step < 1) step = 1;
  for (int i = 0; i < 16; ++i) {
    out[i] = static_cast<std::int32_t>(in[i]) * step;
  }
}

int qp_to_step(int qp) {
  if (qp < 0) qp = 0;
  if (qp > 51) qp = 51;
  // Doubles every 6 QP like H.264; step 1 at QP 0.
  const double step = std::pow(2.0, qp / 6.0);
  const int s = static_cast<int>(step + 0.5);
  return s < 1 ? 1 : s;
}

} // namespace video
