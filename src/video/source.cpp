#include "video/source.hpp"

namespace video {

VideoFrame synth_source_frame(int t, int width, int height) {
  VideoFrame f(width, height);
  // Moving disc over a diagonal gradient with a textured band.
  const int cx = (width / 4 + 3 * t) % width;
  const int cy = height / 2 + static_cast<int>((height / 6) *
                                               ((t % 20) - 10) / 10.0);
  const int r = height / 5;
  const int r2 = r * r;

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      int v = (x + 2 * y + t) & 0xFF; // drifting gradient
      const int dx = x - cx;
      const int dy = y - cy;
      if (dx * dx + dy * dy < r2) {
        v = 230 - ((dx * dx + dy * dy) * 80 / r2); // shaded disc
      } else if (y > height * 3 / 4) {
        // Texture band: deterministic hash noise (hard to predict → big
        // residuals, like film grain).
        std::uint32_t h = static_cast<std::uint32_t>(x * 374761393 +
                                                     y * 668265263 + t * 2654435761u);
        h ^= h >> 13;
        h *= 1274126177u;
        v = (v + static_cast<int>(h & 63u)) & 0xFF;
      }
      f.at(x, y) = static_cast<std::uint8_t>(v);
    }
  }
  return f;
}

} // namespace video
