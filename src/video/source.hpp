// source.hpp — deterministic synthetic video source.
//
// We have no H.264 conformance bitstreams to ship, so the encoder consumes a
// synthetic sequence with the properties that matter for the decode
// workload: smooth regions (cheap residuals), moving objects (non-zero
// motion vectors), and textured areas (expensive residuals).  Deterministic
// in (frame, width, height).
#pragma once

#include "video/frame.hpp"

namespace video {

/// Frame `t` of the synthetic test sequence.
VideoFrame synth_source_frame(int t, int width, int height);

} // namespace video
