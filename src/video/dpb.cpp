#include "video/dpb.hpp"

namespace video {

DecodedPictureBuffer::DecodedPictureBuffer(std::size_t slots, int width,
                                           int height)
    : busy_(slots, false) {
  frames_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) frames_.emplace_back(width, height);
}

int DecodedPictureBuffer::fetch_free() {
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (!busy_[i]) {
      busy_[i] = true;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void DecodedPictureBuffer::release(int slot) {
  if (slot < 0 || static_cast<std::size_t>(slot) >= busy_.size() ||
      !busy_[static_cast<std::size_t>(slot)]) {
    throw std::logic_error("DecodedPictureBuffer: bad release");
  }
  busy_[static_cast<std::size_t>(slot)] = false;
}

std::size_t DecodedPictureBuffer::busy_count() const {
  std::size_t n = 0;
  for (bool b : busy_) n += b ? 1 : 0;
  return n;
}

PictureInfoBuffer::PictureInfoBuffer(std::size_t slots)
    : entries_(slots), live_(slots, false) {}

int PictureInfoBuffer::allocate(const PictureInfo& info) {
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (!live_[i]) {
      live_[i] = true;
      entries_[i] = info;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void PictureInfoBuffer::retire(int slot) {
  if (slot < 0 || static_cast<std::size_t>(slot) >= live_.size() ||
      !live_[static_cast<std::size_t>(slot)]) {
    throw std::logic_error("PictureInfoBuffer: bad retire");
  }
  live_[static_cast<std::size_t>(slot)] = false;
}

std::size_t PictureInfoBuffer::live_count() const {
  std::size_t n = 0;
  for (bool b : live_) n += b ? 1 : 0;
  return n;
}

} // namespace video
