// transform.hpp — 4×4 integer transform + scalar quantization.
//
// The residual-coding core of the synthetic codec.  We use the 4×4
// Walsh-Hadamard transform (the transform H.264 itself applies to DC
// coefficients): H = [[1,1,1,1],[1,1,-1,-1],[1,-1,-1,1],[1,-1,1,-1]],
// C = H·X·H, with the exact inverse X = (H·C·H) >> 4.  Compared to the
// H.264 "core" transform this drops the position-dependent scaling matrices
// (which exist only to renormalize that transform's unequal basis norms)
// while keeping the same butterfly/add integer compute shape — and it is
// *exactly* invertible, which makes the encoder/decoder reconstruction loop
// bit-exact by construction.
//
// Quantization is a flat scalar quantizer with round-to-nearest; encoder
// and decoder share the dequant+inverse path.
#pragma once

#include <cstdint>

namespace video {

/// Forward transform of a 4×4 residual block (row-major): C = H·X·H.
void forward_transform4x4(const std::int16_t in[16], std::int32_t out[16]);

/// Exact inverse: X = (H·C·H) >> 4 (exact when C came from the forward
/// transform of integer data; rounding applies otherwise).
void inverse_transform4x4(const std::int32_t in[16], std::int16_t out[16]);

/// Flat scalar quantizer: level = round(coeff / step).  `step` must be >= 1.
void quantize4x4(const std::int32_t in[16], std::int16_t out[16], int step);

/// Dequantizer: coeff = level * step.
void dequantize4x4(const std::int16_t in[16], std::int32_t out[16], int step);

/// Quantizer step size from a 0..51-style QP (doubles every 6, like H.264).
int qp_to_step(int qp);

/// Zigzag scan order for a 4×4 block.
extern const int kZigzag4x4[16];

} // namespace video
