// frame.hpp — frames, headers, and macroblock syntax elements.
//
// The decoder pipeline (paper §3) passes these between stages:
//   read   → EncodedFrame (entropy-coded bytes for one frame)
//   parse  → FrameHeader (dimensions, type, qp)
//   ED     → MbSyntax[] (motion vectors + residual levels per macroblock)
//   recon  → VideoFrame (reconstructed luma picture)
//   output → display-order checksum/frame sink
//
// Luma-only (the pipeline structure the paper studies does not depend on
// chroma; see DESIGN.md substitutions).  Macroblocks are 16×16 = 16 4×4
// transform blocks.
#pragma once

#include <cstdint>
#include <vector>

namespace video {

inline constexpr int kMbSize = 16;      ///< macroblock edge in pixels
inline constexpr int kBlocksPerMb = 16; ///< 4×4 blocks per macroblock

enum class FrameType : std::uint8_t {
  I = 0, ///< all-intra (DC prediction from reconstructed neighbors)
  P = 1, ///< inter (full-pel motion compensation from the previous frame)
};

/// One decoded (or source) luma picture.
struct VideoFrame {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> y;

  VideoFrame() = default;
  VideoFrame(int w, int h) : width(w), height(h), y(static_cast<std::size_t>(w) * h, 0) {}

  [[nodiscard]] std::uint8_t at(int x, int y_) const {
    return y[static_cast<std::size_t>(y_) * width + x];
  }
  [[nodiscard]] std::uint8_t& at(int x, int y_) {
    return y[static_cast<std::size_t>(y_) * width + x];
  }

  /// FNV-1a checksum of the pixel data (used by the output stage).
  [[nodiscard]] std::uint64_t checksum() const;
};

/// Per-frame header parsed by the parse stage.
struct FrameHeader {
  std::uint32_t frame_num = 0;
  FrameType type = FrameType::I;
  int qp = 20;
  int mb_w = 0; ///< macroblocks per row
  int mb_h = 0; ///< macroblock rows

  [[nodiscard]] int width() const { return mb_w * kMbSize; }
  [[nodiscard]] int height() const { return mb_h * kMbSize; }
  [[nodiscard]] std::size_t mb_count() const {
    return static_cast<std::size_t>(mb_w) * static_cast<std::size_t>(mb_h);
  }
};

/// Syntax elements of one macroblock, produced by entropy decode.
struct MbSyntax {
  std::int16_t mvx = 0; ///< full-pel motion vector (P frames)
  std::int16_t mvy = 0;
  /// Quantized transform levels, 16 blocks × 16 coefficients (raster order
  /// within block; blocks in 4×4 raster order within the macroblock).
  std::int16_t levels[kBlocksPerMb][16] = {};
};

/// The entropy-coded payload of one frame, as emitted by the read stage.
struct EncodedFrame {
  std::vector<std::uint8_t> payload;
};

/// A whole encoded sequence ("the bitstream file").
struct EncodedVideo {
  std::vector<EncodedFrame> frames;
  int width = 0;
  int height = 0;

  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& f : frames) n += f.payload.size();
    return n;
  }
};

} // namespace video
