// codec.hpp — the synthetic H.264-shaped encoder and decoder stages.
//
// Encoder (test-input producer): I frames use 16×16 DC intra prediction from
// reconstructed neighbors, P frames use full-pel motion compensation from
// the previous reconstructed frame; residuals go through the 4×4 integer
// transform, flat quantization, and Exp-Golomb run/level coding.  The
// encoder maintains the same reconstruction loop as the decoder, so decoded
// frames are bit-exact with the encoder's reconstructions — that equality is
// the decoder's correctness oracle in the tests.
//
// Decoder: split into the paper's pipeline stages (§3):
//   parse_frame_header  — the "parse" stage
//   entropy_decode_frame — the "ED" stage (all Exp-Golomb work)
//   reconstruct_mb / reconstruct_frame — the "MB reconstruction" stage
// The read and output stages live with the benchmark variants (they are
// I/O + buffer management, not codec math).
//
// Dependency structure relevant to parallel reconstruction: an intra MB
// needs its *top* and *left* reconstructed neighbors (DC prediction); an
// inter MB needs only the reference frame.  Raster order satisfies both;
// the Pthreads line-decoding variant exploits the wavefront.
#pragma once

#include "video/bits.hpp"
#include "video/frame.hpp"

namespace video {

struct EncoderConfig {
  int width = 320;   ///< must be a multiple of 16
  int height = 192;  ///< must be a multiple of 16
  int frames = 16;
  int gop = 8;          ///< I-frame period
  int qp = 20;          ///< quantizer (0..51-ish; higher = smaller stream)
  int search_range = 4; ///< full-pel motion search radius
};

struct EncodeResult {
  EncodedVideo video;
  /// Checksums of the encoder's reconstructed frames, in decode order —
  /// the oracle a correct decoder must reproduce exactly.
  std::vector<std::uint64_t> recon_checksums;
};

/// Encodes `cfg.frames` frames of the synthetic source sequence.
/// Throws std::invalid_argument for non-multiple-of-16 dimensions.
EncodeResult encode_video(const EncoderConfig& cfg);

// --- decoder stages ---------------------------------------------------------

/// Parse stage: header of one frame payload.
FrameHeader parse_frame_header(BitReader& br);

/// ED stage: decodes all macroblock syntax (motion vectors + residual
/// levels) following the header.  `mbs` must have hdr.mb_count() entries.
void entropy_decode_frame(BitReader& br, const FrameHeader& hdr, MbSyntax* mbs);

/// Reconstruction of one macroblock.  For FrameType::I the macroblocks at
/// (mbx-1, mby) and (mbx, mby-1) must already be reconstructed in `cur`;
/// for FrameType::P `ref` must be the fully reconstructed previous frame.
void reconstruct_mb(const FrameHeader& hdr, const MbSyntax* mbs, int mbx,
                    int mby, VideoFrame& cur, const VideoFrame* ref);

/// Sequential whole-frame reconstruction (raster order).
void reconstruct_frame(const FrameHeader& hdr, const MbSyntax* mbs,
                       VideoFrame& cur, const VideoFrame* ref);

/// DC intra predictor shared by encoder and decoder (mean of the
/// reconstructed row above and column left of the macroblock; 128 if
/// neither exists).
int intra_dc_prediction(const VideoFrame& cur, int mbx, int mby);

/// Fully sequential decode of a whole sequence; returns per-frame checksums
/// (reference implementation used by tests and the seq benchmark variant).
std::vector<std::uint64_t> decode_video_seq(const EncodedVideo& video);

} // namespace video
