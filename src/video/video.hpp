// video.hpp — umbrella header for the synthetic H.264-shaped codec.
#pragma once

#include "video/bits.hpp"
#include "video/codec.hpp"
#include "video/dpb.hpp"
#include "video/frame.hpp"
#include "video/source.hpp"
#include "video/transform.hpp"
