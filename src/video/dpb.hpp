// dpb.hpp — Picture Info Buffer and Decoded Picture Buffer.
//
// The paper's third observation (§3): the PIB and DPB cannot be expressed
// as task dependencies because "we cannot predict which buffer entries will
// be available at the time the task is spawned" — so their fetch/release
// operations are *hidden* from the dependency system and protected with
// `omp critical` inside the task bodies.
//
// Accordingly, these classes are deliberately **unsynchronized**: the
// sequential decoder calls them bare, the OmpSs variant wraps calls in
// `oss::critical("pib"/"dpb", ...)` exactly like Listing 1's description,
// and the Pthreads variant uses its own mutex.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "video/frame.hpp"

namespace video {

/// Fixed pool of reusable picture slots with busy/free state.
class DecodedPictureBuffer {
 public:
  /// `slots` pictures of the given dimensions.
  DecodedPictureBuffer(std::size_t slots, int width, int height);

  /// Index of a free slot, marking it busy; -1 if none available.
  int fetch_free();

  /// Returns a busy slot to the pool.  Throws std::logic_error if the slot
  /// was not busy (double release).
  void release(int slot);

  [[nodiscard]] VideoFrame& picture(int slot) { return frames_.at(static_cast<std::size_t>(slot)); }
  [[nodiscard]] const VideoFrame& picture(int slot) const {
    return frames_.at(static_cast<std::size_t>(slot));
  }

  [[nodiscard]] std::size_t slots() const { return frames_.size(); }
  [[nodiscard]] std::size_t busy_count() const;

 private:
  std::vector<VideoFrame> frames_;
  std::vector<bool> busy_;
};

/// Per-picture metadata entries allocated by the parse stage and retired by
/// the output stage.
struct PictureInfo {
  std::uint32_t frame_num = 0;
  FrameType type = FrameType::I;
  int dpb_slot = -1; ///< the picture slot reconstruction will fill
};

class PictureInfoBuffer {
 public:
  explicit PictureInfoBuffer(std::size_t slots);

  /// Allocates an entry; -1 if the buffer is full.
  int allocate(const PictureInfo& info);

  /// Retires an entry.  Throws std::logic_error on double retire.
  void retire(int slot);

  [[nodiscard]] PictureInfo& info(int slot) { return entries_.at(static_cast<std::size_t>(slot)); }

  [[nodiscard]] std::size_t slots() const { return entries_.size(); }
  [[nodiscard]] std::size_t live_count() const;

 private:
  std::vector<PictureInfo> entries_;
  std::vector<bool> live_;
};

} // namespace video
