#include "video/codec.hpp"

#include <cstdlib>
#include <stdexcept>

#include "video/source.hpp"
#include "video/transform.hpp"

namespace video {

namespace {

std::uint8_t clamp_pixel(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Sum of absolute differences between a 16×16 source block and a
/// (clamped) reference block displaced by (mvx, mvy).
long sad16(const VideoFrame& src, const VideoFrame& ref, int px, int py,
           int mvx, int mvy) {
  long sad = 0;
  for (int y = 0; y < kMbSize; ++y) {
    for (int x = 0; x < kMbSize; ++x) {
      const int rx = px + x + mvx;
      const int ry = py + y + mvy;
      const int cx = rx < 0 ? 0 : (rx >= ref.width ? ref.width - 1 : rx);
      const int cy = ry < 0 ? 0 : (ry >= ref.height ? ref.height - 1 : ry);
      sad += std::abs(static_cast<int>(src.at(px + x, py + y)) -
                      static_cast<int>(ref.at(cx, cy)));
    }
  }
  return sad;
}

/// Writes the prediction for one macroblock into `pred` (16×16 row-major).
void predict_mb(const FrameHeader& hdr, const MbSyntax& mb, int mbx, int mby,
                const VideoFrame& cur, const VideoFrame* ref,
                std::uint8_t pred[kMbSize * kMbSize]) {
  const int px = mbx * kMbSize;
  const int py = mby * kMbSize;
  if (hdr.type == FrameType::I) {
    const int dc = intra_dc_prediction(cur, mbx, mby);
    for (int i = 0; i < kMbSize * kMbSize; ++i) pred[i] = static_cast<std::uint8_t>(dc);
  } else {
    for (int y = 0; y < kMbSize; ++y) {
      for (int x = 0; x < kMbSize; ++x) {
        const int rx = px + x + mb.mvx;
        const int ry = py + y + mb.mvy;
        const int cx = rx < 0 ? 0 : (rx >= ref->width ? ref->width - 1 : rx);
        const int cy = ry < 0 ? 0 : (ry >= ref->height ? ref->height - 1 : ry);
        pred[y * kMbSize + x] = ref->at(cx, cy);
      }
    }
  }
}

/// Applies residual levels on top of a prediction and writes the
/// reconstructed macroblock into `cur` — the shared encoder/decoder loop.
void reconstruct_from_levels(const FrameHeader& hdr, const MbSyntax& mb,
                             int mbx, int mby,
                             const std::uint8_t pred[kMbSize * kMbSize],
                             VideoFrame& cur) {
  const int step = qp_to_step(hdr.qp);
  const int px = mbx * kMbSize;
  const int py = mby * kMbSize;
  for (int b = 0; b < kBlocksPerMb; ++b) {
    const int bx = (b % 4) * 4;
    const int by = (b / 4) * 4;
    std::int32_t coeffs[16];
    std::int16_t residual[16];
    dequantize4x4(mb.levels[b], coeffs, step);
    inverse_transform4x4(coeffs, residual);
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const int p = pred[(by + y) * kMbSize + bx + x];
        cur.at(px + bx + x, py + by + y) =
            clamp_pixel(p + residual[y * 4 + x]);
      }
    }
  }
}

/// Encodes one macroblock's syntax into the bit stream.
void write_mb(BitWriter& bw, const FrameHeader& hdr, const MbSyntax& mb) {
  if (hdr.type == FrameType::P) {
    bw.put_se(mb.mvx);
    bw.put_se(mb.mvy);
  }
  for (int b = 0; b < kBlocksPerMb; ++b) {
    // Zigzag run/level coding.
    int nnz = 0;
    for (int i = 0; i < 16; ++i) {
      if (mb.levels[b][kZigzag4x4[i]] != 0) ++nnz;
    }
    bw.put_ue(static_cast<std::uint32_t>(nnz));
    int run = 0;
    for (int i = 0; i < 16 && nnz > 0; ++i) {
      const std::int16_t lvl = mb.levels[b][kZigzag4x4[i]];
      if (lvl == 0) {
        ++run;
      } else {
        bw.put_ue(static_cast<std::uint32_t>(run));
        bw.put_se(lvl);
        run = 0;
        --nnz;
      }
    }
  }
}

/// Computes residual levels for a macroblock given its prediction.
void encode_residual(const FrameHeader& hdr, const VideoFrame& src, int mbx,
                     int mby, const std::uint8_t pred[kMbSize * kMbSize],
                     MbSyntax& mb) {
  const int step = qp_to_step(hdr.qp);
  const int px = mbx * kMbSize;
  const int py = mby * kMbSize;
  for (int b = 0; b < kBlocksPerMb; ++b) {
    const int bx = (b % 4) * 4;
    const int by = (b / 4) * 4;
    std::int16_t residual[16];
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        residual[y * 4 + x] = static_cast<std::int16_t>(
            static_cast<int>(src.at(px + bx + x, py + by + y)) -
            static_cast<int>(pred[(by + y) * kMbSize + bx + x]));
      }
    }
    std::int32_t coeffs[16];
    forward_transform4x4(residual, coeffs);
    quantize4x4(coeffs, mb.levels[b], step);
  }
}

} // namespace

int intra_dc_prediction(const VideoFrame& cur, int mbx, int mby) {
  const int px = mbx * kMbSize;
  const int py = mby * kMbSize;
  long sum = 0;
  int n = 0;
  if (mby > 0) {
    for (int x = 0; x < kMbSize; ++x) {
      sum += cur.at(px + x, py - 1);
      ++n;
    }
  }
  if (mbx > 0) {
    for (int y = 0; y < kMbSize; ++y) {
      sum += cur.at(px - 1, py + y);
      ++n;
    }
  }
  return n == 0 ? 128 : static_cast<int>((sum + n / 2) / n);
}

EncodeResult encode_video(const EncoderConfig& cfg) {
  if (cfg.width % kMbSize != 0 || cfg.height % kMbSize != 0 || cfg.width <= 0 ||
      cfg.height <= 0) {
    throw std::invalid_argument("encode_video: dimensions must be positive multiples of 16");
  }
  if (cfg.frames <= 0 || cfg.gop <= 0) {
    throw std::invalid_argument("encode_video: frames and gop must be positive");
  }

  EncodeResult result;
  result.video.width = cfg.width;
  result.video.height = cfg.height;

  VideoFrame recon_prev; // reference for P frames
  for (int f = 0; f < cfg.frames; ++f) {
    const VideoFrame src = synth_source_frame(f, cfg.width, cfg.height);

    FrameHeader hdr;
    hdr.frame_num = static_cast<std::uint32_t>(f);
    hdr.type = (f % cfg.gop == 0) ? FrameType::I : FrameType::P;
    hdr.qp = cfg.qp;
    hdr.mb_w = cfg.width / kMbSize;
    hdr.mb_h = cfg.height / kMbSize;

    BitWriter bw;
    bw.put_ue(hdr.frame_num);
    bw.put_ue(static_cast<std::uint32_t>(hdr.type));
    bw.put_ue(static_cast<std::uint32_t>(hdr.qp));
    bw.put_ue(static_cast<std::uint32_t>(hdr.mb_w));
    bw.put_ue(static_cast<std::uint32_t>(hdr.mb_h));

    VideoFrame recon(cfg.width, cfg.height);
    for (int mby = 0; mby < hdr.mb_h; ++mby) {
      for (int mbx = 0; mbx < hdr.mb_w; ++mbx) {
        MbSyntax mb;
        if (hdr.type == FrameType::P) {
          // Full-pel motion search around (0,0).
          const int px = mbx * kMbSize;
          const int py = mby * kMbSize;
          long best = sad16(src, recon_prev, px, py, 0, 0);
          for (int dy = -cfg.search_range; dy <= cfg.search_range; ++dy) {
            for (int dx = -cfg.search_range; dx <= cfg.search_range; ++dx) {
              if (dx == 0 && dy == 0) continue;
              const long s = sad16(src, recon_prev, px, py, dx, dy);
              if (s < best) {
                best = s;
                mb.mvx = static_cast<std::int16_t>(dx);
                mb.mvy = static_cast<std::int16_t>(dy);
              }
            }
          }
        }
        std::uint8_t pred[kMbSize * kMbSize];
        // Prediction must come from the *reconstruction* (decoder parity).
        predict_mb(hdr, mb, mbx, mby, recon, &recon_prev, pred);
        encode_residual(hdr, src, mbx, mby, pred, mb);
        write_mb(bw, hdr, mb);
        reconstruct_from_levels(hdr, mb, mbx, mby, pred, recon);
      }
    }

    result.video.frames.push_back(EncodedFrame{bw.finish()});
    result.recon_checksums.push_back(recon.checksum());
    recon_prev = std::move(recon);
  }
  return result;
}

FrameHeader parse_frame_header(BitReader& br) {
  FrameHeader hdr;
  hdr.frame_num = br.get_ue();
  const std::uint32_t type = br.get_ue();
  if (type > 1) throw std::runtime_error("parse_frame_header: bad frame type");
  hdr.type = static_cast<FrameType>(type);
  hdr.qp = static_cast<int>(br.get_ue());
  hdr.mb_w = static_cast<int>(br.get_ue());
  hdr.mb_h = static_cast<int>(br.get_ue());
  if (hdr.mb_w <= 0 || hdr.mb_h <= 0 || hdr.mb_w > 1024 || hdr.mb_h > 1024) {
    throw std::runtime_error("parse_frame_header: implausible dimensions");
  }
  return hdr;
}

void entropy_decode_frame(BitReader& br, const FrameHeader& hdr, MbSyntax* mbs) {
  for (std::size_t m = 0; m < hdr.mb_count(); ++m) {
    MbSyntax& mb = mbs[m];
    mb = MbSyntax{};
    if (hdr.type == FrameType::P) {
      mb.mvx = static_cast<std::int16_t>(br.get_se());
      mb.mvy = static_cast<std::int16_t>(br.get_se());
    }
    for (int b = 0; b < kBlocksPerMb; ++b) {
      const std::uint32_t nnz = br.get_ue();
      if (nnz > 16) throw std::runtime_error("entropy_decode: bad block");
      int zig = 0;
      for (std::uint32_t i = 0; i < nnz; ++i) {
        const std::uint32_t run = br.get_ue();
        zig += static_cast<int>(run);
        if (zig >= 16) throw std::runtime_error("entropy_decode: run overflow");
        mb.levels[b][kZigzag4x4[zig]] = static_cast<std::int16_t>(br.get_se());
        ++zig;
      }
    }
  }
}

void reconstruct_mb(const FrameHeader& hdr, const MbSyntax* mbs, int mbx,
                    int mby, VideoFrame& cur, const VideoFrame* ref) {
  const MbSyntax& mb = mbs[static_cast<std::size_t>(mby) * hdr.mb_w + mbx];
  std::uint8_t pred[kMbSize * kMbSize];
  predict_mb(hdr, mb, mbx, mby, cur, ref, pred);
  reconstruct_from_levels(hdr, mb, mbx, mby, pred, cur);
}

void reconstruct_frame(const FrameHeader& hdr, const MbSyntax* mbs,
                       VideoFrame& cur, const VideoFrame* ref) {
  for (int mby = 0; mby < hdr.mb_h; ++mby) {
    for (int mbx = 0; mbx < hdr.mb_w; ++mbx) {
      reconstruct_mb(hdr, mbs, mbx, mby, cur, ref);
    }
  }
}

std::vector<std::uint64_t> decode_video_seq(const EncodedVideo& video) {
  std::vector<std::uint64_t> checksums;
  checksums.reserve(video.frames.size());
  VideoFrame prev;
  for (const EncodedFrame& ef : video.frames) {
    BitReader br(ef.payload);
    const FrameHeader hdr = parse_frame_header(br);
    std::vector<MbSyntax> mbs(hdr.mb_count());
    entropy_decode_frame(br, hdr, mbs.data());
    VideoFrame cur(hdr.width(), hdr.height());
    reconstruct_frame(hdr, mbs.data(), cur, &prev);
    checksums.push_back(cur.checksum());
    prev = std::move(cur);
  }
  return checksums;
}

} // namespace video
