// color.hpp — color-space conversions (`rgbcmy` and the "cc" stage of
// `rot-cc`).
//
// * rgb_to_cmyk_rows — the rgbcmy benchmark kernel: 3-channel RGB in,
//   4-channel CMYK out (standard K = 1 - max(R',G',B') formulation).
// * rgb_to_ycbcr_rows — the color-conversion kernel chained after rotation
//   in rot-cc (BT.601 full-range).
// * ycbcr_to_rgb_rows — inverse, used by round-trip tests.
//
// All kernels are row-range functions shared by every variant.
#pragma once

#include "img/image.hpp"

namespace img {

/// RGB (3ch) → CMYK (4ch) over rows [row_begin, row_end).
void rgb_to_cmyk_rows(const Image& rgb, Image& cmyk, int row_begin, int row_end);

/// RGB (3ch) → YCbCr (3ch, BT.601 full range) over rows [row_begin, row_end).
void rgb_to_ycbcr_rows(const Image& rgb, Image& ycbcr, int row_begin, int row_end);

/// YCbCr (3ch) → RGB (3ch) over rows [row_begin, row_end).
void ycbcr_to_rgb_rows(const Image& ycbcr, Image& rgb, int row_begin, int row_end);

/// Whole-image conveniences.
void rgb_to_cmyk(const Image& rgb, Image& cmyk);
void rgb_to_ycbcr(const Image& rgb, Image& ycbcr);
void ycbcr_to_rgb(const Image& ycbcr, Image& rgb);

} // namespace img
