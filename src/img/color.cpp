#include "img/color.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace img {

namespace {

std::uint8_t clamp8(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

void check_shapes(const Image& src, const Image& dst, int src_ch, int dst_ch,
                  const char* what) {
  if (src.channels() != src_ch || dst.channels() != dst_ch ||
      src.width() != dst.width() || src.height() != dst.height()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

} // namespace

void rgb_to_cmyk_rows(const Image& rgb, Image& cmyk, int row_begin, int row_end) {
  check_shapes(rgb, cmyk, 3, 4, "rgb_to_cmyk");
  const int w = rgb.width();
  for (int y = row_begin; y < row_end; ++y) {
    const std::uint8_t* in = rgb.row(y);
    std::uint8_t* out = cmyk.row(y);
    for (int x = 0; x < w; ++x) {
      const int r = in[x * 3 + 0];
      const int g = in[x * 3 + 1];
      const int b = in[x * 3 + 2];
      const int mx = std::max(r, std::max(g, b));
      const int k = 255 - mx; // black
      if (mx == 0) {
        out[x * 4 + 0] = 0;
        out[x * 4 + 1] = 0;
        out[x * 4 + 2] = 0;
        out[x * 4 + 3] = 255;
        continue;
      }
      // C = (1 - R' - K') / (1 - K'), scaled to 0..255 integer math.
      out[x * 4 + 0] = clamp8((mx - r) * 255 / mx);
      out[x * 4 + 1] = clamp8((mx - g) * 255 / mx);
      out[x * 4 + 2] = clamp8((mx - b) * 255 / mx);
      out[x * 4 + 3] = clamp8(k);
    }
  }
}

void rgb_to_ycbcr_rows(const Image& rgb, Image& ycbcr, int row_begin, int row_end) {
  check_shapes(rgb, ycbcr, 3, 3, "rgb_to_ycbcr");
  const int w = rgb.width();
  for (int y = row_begin; y < row_end; ++y) {
    const std::uint8_t* in = rgb.row(y);
    std::uint8_t* out = ycbcr.row(y);
    for (int x = 0; x < w; ++x) {
      const int r = in[x * 3 + 0];
      const int g = in[x * 3 + 1];
      const int b = in[x * 3 + 2];
      // BT.601 full-range, 16.16 fixed point.
      const int yy = (19595 * r + 38470 * g + 7471 * b + 32768) >> 16;
      const int cb = ((-11059 * r - 21709 * g + 32768 * b + 32768) >> 16) + 128;
      const int cr = ((32768 * r - 27439 * g - 5329 * b + 32768) >> 16) + 128;
      out[x * 3 + 0] = clamp8(yy);
      out[x * 3 + 1] = clamp8(cb);
      out[x * 3 + 2] = clamp8(cr);
    }
  }
}

void ycbcr_to_rgb_rows(const Image& ycbcr, Image& rgb, int row_begin, int row_end) {
  check_shapes(ycbcr, rgb, 3, 3, "ycbcr_to_rgb");
  const int w = ycbcr.width();
  for (int y = row_begin; y < row_end; ++y) {
    const std::uint8_t* in = ycbcr.row(y);
    std::uint8_t* out = rgb.row(y);
    for (int x = 0; x < w; ++x) {
      const int yy = in[x * 3 + 0];
      const int cb = in[x * 3 + 1] - 128;
      const int cr = in[x * 3 + 2] - 128;
      const int r = yy + ((91881 * cr + 32768) >> 16);
      const int g = yy - ((22554 * cb + 46802 * cr + 32768) >> 16);
      const int b = yy + ((116130 * cb + 32768) >> 16);
      out[x * 3 + 0] = clamp8(r);
      out[x * 3 + 1] = clamp8(g);
      out[x * 3 + 2] = clamp8(b);
    }
  }
}

void rgb_to_cmyk(const Image& rgb, Image& cmyk) {
  rgb_to_cmyk_rows(rgb, cmyk, 0, rgb.height());
}
void rgb_to_ycbcr(const Image& rgb, Image& ycbcr) {
  rgb_to_ycbcr_rows(rgb, ycbcr, 0, rgb.height());
}
void ycbcr_to_rgb(const Image& ycbcr, Image& rgb) {
  ycbcr_to_rgb_rows(ycbcr, rgb, 0, ycbcr.height());
}

} // namespace img
