#include "img/rotate.hpp"

#include <cmath>
#include <stdexcept>

namespace img {

RotateSpec RotateSpec::degrees(double deg) {
  RotateSpec s;
  s.angle_rad = deg * 3.14159265358979323846 / 180.0;
  return s;
}

void rotate_rows(const Image& src, Image& dst, const RotateSpec& spec,
                 int row_begin, int row_end) {
  if (src.width() != dst.width() || src.height() != dst.height() ||
      src.channels() != dst.channels()) {
    throw std::invalid_argument("rotate_rows: src/dst shape mismatch");
  }
  const int w = src.width();
  const int h = src.height();
  const int ch = src.channels();
  const double cx = 0.5 * (w - 1);
  const double cy = 0.5 * (h - 1);
  // Inverse mapping: rotate destination coordinates by -angle.
  const double c = std::cos(spec.angle_rad);
  const double s = std::sin(spec.angle_rad);

  for (int y = row_begin; y < row_end; ++y) {
    std::uint8_t* out = dst.row(y);
    const double dy = y - cy;
    for (int x = 0; x < w; ++x) {
      const double dx = x - cx;
      const double sx = c * dx + s * dy + cx;
      const double sy = -s * dx + c * dy + cy;

      const int x0 = static_cast<int>(std::floor(sx));
      const int y0 = static_cast<int>(std::floor(sy));
      if (x0 < -1 || y0 < -1 || x0 >= w || y0 >= h) {
        for (int k = 0; k < ch; ++k) out[x * ch + k] = 0;
        continue;
      }
      const double fx = sx - x0;
      const double fy = sy - y0;
      const int x1 = x0 + 1;
      const int y1 = y0 + 1;

      for (int k = 0; k < ch; ++k) {
        auto sample = [&](int xx, int yy) -> double {
          if (xx < 0 || yy < 0 || xx >= w || yy >= h) return 0.0;
          return src.at(xx, yy, k);
        };
        const double v = (1 - fx) * (1 - fy) * sample(x0, y0) +
                         fx * (1 - fy) * sample(x1, y0) +
                         (1 - fx) * fy * sample(x0, y1) +
                         fx * fy * sample(x1, y1);
        const int q = static_cast<int>(v + 0.5);
        out[x * ch + k] = static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
      }
    }
  }
}

void rotate(const Image& src, Image& dst, const RotateSpec& spec) {
  rotate_rows(src, dst, spec, 0, src.height());
}

} // namespace img
