// ppm.hpp — NetPBM image I/O (binary PPM/P6 for 3-channel, PGM/P5 for
// 1-channel), used by the examples to emit inspectable output.
#pragma once

#include <string>

#include "img/image.hpp"

namespace img {

/// Writes a 1-channel image as P5 or a 3-channel image as P6.
/// Throws std::runtime_error on I/O failure or unsupported channel count.
void write_pnm(const Image& image, const std::string& path);

/// Reads a P5 or P6 file.  Throws std::runtime_error on parse failure.
Image read_pnm(const std::string& path);

} // namespace img
