// image.hpp — 8-bit interleaved raster images.
//
// The substrate for the `rotate`, `rgbcmy`, `rot-cc`, and `ray-rot`
// benchmarks: a minimal image container (1, 3, or 4 interleaved channels)
// with row-major uint8 storage, plus comparison helpers used by the
// equivalence tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace img {

class Image {
 public:
  Image() = default;

  /// Creates a width×height image with `channels` interleaved 8-bit
  /// channels, zero-initialized.
  Image(int width, int height, int channels);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Bytes per row (no padding: width * channels).
  [[nodiscard]] std::size_t stride() const noexcept {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(channels_);
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept { return data_.size(); }

  [[nodiscard]] std::uint8_t* data() noexcept { return data_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::uint8_t* row(int y) noexcept { return data() + stride() * static_cast<std::size_t>(y); }
  [[nodiscard]] const std::uint8_t* row(int y) const noexcept {
    return data() + stride() * static_cast<std::size_t>(y);
  }

  /// Channel `c` of pixel (x, y); no bounds checking.
  [[nodiscard]] std::uint8_t& at(int x, int y, int c = 0) noexcept {
    return data_[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(x)) *
                     static_cast<std::size_t>(channels_) +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint8_t at(int x, int y, int c = 0) const noexcept {
    return data_[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(x)) *
                     static_cast<std::size_t>(channels_) +
                 static_cast<std::size_t>(c)];
  }

  void fill(std::uint8_t value);

  friend bool operator==(const Image& a, const Image& b);

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Largest absolute per-channel difference between two same-shape images.
/// Returns 256 when shapes differ.
int max_abs_diff(const Image& a, const Image& b);

/// Fraction of bytes that differ by more than `tolerance` (0 when identical).
double mismatch_fraction(const Image& a, const Image& b, int tolerance = 0);

} // namespace img
