#include "img/synth.hpp"

namespace img {

namespace {

/// xorshift32 — tiny deterministic PRNG for texture noise.
std::uint32_t xorshift(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

} // namespace

Image make_test_rgb(int width, int height, std::uint32_t seed) {
  Image im(width, height, 3);
  std::uint32_t rng = seed * 2654435761u + 1u;
  const int cx = width / 3;
  const int cy = height / 3;
  const int r2 = (width / 4) * (width / 4);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* row = im.row(y);
    for (int x = 0; x < width; ++x) {
      const int gradient = (x * 255 / (width > 1 ? width - 1 : 1) +
                            y * 255 / (height > 1 ? height - 1 : 1)) /
                           2;
      const int dx = x - cx;
      const int dy = y - cy;
      const bool in_circle = dx * dx + dy * dy < r2;
      const int noise = static_cast<int>(xorshift(rng) & 31u);
      row[x * 3 + 0] = static_cast<std::uint8_t>((gradient + noise) & 0xFF);
      row[x * 3 + 1] = static_cast<std::uint8_t>(in_circle ? 220 : gradient / 2);
      row[x * 3 + 2] = static_cast<std::uint8_t>(255 - gradient);
    }
  }
  return im;
}

Image make_test_gray(int width, int height, std::uint32_t seed) {
  const Image rgb = make_test_rgb(width, height, seed);
  Image gray(width, height, 1);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int v = (rgb.at(x, y, 0) * 299 + rgb.at(x, y, 1) * 587 +
                     rgb.at(x, y, 2) * 114) /
                    1000;
      gray.at(x, y) = static_cast<std::uint8_t>(v);
    }
  }
  return gray;
}

} // namespace img
