#include "img/image.hpp"

#include <cstdlib>
#include <stdexcept>

namespace img {

Image::Image(int width, int height, int channels)
    : width_(width), height_(height), channels_(channels) {
  if (width < 0 || height < 0 || channels < 1 || channels > 4) {
    throw std::invalid_argument("Image: invalid dimensions");
  }
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                   static_cast<std::size_t>(channels),
               0);
}

void Image::fill(std::uint8_t value) {
  for (auto& b : data_) b = value;
}

bool operator==(const Image& a, const Image& b) {
  return a.width_ == b.width_ && a.height_ == b.height_ &&
         a.channels_ == b.channels_ && a.data_ == b.data_;
}

int max_abs_diff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.channels() != b.channels()) {
    return 256;
  }
  int worst = 0;
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  for (std::size_t i = 0; i < a.size_bytes(); ++i) {
    const int d = std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i]));
    if (d > worst) worst = d;
  }
  return worst;
}

double mismatch_fraction(const Image& a, const Image& b, int tolerance) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.channels() != b.channels() || a.size_bytes() == 0) {
    return 1.0;
  }
  std::size_t bad = 0;
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  for (std::size_t i = 0; i < a.size_bytes(); ++i) {
    if (std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])) > tolerance)
      ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(a.size_bytes());
}

} // namespace img
