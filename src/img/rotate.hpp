// rotate.hpp — arbitrary-angle image rotation (the `rotate` benchmark).
//
// Rotation by inverse mapping with bilinear interpolation: every destination
// pixel samples the source at the back-rotated position.  The kernel is
// exposed as a *row-range* function so the sequential, Pthreads, and OmpSs
// variants all share it and differ only in how they distribute rows.
#pragma once

#include "img/image.hpp"

namespace img {

/// Rotation parameters shared by all variants.
struct RotateSpec {
  double angle_rad = 0.0; ///< counter-clockwise rotation angle
  /// Source-center-to-dest-center mapping; dest has the same size as source
  /// (corners that leave the frame are clipped; uncovered pixels are 0).
  static RotateSpec degrees(double deg);
};

/// Rotates rows [row_begin, row_end) of `dst` by sampling `src`.
/// `dst` must be pre-allocated with the same shape as `src`.
void rotate_rows(const Image& src, Image& dst, const RotateSpec& spec,
                 int row_begin, int row_end);

/// Convenience: whole-image sequential rotation.
void rotate(const Image& src, Image& dst, const RotateSpec& spec);

} // namespace img
