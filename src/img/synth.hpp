// synth.hpp — deterministic synthetic test images.
//
// The paper's image benchmarks ran on photographic inputs we do not ship;
// these generators produce inputs with comparable characteristics (smooth
// gradients, hard edges, texture) so the kernels exercise the same code
// paths.  Deterministic for a given (width, height, seed).
#pragma once

#include <cstdint>

#include "img/image.hpp"

namespace img {

/// 3-channel image: diagonal gradients + circles + pseudo-random texture.
Image make_test_rgb(int width, int height, std::uint32_t seed = 1);

/// 1-channel variant.
Image make_test_gray(int width, int height, std::uint32_t seed = 1);

} // namespace img
