#include "img/ppm.hpp"

#include <fstream>
#include <stdexcept>

namespace img {

void write_pnm(const Image& image, const std::string& path) {
  const char* magic = nullptr;
  if (image.channels() == 1) {
    magic = "P5";
  } else if (image.channels() == 3) {
    magic = "P6";
  } else {
    throw std::runtime_error("write_pnm: only 1- or 3-channel images");
  }
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_pnm: cannot open " + path);
  f << magic << '\n' << image.width() << ' ' << image.height() << "\n255\n";
  f.write(reinterpret_cast<const char*>(image.data()),
          static_cast<std::streamsize>(image.size_bytes()));
  if (!f) throw std::runtime_error("write_pnm: write failed for " + path);
}

namespace {

int read_token(std::istream& in) {
  // Skips whitespace and '#' comments, then reads one integer.
  for (;;) {
    int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      break;
    }
  }
  int v = -1;
  in >> v;
  if (!in) throw std::runtime_error("read_pnm: malformed header");
  return v;
}

} // namespace

Image read_pnm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_pnm: cannot open " + path);
  std::string magic;
  f >> magic;
  int channels = 0;
  if (magic == "P5") {
    channels = 1;
  } else if (magic == "P6") {
    channels = 3;
  } else {
    throw std::runtime_error("read_pnm: unsupported magic " + magic);
  }
  const int w = read_token(f);
  const int h = read_token(f);
  const int maxval = read_token(f);
  if (maxval != 255) throw std::runtime_error("read_pnm: only maxval 255");
  f.get(); // single whitespace after header
  Image image(w, h, channels);
  f.read(reinterpret_cast<char*>(image.data()),
         static_cast<std::streamsize>(image.size_bytes()));
  if (!f) throw std::runtime_error("read_pnm: truncated pixel data");
  return image;
}

} // namespace img
