// img.hpp — umbrella header for the image substrate.
#pragma once

#include "img/color.hpp"
#include "img/image.hpp"
#include "img/ppm.hpp"
#include "img/rotate.hpp"
#include "img/synth.hpp"
