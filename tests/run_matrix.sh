#!/usr/bin/env bash
# run_matrix.sh — env-matrix test harness for the runtime's knob space.
#
# The scheduler grew knobs faster than any single test run covers them:
# policy × idle behaviour × NUMA mode × topology all interact (a parked
# worker is what arms the pressure feedback, a fake multi-node topology is
# what arms placement, ...).  This harness reruns the three suites that
# drive the runtime hardest across the full cross-product, so knob
# *interactions* get coverage instead of only the defaults:
#
#   OSS_SCHEDULER ∈ {fifo, locality, wsteal}
#   OSS_IDLE      ∈ {park, yield}
#   OSS_NUMA      ∈ {bind, off}
#   OSS_TOPOLOGY  ∈ {flat, 2x2}
#
# = 24 environments × 3 test binaries.  The suites read the environment
# through tests/ompss/env_config.hpp; tests that require a specific knob
# value (e.g. multi-node assertions) force it and are exercised for "does
# the forced path survive this environment" instead.
#
# A second, dedicated phase sweeps the dependency-domain sharding axis
# (OSS_DEP_SHARDS ∈ {1, 8} × OSS_POOL ∈ {on, off} × OSS_SCHEDULER) over
# the concurrent-spawner stress suite, the multi-stream decode-service
# suite, and the graph-replay suite — the two structurally different
# registration paths (single-lock fallback vs sorted multi-lock), with
# task/node pooling both armed and disarmed, under every scheduler,
# without doubling the full cross product.  The service suite rides this
# phase because its per-stream checksum parity is exactly the property the
# scheduler × shards × pool axes could break; the replay suite because its
# edge-multiset parity contract is *defined* over the shards × pool axis
# (docs/replay.md).
#
# Usage:
#   tests/run_matrix.sh [build-dir]          (default: ./build)
#
# Overrides (space-separated lists):
#   MATRIX_BINARIES MATRIX_SCHEDULERS MATRIX_IDLES MATRIX_NUMAS
#   MATRIX_TOPOLOGIES MATRIX_DEP_SHARDS MATRIX_POOLS
#   MATRIX_SHARD_BINARIES MATRIX_GTEST_ARGS
set -u

BUILD_DIR=${1:-build}
BINARIES=${MATRIX_BINARIES:-"ompss_test_stress ompss_test_affinity ompss_test_runtime_semantics"}
SCHEDULERS=${MATRIX_SCHEDULERS:-"fifo locality wsteal"}
IDLES=${MATRIX_IDLES:-"park yield"}
NUMAS=${MATRIX_NUMAS:-"bind off"}
TOPOLOGIES=${MATRIX_TOPOLOGIES:-"flat 2x2"}
DEP_SHARDS=${MATRIX_DEP_SHARDS:-"1 8"}
POOLS=${MATRIX_POOLS:-"on off"}
SHARD_BINARIES=${MATRIX_SHARD_BINARIES:-"ompss_test_concurrent_spawn ompss_test_replay service_test_service"}
GTEST_ARGS=${MATRIX_GTEST_ARGS:-"--gtest_brief=1"}

for bin in $BINARIES $SHARD_BINARIES; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "run_matrix: missing binary $BUILD_DIR/$bin (build first)" >&2
    exit 2
  fi
done

log=$(mktemp)
trap 'rm -f "$log"' EXIT

runs=0
failures=0
for sched in $SCHEDULERS; do
  for idle in $IDLES; do
    for numa in $NUMAS; do
      for topo in $TOPOLOGIES; do
        combo="OSS_SCHEDULER=$sched OSS_IDLE=$idle OSS_NUMA=$numa OSS_TOPOLOGY=$topo"
        for bin in $BINARIES; do
          runs=$((runs + 1))
          # The suites read the whole OSS_* family via from_env; unset the
          # knobs the matrix does not control so ambient shell exports
          # cannot skew (or break) a supposedly-controlled environment.
          if env -u OSS_NUM_THREADS -u OSS_BARRIER -u OSS_SPIN_ROUNDS \
                 -u OSS_STEAL_TRIES -u OSS_PIN -u OSS_PRESSURE \
                 -u OSS_RECORD_GRAPH -u OSS_TRACE -u OSS_DEP_SHARDS \
                 -u OSS_TRACE_BUF -u OSS_TRACE_OUT -u OSS_STATS \
                 -u OSS_STATS_EVERY_MS -u OSS_POOL \
                 -u OSS_PROF -u OSS_PROF_EVERY_MS -u OSS_WATCHDOG \
                 -u OSS_SERVICE_MAX_STREAMS -u OSS_SERVICE_WINDOW \
                 OSS_SCHEDULER="$sched" OSS_IDLE="$idle" OSS_NUMA="$numa" \
                 OSS_TOPOLOGY="$topo" "$BUILD_DIR/$bin" $GTEST_ARGS \
                 >"$log" 2>&1; then
            printf 'ok   %-38s %s\n' "$bin" "$combo"
          else
            failures=$((failures + 1))
            printf 'FAIL %-38s %s\n' "$bin" "$combo"
            sed 's/^/     | /' "$log"
          fi
        done
      done
    done
  done
done

# Phase 2: dependency-shard × pool axis.  OSS_DEP_SHARDS=1 is the
# single-lock fallback, 8 the sharded default; OSS_POOL=on recycles tasks
# and map nodes, off is the plain-allocator path.  Every combination must
# survive every scheduler with concurrent spawners hammering the domain.
for shards in $DEP_SHARDS; do
  for pool in $POOLS; do
    for sched in $SCHEDULERS; do
      combo="OSS_DEP_SHARDS=$shards OSS_POOL=$pool OSS_SCHEDULER=$sched"
      for bin in $SHARD_BINARIES; do
        runs=$((runs + 1))
        if env -u OSS_NUM_THREADS -u OSS_BARRIER -u OSS_SPIN_ROUNDS \
               -u OSS_STEAL_TRIES -u OSS_PIN -u OSS_PRESSURE \
               -u OSS_RECORD_GRAPH -u OSS_TRACE -u OSS_IDLE -u OSS_NUMA \
               -u OSS_TOPOLOGY -u OSS_TRACE_BUF -u OSS_TRACE_OUT \
               -u OSS_STATS -u OSS_STATS_EVERY_MS \
               -u OSS_PROF -u OSS_PROF_EVERY_MS -u OSS_WATCHDOG \
               -u OSS_SERVICE_MAX_STREAMS -u OSS_SERVICE_WINDOW \
               OSS_DEP_SHARDS="$shards" OSS_POOL="$pool" \
               OSS_SCHEDULER="$sched" \
               "$BUILD_DIR/$bin" $GTEST_ARGS >"$log" 2>&1; then
          printf 'ok   %-38s %s\n' "$bin" "$combo"
        else
          failures=$((failures + 1))
          printf 'FAIL %-38s %s\n' "$bin" "$combo"
          sed 's/^/     | /' "$log"
        fi
      done
    done
  done
done

echo "run_matrix: $runs runs, $failures failures"
[ "$failures" -eq 0 ]
