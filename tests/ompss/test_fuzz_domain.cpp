// Fuzz tests for the interval-map dependency domain.
//
// 1. Oracle check: random byte-range accesses are registered directly on a
//    DepDomain; a per-byte brute-force simulation derives every required
//    ordering (RAW/WAR/WAW at byte granularity); each required pair must be
//    covered by a *path* in the edge graph the domain built (direct edges
//    may legitimately be elided when transitively implied).
//
// 2. End-to-end check: the same random programs run on a real Runtime with
//    byte-level bodies; the final arena must match the serial execution
//    exactly (serial equivalence at byte granularity, stressing interval
//    splitting under partial overlaps).
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace {

struct FuzzAccess {
  std::size_t begin;
  std::size_t end;
  oss::Mode mode;
};

struct FuzzTaskSpec {
  std::vector<FuzzAccess> accesses;
};

std::vector<FuzzTaskSpec> make_program(std::uint32_t seed, std::size_t arena,
                                       int tasks) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pos(0, arena - 1);
  std::uniform_int_distribution<int> len(1, static_cast<int>(arena / 4));
  std::uniform_int_distribution<int> mode(0, 2);
  std::uniform_int_distribution<int> naccess(1, 3);

  std::vector<FuzzTaskSpec> prog(static_cast<std::size_t>(tasks));
  for (auto& t : prog) {
    const int n = naccess(rng);
    for (int a = 0; a < n; ++a) {
      const std::size_t b = pos(rng);
      const std::size_t e = std::min(arena, b + static_cast<std::size_t>(len(rng)));
      if (b >= e) continue;
      t.accesses.push_back(
          {b, e, static_cast<oss::Mode>(mode(rng))}); // In/Out/InOut
    }
  }
  return prog;
}

/// Brute-force per-byte hazard derivation.
std::vector<std::pair<std::size_t, std::size_t>> required_orderings(
    const std::vector<FuzzTaskSpec>& prog, std::size_t arena) {
  struct ByteHistory {
    int last_writer = -1;
    std::vector<int> readers;
  };
  std::vector<ByteHistory> hist(arena);
  std::vector<std::pair<std::size_t, std::size_t>> req;

  for (std::size_t i = 0; i < prog.size(); ++i) {
    // First all reads, then all writes (a task's own accesses don't
    // self-conflict).
    for (const auto& a : prog[i].accesses) {
      if (a.mode == oss::Mode::Out) continue;
      for (std::size_t b = a.begin; b < a.end; ++b) {
        if (hist[b].last_writer >= 0 &&
            static_cast<std::size_t>(hist[b].last_writer) != i) {
          req.emplace_back(static_cast<std::size_t>(hist[b].last_writer), i);
        }
      }
    }
    for (const auto& a : prog[i].accesses) {
      if (a.mode == oss::Mode::In) continue;
      for (std::size_t b = a.begin; b < a.end; ++b) {
        if (hist[b].last_writer >= 0 &&
            static_cast<std::size_t>(hist[b].last_writer) != i) {
          req.emplace_back(static_cast<std::size_t>(hist[b].last_writer), i);
        }
        for (int r : hist[b].readers) {
          if (static_cast<std::size_t>(r) != i)
            req.emplace_back(static_cast<std::size_t>(r), i);
        }
      }
    }
    // Update history.
    for (const auto& a : prog[i].accesses) {
      if (a.mode == oss::Mode::Out) continue;
      for (std::size_t b = a.begin; b < a.end; ++b)
        hist[b].readers.push_back(static_cast<int>(i));
    }
    for (const auto& a : prog[i].accesses) {
      if (a.mode == oss::Mode::In) continue;
      for (std::size_t b = a.begin; b < a.end; ++b) {
        hist[b].last_writer = static_cast<int>(i);
        hist[b].readers.clear();
      }
    }
  }
  return req;
}

class DomainFuzzTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DomainFuzzTest, EdgeGraphCoversEveryByteLevelHazard) {
  constexpr std::size_t kArena = 48;
  constexpr int kTasks = 60;
  const auto prog = make_program(GetParam(), kArena, kTasks);

  // Register everything on a raw domain (tasks never execute).
  alignas(16) static char arena_storage[kArena];
  oss::DepDomain domain;
  auto ctx = std::make_shared<oss::TaskContext>();
  std::vector<oss::TaskPtr> tasks;
  std::vector<std::vector<std::size_t>> succ(prog.size());

  for (std::size_t i = 0; i < prog.size(); ++i) {
    oss::AccessList acc;
    for (const auto& a : prog[i].accesses) {
      acc.push_back(oss::region(arena_storage + a.begin, a.end - a.begin, a.mode));
    }
    auto t = oss::make_task(i + 1, [] {}, std::move(acc), ctx, "");
    domain.register_task(t, [&](const oss::TaskPtr& from, const oss::TaskPtr& to,
                                oss::DepKind) {
      succ[from->id() - 1].push_back(to->id() - 1);
    });
    tasks.push_back(std::move(t));
  }

  // Reachability closure (edges always point from lower to higher id).
  std::vector<std::vector<bool>> reach(prog.size(),
                                       std::vector<bool>(prog.size(), false));
  for (std::size_t i = prog.size(); i-- > 0;) {
    for (std::size_t j : succ[i]) {
      reach[i][j] = true;
      for (std::size_t k = 0; k < prog.size(); ++k) {
        if (reach[j][k]) reach[i][k] = true;
      }
    }
  }

  for (const auto& [from, to] : required_orderings(prog, kArena)) {
    EXPECT_TRUE(reach[from][to])
        << "missing ordering " << from << " -> " << to << " (seed "
        << GetParam() << ")";
  }
}

TEST_P(DomainFuzzTest, RuntimeByteLevelSerialEquivalence) {
  constexpr std::size_t kArena = 48;
  constexpr int kTasks = 80;
  const auto prog = make_program(GetParam() + 7777, kArena, kTasks);

  auto run_body = [&](std::vector<std::uint8_t>& mem, std::size_t task_idx) {
    // Deterministic function of everything the task reads.
    std::uint32_t h = static_cast<std::uint32_t>(task_idx) * 2654435761u + 1u;
    for (const auto& a : prog[task_idx].accesses) {
      if (a.mode == oss::Mode::Out) continue;
      for (std::size_t b = a.begin; b < a.end; ++b) {
        h = h * 31u + mem[b];
      }
    }
    for (const auto& a : prog[task_idx].accesses) {
      if (a.mode == oss::Mode::In) continue;
      for (std::size_t b = a.begin; b < a.end; ++b) {
        mem[b] = static_cast<std::uint8_t>(h >> (b % 24));
      }
    }
  };

  // Serial reference.
  std::vector<std::uint8_t> expected(kArena, 1);
  for (std::size_t i = 0; i < prog.size(); ++i) run_body(expected, i);

  // Parallel runs at several thread counts.
  for (std::size_t threads : {2u, 4u}) {
    std::vector<std::uint8_t> mem(kArena, 1);
    oss::Runtime rt(threads);
    for (std::size_t i = 0; i < prog.size(); ++i) {
      oss::AccessList acc;
      for (const auto& a : prog[i].accesses) {
        acc.push_back(oss::region(mem.data() + a.begin, a.end - a.begin, a.mode));
      }
      rt.spawn(std::move(acc), [&run_body, &mem, i] { run_body(mem, i); });
    }
    rt.taskwait();
    EXPECT_EQ(mem, expected) << "seed " << GetParam() << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

} // namespace
