// Chase–Lev deque tests: single-thread semantics, growth, owner/thief
// interleaving stress (run under TSan in CI), and a policy-parity churn test
// asserting every scheduler drains a 10k-task workload with nothing
// stranded.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace {

oss::TaskPtr make_task(std::uint64_t id) {
  static auto ctx = std::make_shared<oss::TaskContext>();
  return oss::make_task(id, [] {}, oss::AccessList{}, ctx, "");
}

// --- raw deque semantics ---------------------------------------------------

TEST(ChaseLev, OwnerTakesLifoThievesStealFifo) {
  oss::ChaseLevDeque<int*> dq;
  int a = 1, b = 2, c = 3;
  dq.push(&a);
  dq.push(&b);
  dq.push(&c);
  EXPECT_EQ(dq.steal(), &a); // cold end: oldest
  EXPECT_EQ(dq.take(), &c);  // hot end: newest
  EXPECT_EQ(dq.take(), &b);
  EXPECT_EQ(dq.take(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLev, GrowsBeyondInitialCapacity) {
  oss::ChaseLevDeque<std::size_t*> dq(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::size_t> vals(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    vals[i] = i;
    dq.push(&vals[i]);
  }
  EXPECT_EQ(dq.size(), kN);
  // Everything must come back exactly once, LIFO from the owner end.
  for (std::size_t i = kN; i-- > 0;) {
    std::size_t* p = dq.take();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
  EXPECT_EQ(dq.take(), nullptr);
}

TEST(ChaseLevTaskDeque, AnchorsAndReleasesTaskReferences) {
  oss::ChaseLevTaskDeque dq;
  oss::TaskPtr t = make_task(7);
  const auto before = t.use_count();
  dq.push(t); // copy anchored inside the task
  oss::TaskPtr back = dq.take();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->id(), 7u);
  back.reset();
  EXPECT_EQ(t.use_count(), before); // no leaked queue reference
}

TEST(ChaseLevTaskDeque, DestructorReleasesQueuedTasks) {
  oss::TaskPtr t = make_task(8);
  {
    oss::ChaseLevTaskDeque dq;
    dq.push(t);
  } // deque destroyed with the task still inside
  EXPECT_EQ(t.use_count(), 1); // our reference is the only one left
}

// --- owner/thief interleaving stress (the TSan target) ---------------------

template <class Deque>
void owner_thief_stress() {
  constexpr std::size_t kTasks = 20000;
  constexpr int kThieves = 3;

  Deque dq;
  std::vector<std::atomic<int>> seen(kTasks);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> drained{0};
  std::atomic<bool> done_pushing{false};

  auto consume = [&](oss::TaskPtr t) {
    seen[static_cast<std::size_t>(t->id())].fetch_add(1,
                                                      std::memory_order_relaxed);
    drained.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (drained.load(std::memory_order_relaxed) < kTasks) {
        if (oss::TaskPtr t = dq.steal()) {
          consume(std::move(t));
        } else if (done_pushing.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: pushes everything, interleaving takes so both ends stay busy.
  for (std::size_t i = 0; i < kTasks; ++i) {
    dq.push(make_task(i));
    if ((i & 3) == 0) {
      if (oss::TaskPtr t = dq.take()) consume(std::move(t));
    }
  }
  done_pushing.store(true, std::memory_order_release);
  while (drained.load(std::memory_order_relaxed) < kTasks) {
    if (oss::TaskPtr t = dq.take()) consume(std::move(t));
  }
  for (auto& th : thieves) th.join();

  EXPECT_EQ(drained.load(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i << " lost or duplicated";
  }
  EXPECT_EQ(dq.take(), nullptr);
}

TEST(ChaseLevTaskDeque, OwnerThiefStress) {
  owner_thief_stress<oss::ChaseLevTaskDeque>();
}

TEST(MutexTaskDeque, OwnerThiefStressParity) {
  owner_thief_stress<oss::MutexTaskDeque>();
}

// --- sharded global queue --------------------------------------------------

TEST(ShardedTaskQueue, SingleShardIsStrictFifo) {
  oss::ShardedTaskQueue q(1);
  for (std::uint64_t i = 0; i < 100; ++i) q.push(make_task(i));
  EXPECT_EQ(q.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    oss::TaskPtr t = q.pop();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->id(), i);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(ShardedTaskQueue, OverflowBeyondRingCapacityLosesNothing) {
  oss::ShardedTaskQueue q(2, /*ring_capacity=*/16);
  constexpr std::uint64_t kN = 5000;
  std::vector<int> seen(kN, 0);
  for (std::uint64_t i = 0; i < kN; ++i) q.push(make_task(i));
  while (oss::TaskPtr t = q.pop()) seen[t->id()]++;
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(ShardedTaskQueue, ConcurrentProducersConsumersDrainExactlyOnce) {
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  oss::ShardedTaskQueue q(4, /*ring_capacity=*/64);
  std::vector<std::atomic<int>> seen(kPerProducer * kProducers);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> drained{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push(make_task(static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (drained.load(std::memory_order_relaxed) <
             kPerProducer * kProducers) {
        if (oss::TaskPtr t = q.pop()) {
          seen[t->id()].fetch_add(1, std::memory_order_relaxed);
          drained.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i;
  }
}

// --- policy parity under churn ---------------------------------------------

class PolicyChurnTest : public ::testing::TestWithParam<oss::SchedulerPolicy> {
};

TEST_P(PolicyChurnTest, TenThousandTaskChurnLeavesNothingStranded) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.scheduler = GetParam();
  oss::Runtime rt(cfg);

  constexpr int kTasks = 10000;
  constexpr int kChains = 8;
  std::atomic<int> hits{0};
  std::vector<long> tokens(kChains, 0);
  std::vector<long> expected(kChains, 0);
  for (int i = 0; i < kTasks; ++i) {
    if (i % 4 == 0) {
      // A quarter of the load forms dependent chains (exercises
      // enqueue_unblocked placement), the rest is independent churn.
      const auto chain = static_cast<std::size_t>(i / 4 % kChains);
      ++expected[chain];
      long* slot = &tokens[chain];
      rt.spawn({oss::inout(*slot)}, [&hits, slot] {
        ++*slot;
        hits.fetch_add(1, std::memory_order_relaxed);
      });
    } else {
      rt.spawn({}, [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  rt.taskwait();

  EXPECT_EQ(hits.load(), kTasks);
  EXPECT_EQ(rt.pending_tasks(), 0u);
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(tokens[c], expected[c]) << "chain " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyChurnTest,
                         ::testing::Values(oss::SchedulerPolicy::Fifo,
                                           oss::SchedulerPolicy::Locality,
                                           oss::SchedulerPolicy::WorkStealing),
                         [](const auto& info) {
                           return std::string(oss::to_string(info.param));
                         });

} // namespace
