// Property-based tests: randomized task graphs must execute with
// serial-equivalent results and respect every RAW/WAR/WAW hazard.
//
// Each random "program" has V variables and T tasks; every task reads a
// random subset and writes a random subset.  Task bodies compute a value
// that depends on everything they read, so ANY hazard violation changes the
// final state with overwhelming probability.  The expected state is computed
// by running the same program sequentially in spawn order — the definition
// of serial equivalence the OmpSs model guarantees.
//
// A second check records per-task start/end sequence numbers and verifies
// them against an independent reimplementation of the hazard rules
// (last-writer + readers-since-write per variable).
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

namespace {

struct ProgramSpec {
  struct TaskSpec {
    std::vector<int> reads;
    std::vector<int> writes; // disjoint from reads; "inouts" appear in both
    std::vector<int> inouts;
  };
  int num_vars = 0;
  std::vector<TaskSpec> tasks;
};

ProgramSpec make_random_program(std::uint32_t seed, int num_vars, int num_tasks) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> count_dist(0, 3);
  std::uniform_int_distribution<int> mode_dist(0, 2);

  ProgramSpec prog;
  prog.num_vars = num_vars;
  prog.tasks.resize(static_cast<std::size_t>(num_tasks));
  for (auto& t : prog.tasks) {
    const int n = 1 + count_dist(rng);
    std::vector<bool> used(static_cast<std::size_t>(num_vars), false);
    for (int i = 0; i < n; ++i) {
      const int v = var_dist(rng);
      if (used[static_cast<std::size_t>(v)]) continue;
      used[static_cast<std::size_t>(v)] = true;
      switch (mode_dist(rng)) {
        case 0: t.reads.push_back(v); break;
        case 1: t.writes.push_back(v); break;
        default: t.inouts.push_back(v); break;
      }
    }
  }
  return prog;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// The task body computation, shared by parallel and serial execution.
std::uint64_t task_value(std::size_t task_idx, const ProgramSpec::TaskSpec& spec,
                         const std::vector<std::uint64_t>& vars) {
  std::uint64_t h = 0x517cc1b727220a95ull + task_idx;
  for (int v : spec.reads) h = mix(h, vars[static_cast<std::size_t>(v)]);
  for (int v : spec.inouts) h = mix(h, vars[static_cast<std::size_t>(v)]);
  return h;
}

std::vector<std::uint64_t> run_serial(const ProgramSpec& prog) {
  std::vector<std::uint64_t> vars(static_cast<std::size_t>(prog.num_vars), 1);
  for (std::size_t i = 0; i < prog.tasks.size(); ++i) {
    const auto& t = prog.tasks[i];
    const std::uint64_t val = task_value(i, t, vars);
    for (int v : t.writes) vars[static_cast<std::size_t>(v)] = val;
    for (int v : t.inouts) vars[static_cast<std::size_t>(v)] = val;
  }
  return vars;
}

using Param = std::tuple<std::uint32_t /*seed*/, std::size_t /*threads*/,
                         oss::SchedulerPolicy>;

class RandomDagTest : public ::testing::TestWithParam<Param> {};

TEST_P(RandomDagTest, SerialEquivalence) {
  const auto [seed, threads, policy] = GetParam();
  const ProgramSpec prog = make_random_program(seed, 12, 150);
  const std::vector<std::uint64_t> expected = run_serial(prog);

  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.scheduler = policy;
  oss::Runtime rt(cfg);

  std::vector<std::uint64_t> vars(static_cast<std::size_t>(prog.num_vars), 1);
  for (std::size_t i = 0; i < prog.tasks.size(); ++i) {
    const auto& t = prog.tasks[i];
    oss::AccessList acc;
    for (int v : t.reads) acc.push_back(oss::in(vars[static_cast<std::size_t>(v)]));
    for (int v : t.writes) acc.push_back(oss::out(vars[static_cast<std::size_t>(v)]));
    for (int v : t.inouts) acc.push_back(oss::inout(vars[static_cast<std::size_t>(v)]));
    rt.spawn(std::move(acc), [&vars, &t, i] {
      const std::uint64_t val = task_value(i, t, vars);
      for (int v : t.writes) vars[static_cast<std::size_t>(v)] = val;
      for (int v : t.inouts) vars[static_cast<std::size_t>(v)] = val;
    });
  }
  rt.taskwait();

  EXPECT_EQ(vars, expected) << "seed=" << seed << " threads=" << threads;
}

TEST_P(RandomDagTest, HazardOrderingRespected) {
  const auto [seed, threads, policy] = GetParam();
  const ProgramSpec prog = make_random_program(seed + 1000, 8, 100);

  // Independent reimplementation of the hazard rules to derive required
  // orderings (producer must end before consumer starts).
  std::vector<std::pair<std::size_t, std::size_t>> required;
  {
    struct VarHistory {
      int last_writer = -1;
      std::vector<int> readers;
    };
    std::vector<VarHistory> hist(static_cast<std::size_t>(prog.num_vars));
    for (std::size_t i = 0; i < prog.tasks.size(); ++i) {
      const auto& t = prog.tasks[i];
      auto read = [&](int v) {
        auto& h = hist[static_cast<std::size_t>(v)];
        if (h.last_writer >= 0)
          required.emplace_back(static_cast<std::size_t>(h.last_writer), i);
        h.readers.push_back(static_cast<int>(i));
      };
      auto write = [&](int v) {
        auto& h = hist[static_cast<std::size_t>(v)];
        if (h.last_writer >= 0)
          required.emplace_back(static_cast<std::size_t>(h.last_writer), i);
        for (int r : h.readers) {
          if (static_cast<std::size_t>(r) != i)
            required.emplace_back(static_cast<std::size_t>(r), i);
        }
        h.last_writer = static_cast<int>(i);
        h.readers.clear();
      };
      for (int v : t.reads) read(v);
      for (int v : t.inouts) { read(v); }
      for (int v : t.writes) write(v);
      for (int v : t.inouts) { write(v); }
    }
  }

  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.scheduler = policy;
  oss::Runtime rt(cfg);

  std::atomic<std::uint64_t> clock{0};
  std::vector<std::uint64_t> start_seq(prog.tasks.size(), 0);
  std::vector<std::uint64_t> end_seq(prog.tasks.size(), 0);
  std::vector<std::uint64_t> vars(static_cast<std::size_t>(prog.num_vars), 1);

  for (std::size_t i = 0; i < prog.tasks.size(); ++i) {
    const auto& t = prog.tasks[i];
    oss::AccessList acc;
    for (int v : t.reads) acc.push_back(oss::in(vars[static_cast<std::size_t>(v)]));
    for (int v : t.writes) acc.push_back(oss::out(vars[static_cast<std::size_t>(v)]));
    for (int v : t.inouts) acc.push_back(oss::inout(vars[static_cast<std::size_t>(v)]));
    rt.spawn(std::move(acc), [&, i] {
      start_seq[i] = ++clock;
      end_seq[i] = ++clock;
    });
  }
  rt.taskwait();

  for (const auto& [from, to] : required) {
    EXPECT_LT(end_seq[from], start_seq[to])
        << "hazard " << from << " -> " << to << " violated (seed=" << seed
        << ", threads=" << threads << ")";
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [seed, threads, policy] = info.param;
  return "seed" + std::to_string(seed) + "_t" + std::to_string(threads) + "_" +
         oss::to_string(policy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDagTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Values(oss::SchedulerPolicy::Fifo,
                                         oss::SchedulerPolicy::Locality,
                                         oss::SchedulerPolicy::WorkStealing)),
    param_name);

} // namespace
