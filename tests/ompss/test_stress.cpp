// Stress and lifecycle tests: deep nesting, wide nesting, per-context
// dependency scoping, runtime churn, and randomized mixed-mode reductions.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include "env_config.hpp"

#include <atomic>
#include <random>
#include <vector>

namespace {

TEST(Stress, DeepNestedSpawnChain) {
  oss::Runtime rt(oss_test::env_config(2));
  std::atomic<int> depth_reached{0};
  constexpr int kDepth = 50;

  std::function<void(int)> descend = [&](int d) {
    depth_reached = std::max(depth_reached.load(), d);
    if (d >= kDepth) return;
    auto* r = oss::Runtime::current();
    r->spawn({}, [&descend, d] { descend(d + 1); });
    r->taskwait();
  };
  rt.spawn({}, [&] { descend(1); });
  rt.taskwait();
  EXPECT_EQ(depth_reached.load(), kDepth);
}

TEST(Stress, WideNestedFanout) {
  oss::Runtime rt(oss_test::env_config(4));
  std::atomic<int> leaves{0};
  constexpr int kOuter = 16;
  constexpr int kInner = 16;
  for (int i = 0; i < kOuter; ++i) {
    rt.spawn({}, [&] {
      auto* r = oss::Runtime::current();
      for (int j = 0; j < kInner; ++j) {
        r->spawn({}, [&] { leaves++; });
      }
      r->taskwait();
    });
  }
  rt.taskwait();
  EXPECT_EQ(leaves.load(), kOuter * kInner);
}

TEST(Stress, SiblingScopedDependencyDomains) {
  // OmpSs scopes dependencies to siblings of one context: children of
  // *different* parents are NOT ordered even when they declare the same
  // region.  (That is why hidden cross-context state needs criticals.)
  oss::Runtime rt(oss_test::env_config(4));
  std::atomic<int> concurrent_pairs{0};
  std::atomic<int> in_flight{0};
  static int shared_token = 0; // same address declared in both subtrees

  for (int p = 0; p < 2; ++p) {
    rt.spawn({}, [&] {
      auto* r = oss::Runtime::current();
      for (int i = 0; i < 8; ++i) {
        r->spawn({oss::inout(shared_token)}, [&] {
          if (in_flight.fetch_add(1) > 0) concurrent_pairs++;
          for (int j = 0; j < 30000; ++j) { volatile int sink = j; (void)sink; }
          in_flight.fetch_sub(1);
        });
      }
      r->taskwait();
    });
  }
  rt.taskwait();
  // Within each parent the 8 tasks serialize (inout chain); across parents
  // nothing orders them.  We can't assert overlap deterministically on one
  // core, but the run must at least complete without deadlock, and the
  // serialization within each chain is covered by other tests.
  SUCCEED();
}

TEST(Stress, RuntimeChurn) {
  // Create and destroy many runtimes back to back (thread lifecycle).
  for (int round = 0; round < 25; ++round) {
    oss::Runtime rt(oss_test::env_config(3));
    std::atomic<int> hits{0};
    for (int i = 0; i < 20; ++i) rt.spawn({}, [&] { hits++; });
    rt.taskwait();
    ASSERT_EQ(hits.load(), 20) << "round " << round;
  }
}

TEST(Stress, ExceptionStormWithDependencies) {
  oss::Runtime rt(oss_test::env_config(4));
  int token = 0;
  std::atomic<int> executed{0};
  for (int i = 0; i < 100; ++i) {
    rt.spawn({oss::inout(token)}, [&executed, i]() {
      executed++;
      if (i % 7 == 3) throw std::runtime_error("storm");
    });
  }
  EXPECT_THROW(rt.taskwait(), std::runtime_error);
  // Failures must not break the chain: every task still ran.
  EXPECT_EQ(executed.load(), 100);
}

using ModeFuzzParam = std::tuple<std::uint32_t, std::size_t>;

class ModeFuzzTest : public ::testing::TestWithParam<ModeFuzzParam> {};

TEST_P(ModeFuzzTest, MixedModeReductionsSumExactly) {
  const auto [seed, threads] = GetParam();
  std::mt19937 rng(seed);
  constexpr int kCounters = 4;
  constexpr int kTasks = 300;

  // Counters updated via randomly chosen mechanisms; each mechanism is
  // correct for its mode, so the total must always be exact.
  struct Counter {
    long plain = 0;            // inout / commutative updates
    std::atomic<long> atomic{0}; // concurrent updates
  };
  std::vector<Counter> counters(kCounters);
  std::vector<long> expected(kCounters, 0);

  oss::Runtime rt(oss_test::env_config(threads));
  std::uniform_int_distribution<int> which(0, kCounters - 1);
  std::uniform_int_distribution<int> mech(0, 2);
  std::uniform_int_distribution<int> amount(1, 9);

  for (int t = 0; t < kTasks; ++t) {
    const int c = which(rng);
    const long add = amount(rng);
    expected[static_cast<std::size_t>(c)] += add;
    Counter& ctr = counters[static_cast<std::size_t>(c)];
    switch (mech(rng)) {
      case 0:
        rt.spawn({oss::inout(ctr.plain)}, [&ctr, add] { ctr.plain += add; });
        break;
      case 1:
        rt.spawn({oss::commutative(ctr.plain)}, [&ctr, add] { ctr.plain += add; });
        break;
      default:
        rt.spawn({oss::concurrent(ctr.atomic)},
                 [&ctr, add] { ctr.atomic.fetch_add(add); });
        break;
    }
  }
  rt.taskwait();

  for (int c = 0; c < kCounters; ++c) {
    const auto& ctr = counters[static_cast<std::size_t>(c)];
    EXPECT_EQ(ctr.plain + ctr.atomic.load(), expected[static_cast<std::size_t>(c)])
        << "counter " << c << " seed " << seed << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeFuzzTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4})),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

} // namespace
