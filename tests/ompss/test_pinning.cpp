// OSS_PIN worker→CPU pinning and its capability probe.  The contract under
// test: pinning is an optimization that may only ever degrade — a topology
// the process cpu mask cannot cover leaves workers unpinned with a warning,
// never aborts, and the runtime keeps executing tasks; the owning thread
// gets its original mask back at destruction.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "env_config.hpp"

namespace {

oss::RuntimeConfig pin_config(const char* topology) {
  oss::RuntimeConfig cfg = oss_test::forced_topology_config(4, topology);
  cfg.pin = true;
  return cfg;
}

TEST(Pinning, HelpersRoundTrip) {
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> allowed = oss::allowed_cpus();
  ASSERT_FALSE(allowed.empty());
  // Re-pinning to the full allowed set is always legal and a no-op.
  EXPECT_TRUE(oss::pin_current_thread(allowed));
  EXPECT_EQ(oss::allowed_cpus(), allowed);
  // Empty and fully-out-of-range targets fail cleanly instead of throwing.
  EXPECT_FALSE(oss::pin_current_thread({}));
  EXPECT_TRUE(oss::intersect_cpus({1, 2, 3}, {2, 3, 4}) ==
              (std::vector<int>{2, 3}));
  EXPECT_TRUE(oss::intersect_cpus({1, 2}, {}).empty());
}

TEST(Pinning, SingleNodeTopologyDissolves) {
  oss::RuntimeConfig cfg = pin_config("flat");
  oss::Runtime rt(cfg);
  EXPECT_EQ(rt.pinned_workers(), 0u);
  std::atomic<int> hits{0};
  for (int i = 0; i < 16; ++i) rt.task("t").spawn([&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 16);
}

TEST(Pinning, FakeTopologyPinsOnlyCoveredWorkers) {
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> allowed = oss::allowed_cpus();
  ASSERT_FALSE(allowed.empty());
  // A 2x2 fake topology claims cpus 0..3; how many workers the probe can
  // cover depends on this machine's mask.  Workers 0,1 live on node 0
  // (cpus {0,1}), workers 2,3 on node 1 (cpus {2,3}).
  const bool node0_covered = !oss::intersect_cpus({0, 1}, allowed).empty();
  const bool node1_covered = !oss::intersect_cpus({2, 3}, allowed).empty();
  const std::size_t expect =
      (node0_covered ? 2u : 0u) + (node1_covered ? 2u : 0u);

  oss::Runtime rt(pin_config("2x2"));
  EXPECT_EQ(rt.pinned_workers(), expect);
  std::atomic<int> hits{0};
  for (int i = 0; i < 32; ++i) {
    rt.task("t").affinity(i % 2).spawn([&] { hits++; });
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), 32) << "degraded pinning must not lose tasks";
}

TEST(Pinning, RestrictedMaskDegradesToUnpinnedNeverAborts) {
  // The capability-probe acceptance case: shrink the test process's own
  // mask to a single cpu, then ask for pinning on a topology that mostly
  // lies outside it.  Construction must succeed, uncoverable workers stay
  // unpinned (one warning line on stderr), tasks run, and our mask comes
  // back intact.
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> original = oss::allowed_cpus();
  ASSERT_FALSE(original.empty());
  ASSERT_TRUE(oss::pin_current_thread({original.front()}));

  {
    oss::Runtime rt(pin_config("2x8")); // wants cpus 0..15
    // Only node 0 can possibly intersect a one-cpu mask; nodes whose cpu
    // lists miss it stay unpinned.  With cpu0 allowed, workers 0,1 (node 0)
    // pin; with any other single cpu, possibly nobody does.
    EXPECT_LE(rt.pinned_workers(), 2u);
    std::atomic<int> hits{0};
    for (int i = 0; i < 24; ++i) {
      rt.task("t").affinity(i % 2).spawn([&] { hits++; });
    }
    rt.taskwait();
    EXPECT_EQ(hits.load(), 24);
  }

  // The runtime restored what it changed; undo our own shrink regardless.
  EXPECT_TRUE(oss::pin_current_thread(original));
  EXPECT_EQ(oss::allowed_cpus(), original);
}

TEST(Pinning, OwnerMaskRestoredAfterRuntimePinnedIt) {
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> original = oss::allowed_cpus();
  {
    oss::Runtime rt(pin_config("2x2"));
    if (rt.pinned_workers() == 0) GTEST_SKIP() << "mask covers no node";
    // While the runtime lives, worker 0 (this thread) may be pinned to a
    // subset of the original mask.
    EXPECT_LE(oss::allowed_cpus().size(), original.size());
  }
  EXPECT_EQ(oss::allowed_cpus(), original);
}

TEST(Pinning, OffByDefault) {
  oss::RuntimeConfig cfg = oss_test::forced_topology_config(2, "2x2");
  cfg.pin = false;
  oss::Runtime rt(cfg);
  EXPECT_EQ(rt.pinned_workers(), 0u);
}

// --- OSS_PIN=compact|scatter single-CPU layouts --------------------------

TEST(Pinning, CompactLayoutFillsNodesInOrder) {
  // 2x2: node 0 = {0,1}, node 1 = {2,3}.  Compact walks the CPUs
  // node-major and wraps for oversubscribed worker counts.
  const oss::Topology topo =
      oss_test::forced_topology_config(1, "2x2").resolved_topology();
  const auto lay = oss::pin_layout(topo, oss::PinMode::Compact, 6);
  ASSERT_EQ(lay.size(), 6u);
  const std::vector<std::vector<int>> expect{{0}, {1}, {2}, {3}, {0}, {1}};
  EXPECT_EQ(lay, expect);
}

TEST(Pinning, ScatterLayoutRoundRobinsNodes) {
  // Scatter alternates nodes (0,1,0,1,...) and cycles within each node's
  // CPU list as it wraps: bandwidth first, then core spreading.
  const oss::Topology topo =
      oss_test::forced_topology_config(1, "2x2").resolved_topology();
  const auto lay = oss::pin_layout(topo, oss::PinMode::Scatter, 6);
  ASSERT_EQ(lay.size(), 6u);
  const std::vector<std::vector<int>> expect{{0}, {2}, {1}, {3}, {0}, {2}};
  EXPECT_EQ(lay, expect);
}

TEST(Pinning, NodeModeHasNoPrecomputedLayout) {
  // PinMode::Node is node-set pinning resolved by the runtime (it owns the
  // worker→node mapping); the pure layout function returns empty targets.
  const oss::Topology topo =
      oss_test::forced_topology_config(1, "2x2").resolved_topology();
  for (const auto& row : oss::pin_layout(topo, oss::PinMode::Node, 4)) {
    EXPECT_TRUE(row.empty());
  }
}

TEST(Pinning, CompactModePinsCoveredWorkersToSingleCpus) {
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> allowed = oss::allowed_cpus();
  ASSERT_FALSE(allowed.empty());
  // Compact on 2x2 targets cpu w for worker w; a worker pins iff its one
  // CPU is in this process's mask.
  std::size_t expect = 0;
  for (int w = 0; w < 4; ++w) {
    if (!oss::intersect_cpus({w}, allowed).empty()) ++expect;
  }

  oss::RuntimeConfig cfg = oss_test::forced_topology_config(4, "2x2");
  cfg.pin_mode = oss::PinMode::Compact;
  oss::Runtime rt(cfg);
  EXPECT_EQ(rt.pinned_workers(), expect);
  std::atomic<int> hits{0};
  for (int i = 0; i < 16; ++i) rt.task("t").spawn([&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 16);
}

TEST(Pinning, ScatterModePinsCoveredWorkersToSingleCpus) {
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> allowed = oss::allowed_cpus();
  ASSERT_FALSE(allowed.empty());
  // Scatter on 2x2: worker 0→cpu0, 1→cpu2, 2→cpu1, 3→cpu3.
  const std::vector<int> targets{0, 2, 1, 3};
  std::size_t expect = 0;
  for (int t : targets) {
    if (!oss::intersect_cpus({t}, allowed).empty()) ++expect;
  }

  oss::RuntimeConfig cfg = oss_test::forced_topology_config(4, "2x2");
  cfg.pin_mode = oss::PinMode::Scatter;
  oss::Runtime rt(cfg);
  EXPECT_EQ(rt.pinned_workers(), expect);
  std::atomic<int> hits{0};
  for (int i = 0; i < 16; ++i) rt.task("t").affinity(i % 2).spawn([&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 16);
}

TEST(Pinning, SingleCpuLayoutsDoNotDissolveOnFlatTopology) {
  // Unlike node-set pinning, compact/scatter stay meaningful with no NUMA
  // information: the layout falls back to the process mask, one CPU per
  // worker, so every worker pins.
  if (!oss::pinning_supported()) GTEST_SKIP() << "no thread affinity here";
  const std::vector<int> original = oss::allowed_cpus();
  ASSERT_FALSE(original.empty());
  {
    oss::RuntimeConfig cfg = oss_test::forced_topology_config(4, "flat");
    cfg.pin_mode = oss::PinMode::Scatter;
    oss::Runtime rt(cfg);
    EXPECT_EQ(rt.pinned_workers(), 4u);
    std::atomic<int> hits{0};
    for (int i = 0; i < 8; ++i) rt.task("t").spawn([&] { hits++; });
    rt.taskwait();
    EXPECT_EQ(hits.load(), 8);
  }
  EXPECT_EQ(oss::allowed_cpus(), original);
}

} // namespace
