// test_concurrent_spawn.cpp — multi-threaded spawn/finish stress for the
// sharded dependency layer (docs/dependencies.md).
//
// Historically every spawn and every task completion serialized on one
// runtime-wide graph mutex, so N spawner threads could not race each other
// or the finish path.  These tests drive exactly those races: several
// foreign threads spawning into the same (root) dependency domain with
// disjoint regions (different shards, no contention), one shared region
// (cross-thread chains through one shard), commutative groups over ranges
// spanning several shards (multi-lock registration racing retirement), and
// a mixed fuzz where bodies really read/write the declared bytes — under
// TSan, any hazard the domain fails to order becomes a reported race.
//
// The suite honors the env matrix (tests/run_matrix.sh) through
// env_config.hpp; OSS_DEP_SHARDS steers the domain sharding (the harness
// sweeps 1 vs 8 — single-lock fallback vs sharded).
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "env_config.hpp"

namespace {

constexpr std::size_t kStripe = std::size_t{1} << oss::DepDomain::kStripeShift;

/// Keeps computed values observable so -O2 cannot elide the reads the fuzz
/// bodies perform (TSan only sees accesses that actually happen).
std::atomic<unsigned> g_sink{0};

/// Runs `body(thread_index)` on `n` plain std::threads and joins them —
/// foreign spawners from the runtime's point of view, all landing in the
/// root context (shared sibling domain).
void on_threads(int n, const std::function<void(int)>& body) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ts.emplace_back(body, i);
  for (auto& t : ts) t.join();
}

TEST(ConcurrentSpawn, DisjointRegionSpawnersScaleWithoutInterference) {
  constexpr int kSpawners = 4;
  constexpr int kTasks = 200;
  oss::Runtime rt(oss_test::env_config(3));
  std::vector<long> slots(kSpawners, 0);

  on_threads(kSpawners, [&](int s) {
    long* slot = &slots[static_cast<std::size_t>(s)];
    for (int i = 0; i < kTasks; ++i) {
      rt.task("link").inout(*slot).spawn([slot] { *slot += 1; });
    }
    // taskwait_on from a foreign thread: collects this slot's chain only.
    rt.taskwait_on(*slot);
    EXPECT_EQ(*slot, kTasks) << "spawner " << s;
  });
  rt.barrier();

  for (int s = 0; s < kSpawners; ++s) EXPECT_EQ(slots[s], kTasks);
  const auto stats = rt.stats();
  EXPECT_EQ(stats.tasks_spawned, kSpawners * kTasks);
  EXPECT_EQ(stats.tasks_executed, kSpawners * kTasks);
  // Chains are ordered by RAW/WAW edges — except where a producer already
  // retired before its successor registered (no edge needed then), so the
  // exact count is timing-dependent.
  EXPECT_GT(stats.edges_total(), 0u);
  EXPECT_EQ(stats.dep_single_shard + stats.dep_multi_shard,
            static_cast<std::uint64_t>(kSpawners * kTasks));
}

TEST(ConcurrentSpawn, OverlappingRegionSerializesAcrossSpawners) {
  constexpr int kSpawners = 4;
  constexpr int kTasks = 100;
  oss::Runtime rt(oss_test::env_config(3));
  long counter = 0;
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};

  on_threads(kSpawners, [&](int) {
    for (int i = 0; i < kTasks; ++i) {
      rt.task("bump").inout(counter).spawn([&] {
        if (in_flight.fetch_add(1, std::memory_order_acq_rel) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        counter += 1; // plain access: the chain is the only protection
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
      });
    }
  });
  rt.barrier();

  EXPECT_EQ(counter, kSpawners * kTasks);
  EXPECT_FALSE(overlapped.load())
      << "inout tasks on one region must never run concurrently";
}

TEST(ConcurrentSpawn, CommutativeGroupsSpanningShardsStayExclusive) {
  constexpr int kSpawners = 3;
  constexpr int kTasks = 40;
  oss::Runtime rt(oss_test::env_config(3));
  // A region spanning several stripes: with OSS_DEP_SHARDS > 1 every
  // commutative member takes the multi-lock registration path and carries
  // one exclusion lock per touched shard sub-range.
  std::vector<char> big(3 * kStripe);
  long sum = 0;
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};

  on_threads(kSpawners, [&](int s) {
    for (int i = 0; i < kTasks; ++i) {
      if (i % 8 == 7) {
        // Periodic regular writer: closes the open group, reopening a new
        // epoch — exercises group open/close racing joining members.
        rt.task("close")
            .access(oss::region(big.data(), big.size(), oss::Mode::InOut))
            .spawn([&sum] { sum += 1; });
      } else {
        rt.task("comm")
            .access(oss::region(big.data(), big.size(), oss::Mode::Commutative))
            .spawn([&] {
              if (in_flight.fetch_add(1, std::memory_order_acq_rel) != 0) {
                overlapped.store(true, std::memory_order_relaxed);
              }
              sum += 1; // protected by the commutative exclusion locks
              in_flight.fetch_sub(1, std::memory_order_acq_rel);
            });
      }
    }
    (void)s;
  });
  rt.barrier();

  EXPECT_EQ(sum, kSpawners * kTasks);
  EXPECT_FALSE(overlapped.load())
      << "commutative members must hold the region exclusion lock(s)";
}

TEST(ConcurrentSpawn, MixedRegionFuzzBodiesTouchDeclaredBytes) {
  // Random overlapping windows with random modes; every body actually
  // reads or writes its declared bytes, so a single missed hazard is a
  // data race TSan reports (and a value-corruption chance otherwise).
  constexpr int kSpawners = 4;
  constexpr int kTasks = 150;
  constexpr std::size_t kWindow = 64;
  oss::Runtime rt(oss_test::env_config(3));
  std::vector<unsigned char> buf(4096, 0);

  on_threads(kSpawners, [&](int s) {
    std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(s));
    std::uniform_int_distribution<std::size_t> off(0, buf.size() - kWindow);
    std::uniform_int_distribution<int> mode(0, 3);
    std::uniform_int_distribution<std::size_t> len(1, kWindow);
    for (int i = 0; i < kTasks; ++i) {
      unsigned char* p = buf.data() + off(rng);
      const std::size_t n = len(rng);
      switch (mode(rng)) {
        case 0:
          rt.task("r").in(p, n).spawn([p, n] {
            unsigned sum = 0;
            for (std::size_t b = 0; b < n; ++b) sum += p[b];
            g_sink.fetch_add(sum, std::memory_order_relaxed);
          });
          break;
        case 1:
          rt.task("w").out(p, n).spawn([p, n] {
            for (std::size_t b = 0; b < n; ++b) p[b] = static_cast<unsigned char>(b);
          });
          break;
        case 2:
          rt.task("rw").inout(p, n).spawn([p, n] {
            for (std::size_t b = 0; b < n; ++b) p[b] += 1;
          });
          break;
        default:
          // Undeferred in the mix: the spawning thread helps out and runs
          // the body inline once the dependencies resolve.
          rt.task("u").inout(p, n).undeferred().spawn([p, n] {
            for (std::size_t b = 0; b < n; ++b) p[b] ^= 0x5a;
          });
          break;
      }
    }
  });
  rt.barrier();

  const auto stats = rt.stats();
  EXPECT_EQ(stats.tasks_spawned, kSpawners * kTasks);
  EXPECT_EQ(stats.tasks_executed, kSpawners * kTasks);
}

TEST(ConcurrentSpawn, ExplicitAfterChainsUnderConcurrentSpawn) {
  // Handle edges (.after) take the per-task successor lock instead of any
  // shard lock; race them against region chains from sibling threads.
  constexpr int kSpawners = 4;
  constexpr int kTasks = 120;
  oss::Runtime rt(oss_test::env_config(3));
  std::vector<long> seq(kSpawners, 0);
  std::vector<long> expect(kSpawners, 0);

  on_threads(kSpawners, [&](int s) {
    long* slot = &seq[static_cast<std::size_t>(s)];
    oss::TaskHandle prev;
    for (int i = 0; i < kTasks; ++i) {
      prev = rt.task("after")
                 .after(prev) // empty handle on the first lap: no-op
                 .spawn([slot, i] {
                   EXPECT_EQ(*slot, i); // strict order via explicit edges
                   *slot += 1;
                 });
    }
    prev.wait();
  });
  rt.barrier();
  for (int s = 0; s < kSpawners; ++s) EXPECT_EQ(seq[s], kTasks);
}

TEST(ConcurrentSpawn, ShardCountOneMatchesShardedBehaviour) {
  // The OSS_DEP_SHARDS=1 escape hatch under concurrency: same program,
  // same results, single-lock domain.  (Edge-set parity with the sharded
  // domain is asserted bit-exactly in test_dep_domain's parity test and in
  // GraphEdgeParityAcrossShardCounts below.)
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    oss::RuntimeConfig cfg = oss_test::env_config(3);
    cfg.dep_shards = shards;
    oss::Runtime rt(cfg);
    long a = 0, b = 0;
    on_threads(2, [&](int s) {
      long* slot = (s == 0) ? &a : &b;
      for (int i = 0; i < 100; ++i) {
        rt.task("t").inout(*slot).spawn([slot] { *slot += 2; });
      }
    });
    rt.barrier();
    EXPECT_EQ(a, 200) << "shards=" << shards;
    EXPECT_EQ(b, 200) << "shards=" << shards;
  }
}

TEST(ConcurrentSpawn, GraphEdgeParityAcrossShardCounts) {
  // Deterministic single-threaded spawn sequence, recorded graph: the edge
  // multiset with 8 shards must equal the single-lock domain's bit-exactly.
  // num_threads=1 keeps it deterministic — the owner thread executes only
  // at wait points, so no producer can retire mid-spawn and elide an edge.
  auto run = [](std::size_t shards) {
    oss::RuntimeConfig cfg = oss_test::env_config(1);
    cfg.dep_shards = shards;
    cfg.record_graph = true;
    oss::Runtime rt(cfg);
    std::vector<char> big(3 * kStripe);
    std::vector<int> small(64, 0);
    for (int lap = 0; lap < 3; ++lap) {
      rt.task("w").access(oss::region(big.data(), big.size(), oss::Mode::Out))
          .spawn([] {});
      rt.task("r").access(oss::region(big.data(), kStripe + 7, oss::Mode::In))
          .spawn([] {});
      rt.task("c").access(
            oss::region(big.data(), big.size(), oss::Mode::Commutative))
          .spawn([] {});
      rt.task("s").inout(small.data(), small.size()).spawn([] {});
      rt.task("x").in(small.data(), 8).out(big.data() + kStripe, 32).spawn([] {});
    }
    rt.barrier();
    auto edges = rt.graph_recorder()->edges();
    std::vector<std::tuple<std::uint64_t, std::uint64_t, int>> keys;
    keys.reserve(edges.size());
    for (const auto& e : edges) {
      keys.emplace_back(e.from, e.to, static_cast<int>(e.kind));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto single = run(1);
  const auto sharded = run(8);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, sharded);
}

} // namespace
