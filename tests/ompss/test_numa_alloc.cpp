// numa_alloc: the page→node registry, node-bound / interleaved allocation,
// the NumaBuffer RAII wrapper, first-touch, and the `.affinity_auto()` home
// derivation (home_node_of).  On this machine the kernel binding is a
// silent no-op; the registry semantics are what the runtime relies on.
#include "ompss/numa_alloc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

namespace {

TEST(NumaAlloc, OnNodeAllocRegistersAndFreesUnregister) {
  const std::size_t before = oss::numa_registered_ranges();
  void* p = oss::numa_alloc_onnode(3 * oss::numa_page_size(), 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(oss::numa_registered_ranges(), before + 1);

  // Every byte of the range resolves to the bound node.
  auto* bytes = static_cast<unsigned char*>(p);
  EXPECT_EQ(oss::numa_node_of(bytes), 1);
  EXPECT_EQ(oss::numa_node_of(bytes + oss::numa_page_size()), 1);
  EXPECT_EQ(oss::numa_node_of(bytes + 3 * oss::numa_page_size() - 1), 1);

  oss::numa_free(p, 3 * oss::numa_page_size());
  EXPECT_EQ(oss::numa_registered_ranges(), before);
  EXPECT_EQ(oss::numa_node_of(bytes), -1) << "freed range must not linger";
}

TEST(NumaAlloc, UnregisteredAddressesAreUnknown) {
  int on_stack = 0;
  EXPECT_EQ(oss::numa_node_of(&on_stack), -1);
  EXPECT_EQ(oss::numa_node_of(nullptr), -1);
}

TEST(NumaAlloc, AllocationIsPageAlignedAndWritable) {
  void* p = oss::numa_alloc_onnode(100, 0); // sub-page size rounds up
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % oss::numa_page_size(), 0u);
  std::memset(p, 0xab, 100);
  oss::numa_free(p, 100);
}

TEST(NumaAlloc, InterleavedRangeMapsPagesRoundRobin) {
  const std::size_t page = oss::numa_page_size();
  void* p = oss::numa_alloc_interleaved(4 * page, 2);
  auto* bytes = static_cast<unsigned char*>(p);
  EXPECT_EQ(oss::numa_node_of(bytes), 0);
  EXPECT_EQ(oss::numa_node_of(bytes + page), 1);
  EXPECT_EQ(oss::numa_node_of(bytes + 2 * page), 0);
  EXPECT_EQ(oss::numa_node_of(bytes + 3 * page), 1);
  EXPECT_EQ(oss::numa_node_of(bytes + page + 17), 1) << "mid-page offsets too";
  oss::numa_free(p, 4 * page);
}

TEST(NumaAlloc, ReallocatedMemoryDoesNotResurrectOldMapping) {
  const std::size_t page = oss::numa_page_size();
  void* p = oss::numa_alloc_onnode(page, 1);
  // Re-register the same storage as node 0 without unregistering first
  // (what a free-then-alloc recycle looks like to the registry).
  oss::numa_register_range(p, page, 0);
  EXPECT_EQ(oss::numa_node_of(p), 0);
  oss::numa_free(p, page);
  EXPECT_EQ(oss::numa_node_of(p), -1);
}

TEST(NumaAlloc, FirstTouchCommitsWholeBuffer) {
  const std::size_t page = oss::numa_page_size();
  oss::NumaBuffer buf(2 * page + 7, 0);
  oss::numa_first_touch(buf.data(), buf.size());
  // All bytes readable/writable after the touch.
  auto* bytes = buf.as<unsigned char>();
  bytes[0] = 1;
  bytes[buf.size() - 1] = 2;
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[buf.size() - 1], 2);
}

TEST(NumaAlloc, NumaBufferRaiiAndMove) {
  const std::size_t before = oss::numa_registered_ranges();
  {
    oss::NumaBuffer a(oss::numa_page_size(), 1);
    EXPECT_TRUE(static_cast<bool>(a));
    EXPECT_EQ(a.node(), 1);
    EXPECT_EQ(oss::numa_node_of(a.data()), 1);
    EXPECT_EQ(oss::numa_registered_ranges(), before + 1);

    oss::NumaBuffer b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(oss::numa_registered_ranges(), before + 1);

    oss::NumaBuffer c = oss::NumaBuffer::interleaved(oss::numa_page_size(), 2);
    EXPECT_EQ(oss::numa_registered_ranges(), before + 2);
    c = std::move(b); // frees the interleaved buffer
    EXPECT_EQ(oss::numa_registered_ranges(), before + 1);
  }
  EXPECT_EQ(oss::numa_registered_ranges(), before);
}

TEST(NumaAlloc, HomeNodeOfPicksLargestRegisteredRegion) {
  const std::size_t page = oss::numa_page_size();
  oss::NumaBuffer small(page, 0);
  oss::NumaBuffer big(4 * page, 1);
  int unregistered = 0;

  // Largest registered region wins.
  oss::AccessList list{
      oss::in(small.as<char>(), page),
      oss::inout(big.as<char>(), 4 * page),
      oss::out(unregistered),
  };
  EXPECT_EQ(oss::home_node_of(list), 1);

  // An even larger *unregistered* region does not mask the registered one.
  std::vector<char> heap(8 * page);
  oss::AccessList with_heap{
      oss::in(heap.data(), heap.size()),
      oss::in(small.as<char>(), page),
  };
  EXPECT_EQ(oss::home_node_of(with_heap), 0);

  // Nothing registered → no home.
  oss::AccessList none{oss::out(unregistered)};
  EXPECT_EQ(oss::home_node_of(none), -1);
  EXPECT_EQ(oss::home_node_of(oss::AccessList{}), -1);
}

} // namespace
