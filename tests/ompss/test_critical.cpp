// Named critical sections (the `omp critical` equivalent used to guard the
// hidden DPB/PIB dependencies in the paper's H.264 decoder).
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

TEST(Critical, MutualExclusionOnUnnamedSection) {
  oss::Runtime rt(4);
  long counter = 0; // intentionally non-atomic
  constexpr int kTasks = 400;
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({}, [&] {
      oss::Runtime::current()->critical("", [&] { counter++; });
    });
  }
  rt.taskwait();
  EXPECT_EQ(counter, kTasks);
}

TEST(Critical, DifferentNamesAreIndependentLocks) {
  oss::CriticalRegistry reg;
  std::mutex& a = reg.get("alpha");
  std::mutex& b = reg.get("beta");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &reg.get("alpha")); // stable across lookups
  EXPECT_EQ(reg.section_count(), 2u);
}

TEST(Critical, NoOverlapObservedInsideSection) {
  oss::Runtime rt(4);
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < 100; ++i) {
    rt.spawn({}, [&] {
      oss::Runtime::current()->critical("zone", [&] {
        if (inside.fetch_add(1) != 0) overlap = true;
        for (int j = 0; j < 500; ++j) { volatile int sink = j; (void)sink; }
        inside.fetch_sub(1);
      });
    });
  }
  rt.taskwait();
  EXPECT_FALSE(overlap.load());
}

TEST(Critical, FetchReleasePatternLikeDpb) {
  // Models the paper's DPB usage: tasks fetch a free slot under a critical
  // section, "decode" into it, then release it under the same section.
  oss::Runtime rt(4);
  constexpr int kSlots = 3;
  bool slot_busy[kSlots] = {};
  std::atomic<int> failures{0};
  std::atomic<int> processed{0};

  for (int i = 0; i < 120; ++i) {
    rt.spawn({}, [&] {
      int mine = -1;
      while (mine < 0) {
        oss::Runtime::current()->critical("dpb", [&] {
          for (int s = 0; s < kSlots; ++s) {
            if (!slot_busy[s]) {
              slot_busy[s] = true;
              mine = s;
              break;
            }
          }
        });
        if (mine < 0) std::this_thread::yield();
      }
      for (int j = 0; j < 200; ++j) { volatile int sink = j; (void)sink; }
      oss::Runtime::current()->critical("dpb", [&] {
        if (!slot_busy[mine]) failures++;
        slot_busy[mine] = false;
      });
      processed++;
    });
  }
  rt.taskwait();
  EXPECT_EQ(processed.load(), 120);
  EXPECT_EQ(failures.load(), 0);
  for (bool busy : slot_busy) EXPECT_FALSE(busy);
}

} // namespace
