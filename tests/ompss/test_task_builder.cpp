// The fluent task-builder API: TaskBuilder accesses vs. the legacy spawn
// overloads, TaskHandle waits, explicit `.after()` edges, and TaskGroup
// scoping/exception propagation.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Builder-declared accesses must derive the same hazards as the legacy API.
// ---------------------------------------------------------------------------

TEST(TaskBuilder, AccessesProduceSameEdgesAsLegacySpawn) {
  // produce → consume (RAW), then overwrite (WAR vs consume, WAW vs
  // produce).  Single thread: nothing retires early, every edge is real.
  const auto run_legacy = [] {
    oss::Runtime rt(1);
    int x = 0, y = 0;
    rt.spawn({oss::out(x)}, [&] { x = 1; });
    rt.spawn({oss::in(x), oss::out(y)}, [&] { y = x; });
    rt.spawn({oss::out(x)}, [&] { x = 2; });
    rt.taskwait();
    return rt.stats();
  };
  const auto run_builder = [] {
    oss::Runtime rt(1);
    int x = 0, y = 0;
    rt.task("produce").out(x).spawn([&] { x = 1; });
    rt.task("consume").in(x).out(y).spawn([&] { y = x; });
    rt.task("overwrite").out(x).spawn([&] { x = 2; });
    rt.taskwait();
    return rt.stats();
  };

  const oss::StatsSnapshot legacy = run_legacy();
  const oss::StatsSnapshot fluent = run_builder();
  EXPECT_EQ(legacy.edges_raw, 1u);
  EXPECT_EQ(fluent.edges_raw, legacy.edges_raw);
  EXPECT_EQ(fluent.edges_war, legacy.edges_war);
  EXPECT_EQ(fluent.edges_waw, legacy.edges_waw);
  EXPECT_EQ(fluent.edges_explicit, 0u);
  EXPECT_EQ(fluent.tasks_executed, legacy.tasks_executed);
}

TEST(TaskBuilder, ChainSerializesLikeLegacyInout) {
  oss::Runtime rt(4);
  int token = 0;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    rt.task("link").inout(token).spawn([&order, i] { order.push_back(i); });
  }
  rt.taskwait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TaskBuilder, PointerCountAndAccessListForms) {
  oss::Runtime rt(2);
  std::vector<int> data(64, 0);
  rt.task("fill").out(data.data(), data.size()).spawn([&] {
    for (auto& v : data) v = 1;
  });
  int sum = 0;
  oss::AccessList acc{oss::in(data.data(), data.size())};
  rt.task("sum").accesses(std::move(acc)).access(oss::out(sum)).spawn([&] {
    for (int v : data) sum += v;
  });
  rt.taskwait();
  EXPECT_EQ(sum, 64);
}

TEST(TaskBuilder, PriorityAndUndeferredApply) {
  oss::Runtime rt(1); // nothing runs until the undeferred spawn helps
  std::vector<int> order;
  int gate = 0;
  rt.task("low").inout(gate).spawn([&] { order.push_back(1); });
  // Undeferred: the spawning thread resolves the chain inline.
  rt.task("inline").inout(gate).priority(5).undeferred().spawn(
      [&] { order.push_back(2); });
  ASSERT_EQ(order.size(), 2u); // both ran before spawn returned
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  rt.taskwait();
}

TEST(TaskBuilder, SecondSpawnOnSameBuilderThrows) {
  oss::Runtime rt(2);
  oss::TaskBuilder b = rt.task("once");
  b.spawn([] {});
  EXPECT_THROW(b.spawn([] {}), std::logic_error);
  rt.taskwait();
}

// ---------------------------------------------------------------------------
// TaskHandle
// ---------------------------------------------------------------------------

TEST(TaskHandle, EmptyHandleIsDoneAndWaitIsNoop) {
  oss::TaskHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.id(), 0u);
  h.wait(); // must not crash or hang
}

TEST(TaskHandle, DoneFlipsAfterWait) {
  oss::Runtime rt(2);
  std::atomic<bool> ran{false};
  oss::TaskHandle h = rt.task("work").spawn([&] { ran = true; });
  EXPECT_TRUE(h.valid());
  EXPECT_GT(h.id(), 0u);
  h.wait();
  EXPECT_TRUE(h.done());
  EXPECT_TRUE(ran.load());
}

TEST(TaskHandle, WaitFromNestedTask) {
  oss::Runtime rt(2);
  int value = 0;
  oss::TaskHandle producer =
      rt.task("producer").out(value).spawn([&] { value = 7; });
  std::atomic<int> seen{-1};
  rt.task("nested_waiter").spawn([&] {
    // Inside a task: wait() must help execute rather than deadlock.
    producer.wait();
    seen = value;
  });
  rt.taskwait();
  EXPECT_EQ(seen.load(), 7);
}

TEST(TaskHandle, RuntimeTaskwaitOnHandle) {
  oss::Runtime rt(2);
  std::atomic<bool> ran{false};
  oss::TaskHandle h = rt.task("work").spawn([&] { ran = true; });
  rt.taskwait_on(h);
  EXPECT_TRUE(h.done());
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------------------
// Explicit .after() edges
// ---------------------------------------------------------------------------

TEST(TaskBuilderAfter, OrdersTasksWithoutRegionOverlap) {
  // The two tasks share no declared memory; only the handle edge orders
  // them.  Run many rounds so a scheduling accident cannot hide a miss.
  for (int round = 0; round < 20; ++round) {
    oss::Runtime rt(4);
    std::atomic<bool> first_done{false};
    std::atomic<bool> ordered{true};
    oss::TaskHandle first = rt.task("first").spawn([&] {
      for (volatile int i = 0; i < 1000; i = i + 1) {
      }
      first_done = true;
    });
    rt.task("second").after(first).spawn(
        [&] { ordered = first_done.load(); });
    rt.taskwait();
    ASSERT_TRUE(ordered.load()) << "round " << round;
  }
}

TEST(TaskBuilderAfter, CountsExplicitEdgeInStats) {
  oss::Runtime rt(1); // predecessor cannot retire before registration
  oss::TaskHandle a = rt.task("a").spawn([] {});
  oss::TaskHandle b = rt.task("b").spawn([] {});
  rt.task("join").after(a, b).spawn([] {});
  rt.taskwait();
  const auto s = rt.stats();
  EXPECT_EQ(s.edges_explicit, 2u);
  EXPECT_EQ(s.edges_total(), s.edges_raw + s.edges_war + s.edges_waw + 2u);
}

TEST(TaskBuilderAfter, DuplicateAndEmptyHandlesAreHarmless) {
  oss::Runtime rt(1);
  oss::TaskHandle a = rt.task("a").spawn([] {});
  oss::TaskHandle empty;
  int ran = 0;
  rt.task("join").after(a).after(a).after(empty).spawn([&] { ran = 1; });
  rt.taskwait();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(rt.stats().edges_explicit, 1u); // deduplicated
}

TEST(TaskBuilderAfter, FinishedHandleAddsNoEdge) {
  oss::Runtime rt(2);
  oss::TaskHandle a = rt.task("a").spawn([] {});
  a.wait();
  rt.task("b").after(a).spawn([] {});
  rt.taskwait();
  EXPECT_EQ(rt.stats().edges_explicit, 0u);
}

TEST(TaskBuilderAfter, ForeignRuntimeUnfinishedHandleThrows) {
  oss::Runtime rt_a(1); // holds the task unexecuted until a wait
  oss::Runtime rt_b(2);
  oss::TaskHandle h = rt_a.task("held").spawn([] {});
  EXPECT_FALSE(h.done());
  EXPECT_THROW(rt_b.task("x").after(h), std::invalid_argument);
  rt_a.taskwait();
  rt_b.taskwait();
}

TEST(TaskBuilderAfter, GraphExportShowsExplicitEdge) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(1);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);
  oss::TaskHandle a = rt.task("first").spawn([] {});
  rt.task("second").after(a).spawn([] {});
  rt.taskwait();
  EXPECT_NE(rt.export_graph_dot().find("EXPLICIT"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskGroup, DestructorWaitsForExactlyTheGroup) {
  oss::Runtime rt(4);
  std::atomic<int> group_done{0};
  {
    oss::TaskGroup g(rt);
    for (int i = 0; i < 50; ++i) {
      g.task("member").spawn([&] { group_done++; });
    }
  }
  // No taskwait: the group destructor alone must have joined its tasks.
  EXPECT_EQ(group_done.load(), 50);
}

TEST(TaskGroup, WaitIsReusableAndPendingDrops) {
  oss::Runtime rt(2);
  oss::TaskGroup g(rt);
  std::atomic<int> hits{0};
  g.task("one").spawn([&] { hits++; });
  g.wait();
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(g.pending(), 0u);
  g.task("two").spawn([&] { hits++; });
  g.wait();
  EXPECT_EQ(hits.load(), 2);
}

TEST(TaskGroup, ScopesIndependentlyOfAmbientContext) {
  oss::Runtime rt(2);
  std::atomic<bool> outside_ran{false};
  int gate = 0;
  // An ambient chain that is still running when the group joins.
  rt.task("outside").inout(gate).spawn([&] {
    for (volatile int i = 0; i < 200000; i = i + 1) {
    }
    outside_ran = true;
  });
  std::atomic<int> group_hits{0};
  {
    oss::TaskGroup g(rt);
    for (int i = 0; i < 8; ++i) g.task("in_group").spawn([&] { group_hits++; });
  }
  EXPECT_EQ(group_hits.load(), 8); // group joined its own tasks...
  rt.taskwait();                   // ...the ambient chain joins here
  EXPECT_TRUE(outside_ran.load());
}

TEST(TaskGroup, IsAPrivateDomainButAfterBridgesToAmbientTasks) {
  // Documented semantics: declared accesses on group tasks only match
  // against other group tasks.  With a 1-thread runtime nothing executes
  // before the first wait, so edge counts at spawn time are exact: the
  // group task reading x must NOT get a RAW edge from the ambient writer
  // of x, while `.after` must add an explicit cross-boundary edge.
  oss::Runtime rt(1);
  int x = 0;
  oss::TaskHandle producer = rt.task("produce").out(x).spawn([&] { x = 42; });

  oss::TaskGroup g(rt);
  g.task("isolated").in(x).spawn([] {});
  EXPECT_EQ(rt.stats().edges_raw, 0u); // no cross-domain RAW edge

  int seen = -1;
  g.task("bridged").in(x).after(producer).spawn([&] { seen = x; });
  EXPECT_EQ(rt.stats().edges_explicit, 1u); // the bridge edge exists
  EXPECT_EQ(rt.stats().edges_raw, 0u);      // two in-group readers: no hazard

  g.wait();
  EXPECT_EQ(seen, 42); // producer ran first via the explicit edge
  rt.taskwait();
}

TEST(TaskGroup, WaitRethrowsChildException) {
  oss::Runtime rt(2);
  oss::TaskGroup g(rt);
  g.task("boom").spawn([] { throw std::runtime_error("group boom"); });
  EXPECT_THROW(g.wait(), std::runtime_error);
  // The exception was consumed; a later wait is clean.
  g.wait();
}

TEST(TaskGroup, DestructorRethrowsChildException) {
  oss::Runtime rt(2);
  bool caught = false;
  try {
    oss::TaskGroup g(rt);
    g.task("boom").spawn([] { throw std::logic_error("dtor boom"); });
  } catch (const std::logic_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "dtor boom");
  }
  EXPECT_TRUE(caught);
}

TEST(TaskGroup, DestructorDuringUnwindingStillDrains) {
  oss::Runtime rt(2);
  std::atomic<int> done{0};
  try {
    oss::TaskGroup g(rt);
    for (int i = 0; i < 10; ++i) g.task("late").spawn([&] { done++; });
    throw std::runtime_error("outer");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "outer"); // outer exception survives
  }
  EXPECT_EQ(done.load(), 10); // and the group still joined its tasks
}

TEST(TaskGroup, HandlesAndAfterWorkInsideGroups) {
  oss::Runtime rt(2);
  std::atomic<bool> ordered{false};
  std::atomic<bool> first_done{false};
  {
    oss::TaskGroup g(rt);
    oss::TaskHandle first = g.task("first").spawn([&] { first_done = true; });
    g.task("second").after(first).spawn([&] { ordered = first_done.load(); });
  }
  EXPECT_TRUE(ordered.load());
}

// ---------------------------------------------------------------------------
// Legacy shims stay equivalent
// ---------------------------------------------------------------------------

TEST(LegacySpawnShim, ReturnsMonotonicIdsSharedWithBuilder) {
  oss::Runtime rt(2);
  const std::uint64_t id1 = rt.spawn({}, [] {});
  oss::TaskHandle h = rt.task().spawn([] {});
  const std::uint64_t id3 = rt.spawn({}, [] {});
  EXPECT_LT(id1, h.id());
  EXPECT_LT(h.id(), id3);
  rt.taskwait();
}

TEST(LegacySpawnShim, OptionsOverloadStillApplies) {
  oss::Runtime rt(1);
  int ran = 0;
  oss::TaskOptions opts;
  opts.label = "legacy";
  opts.deferred = false; // undeferred: runs inline
  rt.spawn({}, [&] { ran = 1; }, opts);
  EXPECT_EQ(ran, 1);
  rt.taskwait();
}

} // namespace
