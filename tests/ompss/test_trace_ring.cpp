// oss::trace v2: per-worker SPSC ring buffers, drop-on-full accounting,
// event ordering, and the scheduler/idle events under work stealing.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using oss::TraceEventKind;

oss::RuntimeConfig traced(std::size_t threads, oss::TraceMode mode,
                          std::size_t buffer) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.trace_mode = mode;
  cfg.trace_buffer = buffer;
  return cfg;
}

std::size_t count_kind(const std::vector<oss::TraceSystem::Merged>& evs,
                       TraceEventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(evs.begin(), evs.end(),
                    [&](const auto& m) { return m.ev.kind == kind; }));
}

TEST(TraceRing, OverflowDropsAreCountedNotBlocking) {
  // A deliberately tiny ring with no intervening barrier: most events must
  // be dropped, every drop must be counted, and no task may be lost.
  oss::Runtime rt(traced(1, oss::TraceMode::Full, 64));
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) rt.spawn({}, [] {});
  rt.taskwait();

  const oss::StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.tasks_executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_GT(s.trace_dropped, 0u);
  // Whatever was not dropped is drainable; together they cover everything
  // emitted (>= because park/unpark events may add to the emitted side).
  oss::TraceSystem* ts = rt.trace_system();
  ASSERT_NE(ts, nullptr);
  EXPECT_GE(ts->event_count() + ts->dropped(),
            static_cast<std::size_t>(kTasks)); // at least the RunSpans
}

TEST(TraceRing, LifecycleEventsAndPerWorkerOrdering) {
  oss::Runtime rt(traced(1, oss::TraceMode::Full, 1u << 16));
  constexpr int kTasks = 20;
  int x = 0;
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({oss::inout(x)}, [&x] { ++x; });
  }
  rt.taskwait();
  EXPECT_EQ(x, kTasks);

  oss::TraceSystem* ts = rt.trace_system();
  ASSERT_NE(ts, nullptr);
  const auto evs = ts->merged_events();

  EXPECT_EQ(count_kind(evs, TraceEventKind::Spawn),
            static_cast<std::size_t>(kTasks));
  EXPECT_EQ(count_kind(evs, TraceEventKind::RunSpan),
            static_cast<std::size_t>(kTasks));
  // The inout chain serializes: every task but the first has one WAW
  // predecessor, becomes ready when it finishes, and carries one edge.
  EXPECT_EQ(count_kind(evs, TraceEventKind::Edge),
            static_cast<std::size_t>(kTasks - 1));
  EXPECT_EQ(count_kind(evs, TraceEventKind::Ready),
            static_cast<std::size_t>(kTasks - 1));
  // Deferred tasks pass through the scheduler, so each got a placement.
  EXPECT_EQ(count_kind(evs, TraceEventKind::Place),
            static_cast<std::size_t>(kTasks));

  // Per-worker run spans never overlap, and each span is well-formed
  // (begin <= end after the drain-time tick→ns conversion).
  std::vector<const oss::TraceEvent*> runs;
  for (const auto& m : evs) {
    if (m.ev.kind == TraceEventKind::RunSpan) {
      EXPECT_EQ(m.tid, 0); // single worker: everything on row 0
      runs.push_back(&m.ev);
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const auto* a, const auto* b) { return a->arg < b->arg; });
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_LE(runs[i]->arg, runs[i]->ts);
    if (i > 0) EXPECT_LE(runs[i - 1]->ts, runs[i]->arg);
  }
}

TEST(TraceRing, ExecModeRecordsOnlyRunSpans) {
  oss::Runtime rt(traced(2, oss::TraceMode::Exec, 1u << 14));
  int x = 0;
  for (int i = 0; i < 10; ++i) rt.spawn({oss::inout(x)}, [&x] { ++x; });
  rt.taskwait();

  oss::TraceSystem* ts = rt.trace_system();
  ASSERT_NE(ts, nullptr);
  const auto evs = ts->merged_events();
  EXPECT_EQ(evs.size(), 10u);
  for (const auto& m : evs) EXPECT_EQ(m.ev.kind, TraceEventKind::RunSpan);
}

TEST(TraceRing, ParkAndStealEventsUnderWorkStealing) {
  oss::RuntimeConfig cfg = traced(4, oss::TraceMode::Full, 1u << 16);
  cfg.scheduler = oss::SchedulerPolicy::WorkStealing;
  cfg.idle = oss::IdlePolicy::Park;
  cfg.spin_rounds = 4; // park quickly so the test never waits long
  oss::Runtime rt(cfg);

  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    rt.spawn({}, [&ran] {
      // Enough work that idle siblings have something worth stealing.
      volatile int sink = 0;
      for (int k = 0; k < 20000; ++k) sink += k;
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  rt.taskwait();
  EXPECT_EQ(ran.load(), 64);

  // Every successful steal emits exactly one trace event at the same site
  // that bumps the stats counter; by taskwait-return both halves of every
  // pair have landed (a pick precedes its task's finish).
  const std::uint64_t steals = rt.stats().steals;
  oss::TraceSystem* ts = rt.trace_system();
  ASSERT_NE(ts, nullptr);
  auto evs = ts->merged_events();
  EXPECT_EQ(count_kind(evs, TraceEventKind::Steal),
            static_cast<std::size_t>(steals));

  // With no work left the pool parks; wait for the stats counter, then the
  // matching events must be drainable.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (rt.stats().parks == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(rt.stats().parks, 0u);
  // One extra settle so the emit following the counter bump completes.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  evs = ts->merged_events();
  EXPECT_GE(count_kind(evs, TraceEventKind::Park), 1u);
}

TEST(TraceRing, ForeignSpawnerGetsItsOwnRow) {
  oss::Runtime rt(traced(1, oss::TraceMode::Full, 1u << 14));
  std::thread outsider([&rt] { rt.spawn({}, [] {}); });
  outsider.join();
  rt.barrier();

  oss::TraceSystem* ts = rt.trace_system();
  ASSERT_NE(ts, nullptr);
  const auto evs = ts->merged_events();
  bool foreign_spawn = false;
  for (const auto& m : evs) {
    if (m.ev.kind == TraceEventKind::Spawn &&
        m.tid >= oss::TraceSystem::kForeignBase) {
      foreign_spawn = true;
    }
  }
  EXPECT_TRUE(foreign_spawn);
}

TEST(TraceRing, BarrierDrainRelievesRingPressure) {
  // Ring of 512 with barriers every 100 tasks (~300 events/round): each
  // barrier's drain_if_pressed finds the ring past half full and empties
  // it, so the loop stays lossless even though 3 rounds far exceed one
  // ring.
  oss::Runtime rt(traced(1, oss::TraceMode::Full, 512));
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) rt.spawn({}, [] {});
    rt.barrier();
  }
  const oss::StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.tasks_executed, 300u);
  EXPECT_EQ(s.trace_dropped, 0u);
  EXPECT_GE(rt.trace_system()->event_count(), 600u); // spawns + runs at least
}

} // namespace
