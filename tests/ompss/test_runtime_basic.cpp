// Basic Runtime behaviour: spawning, draining, thread counts, foreign
// threads, and lifecycle.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

TEST(RuntimeBasic, SingleTaskExecutes) {
  oss::Runtime rt(2);
  std::atomic<int> hits{0};
  rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 1);
}

TEST(RuntimeBasic, ManyIndependentTasksAllExecute) {
  oss::Runtime rt(4);
  std::atomic<int> hits{0};
  constexpr int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({}, [&] { hits++; });
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), kTasks);
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

TEST(RuntimeBasic, SingleThreadRuntimeExecutesAtWaits) {
  oss::Runtime rt(1);
  int value = 0; // no atomics needed: single thread
  rt.spawn({}, [&] { value = 42; });
  rt.taskwait();
  EXPECT_EQ(value, 42);
}

TEST(RuntimeBasic, DestructorDrainsOutstandingTasks) {
  std::atomic<int> hits{0};
  {
    oss::Runtime rt(2);
    for (int i = 0; i < 100; ++i) rt.spawn({}, [&] { hits++; });
    // no taskwait: the destructor must run the implicit barrier
  }
  EXPECT_EQ(hits.load(), 100);
}

TEST(RuntimeBasic, NumThreadsReportsConfiguredCount) {
  oss::Runtime rt(3);
  EXPECT_EQ(rt.num_threads(), 3u);
  EXPECT_EQ(rt.config().scheduler, oss::SchedulerPolicy::Locality);
}

TEST(RuntimeBasic, SpawnReturnsMonotonicIds) {
  oss::Runtime rt(2);
  const auto id1 = rt.spawn({}, [] {});
  const auto id2 = rt.spawn({}, [] {});
  EXPECT_LT(id1, id2);
  rt.taskwait();
}

TEST(RuntimeBasic, CurrentRuntimeVisibleInsideTasks) {
  oss::Runtime rt(2);
  std::atomic<oss::Runtime*> seen{nullptr};
  std::atomic<int> worker{-2};
  rt.spawn({}, [&] {
    seen = oss::Runtime::current();
    worker = oss::Runtime::current_worker();
  });
  rt.taskwait();
  EXPECT_EQ(seen.load(), &rt);
  EXPECT_GE(worker.load(), 0);
  EXPECT_LT(worker.load(), 2);
}

TEST(RuntimeBasic, ForeignThreadCanSpawnAndWait) {
  oss::Runtime rt(2);
  std::atomic<int> hits{0};
  std::thread t([&] {
    for (int i = 0; i < 50; ++i) rt.spawn({}, [&] { hits++; });
    rt.taskwait();
    EXPECT_EQ(hits.load(), 50);
  });
  t.join();
  EXPECT_EQ(hits.load(), 50);
}

TEST(RuntimeBasic, TasksRunOnMultipleWorkers) {
  // With enough tasks and a busy-wait inside, at least two workers should
  // participate (statistical, but extremely robust with 500 tasks).
  oss::Runtime rt(4);
  for (int i = 0; i < 500; ++i) {
    rt.spawn({}, [] {
      volatile int x = 0;
      for (int j = 0; j < 1000; ++j) x = x + j;
    });
  }
  rt.taskwait();
  const auto stats = rt.stats();
  int active_workers = 0;
  for (auto n : stats.per_worker_executed) {
    if (n > 0) active_workers++;
  }
  EXPECT_GE(active_workers, 1);
  EXPECT_EQ(stats.tasks_executed, 500u);
}

TEST(RuntimeBasic, PendingTasksReflectsOutstandingWork) {
  oss::Runtime rt(1); // nothing executes until we wait
  rt.spawn({}, [] {});
  rt.spawn({}, [] {});
  EXPECT_EQ(rt.pending_tasks(), 2u);
  rt.barrier();
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

TEST(RuntimeBasic, GlobalRuntimeSpawnsAndShutsDown) {
  oss::shutdown();
  EXPECT_FALSE(oss::global_runtime_exists());
  std::atomic<int> hits{0};
  oss::spawn({}, [&] { hits++; });
  oss::taskwait();
  EXPECT_EQ(hits.load(), 1);
  EXPECT_TRUE(oss::global_runtime_exists());
  oss::shutdown();
  EXPECT_FALSE(oss::global_runtime_exists());
}

TEST(RuntimeBasic, LabelsAreStored) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);
  rt.spawn({}, [] {}, "my_stage");
  rt.taskwait();
  EXPECT_NE(rt.export_graph_dot().find("my_stage"), std::string::npos);
}

} // namespace
