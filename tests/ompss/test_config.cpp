// Unit tests for RuntimeConfig and environment parsing.
#include "ompss/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

namespace {

// RAII environment variable setter.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

TEST(Config, PolicyNamesRoundTrip) {
  using oss::SchedulerPolicy;
  EXPECT_EQ(oss::parse_scheduler_policy("fifo"), SchedulerPolicy::Fifo);
  EXPECT_EQ(oss::parse_scheduler_policy("locality"), SchedulerPolicy::Locality);
  EXPECT_EQ(oss::parse_scheduler_policy("wsteal"), SchedulerPolicy::WorkStealing);
  EXPECT_STREQ(oss::to_string(SchedulerPolicy::Fifo), "fifo");
  EXPECT_STREQ(oss::to_string(SchedulerPolicy::Locality), "locality");
  EXPECT_STREQ(oss::to_string(SchedulerPolicy::WorkStealing), "wsteal");
}

TEST(Config, WaitPolicyNamesRoundTrip) {
  using oss::WaitPolicy;
  EXPECT_EQ(oss::parse_wait_policy("poll"), WaitPolicy::Polling);
  EXPECT_EQ(oss::parse_wait_policy("block"), WaitPolicy::Blocking);
  EXPECT_STREQ(oss::to_string(WaitPolicy::Polling), "poll");
  EXPECT_STREQ(oss::to_string(WaitPolicy::Blocking), "block");
}

TEST(Config, UnknownPolicyThrows) {
  EXPECT_THROW(oss::parse_scheduler_policy("bogus"), std::invalid_argument);
  EXPECT_THROW(oss::parse_wait_policy("bogus"), std::invalid_argument);
  EXPECT_THROW(oss::parse_idle_policy("bogus"), std::invalid_argument);
}

TEST(Config, UnknownPolicyErrorsListTheValidOptions) {
  try {
    oss::parse_scheduler_policy("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fifo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("locality"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wsteal"), std::string::npos) << msg;
  }
  try {
    oss::parse_idle_policy("nap");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nap"), std::string::npos) << msg;
    EXPECT_NE(msg.find("park"), std::string::npos) << msg;
    EXPECT_NE(msg.find("spin"), std::string::npos) << msg;
    EXPECT_NE(msg.find("yield"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sleep"), std::string::npos) << msg;
  }
}

TEST(Config, FromEnvRejectsUnknownPolicyValues) {
  {
    ScopedEnv e("OSS_SCHEDULER", "round-robin");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv e("OSS_IDLE", "nap");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
}

TEST(Config, ResolvedThreadsUsesHardwareWhenZero) {
  oss::RuntimeConfig cfg;
  cfg.num_threads = 0;
  EXPECT_GE(cfg.resolved_threads(), 1u);
  cfg.num_threads = 7;
  EXPECT_EQ(cfg.resolved_threads(), 7u);
}

TEST(Config, FromEnvReadsAllKnobs) {
  ScopedEnv e1("OSS_NUM_THREADS", "5");
  ScopedEnv e2("OSS_SCHEDULER", "fifo");
  ScopedEnv e3("OSS_BARRIER", "block");
  ScopedEnv e4("OSS_SPIN_ROUNDS", "17");
  ScopedEnv e5("OSS_RECORD_GRAPH", "1");
  ScopedEnv e6("OSS_TRACE", "true");
  ScopedEnv e7("OSS_IDLE", "sleep");
  ScopedEnv e8("OSS_STEAL_TRIES", "4");
  const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  EXPECT_EQ(cfg.num_threads, 5u);
  EXPECT_EQ(cfg.scheduler, oss::SchedulerPolicy::Fifo);
  EXPECT_EQ(cfg.wait_policy, oss::WaitPolicy::Blocking);
  EXPECT_EQ(cfg.spin_rounds, 17u);
  EXPECT_TRUE(cfg.record_graph);
  EXPECT_TRUE(cfg.record_trace);
  EXPECT_EQ(cfg.idle, oss::IdlePolicy::Sleep);
  EXPECT_EQ(cfg.steal_tries, 4u);
}

TEST(Config, TraceModeKnobAndLegacySpellings) {
  // New spellings select the mode directly...
  {
    ScopedEnv e("OSS_TRACE", "full");
    const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
    EXPECT_EQ(cfg.trace_mode, oss::TraceMode::Full);
    EXPECT_EQ(cfg.resolved_trace_mode(), oss::TraceMode::Full);
    EXPECT_TRUE(cfg.record_trace); // legacy bool stays in sync
  }
  {
    ScopedEnv e("OSS_TRACE", "exec");
    const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
    EXPECT_EQ(cfg.trace_mode, oss::TraceMode::Exec);
  }
  // ...and the historical boolean spellings still work (OSS_TRACE=1 was
  // "record run spans" — that is exactly exec mode).
  {
    ScopedEnv e("OSS_TRACE", "1");
    EXPECT_EQ(oss::RuntimeConfig::from_env().resolved_trace_mode(),
              oss::TraceMode::Exec);
  }
  {
    ScopedEnv e("OSS_TRACE", "off");
    const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
    EXPECT_EQ(cfg.resolved_trace_mode(), oss::TraceMode::Off);
    EXPECT_FALSE(cfg.record_trace);
  }
  {
    ScopedEnv e("OSS_TRACE", "verbose");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  // The legacy field alone resolves too (programmatic configs).
  oss::RuntimeConfig cfg;
  EXPECT_EQ(cfg.resolved_trace_mode(), oss::TraceMode::Off);
  cfg.record_trace = true;
  EXPECT_EQ(cfg.resolved_trace_mode(), oss::TraceMode::Exec);
}

TEST(Config, PinModeKnobAndLegacySpellings) {
  {
    ScopedEnv e("OSS_PIN", "compact");
    const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
    EXPECT_EQ(cfg.pin_mode, oss::PinMode::Compact);
    EXPECT_TRUE(cfg.pin); // legacy bool stays in sync
  }
  {
    ScopedEnv e("OSS_PIN", "scatter");
    EXPECT_EQ(oss::RuntimeConfig::from_env().pin_mode, oss::PinMode::Scatter);
  }
  {
    ScopedEnv e("OSS_PIN", "1"); // historical boolean: node-set pinning
    EXPECT_EQ(oss::RuntimeConfig::from_env().resolved_pin_mode(),
              oss::PinMode::Node);
  }
  {
    ScopedEnv e("OSS_PIN", "diagonal");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  oss::RuntimeConfig cfg;
  EXPECT_EQ(cfg.resolved_pin_mode(), oss::PinMode::Off);
  cfg.pin = true;
  EXPECT_EQ(cfg.resolved_pin_mode(), oss::PinMode::Node);
}

TEST(Config, TraceBufferAndCollectorKnobs) {
  {
    ScopedEnv e1("OSS_TRACE_BUF", "1024");
    ScopedEnv e2("OSS_TRACE_OUT", "/tmp/oss-test-trace.json");
    ScopedEnv e3("OSS_STATS_EVERY_MS", "250");
    const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
    EXPECT_EQ(cfg.trace_buffer, 1024u);
    EXPECT_EQ(cfg.trace_out, "/tmp/oss-test-trace.json");
    EXPECT_EQ(cfg.stats_every_ms, 250u);
  }
  {
    ScopedEnv e("OSS_TRACE_BUF", "0");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  const oss::RuntimeConfig defaults;
  EXPECT_EQ(defaults.trace_buffer, 32768u);
  EXPECT_TRUE(defaults.trace_out.empty());
  EXPECT_EQ(defaults.stats_every_ms, 0u);
}

TEST(Config, StealTriesMustBePositive) {
  {
    ScopedEnv e("OSS_STEAL_TRIES", "0");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv e("OSS_STEAL_TRIES", "two");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
}

TEST(Config, ParkIsTheDefaultIdlePolicy) {
  const oss::RuntimeConfig cfg;
  EXPECT_EQ(cfg.idle, oss::IdlePolicy::Park);
  EXPECT_EQ(oss::parse_idle_policy("park"), oss::IdlePolicy::Park);
  EXPECT_STREQ(oss::to_string(oss::IdlePolicy::Park), "park");
}

TEST(Config, FromEnvRejectsMalformedValues) {
  {
    ScopedEnv e("OSS_NUM_THREADS", "abc");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv e("OSS_NUM_THREADS", "0");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv e("OSS_RECORD_GRAPH", "maybe");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
}

TEST(Config, IntegerKnobsRejectNegativeValues) {
  // strtoull accepts "-1" and wraps it to ~2^64 — a runtime asked for
  // OSS_NUM_THREADS=-1 must throw, not try to start 18 quintillion workers.
  // Every integer knob funnels through the same parser; sweep them all.
  for (const char* knob :
       {"OSS_NUM_THREADS", "OSS_SPIN_ROUNDS", "OSS_STEAL_TRIES",
        "OSS_PRESSURE", "OSS_DEP_SHARDS", "OSS_TRACE_BUF",
        "OSS_STATS_EVERY_MS", "OSS_PROF_EVERY_MS", "OSS_WATCHDOG"}) {
    ScopedEnv e(knob, "-1");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument)
        << knob << "=-1";
  }
}

TEST(Config, IntegerKnobsRejectSignAndWhitespaceOddities) {
  for (const char* bad : {"-1", "+1", " 1", "1 ", "\t4", "0x10", "1e3", ""}) {
    ScopedEnv e("OSS_SPIN_ROUNDS", bad);
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument)
        << "OSS_SPIN_ROUNDS='" << bad << "'";
  }
  {
    ScopedEnv e("OSS_SPIN_ROUNDS", "42");
    EXPECT_EQ(oss::RuntimeConfig::from_env().spin_rounds, 42u);
  }
}

TEST(Config, IntegerKnobsRejectOutOfRangeValues) {
  ScopedEnv e("OSS_WATCHDOG", "99999999999999999999999999999999");
  EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
}

TEST(Config, ParseEnvSizeErrorNamesTheKnobAndValue) {
  try {
    oss::parse_env_size("OSS_NUM_THREADS", "-3");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("OSS_NUM_THREADS"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected an integer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("-3"), std::string::npos) << msg;
  }
  EXPECT_EQ(oss::parse_env_size("X", "0"), 0u);
  EXPECT_EQ(oss::parse_env_size("X", "123456"), 123456u);
}

TEST(Config, WithThreadsFactory) {
  const auto cfg = oss::RuntimeConfig::with_threads(3);
  EXPECT_EQ(cfg.num_threads, 3u);
  EXPECT_EQ(cfg.scheduler, oss::SchedulerPolicy::Locality); // default
}

TEST(Config, DepShardsDefaultsAndEnv) {
  const oss::RuntimeConfig def;
  EXPECT_EQ(def.dep_shards, 8u); // power-of-two default
  ScopedEnv e("OSS_DEP_SHARDS", "32");
  const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  EXPECT_EQ(cfg.dep_shards, 32u);
}

TEST(Config, DepShardsMustBeSmallPowerOfTwo) {
  for (const char* bad : {"0", "3", "12", "512", "eight"}) {
    ScopedEnv e("OSS_DEP_SHARDS", bad);
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument)
        << "OSS_DEP_SHARDS=" << bad;
  }
  for (const char* good : {"1", "2", "8", "256"}) {
    ScopedEnv e("OSS_DEP_SHARDS", good);
    EXPECT_NO_THROW(oss::RuntimeConfig::from_env())
        << "OSS_DEP_SHARDS=" << good;
  }
}

TEST(Config, NumaModeNamesRoundTrip) {
  using oss::NumaMode;
  EXPECT_EQ(oss::parse_numa_mode("bind"), NumaMode::Bind);
  EXPECT_EQ(oss::parse_numa_mode("interleave"), NumaMode::Interleave);
  EXPECT_EQ(oss::parse_numa_mode("off"), NumaMode::Off);
  EXPECT_STREQ(oss::to_string(NumaMode::Bind), "bind");
  EXPECT_STREQ(oss::to_string(NumaMode::Interleave), "interleave");
  EXPECT_STREQ(oss::to_string(NumaMode::Off), "off");
  const oss::RuntimeConfig cfg;
  EXPECT_EQ(cfg.numa, NumaMode::Bind); // default
  EXPECT_TRUE(cfg.topology.empty());   // default: sysfs discovery
}

TEST(Config, UnknownNumaModeListsValidOptions) {
  try {
    oss::parse_numa_mode("strict");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("strict"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bind"), std::string::npos) << msg;
    EXPECT_NE(msg.find("interleave"), std::string::npos) << msg;
    EXPECT_NE(msg.find("off"), std::string::npos) << msg;
    EXPECT_NE(msg.find("OSS_NUMA"), std::string::npos) << msg;
  }
}

TEST(Config, FromEnvReadsNumaKnobs) {
  ScopedEnv e1("OSS_NUMA", "interleave");
  ScopedEnv e2("OSS_TOPOLOGY", "2x4");
  const oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  EXPECT_EQ(cfg.numa, oss::NumaMode::Interleave);
  EXPECT_EQ(cfg.topology, "2x4");
}

TEST(Config, FromEnvRejectsBadNumaValues) {
  {
    ScopedEnv e("OSS_NUMA", "strict");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
  {
    // Malformed topology specs fail at from_env, not at first Runtime use.
    ScopedEnv e("OSS_TOPOLOGY", "not-a-spec");
    EXPECT_THROW(oss::RuntimeConfig::from_env(), std::invalid_argument);
  }
}

} // namespace
