// Dependency-semantics tests: the runtime must order tasks exactly as the
// declared in/out/inout regions require — including the paper's key
// behaviours: pipelining via spawn-before-resolve, manual renaming, and
// hidden dependencies.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include "env_config.hpp"

#include <atomic>
#include <array>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace {

TEST(Semantics, RawChainExecutesInOrder) {
  oss::Runtime rt(oss_test::env_config(4));
  double a = 1, b = 0, c = 0;
  rt.spawn({oss::in(a), oss::out(b)}, [&] { b = a * 2; });
  rt.spawn({oss::in(b), oss::out(c)}, [&] { c = b + 1; });
  rt.taskwait();
  EXPECT_EQ(c, 3.0);
}

TEST(Semantics, LongChainPreservesOrder) {
  oss::Runtime rt(oss_test::env_config(4));
  constexpr int kLen = 200;
  std::vector<int> order;
  int token = 0;
  for (int i = 0; i < kLen; ++i) {
    rt.spawn({oss::inout(token)}, [&order, i] { order.push_back(i); });
  }
  rt.taskwait();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kLen));
  for (int i = 0; i < kLen; ++i) EXPECT_EQ(order[i], i);
}

TEST(Semantics, ConcurrentReadersRunWithoutMutualOrdering) {
  oss::Runtime rt(oss_test::env_config(4));
  int shared = 7;
  std::atomic<int> sum{0};
  rt.spawn({oss::out(shared)}, [&] { shared = 10; });
  for (int i = 0; i < 8; ++i) {
    rt.spawn({oss::in(shared)}, [&] { sum += shared; });
  }
  rt.taskwait();
  EXPECT_EQ(sum.load(), 80); // all readers saw the writer's value
}

TEST(Semantics, WarHazardOrdersReaderBeforeWriter) {
  oss::Runtime rt(oss_test::env_config(4));
  int x = 5;
  int seen = 0;
  rt.spawn({oss::in(x)}, [&] {
    // Delay so a buggy runtime would let the writer overtake us.
    for (int i = 0; i < 50000; ++i) { volatile int sink = i; (void)sink; }
    seen = x;
  });
  rt.spawn({oss::out(x)}, [&] { x = 99; });
  rt.taskwait();
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(x, 99);
}

TEST(Semantics, WawHazardKeepsLastWriterLast) {
  oss::Runtime rt(oss_test::env_config(4));
  int x = 0;
  rt.spawn({oss::out(x)}, [&] {
    for (int i = 0; i < 50000; ++i) { volatile int sink = i; (void)sink; }
    x = 1;
  });
  rt.spawn({oss::out(x)}, [&] { x = 2; });
  rt.taskwait();
  EXPECT_EQ(x, 2);
}

TEST(Semantics, DiamondDependency) {
  oss::Runtime rt(oss_test::env_config(4));
  int a = 0, b = 0, c = 0, d = 0;
  rt.spawn({oss::out(a)}, [&] { a = 1; });
  rt.spawn({oss::in(a), oss::out(b)}, [&] { b = a + 10; });
  rt.spawn({oss::in(a), oss::out(c)}, [&] { c = a + 20; });
  rt.spawn({oss::in(b), oss::in(c), oss::out(d)}, [&] { d = b + c; });
  rt.taskwait();
  EXPECT_EQ(d, 32); // (1+10) + (1+20)
}

TEST(Semantics, DisjointArrayBlocksRunIndependently) {
  oss::Runtime rt(oss_test::env_config(4));
  std::vector<int> data(64, 0);
  for (int blk = 0; blk < 4; ++blk) {
    int* p = data.data() + blk * 16;
    rt.spawn({oss::out(p, 16)}, [p, blk] {
      for (int i = 0; i < 16; ++i) p[i] = blk;
    });
  }
  rt.taskwait();
  for (int blk = 0; blk < 4; ++blk) {
    for (int i = 0; i < 16; ++i) EXPECT_EQ(data[blk * 16 + i], blk);
  }
}

TEST(Semantics, OverlappingArrayWindowsAreOrdered) {
  // Writer covers [0,32); reader of [16,48) must see the written prefix.
  oss::Runtime rt(oss_test::env_config(4));
  std::vector<int> data(48, -1);
  rt.spawn({oss::out(data.data(), 32)}, [&] {
    for (int i = 0; i < 20000; ++i) { volatile int sink = i; (void)sink; }
    for (int i = 0; i < 32; ++i) data[i] = i;
  });
  std::array<int, 32> snapshot{};
  rt.spawn({oss::in(data.data() + 16, 32)}, [&] {
    for (int i = 0; i < 16; ++i) snapshot[i] = data[16 + i];
  });
  rt.taskwait();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(snapshot[i], 16 + i);
}

// --- The paper's §3 observations -------------------------------------------

// Observation 2: without renaming, reusing one buffer per iteration
// serializes the pipeline (WAR/WAW hazards); a circular buffer of size N >= 2
// lets iterations overlap.  We verify the *correctness* half here (both
// variants produce the right data) and the concurrency half via max-in-flight
// counters.
TEST(Semantics, SingleBufferSerializesPipeline) {
  oss::Runtime rt(oss_test::env_config(4));
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  int buffer = 0;

  auto body = [&] {
    const int now = ++in_flight;
    int expected = max_in_flight.load();
    while (now > expected && !max_in_flight.compare_exchange_weak(expected, now)) {}
    for (int i = 0; i < 10000; ++i) { volatile int sink = i; (void)sink; }
    --in_flight;
  };

  for (int k = 0; k < 16; ++k) {
    rt.spawn({oss::inout(buffer)}, body);
  }
  rt.taskwait();
  EXPECT_EQ(max_in_flight.load(), 1) << "inout on one buffer must serialize";
}

TEST(Semantics, CircularBufferRenamingExposesParallelism) {
  // Renamed "iterations" on two distinct buffer slots rendezvous: each
  // waits (bounded) for the other, which only terminates promptly if the
  // runtime allows them to be in flight together.  A serializing runtime
  // (the single-buffer case above) would run them one after the other and
  // the first would wait out the full deadline alone.
  oss::Runtime rt(oss_test::env_config(4));
  std::array<int, 2> buffers{};
  std::atomic<int> arrived{0};
  std::atomic<bool> overlapped{false};

  auto body = [&] {
    arrived++;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (arrived.load() >= 2) overlapped = true;
  };
  rt.spawn({oss::inout(buffers[0])}, body);
  rt.spawn({oss::inout(buffers[1])}, body);
  rt.taskwait();
  EXPECT_TRUE(overlapped.load())
      << "renamed iterations must be allowed to overlap";
}

// Observation 3: dependencies deliberately hidden from the access lists are
// invisible to the runtime and must be protected by critical sections.
TEST(Semantics, HiddenDependenciesNeedCritical) {
  oss::Runtime rt(oss_test::env_config(4));
  int counter = 0; // not declared in any access list
  for (int i = 0; i < 200; ++i) {
    rt.spawn({}, [&] {
      oss::Runtime::current()->critical("counter", [&] { counter++; });
    });
  }
  rt.taskwait();
  EXPECT_EQ(counter, 200);
}

// Pipelining (Listing 1 shape): tasks of iteration i are chained via data,
// instances of the same stage are chained via their inout context, and the
// whole loop can be spawned ahead of execution.
TEST(Semantics, TwoStagePipelineProducesCorrectResults) {
  oss::Runtime rt(oss_test::env_config(4));
  constexpr int kIters = 24;
  constexpr int N = 4; // circular buffer depth
  struct Ctx { int count = 0; } stage1_ctx, stage2_ctx;
  std::array<int, N> slot{};
  std::vector<int> results(kIters, 0);

  for (int k = 0; k < kIters; ++k) {
    int& s = slot[k % N];
    rt.spawn({oss::inout(stage1_ctx), oss::out(s)}, [&s, k] { s = k * k; });
    rt.spawn({oss::inout(stage2_ctx), oss::in(s)},
             [&results, &s, k] { results[k] = s + 1; });
  }
  rt.taskwait();
  for (int k = 0; k < kIters; ++k) EXPECT_EQ(results[k], k * k + 1);
}

TEST(Semantics, SpawnBeforeProducerFinishes) {
  // The consumer is spawned while the producer is still running — the
  // defining capability the paper contrasts with Cilk++/OpenMP-3 tasks.
  oss::Runtime rt(oss_test::env_config(2));
  std::atomic<bool> producer_started{false};
  std::atomic<bool> consumer_spawned{false};
  int data = 0;
  int result = 0;

  rt.spawn({oss::out(data)}, [&] {
    producer_started = true;
    while (!consumer_spawned.load()) std::this_thread::yield();
    data = 41;
  });
  while (!producer_started.load()) std::this_thread::yield();
  rt.spawn({oss::in(data), oss::out(result)}, [&] { result = data + 1; });
  consumer_spawned = true;
  rt.taskwait();
  EXPECT_EQ(result, 42);
}

} // namespace
