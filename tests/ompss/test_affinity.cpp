// Affinity routing: `.affinity()` / `.affinity_auto()` under all three
// scheduler policies, the per-node queue tiers, same-socket-first victim
// sweeps, the adaptive steal budget, and the tasks_local / tasks_remote /
// steals_remote counters that prove the placement.  Multi-node behaviour is
// driven through the OSS_TOPOLOGY fake-spec override ("2x2") so the tests
// run identically on single-node machines.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "env_config.hpp"

namespace {

oss::TaskPtr dummy_task(std::uint64_t id, int home = -1) {
  static auto ctx = std::make_shared<oss::TaskContext>();
  auto t = oss::make_task(id, [] {}, oss::AccessList{}, ctx, "");
  t->set_home_node(home);
  return t;
}

/// 2 nodes × 2 cpus, 4 workers: workers {0,1} on node 0, {2,3} on node 1.
std::unique_ptr<oss::Scheduler> make_2x2(oss::SchedulerPolicy policy,
                                         std::size_t steal_tries = 2) {
  return oss::Scheduler::create(policy, 4, steal_tries,
                                oss::Topology::from_spec("2x2"),
                                oss::NumaMode::Bind);
}

class AffinityPolicyTest
    : public ::testing::TestWithParam<oss::SchedulerPolicy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, AffinityPolicyTest,
                         ::testing::Values(oss::SchedulerPolicy::Fifo,
                                           oss::SchedulerPolicy::Locality,
                                           oss::SchedulerPolicy::WorkStealing),
                         [](const auto& info) {
                           return std::string(oss::to_string(info.param));
                         });

// --- direct Scheduler unit tests (single-threaded driving, as in
// test_scheduler.cpp) --------------------------------------------------------

TEST_P(AffinityPolicyTest, WorkerNodeMapMatchesTopology) {
  auto s = make_2x2(GetParam());
  EXPECT_EQ(s->worker_node(0), 0);
  EXPECT_EQ(s->worker_node(1), 0);
  EXPECT_EQ(s->worker_node(2), 1);
  EXPECT_EQ(s->worker_node(3), 1);
  EXPECT_EQ(s->worker_node(-1), -1);
  EXPECT_EQ(s->worker_node(99), -1);
}

TEST_P(AffinityPolicyTest, HomeNodeWorkerDrainsItsNodeQueueFirst) {
  auto s = make_2x2(GetParam());
  oss::Stats stats(4);
  // One plain task in the global tier, one home-node-1 task.
  s->enqueue_spawned(dummy_task(1), -1);
  s->enqueue_spawned(dummy_task(2, /*home=*/1), -1);
  // Worker 2 (node 1) prefers its node queue over the global queue.
  ASSERT_NE(s->pick(2, stats), nullptr);
  EXPECT_EQ(stats.snapshot().tasks_local, 1u);
  EXPECT_EQ(stats.snapshot().tasks_remote, 0u);
  // The remaining pick drains the plain global task: no extra accounting.
  ASSERT_NE(s->pick(2, stats), nullptr);
  EXPECT_EQ(s->pick(2, stats), nullptr);
  EXPECT_EQ(stats.snapshot().tasks_local, 1u);
  EXPECT_EQ(stats.snapshot().tasks_remote, 0u);
}

TEST_P(AffinityPolicyTest, OffNodeWorkersStillDrainForeignHomeQueues) {
  // Work conservation: a home-node task must not strand when its node's
  // workers never pick — a foreign worker takes it (counted remote).
  auto s = make_2x2(GetParam());
  oss::Stats stats(4);
  s->enqueue_unblocked(dummy_task(1, /*home=*/1), -1);
  const auto t = s->pick(0, stats); // worker 0 lives on node 0
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->id(), 1u);
  EXPECT_EQ(stats.snapshot().tasks_remote, 1u);
  EXPECT_EQ(stats.snapshot().tasks_local, 0u);
}

TEST_P(AffinityPolicyTest, PriorityOutranksAffinity) {
  auto s = make_2x2(GetParam());
  oss::Stats stats(4);
  auto hot = dummy_task(7, /*home=*/1);
  hot->set_priority(5);
  s->enqueue_spawned(std::move(hot), -1);
  s->enqueue_spawned(dummy_task(8, /*home=*/0), -1);
  // Worker 0: the priority task wins even though task 8 sits in worker 0's
  // own node queue.
  EXPECT_EQ(s->pick(0, stats)->id(), 7u);
  EXPECT_EQ(s->pick(0, stats)->id(), 8u);
}

TEST(AffinitySteal, SameSocketVictimsComeFirst) {
  // Locality/WorkStealing share the sweep; drive it via Locality.
  auto s = make_2x2(oss::SchedulerPolicy::Locality);
  oss::Stats stats(4);
  // Worker 1 (node 0, thief's socket-mate) and worker 2 (node 1) both hold
  // stealable work at their cold ends.
  s->enqueue_unblocked(dummy_task(10), 1);
  s->enqueue_unblocked(dummy_task(20), 2);
  // Worker 0 steals: the same-socket pass must hit worker 1 before any
  // cross-socket victim — deterministic because worker 1 is the only mate.
  const auto first = s->pick(0, stats);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id(), 10u);
  EXPECT_EQ(stats.snapshot().steals, 1u);
  EXPECT_EQ(stats.snapshot().steals_remote, 0u);
  // Socket drained: the next steal crosses to node 1 and is counted remote.
  const auto second = s->pick(0, stats);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id(), 20u);
  EXPECT_EQ(stats.snapshot().steals, 2u);
  EXPECT_EQ(stats.snapshot().steals_remote, 1u);
}

TEST(AffinitySteal, BudgetDecaysOnFailureAndRecoversOnSuccess) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::WorkStealing, 2,
                                  /*steal_tries=*/8);
  oss::Stats stats(2);
  EXPECT_EQ(s->steal_budget(0), 8u); // starts at the OSS_STEAL_TRIES ceiling
  // Sustained failed sweeps halve the budget down to a single sweep.
  (void)s->pick(0, stats);
  EXPECT_EQ(s->steal_budget(0), 4u);
  (void)s->pick(0, stats);
  EXPECT_EQ(s->steal_budget(0), 2u);
  (void)s->pick(0, stats);
  EXPECT_EQ(s->steal_budget(0), 1u);
  (void)s->pick(0, stats);
  EXPECT_EQ(s->steal_budget(0), 1u); // floor
  EXPECT_EQ(stats.snapshot().steals_failed, 4u);
  // A successful steal grows it again (never past the ceiling).
  s->enqueue_unblocked(dummy_task(1), 1);
  s->enqueue_unblocked(dummy_task(2), 1);
  ASSERT_NE(s->pick(0, stats), nullptr);
  EXPECT_EQ(s->steal_budget(0), 2u);
  ASSERT_NE(s->pick(0, stats), nullptr);
  EXPECT_EQ(s->steal_budget(0), 3u);
}

// --- end-to-end Runtime tests ----------------------------------------------

oss::RuntimeConfig fake_numa_config(oss::SchedulerPolicy policy) {
  // Env base (idle policy, steal tries, ... stay matrix-steerable); the
  // multi-node assertions below force the fake 2-node topology they
  // depend on.
  oss::RuntimeConfig cfg = oss_test::forced_topology_config(4, "2x2");
  cfg.scheduler = policy;
  return cfg;
}

TEST_P(AffinityPolicyTest, AffinityTasksAllRunAndAreAccounted) {
  oss::Runtime rt(fake_numa_config(GetParam()));
  ASSERT_EQ(rt.topology().num_nodes(), 2u);
  std::atomic<int> hits{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    rt.task("pinned")
        .affinity(i % 2)
        .spawn([&] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), kTasks);
  const auto stats = rt.stats();
  // Every affinity task is accounted exactly once at pick time; the split
  // between local and remote depends on scheduling, the sum does not.
  EXPECT_EQ(stats.tasks_local + stats.tasks_remote,
            static_cast<std::uint64_t>(kTasks));
}

TEST_P(AffinityPolicyTest, AffinityChainsStayCorrect) {
  oss::Runtime rt(fake_numa_config(GetParam()));
  constexpr int kChains = 8;
  constexpr int kLinks = 25;
  std::vector<long> acc(kChains, 0);
  for (int link = 0; link < kLinks; ++link) {
    for (int c = 0; c < kChains; ++c) {
      long* slot = &acc[c];
      rt.task("link")
          .inout(*slot)
          .affinity(c % 2)
          .spawn([slot, link] { *slot = *slot * 3 + link; });
    }
  }
  rt.taskwait();
  long expected = 0;
  for (int link = 0; link < kLinks; ++link) expected = expected * 3 + link;
  for (int c = 0; c < kChains; ++c) EXPECT_EQ(acc[c], expected) << "chain " << c;
}

TEST(Affinity, AutoDerivesHomeFromLargestRegisteredRegion) {
  oss::RuntimeConfig cfg = fake_numa_config(oss::SchedulerPolicy::Locality);
  oss::Runtime rt(cfg);
  const std::size_t page = oss::numa_page_size();
  oss::NumaBuffer on1(4 * page, 1);
  oss::NumaBuffer on0(page, 0);

  auto h = rt.task("auto")
               .in(on0.as<char>(), page)
               .inout(on1.as<char>(), 4 * page)
               .affinity_auto()
               .spawn([] {});
  h.wait();
  EXPECT_EQ(h.home_node(), 1);

  // No registered region → no home.
  int plain = 0;
  auto h2 = rt.task("none").inout(plain).affinity_auto().spawn([] {});
  h2.wait();
  EXPECT_EQ(h2.home_node(), -1);
}

TEST(Affinity, OutOfRangeNodeIsIgnored) {
  oss::Runtime rt(fake_numa_config(oss::SchedulerPolicy::Locality));
  auto h = rt.task("overshoot").affinity(7).spawn([] {});
  h.wait();
  EXPECT_EQ(h.home_node(), -1);
  EXPECT_EQ(rt.stats().tasks_local + rt.stats().tasks_remote, 0u);
}

TEST(Affinity, NegativeNodeThrows) {
  oss::Runtime rt(oss::RuntimeConfig::with_threads(1));
  EXPECT_THROW(rt.task("bad").affinity(-1), std::invalid_argument);
}

TEST(Affinity, SingleNodeMachinesBehaveExactlyAsWithoutAffinity) {
  // Default topology on this machine may be anything; force flat to model
  // the single-node case the acceptance criteria name.
  oss::RuntimeConfig cfg = oss_test::env_config(2);
  cfg.topology = "flat";
  oss::Runtime rt(cfg);
  ASSERT_TRUE(rt.topology().single_node());
  std::atomic<int> hits{0};
  for (int i = 0; i < 50; ++i) {
    rt.task("t").affinity(0).spawn([&] { hits++; });
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), 50);
  const auto stats = rt.stats();
  // Placement is structurally off: no hint survives spawn, no counter moves.
  EXPECT_EQ(stats.tasks_local, 0u);
  EXPECT_EQ(stats.tasks_remote, 0u);
  EXPECT_EQ(stats.steals_remote, 0u);
}

TEST(Affinity, NumaOffForcesFlatTopology) {
  oss::RuntimeConfig cfg = oss_test::env_config(2);
  cfg.topology = "2x2"; // would be multi-node...
  cfg.numa = oss::NumaMode::Off; // ...but off wins
  oss::Runtime rt(cfg);
  EXPECT_TRUE(rt.topology().single_node());
}

// --- chain affinity inheritance ---------------------------------------------

TEST_P(AffinityPolicyTest, UnhintedChainInheritsHeadHomeNode) {
  // The acceptance shape: one hinted head, then a chain of 8 dependent
  // unhinted tasks (inout on the same slot).  Every link must resolve to
  // the head's home node — pipelines stay on-socket without per-task hints.
  oss::Runtime rt(fake_numa_config(GetParam()));
  ASSERT_EQ(rt.topology().num_nodes(), 2u);
  long slot = 0;
  auto head = rt.task("head").inout(slot).affinity(1).spawn([&] { slot = 1; });
  std::vector<oss::TaskHandle> links;
  for (int i = 0; i < 8; ++i) {
    links.push_back(
        rt.task("link").inout(slot).spawn([&] { slot = slot * 2 + 1; }));
  }
  rt.taskwait();
  EXPECT_EQ(head.home_node(), 1);
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(links[i].home_node(), 1) << "link " << i;
  }
  EXPECT_EQ(slot, (1L << 9) - 1); // the chain also ran in order
}

TEST(AffinityInheritance, ExplicitHintOverridesInheritance) {
  oss::Runtime rt(fake_numa_config(oss::SchedulerPolicy::Locality));
  int slot = 0;
  rt.task("head").inout(slot).affinity(0).spawn([] {});
  auto rehint = rt.task("rehint").inout(slot).affinity(1).spawn([] {});
  auto tail = rt.task("tail").inout(slot).spawn([] {});
  rt.taskwait();
  // The re-hinted middle wins over what it would inherit, and the tail
  // inherits from its *nearest* hinted ancestor, not the chain head.
  EXPECT_EQ(rehint.home_node(), 1);
  EXPECT_EQ(tail.home_node(), 1);
}

TEST(AffinityInheritance, FlowsThroughExplicitAfterEdges) {
  oss::Runtime rt(fake_numa_config(oss::SchedulerPolicy::Locality));
  // Gate the head so it cannot finish before `.after(head)` is declared
  // (a done handle is a no-op edge, by design).
  std::atomic<bool> go{false};
  auto head = rt.task("head").affinity(1).spawn([&] {
    while (!go.load()) std::this_thread::yield();
  });
  auto next = rt.task("next").after(head).spawn([] {});
  go = true;
  rt.taskwait();
  EXPECT_EQ(next.home_node(), 1);
}

TEST(AffinityInheritance, SurvivesFinishedPredecessors) {
  // A producer that already retired creates no scheduling edge, but its
  // home node must still flow: the data the chain streams over does not
  // move when the producer finishes.
  oss::Runtime rt(fake_numa_config(oss::SchedulerPolicy::Locality));
  int slot = 0;
  auto head = rt.task("head").inout(slot).affinity(1).spawn([] {});
  head.wait(); // head is finished before the successor is even spawned
  auto tail = rt.task("tail").inout(slot).spawn([] {});
  rt.taskwait();
  EXPECT_EQ(tail.home_node(), 1);
}

TEST(AffinityInheritance, NothingToInheritStaysUnhinted) {
  oss::Runtime rt(fake_numa_config(oss::SchedulerPolicy::Locality));
  int slot = 0;
  rt.task("head").inout(slot).spawn([] {}); // no hint anywhere
  auto tail = rt.task("tail").inout(slot).spawn([] {});
  rt.taskwait();
  EXPECT_EQ(tail.home_node(), -1);
}

// --- home-queue pressure feedback -------------------------------------------

oss::TaskPtr soft_task(std::uint64_t id, int home) {
  oss::TaskPtr t = dummy_task(id);
  t->set_home_node(home, /*soft=*/true);
  return t;
}

TEST_P(AffinityPolicyTest, PressureWidensSoftPlacementsWhenOtherNodeParked) {
  auto s = oss::Scheduler::create(GetParam(), 4, 2,
                                  oss::Topology::from_spec("2x2"),
                                  oss::NumaMode::Bind, /*pressure=*/2);
  oss::Stats stats(4);
  s->on_worker_park(2); // a node-1 worker idles
  ASSERT_EQ(s->parked_on_node(1), 1u);
  // Fill node 0's queue to the threshold, then keep pushing soft tasks:
  // the overflow must divert to the global tier and be counted.
  for (int i = 0; i < 5; ++i) s->enqueue_spawned(soft_task(1 + i, 0), -1);
  EXPECT_EQ(s->overflow_placements(), 3u) << "pushes past depth 2 divert";
  // Hard hints never widen, whatever the pressure.
  s->enqueue_spawned(dummy_task(10, /*home=*/0), -1);
  EXPECT_EQ(s->overflow_placements(), 3u);
}

TEST(AffinityPressure, NoFeedbackWithoutParkedWorkersElsewhere) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::Locality, 4, 2,
                                  oss::Topology::from_spec("2x2"),
                                  oss::NumaMode::Bind, /*pressure=*/1);
  for (int i = 0; i < 8; ++i) s->enqueue_spawned(soft_task(1 + i, 0), -1);
  EXPECT_EQ(s->overflow_placements(), 0u) << "nobody idles: keep locality";
  // Parked workers on the task's own node don't count either.
  s->on_worker_park(0);
  s->enqueue_spawned(soft_task(20, 0), -1);
  EXPECT_EQ(s->overflow_placements(), 0u);
  // ...but an unpark/park pair on the other node flips the condition.
  s->on_worker_park(2);
  s->enqueue_spawned(soft_task(21, 0), -1);
  EXPECT_EQ(s->overflow_placements(), 1u);
}

TEST(AffinityPressure, ZeroThresholdDisablesFeedback) {
  // OSS_PRESSURE=0 turns the whole feedback off: no enqueue-side widening
  // AND no drain-side patience.
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::Locality, 4, 2,
                                  oss::Topology::from_spec("2x2"),
                                  oss::NumaMode::Bind, /*pressure=*/0);
  oss::Stats stats(4);
  s->on_worker_park(2);
  for (int i = 0; i < 8; ++i) s->enqueue_spawned(soft_task(1 + i, 0), -1);
  EXPECT_EQ(s->overflow_placements(), 0u);
  // Drain-side patience is off too: node 1 has a parked worker and queued
  // work, yet worker 0's foreign raid succeeds on the very first pick.
  auto t = oss::Scheduler::create(oss::SchedulerPolicy::Locality, 4, 2,
                                  oss::Topology::from_spec("2x2"),
                                  oss::NumaMode::Bind, /*pressure=*/0);
  t->on_worker_park(2);
  t->enqueue_spawned(soft_task(200, 1), -1);
  const oss::TaskPtr raided = t->pick(0, stats);
  ASSERT_NE(raided, nullptr) << "OSS_PRESSURE=0 must disable raid patience";
  EXPECT_EQ(raided->id(), 200u);
}

TEST(AffinityPressure, ParkCountsTrackParkUnpark) {
  auto s = make_2x2(oss::SchedulerPolicy::Locality);
  EXPECT_EQ(s->parked_on_node(0), 0u);
  s->on_worker_park(0);
  s->on_worker_park(1);
  s->on_worker_park(2);
  EXPECT_EQ(s->parked_on_node(0), 2u);
  EXPECT_EQ(s->parked_on_node(1), 1u);
  s->on_worker_unpark(0);
  s->on_worker_unpark(2);
  EXPECT_EQ(s->parked_on_node(0), 1u);
  EXPECT_EQ(s->parked_on_node(1), 0u);
  EXPECT_EQ(s->parked_on_node(-1), 0u);
  EXPECT_EQ(s->parked_on_node(9), 0u);
}

TEST(AffinityPressure, ForeignRaidWaitsOutParkedHomeWorkers) {
  // Drain-side patience: a worker raiding another node's queue while that
  // node has parked workers defers (bounded) before taking the task, and
  // the task is never stranded.
  auto s = make_2x2(oss::SchedulerPolicy::Locality);
  oss::Stats stats(4);
  s->on_worker_park(2); // node 1 has an idle worker...
  s->enqueue_spawned(dummy_task(1, /*home=*/1), -1); // ...and queued work
  // Worker 0 (node 0) defers a few picks, then work conservation wins.
  int deferred = 0;
  oss::TaskPtr got;
  for (int i = 0; i < 16 && !got; ++i) {
    got = s->pick(0, stats);
    if (!got) ++deferred;
  }
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id(), 1u);
  EXPECT_GE(deferred, 1) << "at least one pick of patience";
  EXPECT_LE(deferred, 8) << "patience is bounded";
  // Without parked workers on the home node the raid is immediate.
  s->on_worker_unpark(2);
  s->enqueue_spawned(dummy_task(2, /*home=*/1), -1);
  EXPECT_NE(s->pick(0, stats), nullptr);
}

TEST(Affinity, UndeferredTasksIgnoreAffinity) {
  // if(0) tasks run inline on the spawner; the hint must not detour them
  // through a queue (they are never enqueued at all).
  oss::Runtime rt(fake_numa_config(oss::SchedulerPolicy::Locality));
  std::atomic<int> hits{0};
  rt.task("inline").affinity(1).undeferred().spawn([&] { hits++; });
  EXPECT_EQ(hits.load(), 1) << "undeferred task must have run synchronously";
}

} // namespace
