// TaskOptions: priority scheduling and undeferred (`if(0)`) execution.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace {

TEST(Priority, HighPriorityTasksRunFirst) {
  // Single-threaded runtime: nothing executes until taskwait, so the drain
  // order is exactly the scheduler's order.
  oss::Runtime rt(1);
  std::vector<int> order;
  oss::TaskOptions normal;
  oss::TaskOptions urgent;
  urgent.priority = 1;

  for (int i = 0; i < 4; ++i) {
    rt.spawn({}, [&order, i] { order.push_back(i); }, normal);
  }
  rt.spawn({}, [&order] { order.push_back(100); }, urgent);
  rt.spawn({}, [&order] { order.push_back(101); }, urgent);
  rt.taskwait();

  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 100); // priority tasks drained before normal ones
  EXPECT_EQ(order[1], 101);
  EXPECT_EQ(order[2], 0);
}

TEST(Priority, RespectsDependenciesDespitePriority) {
  oss::Runtime rt(2);
  int x = 0;
  int seen = -1;
  oss::TaskOptions urgent;
  urgent.priority = 5;
  rt.spawn({oss::out(x)}, [&] {
    for (int j = 0; j < 50000; ++j) { volatile int sink = j; (void)sink; }
    x = 7;
  });
  // High priority cannot jump over a RAW dependency.
  rt.spawn({oss::in(x)}, [&] { seen = x; }, urgent);
  rt.taskwait();
  EXPECT_EQ(seen, 7);
}

TEST(Priority, UnblockedHighPriorityGoesToFrontQueue) {
  oss::Runtime rt(1);
  std::vector<int> order;
  int token = 0;
  oss::TaskOptions urgent;
  urgent.priority = 2;
  // Producer (normal), filler tasks (normal), dependent urgent task.
  rt.spawn({oss::out(token)}, [&order] { order.push_back(1); });
  for (int i = 0; i < 3; ++i) {
    rt.spawn({}, [&order] { order.push_back(0); });
  }
  rt.spawn({oss::in(token)}, [&order] { order.push_back(2); }, urgent);
  rt.taskwait();
  ASSERT_EQ(order.size(), 5u);
  // Producer first (FIFO among normals), then the unblocked urgent task
  // must run before the remaining fillers.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Undeferred, ExecutesInlineOnSpawningThread) {
  oss::Runtime rt(2);
  const auto self = std::this_thread::get_id();
  std::thread::id ran_on;
  oss::TaskOptions opts;
  opts.deferred = false;
  rt.spawn({}, [&] { ran_on = std::this_thread::get_id(); }, opts);
  EXPECT_EQ(ran_on, self); // already done when spawn returns
}

TEST(Undeferred, WaitsForDependenciesFirst) {
  oss::Runtime rt(2);
  int x = 0;
  int seen = -1;
  rt.spawn({oss::out(x)}, [&] {
    for (int j = 0; j < 100000; ++j) { volatile int sink = j; (void)sink; }
    x = 9;
  });
  oss::TaskOptions opts;
  opts.deferred = false;
  rt.spawn({oss::in(x)}, [&] { seen = x; }, opts);
  EXPECT_EQ(seen, 9); // dependency resolved before inline execution
  rt.taskwait();
}

TEST(Undeferred, SingleThreadNoDeadlock) {
  // With one thread, the spawner itself must execute the blocking
  // producer while waiting for the undeferred task's dependency.
  oss::Runtime rt(1);
  int x = 0;
  int seen = -1;
  rt.spawn({oss::out(x)}, [&] { x = 3; });
  oss::TaskOptions opts;
  opts.deferred = false;
  rt.spawn({oss::in(x)}, [&] { seen = x; }, opts);
  EXPECT_EQ(seen, 3);
}

TEST(Undeferred, CountsTowardChildAccounting) {
  oss::Runtime rt(2);
  oss::TaskOptions opts;
  opts.deferred = false;
  std::atomic<int> hits{0};
  rt.spawn({}, [&] { hits++; }, opts);
  rt.taskwait(); // must not hang (child already finished)
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

TEST(Undeferred, ExceptionSurfacesAtNextTaskwait) {
  oss::Runtime rt(2);
  oss::TaskOptions opts;
  opts.deferred = false;
  rt.spawn({}, [] { throw std::runtime_error("inline boom"); }, opts);
  EXPECT_THROW(rt.taskwait(), std::runtime_error);
}

} // namespace
