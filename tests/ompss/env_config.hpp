// env_config.hpp — shared test-config helper for the env-matrix harness.
//
// tests/run_matrix.sh reruns the stress / affinity / runtime-semantics
// suites across the cross-product of the runtime's knobs
// (OSS_SCHEDULER × OSS_IDLE × OSS_NUMA × OSS_TOPOLOGY).  For the matrix to
// mean anything the suites must *honor* those variables — so tests build
// their RuntimeConfig through these helpers instead of the env-blind
// `Runtime(threads)` shortcut.  A test that requires a specific knob value
// (e.g. a forced "2x2" fake topology for multi-node assertions) overrides
// the field after calling the helper; the matrix then varies everything the
// test left free.
#pragma once

#include "ompss/config.hpp"

namespace oss_test {

/// RuntimeConfig from the OSS_* environment with the thread count pinned
/// (tests need deterministic worker counts; everything else stays steerable
/// by the matrix).
inline oss::RuntimeConfig env_config(std::size_t threads) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  return cfg;
}

/// env_config with a forced topology, keeping NUMA placement alive even
/// when the matrix sets OSS_NUMA=off — the shared base of every test that
/// asserts multi-node behavior against a fake spec ("2x2", ...).
inline oss::RuntimeConfig forced_topology_config(std::size_t threads,
                                                 const char* spec) {
  oss::RuntimeConfig cfg = env_config(threads);
  cfg.topology = spec;
  if (cfg.numa == oss::NumaMode::Off) cfg.numa = oss::NumaMode::Bind;
  return cfg;
}

} // namespace oss_test
