// Idle policies: correctness under spin/yield/sleep idle behaviour, and the
// qualitative CPU-consumption contrast the paper's §4 discusses.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sys/resource.h>
#include <thread>

namespace {

class IdlePolicyTest : public ::testing::TestWithParam<oss::IdlePolicy> {};

TEST_P(IdlePolicyTest, TasksCompleteUnderEveryIdlePolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.idle = GetParam();
  oss::Runtime rt(cfg);
  std::atomic<int> hits{0};
  for (int i = 0; i < 200; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 200);

  // Wake-up after an idle period must also work (sleep policy backs off).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 50; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 250);
}

TEST_P(IdlePolicyTest, DependentChainsCompleteUnderEveryIdlePolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.idle = GetParam();
  oss::Runtime rt(cfg);
  int token = 0;
  std::vector<int> order;
  for (int i = 0; i < 40; ++i) {
    rt.spawn({oss::inout(token)}, [&order, i] { order.push_back(i); });
  }
  rt.taskwait();
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(order[i], i);
}

INSTANTIATE_TEST_SUITE_P(AllIdlePolicies, IdlePolicyTest,
                         ::testing::Values(oss::IdlePolicy::Spin,
                                           oss::IdlePolicy::Yield,
                                           oss::IdlePolicy::Sleep,
                                           oss::IdlePolicy::Park),
                         [](const auto& info) {
                           return std::string(oss::to_string(info.param));
                         });

TEST(IdlePolicy, NamesRoundTrip) {
  EXPECT_EQ(oss::parse_idle_policy("spin"), oss::IdlePolicy::Spin);
  EXPECT_EQ(oss::parse_idle_policy("yield"), oss::IdlePolicy::Yield);
  EXPECT_EQ(oss::parse_idle_policy("sleep"), oss::IdlePolicy::Sleep);
  EXPECT_THROW(oss::parse_idle_policy("nap"), std::invalid_argument);
  EXPECT_STREQ(oss::to_string(oss::IdlePolicy::Sleep), "sleep");
}

namespace {
double process_cpu_seconds() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_utime.tv_sec + u.ru_stime.tv_sec) +
         1e-6 * static_cast<double>(u.ru_utime.tv_usec + u.ru_stime.tv_usec);
}
} // namespace

TEST(IdlePolicy, SleepingWorkersBurnLessCpuWhenIdle) {
  // The paper: polling keeps "all used cores always fully loaded even if
  // there is insufficient work".  Sleeping idle workers must consume
  // measurably less CPU over an idle window.  (Qualitative: generous
  // factor, single-core container.)
  auto measure = [](oss::IdlePolicy p) {
    oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
    cfg.idle = p;
    oss::Runtime rt(cfg);
    const double before = process_cpu_seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return process_cpu_seconds() - before;
  };
  const double sleep_cpu = measure(oss::IdlePolicy::Sleep);
  EXPECT_LT(sleep_cpu, 0.12)
      << "sleeping idle workers should be mostly off-CPU over a 150 ms window";
}

TEST(IdlePolicy, ParkedWorkersBurnNoCpuWhenIdle) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.idle = oss::IdlePolicy::Park;
  oss::Runtime rt(cfg);
  // Let the workers run out of spin budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before = process_cpu_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const double burned = process_cpu_seconds() - before;
  EXPECT_LT(burned, 0.05)
      << "parked workers should be fully off-CPU over a 150 ms idle window";
}

TEST(IdlePolicy, ParkAndWakeupCountersMove) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.idle = oss::IdlePolicy::Park;
  oss::Runtime rt(cfg);
  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // workers park
  EXPECT_GT(rt.stats().parks, 0u);

  // A spawn burst after an idle period must wake parked workers and drain.
  std::atomic<int> hits{0};
  for (int i = 0; i < 200; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 200);
  EXPECT_GT(rt.stats().wakeups, 0u);
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

} // namespace
