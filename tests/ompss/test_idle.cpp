// Idle policies: correctness under spin/yield/sleep idle behaviour, and the
// qualitative CPU-consumption contrast the paper's §4 discusses.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sys/resource.h>
#include <thread>
#include <vector>

namespace {

class IdlePolicyTest : public ::testing::TestWithParam<oss::IdlePolicy> {};

TEST_P(IdlePolicyTest, TasksCompleteUnderEveryIdlePolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.idle = GetParam();
  oss::Runtime rt(cfg);
  std::atomic<int> hits{0};
  for (int i = 0; i < 200; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 200);

  // Wake-up after an idle period must also work (sleep policy backs off).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 50; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 250);
}

TEST_P(IdlePolicyTest, DependentChainsCompleteUnderEveryIdlePolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.idle = GetParam();
  oss::Runtime rt(cfg);
  int token = 0;
  std::vector<int> order;
  for (int i = 0; i < 40; ++i) {
    rt.spawn({oss::inout(token)}, [&order, i] { order.push_back(i); });
  }
  rt.taskwait();
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(order[i], i);
}

INSTANTIATE_TEST_SUITE_P(AllIdlePolicies, IdlePolicyTest,
                         ::testing::Values(oss::IdlePolicy::Spin,
                                           oss::IdlePolicy::Yield,
                                           oss::IdlePolicy::Sleep,
                                           oss::IdlePolicy::Park),
                         [](const auto& info) {
                           return std::string(oss::to_string(info.param));
                         });

TEST(IdlePolicy, NamesRoundTrip) {
  EXPECT_EQ(oss::parse_idle_policy("spin"), oss::IdlePolicy::Spin);
  EXPECT_EQ(oss::parse_idle_policy("yield"), oss::IdlePolicy::Yield);
  EXPECT_EQ(oss::parse_idle_policy("sleep"), oss::IdlePolicy::Sleep);
  EXPECT_THROW(oss::parse_idle_policy("nap"), std::invalid_argument);
  EXPECT_STREQ(oss::to_string(oss::IdlePolicy::Sleep), "sleep");
}

namespace {
double process_cpu_seconds() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_utime.tv_sec + u.ru_stime.tv_sec) +
         1e-6 * static_cast<double>(u.ru_utime.tv_usec + u.ru_stime.tv_usec);
}
} // namespace

TEST(IdlePolicy, SleepingWorkersBurnLessCpuWhenIdle) {
  // The paper: polling keeps "all used cores always fully loaded even if
  // there is insufficient work".  Sleeping idle workers must consume
  // measurably less CPU over an idle window.  (Qualitative: generous
  // factor, single-core container.)
  auto measure = [](oss::IdlePolicy p) {
    oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
    cfg.idle = p;
    oss::Runtime rt(cfg);
    const double before = process_cpu_seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return process_cpu_seconds() - before;
  };
  const double sleep_cpu = measure(oss::IdlePolicy::Sleep);
  EXPECT_LT(sleep_cpu, 0.12)
      << "sleeping idle workers should be mostly off-CPU over a 150 ms window";
}

TEST(IdlePolicy, ParkedWorkersBurnNoCpuWhenIdle) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.idle = oss::IdlePolicy::Park;
  oss::Runtime rt(cfg);
  // Let the workers run out of spin budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before = process_cpu_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const double burned = process_cpu_seconds() - before;
  EXPECT_LT(burned, 0.05)
      << "parked workers should be fully off-CPU over a 150 ms idle window";
}

TEST(EventCount, NotifyManyWakesAtMostNAndReportsZeroWhenIdle) {
  oss::EventCount ec;
  EXPECT_EQ(ec.notify_many(4), 0u) << "no waiters, nothing to signal";

  std::atomic<int> awake{0};
  std::vector<std::thread> sleepers;
  for (int i = 0; i < 3; ++i) {
    sleepers.emplace_back([&] {
      const std::uint64_t key = ec.prepare_wait();
      ec.wait(key);
      awake.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Wait until all three are registered before the batch pass, so the
  // min(n, waiters) arithmetic is deterministic.  (prepare_wait precedes
  // the cv sleep; the epoch bump covers that window by design.)
  for (int spin = 0; spin < 2000 && ec.waiters() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(ec.waiters(), 3u);
  EXPECT_EQ(ec.notify_many(2), 2u)
      << "batch pass must report min(n, waiters)";
  // Release everyone and join; all three must eventually run.
  for (int spin = 0; spin < 2000 && awake.load() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ec.notify_all();
  }
  for (auto& t : sleepers) t.join();
  EXPECT_EQ(awake.load(), 3);
}

TEST(IdlePolicy, BatchUnblockWakesParkedWorkersInOnePass) {
  // A producer whose completion readies N dependents at once must wake
  // min(N, parked) workers via one eventcount pass (not N serial
  // notify_one calls) — and all dependents must run.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.idle = oss::IdlePolicy::Park;
  cfg.spin_rounds = 4; // park quickly so the burst actually finds sleepers
  oss::Runtime rt(cfg);

  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // workers park
  const auto before = rt.stats();
  EXPECT_GT(before.parks, 0u);

  std::atomic<int> hits{0};
  auto producer = rt.task("producer").spawn(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    rt.task("burst").after(producer).spawn(
        [&] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), kBurst);

  const auto after = rt.stats();
  EXPECT_GT(after.wakeups, before.wakeups)
      << "the unblock burst must have signalled parked workers";
}

TEST(IdlePolicy, NodeAwareWakeupDrainsHomeNodeBursts) {
  // Node-aware wakeup: on a multi-node topology each node has its own park
  // gate, and a home-node enqueue bumps that node's gate first.  Functional
  // check under a fake 2x2 topology: bursts aimed at each node must wake
  // parked workers and drain completely.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.idle = oss::IdlePolicy::Park;
  cfg.spin_rounds = 4;
  cfg.topology = "2x2";
  oss::Runtime rt(cfg);
  if (rt.topology().num_nodes() != 2) GTEST_SKIP() << "fake topology rejected";

  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // workers park
  const auto before = rt.stats();
  EXPECT_GT(before.parks, 0u);

  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) {
    rt.task("home").affinity(i % 2).spawn(
        [&] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), 100);
  EXPECT_GT(rt.stats().wakeups, before.wakeups);
}

TEST(IdlePolicy, NodeWakeupFallsBackWhenHomeNodeHasNoSleepers) {
  // Work conservation: a home-node enqueue whose node has no parked worker
  // must fall back to the other nodes' gates instead of losing the wakeup.
  // 2 workers on a 2x2 topology: worker 0 is the owner (never parks), so
  // node 0's gate has no sleepers; an affinity(0) burst can only be drained
  // if the wakeup falls through to the node-1 worker (or the owner helps).
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.idle = oss::IdlePolicy::Park;
  cfg.spin_rounds = 4;
  cfg.topology = "2x2";
  oss::Runtime rt(cfg);
  if (rt.topology().num_nodes() != 2) GTEST_SKIP() << "fake topology rejected";

  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // worker 1 parks
  std::atomic<int> hits{0};
  for (int i = 0; i < 50; ++i) {
    rt.task("n0").affinity(0).spawn(
        [&] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  // Do not help from the owner thread until the deadline passed: the pool
  // worker must be able to drain a foreign-node burst on its own.
  for (int spin = 0; spin < 2000 && hits.load() < 50; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hits.load(), 50)
      << "node-0 burst stranded: wakeup did not fall back to other gates";
  rt.taskwait();
}

TEST(IdlePolicy, ParkAndWakeupCountersMove) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.idle = oss::IdlePolicy::Park;
  oss::Runtime rt(cfg);
  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // workers park
  EXPECT_GT(rt.stats().parks, 0u);

  // A spawn burst after an idle period must wake parked workers and drain.
  std::atomic<int> hits{0};
  for (int i = 0; i < 200; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 200);
  EXPECT_GT(rt.stats().wakeups, 0u);
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

} // namespace
