// Trace analysis: utilization, per-worker and per-label aggregates.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

namespace {

TEST(TraceAnalysis, EmptyTraceYieldsEmptySummary) {
  oss::TraceRecorder rec;
  const oss::TraceSummary s = oss::analyze_trace(rec);
  EXPECT_EQ(s.events, 0u);
  EXPECT_EQ(s.makespan_us, 0u);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);
}

TEST(TraceAnalysis, HandComputedSummary) {
  oss::TraceRecorder rec;
  rec.record(0, 1, "alpha", 0, 10);
  rec.record(0, 2, "alpha", 10, 30);
  rec.record(1, 3, "beta", 5, 25);

  const oss::TraceSummary s = oss::analyze_trace(rec);
  EXPECT_EQ(s.events, 3u);
  EXPECT_EQ(s.makespan_us, 30u);
  EXPECT_EQ(s.busy_us, 10u + 20u + 20u);

  ASSERT_EQ(s.workers.size(), 2u);
  EXPECT_EQ(s.workers[0].worker, 0);
  EXPECT_EQ(s.workers[0].tasks, 2u);
  EXPECT_EQ(s.workers[0].busy_us, 30u);
  EXPECT_EQ(s.workers[1].busy_us, 20u);

  ASSERT_EQ(s.labels.size(), 2u);
  EXPECT_EQ(s.labels[0].label, "alpha"); // 30us total > beta's 20us
  EXPECT_EQ(s.labels[0].count, 2u);
  EXPECT_EQ(s.labels[0].min_us, 10u);
  EXPECT_EQ(s.labels[0].max_us, 20u);
  EXPECT_DOUBLE_EQ(s.labels[0].mean_us(), 15.0);

  // utilization = 50 / (30 * 2)
  EXPECT_NEAR(s.utilization(), 50.0 / 60.0, 1e-12);
}

TEST(TraceAnalysis, UnlabeledTasksGrouped) {
  oss::TraceRecorder rec;
  rec.record(0, 1, "", 0, 5);
  rec.record(0, 2, "", 5, 9);
  const oss::TraceSummary s = oss::analyze_trace(rec);
  ASSERT_EQ(s.labels.size(), 1u);
  EXPECT_EQ(s.labels[0].label, "(unlabeled)");
  EXPECT_EQ(s.labels[0].count, 2u);
}

TEST(TraceAnalysis, EndToEndFromRuntime) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_trace = true;
  oss::Runtime rt(cfg);
  for (int i = 0; i < 20; ++i) {
    rt.spawn({}, [] { for (int j = 0; j < 5000; ++j) { volatile int sink = j; (void)sink; } }, "work");
  }
  rt.taskwait();
  ASSERT_NE(rt.trace_recorder(), nullptr);
  const oss::TraceSummary s = oss::analyze_trace(*rt.trace_recorder());
  EXPECT_EQ(s.events, 20u);
  EXPECT_GT(s.makespan_us, 0u);
  ASSERT_FALSE(s.labels.empty());
  EXPECT_EQ(s.labels[0].label, "work");
  EXPECT_EQ(s.labels[0].count, 20u);
  const std::string report = s.to_string();
  EXPECT_NE(report.find("utilization"), std::string::npos);
  EXPECT_NE(report.find("work"), std::string::npos);
}

TEST(TraceAnalysis, RecorderDisabledByDefault) {
  oss::Runtime rt(2);
  EXPECT_EQ(rt.trace_recorder(), nullptr);
}

} // namespace
