// Property/fuzz test for dependency-chain affinity inheritance: random task
// chains with sparse explicit hints must satisfy one invariant — every
// task's resolved home_node() equals the nearest hinted ancestor's home
// (or -1 when no ancestor carries a hint).  Failures print the generating
// seed so the exact chain can be replayed.
//
// Inheritance is a *max-bytes vote* over the dependency predecessors that
// donate a home (docs/numa.md): with several hinted predecessors, the node
// backing the most overlap bytes wins (ties keep the first discovered).
// For a chain every link has exactly one predecessor, so the vote
// degenerates to "inherit the previous link's resolved home" and the
// nearest-hinted-ancestor invariant below is unchanged; the
// AffinityInheritanceVoting tests pin the multi-predecessor behaviour.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "env_config.hpp"

namespace {

oss::RuntimeConfig two_node_config(std::size_t threads) {
  return oss_test::forced_topology_config(threads, "2x2");
}

/// Spawns `links` chained tasks (inout on one slot per chain) whose hints
/// are decided by `rng` with probability `hint_ppm`/1e6, and checks the
/// invariant for every link.  Chains use data deps — the mechanism real
/// pipelines use — so the test also exercises edge discovery through the
/// dep domain's interval map.
void run_chain_property(std::uint32_t seed, std::size_t threads, int chains,
                        int links, int hint_ppm) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threads=" + std::to_string(threads) +
               " chains=" + std::to_string(chains) +
               " links=" + std::to_string(links) +
               " hint_ppm=" + std::to_string(hint_ppm));
  std::mt19937 rng(seed);
  oss::Runtime rt(two_node_config(threads));
  ASSERT_EQ(rt.topology().num_nodes(), 2u);

  std::uniform_int_distribution<int> ppm(0, 999'999);
  std::uniform_int_distribution<int> node(0, 1);

  std::vector<long> slots(static_cast<std::size_t>(chains), 0);
  std::vector<std::vector<oss::TaskHandle>> handles(
      static_cast<std::size_t>(chains));
  std::vector<std::vector<int>> expected(static_cast<std::size_t>(chains));

  for (int l = 0; l < links; ++l) {
    for (int c = 0; c < chains; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      long* slot = &slots[ci];
      auto b = rt.task("link");
      b.inout(*slot);
      int want = expected[ci].empty() ? -1 : expected[ci].back();
      if (ppm(rng) < hint_ppm) {
        const int n = node(rng);
        b.affinity(n);
        want = n; // nearest hinted ancestor is now this task itself
      }
      expected[ci].push_back(want);
      handles[ci].push_back(b.spawn([slot] { *slot += 1; }));
    }
  }
  rt.taskwait();

  for (int c = 0; c < chains; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    EXPECT_EQ(slots[ci], links) << "chain " << c << " lost links";
    for (int l = 0; l < links; ++l) {
      const auto li = static_cast<std::size_t>(l);
      ASSERT_EQ(handles[ci][li].home_node(), expected[ci][li])
          << "chain " << c << " link " << l << " seed " << seed
          << " (replay: run_chain_property(" << seed << ", " << threads
          << ", " << chains << ", " << links << ", " << hint_ppm << "))";
    }
  }
}

TEST(AffinityInheritanceProperty, SparseHintsFixedSeeds) {
  // Deterministic sweep: sparse (5%), medium (25%), and hint-free chains.
  run_chain_property(1u, 4, 4, 40, 50'000);
  run_chain_property(2u, 4, 4, 40, 250'000);
  run_chain_property(3u, 2, 2, 60, 0);
  run_chain_property(4u, 1, 1, 100, 100'000); // single thread: fully ordered
}

TEST(AffinityInheritanceProperty, RandomSeeds) {
  // Fresh seeds every run; the failure message carries the replay recipe.
  std::random_device rd;
  for (int round = 0; round < 3; ++round) {
    const std::uint32_t seed = rd();
    run_chain_property(seed, 4, 3, 30, 120'000);
  }
}

TEST(AffinityInheritanceVoting, MaxBytesPredecessorWins) {
  // Two hinted producers of different region sizes; the unhinted consumer
  // reading both must inherit the node backing the most bytes — even
  // though the smaller producer's edge is discovered first.
  oss::Runtime rt(two_node_config(2));
  ASSERT_EQ(rt.topology().num_nodes(), 2u);
  std::vector<char> small(64), large(256);
  auto a = rt.task("small")
               .out(small.data(), small.size())
               .affinity(0)
               .spawn([] {});
  auto b = rt.task("large")
               .out(large.data(), large.size())
               .affinity(1)
               .spawn([] {});
  auto c = rt.task("reduce")
               .in(small.data(), small.size()) // node-0 donor found first
               .in(large.data(), large.size())
               .spawn([] {});
  rt.taskwait();
  EXPECT_EQ(a.home_node(), 0);
  EXPECT_EQ(b.home_node(), 1);
  EXPECT_EQ(c.home_node(), 1) << "256 donated bytes must outvote 64";
}

TEST(AffinityInheritanceVoting, TieKeepsFirstDiscoveredPredecessor) {
  oss::Runtime rt(two_node_config(2));
  ASSERT_EQ(rt.topology().num_nodes(), 2u);
  std::vector<char> left(128), right(128);
  auto a = rt.task("left")
               .out(left.data(), left.size())
               .affinity(1)
               .spawn([] {});
  auto b = rt.task("right")
               .out(right.data(), right.size())
               .affinity(0)
               .spawn([] {});
  auto c = rt.task("consumer")
               .in(left.data(), left.size())
               .in(right.data(), right.size())
               .spawn([] {});
  rt.taskwait();
  (void)a;
  (void)b;
  EXPECT_EQ(c.home_node(), 1) << "equal bytes: first discovered donor wins";
}

TEST(AffinityInheritanceVoting, ExplicitHandleEdgeDonatesOnlyAsFallback) {
  // A handle edge has no overlap bytes; it donates a home only when the
  // region vote produced nothing.
  oss::Runtime rt(two_node_config(2));
  ASSERT_EQ(rt.topology().num_nodes(), 2u);
  long slot = 0;
  auto hinted = rt.task("hinted").affinity(1).spawn([] {});
  auto fallback = rt.task("fallback").after(hinted).spawn([] {});
  rt.taskwait();
  EXPECT_EQ(fallback.home_node(), 1) << "no region donors: handle edge wins";

  auto writer = rt.task("writer").inout(slot).affinity(0).spawn([] {});
  auto hinted2 = rt.task("hinted2").affinity(1).spawn([] {});
  auto both = rt.task("both").inout(slot).after(hinted2).spawn([] {});
  rt.taskwait();
  (void)writer;
  EXPECT_EQ(both.home_node(), 0)
      << "a region donor must outrank the explicit-edge fallback";
}

TEST(AffinityInheritanceProperty, HintsDissolveOnFlatTopology) {
  // Same generator on a single-node topology: every resolved home is -1,
  // hinted or not — the invariant's degenerate form.
  oss::RuntimeConfig cfg = oss_test::env_config(2);
  cfg.topology = "flat";
  oss::Runtime rt(cfg);
  long slot = 0;
  std::vector<oss::TaskHandle> hs;
  for (int i = 0; i < 20; ++i) {
    auto b = rt.task("link");
    b.inout(slot);
    if (i % 3 == 0) b.affinity(i % 2);
    hs.push_back(b.spawn([&slot] { slot += 1; }));
  }
  rt.taskwait();
  for (const auto& h : hs) EXPECT_EQ(h.home_node(), -1);
}

} // namespace
