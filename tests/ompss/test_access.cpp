// Unit tests for oss::Access construction helpers and overlap logic.
#include "ompss/access.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

namespace {

TEST(Access, ModeNames) {
  EXPECT_STREQ(oss::mode_name(oss::Mode::In), "in");
  EXPECT_STREQ(oss::mode_name(oss::Mode::Out), "out");
  EXPECT_STREQ(oss::mode_name(oss::Mode::InOut), "inout");
}

TEST(Access, ObjectHelpersCoverObjectRepresentation) {
  double x = 0.0;
  const oss::Access a = oss::in(x);
  EXPECT_EQ(a.begin, reinterpret_cast<std::uintptr_t>(&x));
  EXPECT_EQ(a.size(), sizeof(double));
  EXPECT_EQ(a.mode, oss::Mode::In);

  const oss::Access b = oss::out(x);
  EXPECT_EQ(b.mode, oss::Mode::Out);
  const oss::Access c = oss::inout(x);
  EXPECT_EQ(c.mode, oss::Mode::InOut);
}

TEST(Access, PointerCountHelpersCoverElements) {
  std::array<int, 16> buf{};
  const oss::Access a = oss::in(buf.data(), 4);
  EXPECT_EQ(a.size(), 4 * sizeof(int));
  const oss::Access b = oss::out(buf.data() + 8, 8);
  EXPECT_EQ(b.begin, reinterpret_cast<std::uintptr_t>(buf.data() + 8));
  EXPECT_EQ(b.size(), 8 * sizeof(int));
}

TEST(Access, SpanHelpers) {
  std::vector<float> v(10);
  const oss::Access a = oss::inout(std::span<float>(v));
  EXPECT_EQ(a.begin, reinterpret_cast<std::uintptr_t>(v.data()));
  EXPECT_EQ(a.size(), 10 * sizeof(float));
  EXPECT_EQ(a.mode, oss::Mode::InOut);
}

TEST(Access, OverlapDetection) {
  char buf[100];
  const oss::Access a = oss::region(buf, 50, oss::Mode::In);
  const oss::Access b = oss::region(buf + 25, 50, oss::Mode::Out);
  const oss::Access c = oss::region(buf + 50, 25, oss::Mode::In);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c)); // [0,50) vs [50,75): half-open, adjacent
  EXPECT_TRUE(b.overlaps(c));
}

TEST(Access, ZeroLengthIsEmptyAndOverlapsNothing) {
  char buf[8];
  const oss::Access z = oss::region(buf, 0, oss::Mode::InOut);
  EXPECT_TRUE(z.empty());
  const oss::Access a = oss::region(buf, 8, oss::Mode::In);
  EXPECT_FALSE(z.overlaps(a));
  EXPECT_FALSE(a.overlaps(z));
}

TEST(Access, DistinctObjectsDoNotOverlap) {
  int x = 0, y = 0;
  EXPECT_FALSE(oss::in(x).overlaps(oss::in(y)));
}

} // namespace
