// oss::prof — per-label profiles, work/span attribution, the health
// watchdog, and the collector-thread shutdown handshake.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

namespace {

using namespace std::chrono_literals;

// Deterministic task weight: spin (not sleep) so the execution time the
// profiler measures is really spent executing.
void busy_for(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

oss::RuntimeConfig prof_config(std::size_t threads) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(threads);
  cfg.prof = true;
  return cfg;
}

const oss::ProfileSnapshot::Label* find_label(const oss::ProfileSnapshot& p,
                                              const std::string& name) {
  for (const auto& l : p.labels)
    if (l.name == name) return &l;
  return nullptr;
}

TEST(Prof, CountsMatchStatsCounters) {
  oss::Runtime rt(prof_config(2));
  for (int i = 0; i < 40; ++i) rt.spawn({}, [] {}, "forty");
  for (int i = 0; i < 3; ++i) rt.spawn({}, [] {}, "three");
  rt.spawn({}, [] {}); // unlabeled
  rt.taskwait();

  const oss::ProfileSnapshot p = rt.profile();
  EXPECT_EQ(p.tasks, rt.stats().tasks_executed);
  EXPECT_EQ(p.tasks, 44u);

  const auto* forty = find_label(p, "forty");
  const auto* three = find_label(p, "three");
  const auto* none = find_label(p, "(unlabeled)");
  ASSERT_NE(forty, nullptr);
  ASSERT_NE(three, nullptr);
  ASSERT_NE(none, nullptr);
  EXPECT_EQ(forty->count, 40u);
  EXPECT_EQ(three->count, 3u);
  EXPECT_EQ(none->count, 1u);

  std::uint64_t label_sum = 0, work_sum = 0;
  for (const auto& l : p.labels) {
    label_sum += l.count;
    work_sum += l.exec_ns;
    EXPECT_LE(l.exec_min_ns, l.exec_max_ns) << l.name;
    EXPECT_LE(l.exec_max_ns, l.exec_ns) << l.name;
  }
  EXPECT_EQ(label_sum, p.tasks);
  EXPECT_EQ(work_sum, p.work_ns);
}

TEST(Prof, DisabledByDefaultAndEmptySnapshotIsSane) {
  oss::Runtime rt(2);
  rt.spawn({}, [] {}, "x");
  rt.taskwait();
  EXPECT_EQ(rt.prof_system(), nullptr);
  const oss::ProfileSnapshot p = rt.profile();
  EXPECT_EQ(p.tasks, 0u);
  EXPECT_EQ(p.span_ns, 0u);
  EXPECT_EQ(p.parallelism(), 0.0);
  // The footer renderers must not choke on an empty snapshot.
  EXPECT_FALSE(p.span_line("empty").empty());
  EXPECT_FALSE(p.to_table("empty").empty());
}

TEST(Prof, HistogramBucketsSumToCountAndOrderByDuration) {
  oss::Runtime rt(prof_config(2));
  for (int i = 0; i < 64; ++i) rt.spawn({}, [] {}, "short");
  rt.spawn({}, [] { busy_for(5000us); }, "long");
  rt.taskwait();

  const oss::ProfileSnapshot p = rt.profile();
  const auto* sh = find_label(p, "short");
  const auto* lo = find_label(p, "long");
  ASSERT_NE(sh, nullptr);
  ASSERT_NE(lo, nullptr);

  const auto hist_sum = [](const oss::ProfileSnapshot::Label& l) {
    std::uint64_t n = 0;
    for (std::uint64_t b : l.hist) n += b;
    return n;
  };
  EXPECT_EQ(hist_sum(*sh), sh->count);
  EXPECT_EQ(hist_sum(*lo), lo->count);

  // A 5 ms task lands in a strictly higher log2 bucket than a no-op body.
  std::size_t short_lowest = p.kHistBuckets, long_highest = 0;
  for (std::size_t b = 0; b < p.kHistBuckets; ++b) {
    if (sh->hist[b] != 0 && b < short_lowest) short_lowest = b;
    if (lo->hist[b] != 0) long_highest = b;
  }
  EXPECT_GT(long_highest, short_lowest);
}

// A gated serial chain: every task is the other's sole predecessor, so the
// critical path runs through all of them and span == work.
TEST(Prof, ChainSpanEqualsWork) {
  oss::Runtime rt(prof_config(2));
  std::atomic<bool> gate{false};
  int x = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    busy_for(1000us);
  }, "head");
  for (int i = 0; i < 3; ++i)
    rt.spawn({oss::inout(x)}, [] { busy_for(1000us); }, "link");
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const oss::ProfileSnapshot p = rt.profile();
  ASSERT_GT(p.work_ns, 0u);
  ASSERT_GT(p.span_ns, 0u);
  // Span and work sum the same per-task ticks; only conversion rounding
  // separates them.
  EXPECT_NEAR(static_cast<double>(p.span_ns), static_cast<double>(p.work_ns),
              0.01 * static_cast<double>(p.work_ns));
  EXPECT_NEAR(p.parallelism(), 1.0, 0.05);
  // All four tasks lie on the critical path.
  std::uint64_t crit = 0;
  for (const auto& [name, ns] : p.critical_ns) crit += ns;
  EXPECT_NEAR(static_cast<double>(crit), static_cast<double>(p.span_ns),
              0.01 * static_cast<double>(p.span_ns));
}

// Diamond: a → {b, c} → d.  Span = a + max(b,c) + d regardless of how the
// scheduler packs it, so span < work by roughly one branch.
TEST(Prof, DiamondSpanBelowWork) {
  oss::Runtime rt(prof_config(2));
  std::atomic<bool> gate{false};
  int x = 0, y1 = 0, y2 = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    busy_for(2000us);
  }, "a");
  rt.spawn({oss::in(x), oss::out(y1)}, [] { busy_for(2000us); }, "b");
  rt.spawn({oss::in(x), oss::out(y2)}, [] { busy_for(2000us); }, "c");
  rt.spawn({oss::in(y1), oss::in(y2)}, [] { busy_for(2000us); }, "d");
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const oss::ProfileSnapshot p = rt.profile();
  // Work ≈ 4 × 2 ms, span ≈ 3 × 2 ms: strictly apart even with timing noise.
  EXPECT_LT(static_cast<double>(p.span_ns),
            0.9 * static_cast<double>(p.work_ns));
  EXPECT_GT(static_cast<double>(p.span_ns),
            0.6 * static_cast<double>(p.work_ns));
  EXPECT_GT(p.parallelism(), 1.05);
}

// Online (Runtime::profile) vs offline (compute_work_span over the full
// trace, and again over its Chrome JSON export round-tripped through the
// parser) must agree on work and span.
TEST(Prof, OnlineAndOfflineSpanAgree) {
  oss::RuntimeConfig cfg = prof_config(2);
  cfg.trace_mode = oss::TraceMode::Full;
  oss::Runtime rt(cfg);

  std::atomic<bool> gate{false};
  int x = 0, y1 = 0, y2 = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    busy_for(1500us);
  }, "a");
  rt.spawn({oss::in(x), oss::out(y1)}, [] { busy_for(1500us); }, "b");
  rt.spawn({oss::in(x), oss::out(y2)}, [] { busy_for(1500us); }, "c");
  rt.spawn({oss::inout(y1), oss::in(y2)}, [] { busy_for(1500us); }, "d");
  rt.spawn({oss::inout(y1)}, [] { busy_for(1500us); }, "e");
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const oss::ProfileSnapshot online = rt.profile();
  ASSERT_NE(rt.trace_system(), nullptr);
  const oss::SpanSummary offline = oss::compute_work_span(*rt.trace_system());

  ASSERT_EQ(offline.tasks, 5u);
  ASSERT_GE(offline.edges, 4u); // a→b, a→c, b|c→d, d→e at minimum
  ASSERT_GT(online.span_ns, 0u);
  ASSERT_GT(offline.span_ns, 0u);
  // Same tick source, independent tick→ns calibrations: generous 15%.
  EXPECT_NEAR(static_cast<double>(offline.work_ns),
              static_cast<double>(online.work_ns),
              0.15 * static_cast<double>(online.work_ns));
  EXPECT_NEAR(static_cast<double>(offline.span_ns),
              static_cast<double>(online.span_ns),
              0.15 * static_cast<double>(online.span_ns));

  // JSON round trip: parse the export and recompute — ns-precision ts/dur,
  // so the parsed numbers track the in-memory ones tightly.
  const oss::ParsedTrace parsed = oss::parse_chrome_trace(rt.export_trace_json());
  EXPECT_EQ(parsed.tasks.size(), 5u);
  EXPECT_EQ(parsed.edges.size(), offline.edges);
  const oss::SpanSummary reparsed =
      oss::compute_work_span(parsed.tasks, parsed.edges);
  EXPECT_NEAR(static_cast<double>(reparsed.span_ns),
              static_cast<double>(offline.span_ns),
              0.01 * static_cast<double>(offline.span_ns) + 10000.0);
  EXPECT_FALSE(reparsed.critical_ns.empty());
}

TEST(Prof, ParseChromeTraceRejectsGarbageAndHandlesExecMode) {
  EXPECT_THROW(oss::parse_chrome_trace("{\"traceEvents\":[{"),
               std::invalid_argument);
  // Exec-mode export: integer µs, ids only in the "#N" name suffix, no
  // edges — parsing degrades gracefully instead of failing.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_trace = true;
  oss::Runtime rt(cfg);
  for (int i = 0; i < 4; ++i) rt.spawn({}, [] { busy_for(200us); }, "w");
  rt.taskwait();
  const oss::ParsedTrace parsed = oss::parse_chrome_trace(rt.export_trace_json());
  EXPECT_EQ(parsed.tasks.size(), 4u);
  EXPECT_TRUE(parsed.edges.empty());
  const oss::SpanSummary s = oss::compute_work_span(parsed.tasks, parsed.edges);
  EXPECT_GT(s.work_ns, s.span_ns); // span degrades to the longest task
}

TEST(Prof, WatchdogFiresOnStallAndDumpNamesBlockedTask) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.watchdog_ms = 25;
  oss::Runtime rt(cfg);

  std::atomic<bool> release{false};
  int x = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
  }, "stuck_producer");
  rt.spawn({oss::in(x)}, [] {}, "starved_consumer");

  // The stall: tasks in flight, nothing retiring.  The watchdog must bark
  // within a few periods.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (rt.health_dumps() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(rt.health_dumps(), 0u) << "watchdog never fired on a stalled run";

  // The on-demand dump names both the running culprit and the blocked task.
  std::ostringstream os;
  rt.dump_health(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("[oss-health]"), std::string::npos);
  EXPECT_NE(dump.find("stuck_producer"), std::string::npos) << dump;
  EXPECT_NE(dump.find("starved_consumer"), std::string::npos) << dump;
  EXPECT_NE(dump.find("preds="), std::string::npos) << dump;

  release.store(true, std::memory_order_release);
  rt.taskwait();
}

TEST(Prof, WatchdogSilentOnHealthyRun) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.watchdog_ms = 40;
  oss::Runtime rt(cfg);
  // Keep retirements flowing for several watchdog periods.
  const auto until = std::chrono::steady_clock::now() + 250ms;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 8; ++i) rt.spawn({}, [] { busy_for(300us); }, "hum");
    rt.taskwait();
  }
  EXPECT_EQ(rt.health_dumps(), 0u);
}

// Regression: the collector thread used to race runtime teardown (notify
// before the sleeper re-checked the stop flag under the lock).  Hammer
// short-lived runtimes with 1 ms ticks so construct/collect/destruct
// overlap; the test passes by not hanging or crashing.
TEST(Prof, CollectorShutdownHandshake) {
  for (int i = 0; i < 20; ++i) {
    oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
    if (i % 2 == 0) {
      cfg.watchdog_ms = 1;
    } else {
      cfg.prof_every_ms = 1;
    }
    oss::Runtime rt(cfg);
    for (int j = 0; j < 4; ++j) rt.spawn({}, [] {}, "churn");
    rt.taskwait();
    if (i % 4 == 0) std::this_thread::sleep_for(2ms); // let a tick land
  }
  SUCCEED();
}

TEST(Prof, WaitAndQueueTimesAccumulate) {
  oss::Runtime rt(prof_config(2));
  std::atomic<bool> gate{false};
  int x = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  }, "holder");
  // Spends its whole life waiting on the dependency — several ms of
  // spawn→ready wait must show up.
  rt.spawn({oss::in(x)}, [] {}, "waiter");
  std::this_thread::sleep_for(5ms);
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const oss::ProfileSnapshot p = rt.profile();
  const auto* waiter = find_label(p, "waiter");
  ASSERT_NE(waiter, nullptr);
  EXPECT_GT(waiter->wait_ns, 2u * 1000u * 1000u) << "dependency wait not seen";
  const auto* holder = find_label(p, "holder");
  ASSERT_NE(holder, nullptr);
  EXPECT_LT(holder->wait_ns, waiter->wait_ns);
}

TEST(Prof, SpanLineAndTableFormat) {
  oss::Runtime rt(prof_config(2));
  std::atomic<bool> gate{false};
  int x = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    busy_for(500us);
  }, "fmt");
  rt.spawn({oss::in(x)}, [] { busy_for(500us); }, "fmt");
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const oss::ProfileSnapshot p = rt.profile();
  const std::string line = p.span_line("demo");
  EXPECT_NE(line.find("[oss-span demo]"), std::string::npos);
  EXPECT_NE(line.find("work="), std::string::npos);
  EXPECT_NE(line.find("span="), std::string::npos);
  EXPECT_NE(line.find("parallelism="), std::string::npos);
  EXPECT_NE(line.find("critical:"), std::string::npos);
  EXPECT_NE(line.find("fmt="), std::string::npos);

  const std::string table = p.to_table("demo");
  EXPECT_NE(table.find("[oss-prof demo]"), std::string::npos);
  EXPECT_NE(table.find("label"), std::string::npos);
  EXPECT_NE(table.find("fmt"), std::string::npos);
}

// Graph recording alone also enables path tracking, and the DOT export
// highlights the critical chain.
TEST(Prof, GraphDotHighlightsCriticalPath) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);
  std::atomic<bool> gate{false};
  int x = 0, y = 0;
  rt.spawn({oss::out(x)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    busy_for(300us);
  }, "p");
  rt.spawn({oss::in(x), oss::out(y)}, [] { busy_for(300us); }, "q");
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const std::string dot = rt.export_graph_dot();
  EXPECT_NE(dot.find("crimson"), std::string::npos) << dot;
  EXPECT_NE(dot.find("fillcolor"), std::string::npos) << dot;
}

} // namespace
