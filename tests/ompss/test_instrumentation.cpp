// Stats counters, DOT graph export, and Chrome-trace export.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace {

TEST(Stats, CountsSpawnedExecutedAndEdges) {
  oss::Runtime rt(2);
  int a = 0, b = 0;
  // Edges are only recorded for *unfinished* predecessors, so hold the
  // first writer hostage until all three tasks are spawned — otherwise a
  // fast worker can retire it between two spawns and the expected edge
  // counts become a scheduling race (flaky on small machines).
  std::atomic<bool> gate{false};
  rt.spawn({oss::out(a)}, [&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    a = 1;
  });
  rt.spawn({oss::in(a), oss::out(b)}, [&] { b = a; }); // 1 RAW
  rt.spawn({oss::out(a)}, [&] { a = 2; }); // WAR vs reader + WAW vs writer
  gate.store(true, std::memory_order_release);
  rt.taskwait();

  const auto s = rt.stats();
  EXPECT_EQ(s.tasks_spawned, 3u);
  EXPECT_EQ(s.tasks_executed, 3u);
  EXPECT_EQ(s.edges_raw, 1u);
  // Both predecessors of task 3 are unfinished while it registers (task 1
  // is gated, task 2 waits on task 1), so both hazard edges are recorded.
  EXPECT_EQ(s.edges_war, 1u);
  EXPECT_EQ(s.edges_waw, 1u);
  EXPECT_EQ(s.taskwaits, 1u);
  EXPECT_EQ(s.edges_total(), s.edges_raw + s.edges_war + s.edges_waw);
}

TEST(Stats, SnapshotToStringMentionsAllSections) {
  oss::Runtime rt(2);
  rt.spawn({}, [] {});
  rt.taskwait();
  const std::string text = rt.stats().to_string();
  EXPECT_NE(text.find("tasks:"), std::string::npos);
  EXPECT_NE(text.find("edges:"), std::string::npos);
  EXPECT_NE(text.find("queue:"), std::string::npos);
  EXPECT_NE(text.find("per-worker"), std::string::npos);
}

TEST(GraphExport, DisabledByDefault) {
  oss::Runtime rt(2);
  rt.spawn({}, [] {});
  rt.taskwait();
  EXPECT_TRUE(rt.export_graph_dot().empty());
}

TEST(GraphExport, RecordsNodesAndTypedEdges) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(1);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);
  int x = 0, y = 0;
  rt.spawn({oss::out(x)}, [&] { x = 1; }, "produce");
  rt.spawn({oss::in(x), oss::out(y)}, [&] { y = x; }, "consume");
  rt.spawn({oss::out(x)}, [&] { x = 2; }, "overwrite");
  rt.taskwait();

  const std::string dot = rt.export_graph_dot();
  EXPECT_NE(dot.find("digraph taskgraph"), std::string::npos);
  EXPECT_NE(dot.find("produce"), std::string::npos);
  EXPECT_NE(dot.find("consume"), std::string::npos);
  EXPECT_NE(dot.find("RAW"), std::string::npos);
  // With one thread nothing executed before registration, so WAR and WAW
  // edges for "overwrite" must both be present.
  EXPECT_NE(dot.find("WAR"), std::string::npos);
  EXPECT_NE(dot.find("WAW"), std::string::npos);
}

TEST(GraphExport, DotEscapesQuotesInLabels) {
  oss::GraphRecorder rec;
  rec.add_node(1, "say \"hi\"");
  const std::string dot = rec.to_dot();
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(TraceExport, RecordsOneEventPerTask) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_trace = true;
  oss::Runtime rt(cfg);
  for (int i = 0; i < 5; ++i) rt.spawn({}, [] {}, "work");
  rt.taskwait();
  const std::string json = rt.export_trace_json();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  // 5 events, each with a "ph":"X" complete-event marker.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 5u);
}

TEST(TraceExport, DisabledByDefault) {
  oss::Runtime rt(2);
  rt.spawn({}, [] {});
  rt.taskwait();
  EXPECT_TRUE(rt.export_trace_json().empty());
}

} // namespace
