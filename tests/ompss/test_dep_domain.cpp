// Unit tests for the interval-map dependency domain: hazard discovery,
// interval splitting, edge deduplication, and taskwait-on wait sets.
#include "ompss/dep_domain.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace {

using oss::Access;
using oss::AccessList;
using oss::DepDomain;
using oss::DepKind;
using oss::Mode;
using oss::Task;
using oss::TaskPtr;

struct EdgeRec {
  std::uint64_t from;
  std::uint64_t to;
  DepKind kind;
};

class DepDomainTest : public ::testing::Test {
 protected:
  TaskPtr make_task(AccessList accesses) {
    return std::make_shared<Task>(++next_id_, [] {}, std::move(accesses), ctx_,
                                  "");
  }

  /// Registers and returns the edges discovered for this task.
  std::vector<EdgeRec> reg(const TaskPtr& t) {
    std::vector<EdgeRec> edges;
    domain_.register_task(t, [&](const TaskPtr& f, const TaskPtr& to, DepKind k) {
      edges.push_back({f->id(), to->id(), k});
    });
    return edges;
  }

  oss::ContextPtr ctx_ = std::make_shared<oss::TaskContext>();
  DepDomain domain_;
  std::uint64_t next_id_ = 0;
  char buf_[256] = {};
};

TEST_F(DepDomainTest, FirstTouchHasNoEdges) {
  auto t = make_task({oss::region(buf_, 16, Mode::InOut)});
  EXPECT_TRUE(reg(t).empty());
  EXPECT_EQ(t->preds, 0);
  EXPECT_EQ(domain_.entry_count(), 1u);
}

TEST_F(DepDomainTest, ReadAfterWriteCreatesRawEdge) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  auto edges = reg(r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, w->id());
  EXPECT_EQ(edges[0].to, r->id());
  EXPECT_EQ(edges[0].kind, DepKind::Raw);
  EXPECT_EQ(r->preds, 1);
  ASSERT_EQ(w->successors.size(), 1u);
  EXPECT_EQ(w->successors[0].get(), r.get());
}

TEST_F(DepDomainTest, WriteAfterReadCreatesWarEdges) {
  auto r1 = make_task({oss::region(buf_, 16, Mode::In)});
  auto r2 = make_task({oss::region(buf_, 16, Mode::In)});
  reg(r1);
  reg(r2);
  EXPECT_EQ(r1->preds, 0);
  EXPECT_EQ(r2->preds, 0); // concurrent readers
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges = reg(w);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(w->preds, 2);
  for (const auto& e : edges) EXPECT_EQ(e.kind, DepKind::War);
}

TEST_F(DepDomainTest, WriteAfterWriteCreatesWawEdge) {
  auto w1 = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w1);
  auto w2 = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges = reg(w2);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, DepKind::Waw);
}

TEST_F(DepDomainTest, InOutCreatesBothDirections) {
  auto a = make_task({oss::region(buf_, 16, Mode::InOut)});
  reg(a);
  auto b = make_task({oss::region(buf_, 16, Mode::InOut)});
  auto edges = reg(b);
  // a is both last writer (RAW/WAW) — deduplicated to one edge.
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(b->preds, 1);
}

TEST_F(DepDomainTest, DisjointRegionsAreIndependent) {
  auto a = make_task({oss::region(buf_, 16, Mode::InOut)});
  auto b = make_task({oss::region(buf_ + 16, 16, Mode::InOut)});
  reg(a);
  EXPECT_TRUE(reg(b).empty());
  EXPECT_EQ(b->preds, 0);
  EXPECT_EQ(domain_.entry_count(), 2u);
}

TEST_F(DepDomainTest, PartialOverlapSplitsIntervals) {
  auto w = make_task({oss::region(buf_, 32, Mode::Out)});
  reg(w);
  // Reader of the second half only.
  auto r = make_task({oss::region(buf_ + 16, 16, Mode::In)});
  auto edges = reg(r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, DepKind::Raw);
  // The original [0,32) entry must have been split.
  EXPECT_EQ(domain_.entry_count(), 2u);

  // A writer to the first half must depend on w (WAW) but NOT on r.
  auto w2 = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges2 = reg(w2);
  ASSERT_EQ(edges2.size(), 1u);
  EXPECT_EQ(edges2[0].from, w->id());
  EXPECT_EQ(edges2[0].kind, DepKind::Waw);
}

TEST_F(DepDomainTest, SpanningAccessCollectsAllSubRangeHazards) {
  auto w1 = make_task({oss::region(buf_, 8, Mode::Out)});
  auto w2 = make_task({oss::region(buf_ + 8, 8, Mode::Out)});
  reg(w1);
  reg(w2);
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  auto edges = reg(r);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(r->preds, 2);
}

TEST_F(DepDomainTest, EdgesAreDeduplicatedPerProducer) {
  // One producer writing two regions; one consumer reading both: one edge.
  auto w = make_task({oss::region(buf_, 8, Mode::Out),
                      oss::region(buf_ + 64, 8, Mode::Out)});
  reg(w);
  auto r = make_task({oss::region(buf_, 8, Mode::In),
                      oss::region(buf_ + 64, 8, Mode::In)});
  auto edges = reg(r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(r->preds, 1);
}

TEST_F(DepDomainTest, FinishedProducersContributeNoEdges) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  w->mark_finished();
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  EXPECT_TRUE(reg(r).empty());
  EXPECT_EQ(r->preds, 0);
}

TEST_F(DepDomainTest, SelfDependencyIsIgnored) {
  // A task reading and writing the same region through separate accesses
  // must not depend on itself.
  auto t = make_task({oss::region(buf_, 16, Mode::In),
                      oss::region(buf_, 16, Mode::Out)});
  EXPECT_TRUE(reg(t).empty());
  EXPECT_EQ(t->preds, 0);
}

TEST_F(DepDomainTest, ZeroLengthAccessIsIgnored) {
  auto w = make_task({oss::region(buf_, 0, Mode::Out)});
  reg(w);
  EXPECT_EQ(domain_.entry_count(), 0u);
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  EXPECT_TRUE(reg(r).empty());
}

TEST_F(DepDomainTest, WriterResetsReaderList) {
  auto r1 = make_task({oss::region(buf_, 16, Mode::In)});
  reg(r1);
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  // A second writer depends only on w (WAW), not on the stale reader r1.
  auto w2 = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges = reg(w2);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, w->id());
}

TEST_F(DepDomainTest, CollectOverlappingFindsUnfinishedTasks) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  auto other = make_task({oss::region(buf_ + 128, 16, Mode::Out)});
  reg(w);
  reg(r);
  reg(other);

  std::vector<TaskPtr> hits;
  const auto base = reinterpret_cast<std::uintptr_t>(buf_);
  domain_.collect_overlapping(base, base + 1, hits);
  // w (last writer) and r (reader) overlap byte 0; `other` does not.
  ASSERT_EQ(hits.size(), 2u);

  hits.clear();
  w->mark_finished();
  r->mark_finished();
  domain_.collect_overlapping(base, base + 1, hits);
  EXPECT_TRUE(hits.empty());
}

TEST_F(DepDomainTest, CollectOverlappingEmptyRangeFindsNothing) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  std::vector<TaskPtr> hits;
  const auto base = reinterpret_cast<std::uintptr_t>(buf_);
  domain_.collect_overlapping(base, base, hits);
  EXPECT_TRUE(hits.empty());
}

TEST_F(DepDomainTest, ManyInterleavedWindowsMaintainConsistentEntryCount) {
  // Sliding windows of 8 bytes with stride 4: forces repeated splitting.
  std::vector<TaskPtr> tasks;
  for (int i = 0; i + 8 <= 64; i += 4) {
    auto t = make_task({oss::region(buf_ + i, 8, Mode::InOut)});
    reg(t);
    tasks.push_back(t);
  }
  // Each consecutive pair overlaps by 4 bytes → chain of dependencies.
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_GE(tasks[i]->preds, 1) << "window " << i;
  }
}

TEST_F(DepDomainTest, GroupJoinersAreOrderedAfterThePreviousEpoch) {
  // Regression: a commutative task that *joins* an open group must take the
  // same WAW edge against the previous writer that the group starter took —
  // otherwise it has no predecessors and can run concurrently with that
  // writer (caught by TSan in the runtime stress suite).
  auto w = make_task({oss::region(buf_, 8, Mode::InOut)});
  reg(w);
  auto c1 = make_task({oss::region(buf_, 8, Mode::Commutative)});
  auto e1 = reg(c1);
  ASSERT_EQ(e1.size(), 1u); // starter: edge from the writer
  EXPECT_EQ(e1[0].from, w->id());

  auto c2 = make_task({oss::region(buf_, 8, Mode::Commutative)});
  auto e2 = reg(c2);
  ASSERT_EQ(e2.size(), 1u) << "joiner must also depend on the previous epoch";
  EXPECT_EQ(e2[0].from, w->id());
  EXPECT_EQ(e2[0].kind, DepKind::Waw);
  EXPECT_EQ(c2->preds, 1);

  // Members stay unordered among themselves: no c1 -> c2 edge.
  for (const auto& e : e2) EXPECT_NE(e.from, c1->id());
}

TEST_F(DepDomainTest, GroupJoinersAreOrderedAfterPreviousReaders) {
  auto w = make_task({oss::region(buf_, 8, Mode::Out)});
  reg(w);
  auto r = make_task({oss::region(buf_, 8, Mode::In)});
  reg(r);
  auto c1 = make_task({oss::region(buf_, 8, Mode::Concurrent)});
  reg(c1);
  auto c2 = make_task({oss::region(buf_, 8, Mode::Concurrent)});
  auto e2 = reg(c2);
  // Joiner must carry the WAR edge from the reader (and the WAW from the
  // writer), exactly like the starter.
  bool war_from_reader = false;
  for (const auto& e : e2) {
    if (e.from == r->id() && e.kind == DepKind::War) war_from_reader = true;
    EXPECT_NE(e.from, c1->id()); // still unordered within the group
  }
  EXPECT_TRUE(war_from_reader);
  EXPECT_EQ(c2->preds, 2); // writer + reader
}

} // namespace
