// Unit tests for the interval-map dependency domain: hazard discovery,
// interval splitting, edge deduplication, taskwait-on wait sets, the
// sharded (multi-lock) registration path, and home-node inheritance votes.
#include "ompss/dep_domain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

namespace {

using oss::Access;
using oss::AccessList;
using oss::DepDomain;
using oss::DepKind;
using oss::Mode;
using oss::Task;
using oss::TaskPtr;

struct EdgeRec {
  std::uint64_t from;
  std::uint64_t to;
  DepKind kind;
};

class DepDomainTest : public ::testing::Test {
 protected:
  TaskPtr make_task(AccessList accesses) {
    return oss::make_task(++next_id_, [] {}, std::move(accesses), ctx_,
                                  "");
  }

  /// Registers and returns the edges discovered for this task.
  std::vector<EdgeRec> reg(const TaskPtr& t) {
    std::vector<EdgeRec> edges;
    domain_.register_task(t, [&](const TaskPtr& f, const TaskPtr& to, DepKind k) {
      edges.push_back({f->id(), to->id(), k});
    });
    return edges;
  }

  oss::ContextPtr ctx_ = std::make_shared<oss::TaskContext>();
  DepDomain domain_;
  std::uint64_t next_id_ = 0;
  char buf_[256] = {};
};

TEST_F(DepDomainTest, FirstTouchHasNoEdges) {
  auto t = make_task({oss::region(buf_, 16, Mode::InOut)});
  EXPECT_TRUE(reg(t).empty());
  EXPECT_EQ(t->preds, 0);
  EXPECT_EQ(domain_.entry_count(), 1u);
}

TEST_F(DepDomainTest, ReadAfterWriteCreatesRawEdge) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  auto edges = reg(r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, w->id());
  EXPECT_EQ(edges[0].to, r->id());
  EXPECT_EQ(edges[0].kind, DepKind::Raw);
  EXPECT_EQ(r->preds, 1);
  ASSERT_EQ(w->successors.size(), 1u);
  EXPECT_EQ(w->successors[0].get(), r.get());
}

TEST_F(DepDomainTest, WriteAfterReadCreatesWarEdges) {
  auto r1 = make_task({oss::region(buf_, 16, Mode::In)});
  auto r2 = make_task({oss::region(buf_, 16, Mode::In)});
  reg(r1);
  reg(r2);
  EXPECT_EQ(r1->preds, 0);
  EXPECT_EQ(r2->preds, 0); // concurrent readers
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges = reg(w);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(w->preds, 2);
  for (const auto& e : edges) EXPECT_EQ(e.kind, DepKind::War);
}

TEST_F(DepDomainTest, WriteAfterWriteCreatesWawEdge) {
  auto w1 = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w1);
  auto w2 = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges = reg(w2);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, DepKind::Waw);
}

TEST_F(DepDomainTest, InOutCreatesBothDirections) {
  auto a = make_task({oss::region(buf_, 16, Mode::InOut)});
  reg(a);
  auto b = make_task({oss::region(buf_, 16, Mode::InOut)});
  auto edges = reg(b);
  // a is both last writer (RAW/WAW) — deduplicated to one edge.
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(b->preds, 1);
}

TEST_F(DepDomainTest, DisjointRegionsAreIndependent) {
  auto a = make_task({oss::region(buf_, 16, Mode::InOut)});
  auto b = make_task({oss::region(buf_ + 16, 16, Mode::InOut)});
  reg(a);
  EXPECT_TRUE(reg(b).empty());
  EXPECT_EQ(b->preds, 0);
  EXPECT_EQ(domain_.entry_count(), 2u);
}

TEST_F(DepDomainTest, PartialOverlapSplitsIntervals) {
  auto w = make_task({oss::region(buf_, 32, Mode::Out)});
  reg(w);
  // Reader of the second half only.
  auto r = make_task({oss::region(buf_ + 16, 16, Mode::In)});
  auto edges = reg(r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, DepKind::Raw);
  // The original [0,32) entry must have been split.
  EXPECT_EQ(domain_.entry_count(), 2u);

  // A writer to the first half must depend on w (WAW) but NOT on r.
  auto w2 = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges2 = reg(w2);
  ASSERT_EQ(edges2.size(), 1u);
  EXPECT_EQ(edges2[0].from, w->id());
  EXPECT_EQ(edges2[0].kind, DepKind::Waw);
}

TEST_F(DepDomainTest, SpanningAccessCollectsAllSubRangeHazards) {
  auto w1 = make_task({oss::region(buf_, 8, Mode::Out)});
  auto w2 = make_task({oss::region(buf_ + 8, 8, Mode::Out)});
  reg(w1);
  reg(w2);
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  auto edges = reg(r);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(r->preds, 2);
}

TEST_F(DepDomainTest, EdgesAreDeduplicatedPerProducer) {
  // One producer writing two regions; one consumer reading both: one edge.
  auto w = make_task({oss::region(buf_, 8, Mode::Out),
                      oss::region(buf_ + 64, 8, Mode::Out)});
  reg(w);
  auto r = make_task({oss::region(buf_, 8, Mode::In),
                      oss::region(buf_ + 64, 8, Mode::In)});
  auto edges = reg(r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(r->preds, 1);
}

TEST_F(DepDomainTest, FinishedProducersContributeNoEdges) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  w->mark_finished();
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  EXPECT_TRUE(reg(r).empty());
  EXPECT_EQ(r->preds, 0);
}

TEST_F(DepDomainTest, SelfDependencyIsIgnored) {
  // A task reading and writing the same region through separate accesses
  // must not depend on itself.
  auto t = make_task({oss::region(buf_, 16, Mode::In),
                      oss::region(buf_, 16, Mode::Out)});
  EXPECT_TRUE(reg(t).empty());
  EXPECT_EQ(t->preds, 0);
}

TEST_F(DepDomainTest, ZeroLengthAccessIsIgnored) {
  auto w = make_task({oss::region(buf_, 0, Mode::Out)});
  reg(w);
  EXPECT_EQ(domain_.entry_count(), 0u);
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  EXPECT_TRUE(reg(r).empty());
}

TEST_F(DepDomainTest, WriterResetsReaderList) {
  auto r1 = make_task({oss::region(buf_, 16, Mode::In)});
  reg(r1);
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  // A second writer depends only on w (WAW), not on the stale reader r1.
  auto w2 = make_task({oss::region(buf_, 16, Mode::Out)});
  auto edges = reg(w2);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, w->id());
}

TEST_F(DepDomainTest, CollectOverlappingFindsUnfinishedTasks) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  auto other = make_task({oss::region(buf_ + 128, 16, Mode::Out)});
  reg(w);
  reg(r);
  reg(other);

  std::vector<TaskPtr> hits;
  const auto base = reinterpret_cast<std::uintptr_t>(buf_);
  domain_.collect_overlapping(base, base + 1, hits);
  // w (last writer) and r (reader) overlap byte 0; `other` does not.
  ASSERT_EQ(hits.size(), 2u);

  hits.clear();
  w->mark_finished();
  r->mark_finished();
  domain_.collect_overlapping(base, base + 1, hits);
  EXPECT_TRUE(hits.empty());
}

TEST_F(DepDomainTest, CollectOverlappingEmptyRangeFindsNothing) {
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  reg(w);
  std::vector<TaskPtr> hits;
  const auto base = reinterpret_cast<std::uintptr_t>(buf_);
  domain_.collect_overlapping(base, base, hits);
  EXPECT_TRUE(hits.empty());
}

TEST_F(DepDomainTest, ManyInterleavedWindowsMaintainConsistentEntryCount) {
  // Sliding windows of 8 bytes with stride 4: forces repeated splitting.
  std::vector<TaskPtr> tasks;
  for (int i = 0; i + 8 <= 64; i += 4) {
    auto t = make_task({oss::region(buf_ + i, 8, Mode::InOut)});
    reg(t);
    tasks.push_back(t);
  }
  // Each consecutive pair overlaps by 4 bytes → chain of dependencies.
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_GE(tasks[i]->preds, 1) << "window " << i;
  }
}

TEST_F(DepDomainTest, GroupJoinersAreOrderedAfterThePreviousEpoch) {
  // Regression: a commutative task that *joins* an open group must take the
  // same WAW edge against the previous writer that the group starter took —
  // otherwise it has no predecessors and can run concurrently with that
  // writer (caught by TSan in the runtime stress suite).
  auto w = make_task({oss::region(buf_, 8, Mode::InOut)});
  reg(w);
  auto c1 = make_task({oss::region(buf_, 8, Mode::Commutative)});
  auto e1 = reg(c1);
  ASSERT_EQ(e1.size(), 1u); // starter: edge from the writer
  EXPECT_EQ(e1[0].from, w->id());

  auto c2 = make_task({oss::region(buf_, 8, Mode::Commutative)});
  auto e2 = reg(c2);
  ASSERT_EQ(e2.size(), 1u) << "joiner must also depend on the previous epoch";
  EXPECT_EQ(e2[0].from, w->id());
  EXPECT_EQ(e2[0].kind, DepKind::Waw);
  EXPECT_EQ(c2->preds, 1);

  // Members stay unordered among themselves: no c1 -> c2 edge.
  for (const auto& e : e2) EXPECT_NE(e.from, c1->id());
}

// ---------------------------------------------------------------------------
// Inheritance voting: predecessors with resolved homes vote for the
// consumer's inherited_node, weighted by overlap bytes.
// ---------------------------------------------------------------------------

TEST_F(DepDomainTest, InheritanceVotePicksMaxBytesPredecessor) {
  auto small = make_task({oss::region(buf_, 16, Mode::Out)});
  auto large = make_task({oss::region(buf_ + 16, 64, Mode::Out)});
  small->set_home_node(0);
  large->set_home_node(1);
  reg(small);
  reg(large);
  // Consumer overlaps 16 bytes of node 0 and 64 bytes of node 1.
  auto r = make_task({oss::region(buf_, 80, Mode::In)});
  reg(r);
  EXPECT_EQ(r->inherited_node(), 1) << "max-bytes predecessor must win";
}

TEST_F(DepDomainTest, InheritanceVoteTieKeepsFirstSeenPredecessor) {
  auto a = make_task({oss::region(buf_, 32, Mode::Out)});
  auto b = make_task({oss::region(buf_ + 32, 32, Mode::Out)});
  a->set_home_node(1);
  b->set_home_node(0);
  reg(a);
  reg(b);
  auto r = make_task({oss::region(buf_, 64, Mode::In)});
  reg(r);
  EXPECT_EQ(r->inherited_node(), 1) << "equal bytes: first discovered wins";
}

TEST_F(DepDomainTest, FinishedPredecessorsStillVote) {
  // Retired producers donate no edge, but the data still lives on their
  // node — the vote must count them (chain inheritance through retirement).
  auto w = make_task({oss::region(buf_, 16, Mode::Out)});
  w->set_home_node(1);
  reg(w);
  w->mark_finished();
  auto r = make_task({oss::region(buf_, 16, Mode::In)});
  EXPECT_TRUE(reg(r).empty());
  EXPECT_EQ(r->inherited_node(), 1);
}

TEST_F(DepDomainTest, RepeatOverlapsAccumulateVoteBytes) {
  // One producer overlapping through two entries outvotes a single larger
  // entry of another node when its *total* bytes are larger.
  auto a = make_task({oss::region(buf_, 24, Mode::Out),
                      oss::region(buf_ + 64, 24, Mode::Out)});
  auto b = make_task({oss::region(buf_ + 32, 32, Mode::Out)});
  a->set_home_node(0);
  b->set_home_node(1);
  reg(a);
  reg(b);
  auto r = make_task({oss::region(buf_, 96, Mode::In)});
  reg(r);
  EXPECT_EQ(r->inherited_node(), 0) << "48 accumulated bytes beat 32";
}

// ---------------------------------------------------------------------------
// Sharded domains: stripes hash to independently-locked shards; semantics
// (edge sets, group exclusion) must not change.
// ---------------------------------------------------------------------------

constexpr std::size_t kStripe = std::size_t{1} << DepDomain::kStripeShift;

class ShardedDomainTest : public ::testing::Test {
 protected:
  ShardedDomainTest() : big_(4 * kStripe) {}

  TaskPtr make_task(AccessList accesses) {
    return oss::make_task(++next_id_, [] {}, std::move(accesses), ctx_,
                                  "");
  }

  std::vector<EdgeRec> reg(DepDomain& d, const TaskPtr& t) {
    std::vector<EdgeRec> edges;
    d.register_task(t, [&](const TaskPtr& f, const TaskPtr& to, DepKind k) {
      edges.push_back({f->id(), to->id(), k});
    });
    return edges;
  }

  char* big() { return big_.data(); }

  /// Precondition of the multi-shard assertions: big_'s stripes hash to at
  /// least two distinct shards under `d`.  The heap base is ASLR-dependent,
  /// so with 8 shards all ~4 stripes collide on one shard roughly once in
  /// 10^4 runs — the affected tests skip instead of failing spuriously.
  bool spans_shards(const DepDomain& d) const {
    const auto base = reinterpret_cast<std::uintptr_t>(big_.data());
    const auto end = base + big_.size();
    const std::size_t first = d.shard_of(base);
    for (std::uintptr_t p = (base / kStripe + 1) * kStripe; p < end;
         p += kStripe) {
      if (d.shard_of(p) != first) return true;
    }
    return false;
  }

  oss::ContextPtr ctx_ = std::make_shared<oss::TaskContext>();
  std::uint64_t next_id_ = 0;
  std::vector<char> big_; ///< spans ≥3 stripe boundaries
};

TEST_F(ShardedDomainTest, ShardOfIsStableWithinAStripe) {
  DepDomain d(8);
  EXPECT_EQ(d.shard_count(), 8u);
  const auto base = reinterpret_cast<std::uintptr_t>(big());
  const std::uintptr_t stripe_start = (base / kStripe + 1) * kStripe;
  EXPECT_EQ(d.shard_of(stripe_start), d.shard_of(stripe_start + kStripe - 1));
}

TEST_F(ShardedDomainTest, CrossStripeHazardIsOneDedupedEdge) {
  DepDomain d(8);
  if (!spans_shards(d)) GTEST_SKIP() << "ASLR put every stripe on one shard";
  auto w = make_task({oss::region(big(), big_.size(), Mode::Out)});
  auto receipt = d.register_task(w, nullptr);
  EXPECT_GE(receipt.shards_touched, 2u) << "a 4-stripe access must span shards";
  auto r = make_task({oss::region(big(), big_.size(), Mode::In)});
  auto edges = reg(d, r);
  ASSERT_EQ(edges.size(), 1u) << "same producer found in several shards: dedup";
  EXPECT_EQ(edges[0].kind, DepKind::Raw);
  EXPECT_EQ(r->preds, 1);
}

TEST_F(ShardedDomainTest, SingleStripeAccessTouchesOneShard) {
  DepDomain d(8);
  auto t = make_task({oss::region(big(), 64, Mode::InOut)});
  auto receipt = d.register_task(t, nullptr);
  EXPECT_EQ(receipt.shards_touched, 1u);
  EXPECT_FALSE(receipt.contended);
}

TEST_F(ShardedDomainTest, PartialOverlapAcrossStripeBoundary) {
  DepDomain d(8);
  const auto base = reinterpret_cast<std::uintptr_t>(big());
  // A window straddling the first stripe boundary inside the buffer.
  const std::uintptr_t boundary = (base / kStripe + 1) * kStripe;
  char* left = big() + (boundary - base - 32);
  auto w = make_task({oss::region(left, 64, Mode::Out)});
  reg(d, w);
  // Reader of only the right half (second stripe).
  auto r = make_task({oss::region(left + 32, 32, Mode::In)});
  auto edges = reg(d, r);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, w->id());
  // Writer of only the left half must depend on w but NOT on r.
  auto w2 = make_task({oss::region(left, 32, Mode::Out)});
  auto edges2 = reg(d, w2);
  ASSERT_EQ(edges2.size(), 1u);
  EXPECT_EQ(edges2[0].from, w->id());
  EXPECT_EQ(edges2[0].kind, DepKind::Waw);
}

TEST_F(ShardedDomainTest, CommutativeGroupSpanningShardsStaysExclusive) {
  DepDomain d(8);
  if (!spans_shards(d)) GTEST_SKIP() << "ASLR put every stripe on one shard";
  auto c1 = make_task({oss::region(big(), big_.size(), Mode::Commutative)});
  auto c2 = make_task({oss::region(big(), big_.size(), Mode::Commutative)});
  auto e1 = reg(d, c1);
  auto e2 = reg(d, c2);
  EXPECT_TRUE(e1.empty());
  EXPECT_TRUE(e2.empty()) << "group members are unordered among themselves";
  // Every per-shard sub-range contributes its exclusion lock, and both
  // members hold the same set — they can never run concurrently.
  EXPECT_GE(c1->exclusion_locks().size(), 2u);
  EXPECT_EQ(c1->exclusion_locks().size(), c2->exclusion_locks().size());
  auto sorted_locks = [](const TaskPtr& t) {
    std::vector<std::mutex*> v;
    for (const auto& sp : t->exclusion_locks()) v.push_back(sp.get());
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted_locks(c1), sorted_locks(c2));
  // A reader after the group depends on both members.
  auto r = make_task({oss::region(big(), big_.size(), Mode::In)});
  auto edges = reg(d, r);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(r->preds, 2);
}

TEST_F(ShardedDomainTest, CollectOverlappingSpansShards) {
  DepDomain d(8);
  auto w = make_task({oss::region(big(), big_.size(), Mode::Out)});
  reg(d, w);
  std::vector<TaskPtr> hits;
  const auto base = reinterpret_cast<std::uintptr_t>(big());
  d.collect_overlapping(base, base + big_.size(), hits);
  ASSERT_FALSE(hits.empty());
  for (const auto& h : hits) EXPECT_EQ(h.get(), w.get());
}

// Edge parity: the same deterministic spawn sequence must produce the same
// edge multiset under 1 shard (the classic single-lock domain) and under
// many shards — sharding changes locking, never semantics.
TEST_F(ShardedDomainTest, EdgeParityAcrossShardCounts) {
  using EdgeKey = std::tuple<std::uint64_t, std::uint64_t, int>;
  auto run = [&](std::size_t shards) {
    DepDomain d(shards);
    next_id_ = 0; // identical task ids across runs
    std::vector<EdgeKey> edges;
    auto reg_collect = [&](const TaskPtr& t) {
      d.register_task(t,
                      [&](const TaskPtr& f, const TaskPtr& to, DepKind k) {
                        edges.emplace_back(f->id(), to->id(),
                                           static_cast<int>(k));
                      });
    };
    // A mixed sequence exercising every mode, partial overlaps, stripe
    // crossings, and group open/close transitions.
    char* p = big();
    reg_collect(make_task({oss::region(p, big_.size(), Mode::Out)}));
    reg_collect(make_task({oss::region(p, kStripe + 512, Mode::In)}));
    reg_collect(make_task({oss::region(p + kStripe, kStripe, Mode::In)}));
    reg_collect(make_task({oss::region(p + 512, 2 * kStripe, Mode::InOut)}));
    reg_collect(
        make_task({oss::region(p, big_.size(), Mode::Commutative)}));
    reg_collect(
        make_task({oss::region(p, big_.size(), Mode::Commutative)}));
    reg_collect(make_task({oss::region(p + 7, 15, Mode::Concurrent)}));
    reg_collect(make_task({oss::region(p, 3 * kStripe, Mode::Out)}));
    reg_collect(make_task({oss::region(p + kStripe / 2, kStripe, Mode::In),
                           oss::region(p + 3 * kStripe, 64, Mode::Out)}));
    std::sort(edges.begin(), edges.end());
    return edges;
  };
  const auto single = run(1);
  const auto sharded = run(8);
  EXPECT_EQ(single, sharded);
  EXPECT_FALSE(single.empty());
}

TEST_F(ShardedDomainTest, OneShardMatchesLegacyEntryLayout) {
  // The escape hatch: shards=1 must not split accesses at stripe
  // boundaries — entry counts stay what the classic domain produced.
  DepDomain d1(1);
  auto t = make_task({oss::region(big(), big_.size(), Mode::Out)});
  d1.register_task(t, nullptr);
  EXPECT_EQ(d1.entry_count(), 1u);
  DepDomain d8(8);
  if (!spans_shards(d8)) GTEST_SKIP() << "ASLR put every stripe on one shard";
  auto t8 = make_task({oss::region(big(), big_.size(), Mode::Out)});
  d8.register_task(t8, nullptr);
  EXPECT_GE(d8.entry_count(), 2u) << "sharded path splits at stripe runs";
}

TEST_F(DepDomainTest, GroupJoinersAreOrderedAfterPreviousReaders) {
  auto w = make_task({oss::region(buf_, 8, Mode::Out)});
  reg(w);
  auto r = make_task({oss::region(buf_, 8, Mode::In)});
  reg(r);
  auto c1 = make_task({oss::region(buf_, 8, Mode::Concurrent)});
  reg(c1);
  auto c2 = make_task({oss::region(buf_, 8, Mode::Concurrent)});
  auto e2 = reg(c2);
  // Joiner must carry the WAR edge from the reader (and the WAW from the
  // writer), exactly like the starter.
  bool war_from_reader = false;
  for (const auto& e : e2) {
    if (e.from == r->id() && e.kind == DepKind::War) war_from_reader = true;
    EXPECT_NE(e.from, c1->id()); // still unordered within the group
  }
  EXPECT_TRUE(war_from_reader);
  EXPECT_EQ(c2->preds, 2); // writer + reader
}

} // namespace
